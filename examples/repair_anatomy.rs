//! Anatomy of one repair (paper §3.3, Figure 4 and Example 2–4).
//!
//! Shows the machinery under a single repair: the learned pattern, its
//! unrolled DAG for the erroneous value, the minimal abstract edit program
//! found by the dynamic program, and the concretized candidates.
//!
//! Run with: `cargo run --example repair_anatomy`

use datavinci::core::{minimal_edit_program, AnalysisSession, Concretizer, DataVinciConfig};
use datavinci::profile::{profile_plain, ProfilerConfig};
use datavinci::regex::MaskedString;
use datavinci::table::{Column, Table};

fn main() {
    // Figure 4's column: five rows match (A[0-9].)+, one outlier AAA3.
    let values = vec!["A2.", "A2.A3.", "A5.A7.", "A1.A2.A3.", "A9.", "AAA3"];
    let table = Table::new(vec![Column::from_texts("c", &values)]);

    let profile = profile_plain(&values, &ProfilerConfig::default());
    println!("learned patterns:");
    for lp in &profile.patterns {
        println!("  {}  (coverage {:.0}%)", lp.pattern, lp.coverage * 100.0);
    }
    let significant = &profile.patterns[0];
    assert_eq!(significant.pattern.to_string(), "(A[0-9].)+");

    // The outlier and its value-specific unrolled DAG.
    let outlier = MaskedString::from_plain("AAA3");
    let dag = significant.compiled.dag_for_len(outlier.len());
    println!(
        "\nunrolled DAG for |v|=4: {} nodes, {} edges (cycle length 3 → ⌈4/3⌉ = 2 copies)",
        dag.topo.len(),
        dag.edges.len()
    );

    // The minimal abstract edit program (Equation 1).
    let program = minimal_edit_program(&dag, &outlier).expect("repairable");
    println!(
        "minimal edit program: {} with cost {}",
        program.shorthand(),
        program.cost
    );

    // Concretization via learned value constraints (§3.4). The concretizer
    // reads the table-wide feature context from a shared analysis session
    // (one per table clean; here a standalone one).
    let cfg = DataVinciConfig::default();
    let session = AnalysisSession::new(&table);
    let mut concretizer = Concretizer::new(&session, &cfg);
    concretizer.train_pattern(0, significant, &significant.rows, &masked(&values));
    let abstract_repair = program.apply(&outlier);
    println!(
        "abstract repair has {} hole(s) to concretize",
        abstract_repair.fillable_holes().len()
    );
    for fillers in concretizer.fillers(0, 5, &abstract_repair) {
        let repaired = abstract_repair.fill(&fillers);
        println!("candidate repair: {repaired}");
        assert!(
            significant.compiled.matches(&repaired),
            "must be in-language"
        );
    }
    println!("\n✓ every candidate lands in the significant pattern's language");
}

fn masked(values: &[&str]) -> Vec<MaskedString> {
    values.iter().map(|v| MaskedString::from_plain(v)).collect()
}
