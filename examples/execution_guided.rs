//! Execution-guided repair (paper §1 and §3.6, Figure 8).
//!
//! Two scenarios where unsupervised pattern learning cannot act, but the
//! execution outcomes of a spreadsheet formula reading the column can:
//!
//! 1. The introduction's `col1 = [c-1, c-2, c3, c4]` with
//!    `=SEARCH("-", [@col1])` — two patterns, each covering half, so no
//!    majority outlier exists; the formula's failures pick the errors.
//! 2. Figure 8's `C[0-9]{2}` shape, frequent enough to be a significant
//!    pattern on its own.
//!
//! Run with: `cargo run --example execution_guided`

use datavinci::prelude::*;

fn main() {
    scenario_intro();
    scenario_figure8();
}

fn scenario_intro() {
    println!("— §1 example: SEARCH(\"-\") over [c-1, c-2, c3, c4] —");
    let table = Table::new(vec![Column::from_texts(
        "col1",
        &["c-1", "c-2", "c3", "c4"],
    )]);
    let program = ColumnProgram::parse("=SEARCH(\"-\", [@col1])").expect("parses");

    let dv = DataVinci::new();
    let unsupervised = dv.clean_column(&table, 0);
    println!(
        "unsupervised detections: {} (majority assumption can't choose)",
        unsupervised.detections.len()
    );

    let report = dv.clean_with_program(&table, &program);
    println!(
        "execution partition: successes {:?}, failures {:?}",
        report.before.successes, report.before.failures
    );
    for col in &report.columns {
        for r in &col.repairs {
            println!("  exec-guided repair: {:?} → {:?}", r.original, r.repaired);
        }
    }
    assert!(report.fully_repaired());
    let fixed: Vec<String> = report.repaired_table.column(0).unwrap().rendered();
    assert_eq!(fixed, vec!["c-1", "c-2", "c-3", "c-4"]);
    println!("✓ formula now succeeds on every row\n");
}

fn scenario_figure8() {
    println!("— Figure 8: frequent outlier shape C[0-9]{{2}} —");
    let table = Table::new(vec![Column::from_texts(
        "ID",
        &["C-19", "C-21", "C-33", "C-48", "C-55", "C51", "C52", "C53"],
    )]);
    let program = ColumnProgram::parse("=MID([@ID], SEARCH(\"-\", [@ID])+1, 2)*1").expect("parses");

    let dv = DataVinci::new();
    assert!(
        dv.clean_column(&table, 0).detections.is_empty(),
        "the unsupervised variant is blind here (C5x is a significant pattern)"
    );
    println!("unsupervised variant: no detections (as the paper reports)");

    let report = dv.clean_with_program(&table, &program);
    for col in &report.columns {
        println!("patterns learned over successful rows only:");
        for p in &col.significant_patterns {
            println!("  {p}");
        }
        for r in &col.repairs {
            println!("  exec-guided repair: {:?} → {:?}", r.original, r.repaired);
        }
    }
    assert!(report.fully_repaired());
    println!("✓ C51/C52/C53 repaired to C-51/C-52/C-53");
}
