//! A miniature tour of the evaluation (paper §4–5): generate a small
//! synthetic benchmark, run DataVinci and two baselines, and print
//! detection/repair metrics side by side.
//!
//! Run with: `cargo run --release --example benchmark_tour`

use datavinci::baselines::{GptSim, Wmrr};
use datavinci::corpus::{synthetic_errors, Scale};
use datavinci::prelude::*;
use datavinci::regex::levenshtein;

fn main() {
    let bench = synthetic_errors(
        7,
        Scale {
            n_tables: 6,
            row_divisor: 6,
        },
    );
    println!(
        "benchmark: {} tables, {:.1} avg columns, {:.1} avg rows, {:.1}% cells corrupted\n",
        bench.stats().n_tables,
        bench.stats().avg_cols,
        bench.stats().avg_rows,
        bench.stats().error_rate * 100.0
    );

    let dv = DataVinci::new();
    let wmrr = Wmrr::new();
    let gpt = GptSim::new();
    let systems: Vec<(&str, &dyn CleaningSystem)> =
        vec![("WMRR", &wmrr), ("GPT-3.5 (sim)", &gpt), ("DataVinci", &dv)];

    println!(
        "{:<14} {:>9} {:>8} {:>7} {:>15}",
        "system", "precision", "recall", "fixed", "exact repairs"
    );
    for (name, system) in systems {
        let (mut tp, mut fp, mut fn_, mut exact, mut suggested) = (0, 0, 0, 0, 0);
        for bt in &bench.tables {
            for col in 0..bt.dirty.n_cols() {
                if bt.dirty.column(col).unwrap().text_fraction() < 0.5 {
                    continue;
                }
                let truth: Vec<usize> = bt
                    .corrupted
                    .iter()
                    .filter(|c| c.col == col)
                    .map(|c| c.row)
                    .collect();
                let repairs = system.repair(&bt.dirty, col);
                suggested += repairs.len();
                for r in &repairs {
                    let clean = bt
                        .clean
                        .cell(CellRef::new(col, r.row))
                        .map(|v| v.render())
                        .unwrap_or_default();
                    if truth.contains(&r.row) {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                    if r.repaired == clean {
                        exact += 1;
                    } else {
                        // Keep levenshtein linked in so readers can extend
                        // this into the paper's "possible" metric.
                        let _ = levenshtein(&r.repaired, &clean);
                    }
                }
                fn_ += truth
                    .iter()
                    .filter(|t| !repairs.iter().any(|r| r.row == **t))
                    .count();
            }
        }
        let p = 100.0 * tp as f64 / (tp + fp).max(1) as f64;
        let r = 100.0 * tp as f64 / (tp + fn_).max(1) as f64;
        println!(
            "{:<14} {:>8.1}% {:>7.1}% {:>7} {:>11}/{}",
            name, p, r, exact, exact, suggested
        );
    }
    println!("\n(run `cargo run --release -p datavinci-bench --bin table5` for the full Table 5)");
}
