//! Quickstart: the paper's Figure 2 walk-through, end to end.
//!
//! A tournament table has a `Player ID` column mixing a semantic substring
//! (the country) with syntactic structure (`-<number>-<category code>`).
//! The value `usa_837` is wrong on both axes; DataVinci repairs it to
//! `US-837-PRO` using the Category column to pick the suffix.
//!
//! Run with: `cargo run --example quickstart`

use datavinci::prelude::*;

fn main() {
    let table = Table::new(vec![
        Column::from_texts(
            "Category",
            &[
                "Professional",
                "Professional",
                "Professional",
                "Qualifier",
                "Qualifier",
                "Professional",
            ],
        ),
        Column::from_texts(
            "Player ID",
            &[
                "IN-674-PRO",
                "usa_837",
                "DZ-173-PRO",
                "US-201-QUA",
                "CN-924-QUA",
                "FR-475-PRO",
            ],
        ),
    ]);

    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 1);

    println!("significant patterns learned for `Player ID`:");
    for p in &report.significant_patterns {
        println!("  {p}");
    }

    println!("\ndetections:");
    for d in &report.detections {
        println!("  row {} → {:?}", d.row, d.value);
    }

    println!("\nrepairs:");
    for r in &report.repairs {
        println!("  {:?} → {:?}", r.original, r.repaired);
        for c in &r.candidates {
            println!(
                "    candidate {:?} (cost {}, score {:.2}) from {}",
                c.repaired, c.cost, c.score, c.provenance
            );
        }
    }

    assert_eq!(report.repairs[0].repaired, "US-837-PRO");
    println!("\n✓ Figure 2 reproduced: usa_837 → US-837-PRO");
}
