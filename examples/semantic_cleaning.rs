//! Semantic abstraction in action (paper §3.2, Example 1 and Figure 1).
//!
//! Three columns that defeat purely syntactic cleaners:
//! * colors with a stray word (`blue phone 3`),
//! * city names with a misspelling (`Birminxham`),
//! * parenthesized cities with a structural break (`(NY`).
//!
//! Run with: `cargo run --example semantic_cleaning`

use datavinci::prelude::*;

fn clean_and_print(name: &str, values: &[&str]) -> ColumnReport {
    let table = Table::new(vec![Column::from_texts(name, values)]);
    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 0);
    println!("— column `{name}` {values:?}");
    println!("  patterns: {:?}", report.significant_patterns);
    for r in &report.repairs {
        println!("  repair: {:?} → {:?}", r.original, r.repaired);
    }
    if report.repairs.is_empty() {
        println!("  (no repairs)");
    }
    println!();
    report
}

fn main() {
    // Example 1: the pattern must see colors as one symbol to spot `phone`.
    let report = clean_and_print(
        "item",
        &["red 1", "dark green 2", "blue phone 3", "white 4", "navy 5"],
    );
    assert_eq!(report.repairs[0].repaired, "blue 3");

    // Figure 1-style misspelled entity, invisible to regex-only systems.
    let report = clean_and_print(
        "City",
        &["Boston", "Miami", "Birminxham", "Chicago", "Seattle"],
    );
    assert_eq!(report.repairs[0].repaired, "Birmingham");

    // The introduction's parenthesized-cities example: `(NY` is both a
    // syntactic (missing `)`) and semantic (non-canonical city) error.
    let report = clean_and_print(
        "Venue",
        &["(Boston)", "(Miami)", "(Denver)", "(Seattle)", "(NY"],
    );
    assert_eq!(report.detections.len(), 1);
    assert_eq!(report.repairs[0].repaired, "(New York)");
    println!("✓ mixed syntactic+semantic error repaired: (NY → (New York)");
}
