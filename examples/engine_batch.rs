//! Batch cleaning with the engine: parallel workers, cache reuse, telemetry.
//!
//! A nightly job re-cleans the same tables after small appends. The engine
//! fingerprints every column: unchanged tables are served straight from the
//! report cache, append-only columns reuse their learned patterns, and only
//! genuinely new content pays for full profiling.
//!
//! Run with: `cargo run --example engine_batch`

use datavinci::engine::{Engine, EngineConfig};
use datavinci::prelude::*;

fn nightly_tables() -> Vec<Table> {
    vec![
        Table::new(vec![Column::from_texts(
            "Quarter",
            &["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q32001"],
        )]),
        Table::new(vec![Column::from_texts(
            "Ticket",
            &["INC-0014", "INC-0027", "INC-0033", "INC41", "INC-0052"],
        )]),
    ]
}

fn main() {
    let engine = Engine::with_config(EngineConfig {
        workers: 4,
        cache: true,
        ..EngineConfig::default()
    });

    // Night 1: everything is new — full analyze + repair per column.
    let night1 = engine.clean_batch(&nightly_tables());
    println!(
        "night 1: {} repairs across {} tables in {:.1} ms ({} workers)",
        night1.n_repairs(),
        night1.tables.len(),
        night1.elapsed.as_secs_f64() * 1000.0,
        night1.workers,
    );
    for table_report in &night1.tables {
        for col in &table_report.columns {
            for r in &col.report.repairs {
                println!(
                    "  [{}] {:?} -> {:?}",
                    col.cache.label(),
                    r.original,
                    r.repaired
                );
            }
        }
    }

    // Night 2: nothing changed — served entirely from the report cache.
    let night2 = engine.clean_batch(&nightly_tables());
    println!(
        "night 2 (unchanged): {}/{} columns from cache in {:.2} ms",
        night2.cache_hits(),
        night2.tables.iter().map(|t| t.columns.len()).sum::<usize>(),
        night2.elapsed.as_secs_f64() * 1000.0,
    );

    // Night 3: the Quarter table grew by two rows (one of them dirty) —
    // append-only reuse re-scores the learned patterns instead of
    // re-profiling, and still catches the new error.
    let mut tables = nightly_tables();
    tables[0] = Table::new(vec![Column::from_texts(
        "Quarter",
        &[
            "Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q32001", "Q1-2003", "Q42003",
        ],
    )]);
    let night3 = engine.clean_batch(&tables);
    let quarter = &night3.tables[0].columns[0];
    println!(
        "night 3 (appended): Quarter column cache outcome = {}, {} repairs",
        quarter.cache.label(),
        quarter.report.repairs.len(),
    );
    for r in &quarter.report.repairs {
        println!("  {:?} -> {:?}", r.original, r.repaired);
    }

    let stats = engine.cache_stats().expect("cache enabled");
    println!(
        "cache telemetry: {} report hits, {} append hits, {} misses over {} lookups",
        stats.report_hits,
        stats.append_hits,
        stats.misses,
        stats.lookups(),
    );
    assert!(stats.report_hits > 0 && stats.append_hits > 0);
}
