//! # DataVinci — learning syntactic and semantic string repairs
//!
//! A from-scratch Rust reproduction of *DataVinci: Learning Syntactic and
//! Semantic String Repairs* (Singh, Cambronero, Gulwani, Le, Negreanu,
//! Verbruggen — SIGMOD/PVLDB; arXiv:2308.10922): a fully unsupervised
//! system that detects and repairs string data errors in tables, handling
//! values that mix syntactic structure with semantic substrings.
//!
//! This crate is the façade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`table`] | `datavinci-table` | cells, columns, tables, CSV I/O |
//! | [`regex`] | `datavinci-regex` | pattern language, NFAs, unrolled DAGs |
//! | [`profile`] | `datavinci-profile` | FlashProfile-style pattern learning |
//! | [`semantic`] | `datavinci-semantic` | 20 semantic types, mock LLM, masking |
//! | [`formula`] | `datavinci-formula` | Excel-like formula engine |
//! | [`core`] | `datavinci-core` | the DataVinci pipeline itself |
//! | [`engine`] | `datavinci-engine` | parallel, cache-aware batch engine + `datavinci-clean` CLI |
//! | [`baselines`] | `datavinci-baselines` | the 7 evaluated baselines |
//! | [`corpus`] | `datavinci-corpus` | benchmark generators & noise model |
//! | [`telemetry`] | `datavinci-telemetry` | spans, counters, latency histograms |
//!
//! ## Quickstart
//!
//! ```
//! use datavinci::prelude::*;
//!
//! let table = Table::new(vec![
//!     Column::from_texts("Quarter", &["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q32001"]),
//! ]);
//! let dv = DataVinci::new();
//! let report = dv.clean_column(&table, 0);
//! assert_eq!(report.repairs[0].original, "Q32001");
//! assert_eq!(report.repairs[0].repaired, "Q3-2001");
//! ```
//!
//! See `examples/` for the paper's walk-throughs (Figure 2's
//! `usa_837 → US-837-PRO`, execution-guided repair, semantic cleaning) and
//! `crates/bench` for the harness regenerating every evaluation table and
//! figure.

pub use datavinci_baselines as baselines;
pub use datavinci_core as core;
pub use datavinci_corpus as corpus;
pub use datavinci_engine as engine;
pub use datavinci_formula as formula;
pub use datavinci_profile as profile;
pub use datavinci_regex as regex;
pub use datavinci_semantic as semantic;
pub use datavinci_table as table;
pub use datavinci_telemetry as telemetry;

/// The most common imports in one place.
pub mod prelude {
    pub use datavinci_core::{
        AnalysisSession, CleaningSystem, ColumnReport, DataVinci, DataVinciConfig, Detection,
        ExecGuidedReport, RankingMode, RepairSuggestion, SemanticMode, SessionStats, TableReport,
    };
    pub use datavinci_engine::{Engine, EngineConfig, EngineReport};
    pub use datavinci_formula::ColumnProgram;
    pub use datavinci_table::{CellRef, CellValue, Column, ErrorValue, Table};
}
