//! Telemetry integration tests.
//!
//! Three layers of guarantees:
//!
//! 1. **Span nesting across worker threads** — per-column worker tasks
//!    record into thread-local collectors and their span trees are grafted
//!    under the batch root at join, so the exported tree nests the same way
//!    regardless of pool width.
//! 2. **Schema-golden metrics JSON** — the exported metrics report's *shape*
//!    (every span/counter/gauge/histogram key, including all six pipeline
//!    stages) is locked by a canonical timing-free snapshot in
//!    `tests/snapshots/telemetry_metrics.json`. Regenerate intentional
//!    changes with `UPDATE_SNAPSHOTS=1 cargo test --test telemetry`.
//! 3. **Observation is free of side effects** — property test: cleaning
//!    output is byte-identical with telemetry enabled and disabled.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use datavinci::engine::json::Json;
use datavinci::engine::{telemetry_json, Engine, EngineConfig, StreamCleaner, StreamConfig};
use datavinci::table::{io, Column, Table};
use datavinci::telemetry::{self, stages, TaskProfile};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn players_table() -> Table {
    let text = std::fs::read_to_string(repo_path("tests/fixtures/players.csv")).expect("fixture");
    io::parse_csv(&text).expect("rectangular CSV")
}

#[test]
fn span_tree_nests_across_worker_threads() {
    for workers in [1, 4] {
        let engine = Engine::with_config(EngineConfig {
            workers,
            telemetry: true,
            ..EngineConfig::default()
        });
        let report = engine.clean_table(&players_table());
        let profile = report.telemetry.as_ref().expect("telemetry enabled");

        let root = telemetry::find_span(&profile.spans, "engine.clean_batch")
            .unwrap_or_else(|| panic!("batch root span missing (workers={workers})"));
        let column = root
            .child("engine.clean_column")
            .unwrap_or_else(|| panic!("column spans not grafted under root (workers={workers})"));
        // Both cleaned columns' task spans folded into one aggregate node,
        // each carrying the pipeline stages beneath it.
        assert_eq!(column.count, 2, "workers={workers}");
        for stage in [
            stages::MASK,
            stages::PROFILE,
            stages::DETECT,
            stages::REPAIR,
        ] {
            let node = column
                .child(stage)
                .unwrap_or_else(|| panic!("{stage} missing under clean_column"));
            assert_eq!(node.count, 2, "{stage} once per column, workers={workers}");
            assert!(node.total_ns > 0, "{stage} must accumulate time");
        }
        // Scheduling spans stay siblings of the tasks, not children.
        assert!(root.child("engine.fingerprint").is_some());
        assert!(root.child("engine.open_sessions").is_some());
        assert!(column.child("engine.fingerprint").is_none());

        // The merged frame carries both worker-side and batch-side metrics.
        let m = &profile.metrics;
        assert_eq!(m.counters.get("engine.units"), Some(&2));
        assert_eq!(m.counters.get("engine.cache_outcome.miss"), Some(&2));
        assert_eq!(m.histograms["engine.column_latency"].count(), 2);
    }
}

#[test]
fn telemetry_off_records_nothing() {
    let engine = Engine::with_config(EngineConfig::default());
    let report = engine.clean_table(&players_table());
    assert!(report.telemetry.is_none());
    assert!(engine.metrics().snapshot().is_empty());
}

#[test]
fn stream_records_per_chunk_metrics() {
    let rows: Vec<Vec<String>> = ["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q32001"]
        .iter()
        .map(|v| vec![v.to_string()])
        .collect();
    let mut cleaner = StreamCleaner::new(
        &["Quarter".to_string()],
        StreamConfig {
            workers: 1,
            window_rows: 0,
            telemetry: true,
        },
    );
    let first = cleaner.push_rows(&rows);
    let second = cleaner.push_rows(&rows);
    assert!(first.elapsed.as_nanos() > 0 && second.elapsed.as_nanos() > 0);
    assert!(second.report.telemetry.is_some());

    let frame = cleaner.engine().metrics().snapshot();
    assert_eq!(frame.counters.get("stream.chunks"), Some(&2));
    assert_eq!(frame.counters.get("stream.rows"), Some(&10));
    assert_eq!(frame.counters.get("stream.repairs"), Some(&2));
    assert_eq!(frame.histograms["stream.chunk_latency"].count(), 2);
    assert!(frame.gauges.contains_key("stream.window_resident_rows"));
}

/// Strips every measured quantity, keeping the full key structure: numbers
/// go to zero so only schema drift (a renamed counter, a lost span, a
/// missing stage histogram) can fail the snapshot.
fn canon_schema(json: &Json) -> Json {
    match json {
        Json::Int(_) => Json::Int(0),
        Json::Num(_) => Json::Num(0.0),
        Json::Arr(items) => Json::Arr(items.iter().map(canon_schema).collect()),
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(k, v)| (k.clone(), canon_schema(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

#[test]
fn metrics_json_schema_snapshot() {
    // Single worker: tasks run inline in unit order, so the span tree and
    // every key set are fully deterministic.
    let text = std::fs::read_to_string(repo_path("tests/fixtures/players.csv")).expect("fixture");
    let (parsed, ingest) = telemetry::collect(true, || io::parse_csv(&text));
    let table = parsed.expect("rectangular CSV");
    let engine = Engine::with_config(EngineConfig {
        workers: 1,
        telemetry: true,
        ..EngineConfig::default()
    });
    let report = engine.clean_table(&table);

    let mut profile = ingest.unwrap_or_default();
    profile.merge(report.telemetry.as_ref().expect("telemetry enabled"));

    // All six pipeline stages must be present in the exported histograms
    // even when the clean never reached one of them.
    for stage in stages::ALL {
        assert!(
            profile.metrics.histograms.contains_key(stage),
            "{stage} missing from exported histograms"
        );
    }

    let rendered = canon_schema(&telemetry_json(&profile)).render_pretty();
    let golden_path = repo_path("tests/snapshots/telemetry_metrics.json");
    if std::env::var("UPDATE_SNAPSHOTS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_path.parent().expect("snapshot dir")).expect("mkdir");
        std::fs::write(&golden_path, &rendered)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", golden_path.display()));
        eprintln!("updated {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {}: {e}\n(run `UPDATE_SNAPSHOTS=1 cargo test --test telemetry` \
             to create it)",
            golden_path.display()
        )
    });
    if rendered != golden {
        let diff_at = rendered
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| rendered.lines().count().min(golden.lines().count()));
        panic!(
            "telemetry schema drift (first differing line {}):\n  got:  {}\n  want: {}\n\
             \nIf intentional, regenerate with `UPDATE_SNAPSHOTS=1 cargo test --test telemetry` \
             and review the diff.",
            diff_at + 1,
            rendered.lines().nth(diff_at).unwrap_or("<eof>"),
            golden.lines().nth(diff_at).unwrap_or("<eof>"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Telemetry must be pure observation: the same table cleans to
    /// byte-identical output with recording on and off.
    #[test]
    fn enabled_vs_disabled_output_is_byte_identical(
        values in prop::collection::vec(
            prop_oneof![
                "Q[1-4]-20[0-9]{2}",
                "Q[1-4]-20[0-9]{2}",
                "Q[1-4]-20[0-9]{2}",
                "Q[1-4]-20[0-9]{2}",
                "Q[1-4]20[0-9]{2}",
                "[a-z]{2}_[0-9]{3}",
            ],
            3..24,
        ),
    ) {
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let table = Table::new(vec![Column::from_texts("Quarter", &refs)]);

        let plain = Engine::with_config(EngineConfig { workers: 2, ..EngineConfig::default() });
        let instrumented = Engine::with_config(EngineConfig {
            workers: 2,
            telemetry: true,
            ..EngineConfig::default()
        });
        let a = plain.clean_table(&table);
        let b = instrumented.clean_table(&table);

        prop_assert!(a.telemetry.is_none());
        prop_assert!(b.telemetry.is_some());
        prop_assert_eq!(
            format!("{:?}", a.table_report()),
            format!("{:?}", b.table_report())
        );
        let csv_a = io::to_csv(&Engine::apply(&table, &a.table_report()));
        let csv_b = io::to_csv(&Engine::apply(&table, &b.table_report()));
        prop_assert_eq!(csv_a, csv_b);
    }
}

#[test]
fn default_profile_is_empty() {
    assert!(TaskProfile::default().is_empty());
}
