//! Integration tests for the semantic abstraction layer (paper §3.2):
//! prompt round-trips, masking granularity, form normalization, and the
//! abstraction-dependent behaviours of the full pipeline.

use datavinci::prelude::*;
use datavinci::semantic::{
    detect_column_type, Gazetteer, GazetteerLlm, LanguageModel, SemanticAbstractor, SemanticType,
};

fn abstract_col(values: &[&str]) -> datavinci::semantic::AbstractedColumn {
    let a = SemanticAbstractor::new(GazetteerLlm::new());
    a.abstract_column(
        "col",
        &values.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    )
}

/// §3.2: masking happens at the granularity of the predefined types — a
/// composite value is never masked wholesale.
#[test]
fn quarters_are_never_masked_wholesale() {
    let c = abstract_col(&["Q4-2002", "Q3-2002", "Q32001"]);
    assert!(!c.has_masks());
    for v in &c.values {
        assert!(v.occurrences.is_empty());
    }
}

/// Figure 3's second example: dotted abbreviations repair inside the mask.
#[test]
fn dotted_country_normalizes_to_column_form() {
    let c = abstract_col(&["US-1", "u.k.-392", "DE-7", "FR-9"]);
    let occ = &c.values[1].occurrences;
    assert_eq!(occ.len(), 1);
    assert_eq!(occ[0].semantic_type, SemanticType::Country);
    assert_eq!(occ[0].suggestion, "GB"); // ISO-2 column majority
}

/// Whole-column context: a type mentioned by only one value is not masked.
#[test]
fn low_support_types_stay_literal() {
    let c = abstract_col(&["x-1", "y-2", "Boston", "z-4", "w-5", "v-6"]);
    assert!(!c.has_masks());
}

/// The mock LLM honours the exact prompt protocol: one output line per
/// input value, in order.
#[test]
fn llm_respects_prompt_protocol() {
    use datavinci::semantic::prompt::{build_prompts, parse_prompt_values};
    let llm = GazetteerLlm::new();
    let values: Vec<String> = (0..50)
        .map(|i| format!("{}-{}", if i % 2 == 0 { "US" } else { "FR" }, i))
        .collect();
    let mask_types = vec![SemanticType::Country];
    let batches = build_prompts("Code", &values, &mask_types);
    for batch in batches {
        let echoed = parse_prompt_values(&batch.prompt);
        let response = llm.complete(&batch.prompt);
        assert_eq!(response.lines().count(), echoed.len());
    }
}

/// Delimiter corruption inside an entity is recovered by the whole-value
/// strategy (`Flo_rida → Florida`) and drives an exact pipeline repair.
#[test]
fn delimiter_split_entity_repaired_end_to_end() {
    let table = Table::new(vec![Column::from_texts(
        "State",
        &["Texas", "Oregon", "Kansas", "Flo_rida", "Maine"],
    )]);
    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 0);
    let fix = report.repairs.iter().find(|r| r.original == "Flo_rida");
    assert_eq!(
        fix.map(|r| r.repaired.as_str()),
        Some("Florida"),
        "{report:#?}"
    );
}

/// Visual typos inside an entity (`Rh0de Island`) are recovered too.
#[test]
fn visual_typo_entity_repaired_end_to_end() {
    let table = Table::new(vec![Column::from_texts(
        "State",
        &["Texas", "Oregon", "Rh0de Island", "Kansas", "Maine"],
    )]);
    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 0);
    let fix = report.repairs.iter().find(|r| r.original == "Rh0de Island");
    assert_eq!(
        fix.map(|r| r.repaired.as_str()),
        Some("Rhode Island"),
        "{report:#?}"
    );
}

/// Sherlock-sim agrees with the gazetteer across a spread of column types.
#[test]
fn type_detection_across_flavors() {
    let gaz = Gazetteer::new();
    let cases: Vec<(Vec<&str>, Option<SemanticType>)> = vec![
        (vec!["Boston", "Miami", "Denver"], Some(SemanticType::City)),
        (
            vec!["red", "blue", "green", "navy"],
            Some(SemanticType::Color),
        ),
        (vec!["Jan", "Feb", "Mar", "Apr"], Some(SemanticType::Month)),
        (vec!["Q1-22", "Q2-22"], None),
        (vec!["1024", "2048"], None),
    ];
    for (values, expected) in cases {
        let vals: Vec<String> = values.iter().map(|s| s.to_string()).collect();
        let got = detect_column_type(&vals, &gaz, 0.5).map(|d| d.semantic_type);
        assert_eq!(got, expected, "{values:?}");
    }
}

/// The Limited ablation re-uses original substrings: `usa` stays `usa`.
#[test]
fn limited_mode_never_repairs_in_mask() {
    use datavinci::core::{DataVinciConfig, SemanticMode};
    let table = Table::new(vec![Column::from_texts(
        "Country",
        &["US-1", "FR-2", "usa-3", "DE-4"],
    )]);
    let limited = DataVinci::with_config(DataVinciConfig {
        semantics: SemanticMode::Limited,
        ..Default::default()
    });
    let report = limited.clean_column(&table, 0);
    // No in-mask repair → `usa` never normalizes to US in Limited mode.
    assert!(
        report.repairs.iter().all(|r| r.repaired != "US-3"),
        "{report:#?}"
    );

    let full = DataVinci::new();
    let report = full.clean_column(&table, 0);
    assert!(
        report.repairs.iter().any(|r| r.repaired == "US-3"),
        "{report:#?}"
    );
}
