//! Golden-snapshot tests: the engine's full report on committed fixture
//! CSVs must stay byte-identical across refactors of the matching spine
//! (NFA → DFA, cache changes, parallelism changes).
//!
//! Each fixture in `tests/fixtures/*.csv` has a checked-in golden JSON in
//! `tests/snapshots/`. The snapshot is a canonical, timing-free rendering
//! of the whole [`TableReport`] — patterns, detections, repairs, and every
//! ranked candidate with its score — so any behavioural drift shows up as
//! a diff, not just changed headline counts.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test report_snapshots
//! ```

use std::path::{Path, PathBuf};

use datavinci::core::TableReport;
use datavinci::engine::json::Json;
use datavinci::engine::{Engine, EngineConfig};
use datavinci::table::io;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Canonical JSON for a table report: everything deterministic, nothing
/// timing- or machine-dependent.
fn canon_report(report: &TableReport) -> Json {
    let columns: Vec<Json> = report
        .columns
        .iter()
        .map(|c| {
            Json::obj()
                .field("col", Json::Int(c.col as i64))
                .field("n_rows", Json::Int(c.n_rows as i64))
                .field(
                    "significant_patterns",
                    Json::Arr(c.significant_patterns.iter().map(Json::str).collect()),
                )
                .field("fire_rate", Json::Num(c.fire_rate()))
                .field(
                    "detections",
                    Json::Arr(
                        c.detections
                            .iter()
                            .map(|d| {
                                Json::obj()
                                    .field("row", Json::Int(d.row as i64))
                                    .field("value", Json::str(&d.value))
                            })
                            .collect(),
                    ),
                )
                .field(
                    "repairs",
                    Json::Arr(
                        c.repairs
                            .iter()
                            .map(|r| {
                                Json::obj()
                                    .field("row", Json::Int(r.row as i64))
                                    .field("original", Json::str(&r.original))
                                    .field("repaired", Json::str(&r.repaired))
                                    .field(
                                        "candidates",
                                        Json::Arr(
                                            r.candidates
                                                .iter()
                                                .map(|cand| {
                                                    Json::obj()
                                                        .field(
                                                            "repaired",
                                                            Json::str(&cand.repaired),
                                                        )
                                                        .field("cost", Json::Int(cand.cost as i64))
                                                        .field("score", Json::Num(cand.score))
                                                        .field(
                                                            "provenance",
                                                            Json::str(&cand.provenance),
                                                        )
                                                })
                                                .collect(),
                                        ),
                                    )
                            })
                            .collect(),
                    ),
                )
        })
        .collect();
    Json::obj().field("columns", Json::Arr(columns))
}

fn check_snapshot(fixture: &str) {
    let csv_path = repo_path(&format!("tests/fixtures/{fixture}.csv"));
    let golden_path = repo_path(&format!("tests/snapshots/{fixture}.json"));

    let text = std::fs::read_to_string(&csv_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", csv_path.display()));
    let table = io::parse_csv(&text).expect("fixture must be rectangular CSV");

    // The engine (parallel, cached) must produce the exact sequential
    // report; snapshotting through it locks both layers at once.
    let engine = Engine::with_config(EngineConfig {
        workers: 2,
        cache: true,
        ..EngineConfig::default()
    });
    let report = engine.clean_table(&table).table_report();
    let rendered = canon_report(&report).render_pretty();

    if std::env::var("UPDATE_SNAPSHOTS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_path.parent().expect("snapshot dir")).expect("mkdir");
        std::fs::write(&golden_path, &rendered)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", golden_path.display()));
        eprintln!("updated {}", golden_path.display());
        return;
    }

    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {}: {e}\n(run `UPDATE_SNAPSHOTS=1 cargo test --test \
             report_snapshots` to create it)",
            golden_path.display()
        )
    });
    if rendered != golden {
        let diff_at = rendered
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| rendered.lines().count().min(golden.lines().count()));
        panic!(
            "snapshot mismatch for {fixture} (first differing line {}):\n  got:  {}\n  want: {}\n\
             \nIf the change is intentional, regenerate with \
             `UPDATE_SNAPSHOTS=1 cargo test --test report_snapshots` and review the diff.",
            diff_at + 1,
            rendered.lines().nth(diff_at).unwrap_or("<eof>"),
            golden.lines().nth(diff_at).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn players_fixture_snapshot() {
    check_snapshot("players");
}

#[test]
fn quarters_fixture_snapshot() {
    check_snapshot("quarters");
}

#[test]
fn cities_fixture_snapshot() {
    check_snapshot("cities");
}

#[test]
fn duplicates_fixture_snapshot() {
    // Duplicate-heavy fixture: repeated erroneous values (usa_837 ×3,
    // Q32001 ×3) exercise the repair planner's group sharing; the snapshot
    // locks every duplicated row's repair and candidate scores.
    check_snapshot("duplicates");
}
