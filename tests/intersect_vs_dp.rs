//! Differential suite: the intersection repair strategy must be
//! byte-identical to the repair-DP planner, and the product construction
//! must be *complete* — every repair within the distance cap is
//! enumerated, so the DP can never find a repair the product misses.
//!
//! `RepairStrategy::Intersect` routes each distinct error value's minimal
//! edit search through the pattern × edit-automaton product
//! (`datavinci::regex::intersect`) with iterative deepening and a DP
//! fallback; `RepairStrategy::Planner` is the unbounded-DP reference it
//! must reproduce exactly. Every comparison formats both
//! [`datavinci::core::TableReport`]s (patterns, detections, repairs, every
//! ranked candidate with its score) and requires exact equality — across
//! the corpus benchmarks, edge columns, every ablation (including starved
//! product budgets that force the fallback), and a large generated sweep.
//! Well over 1 000 column comparisons run per invocation.
//!
//! The proptest block checks the two automaton-level guarantees the report
//! identity rests on: the product's minimal program *is* the DP's program
//! (equal distance, identical actions), and enumeration within distance
//! *k* contains every repair — in particular the DP's.

use datavinci::core::{
    minimal_edit_program, minimal_edit_program_product, program_from_path, DataVinci,
    DataVinciConfig, IntersectConfig, RepairStrategy,
};
use datavinci::corpus::{
    duplicate_rows, excel_like, synthetic_errors, wikipedia_like, Flavor, NoiseModel, Scale,
    TableSpec,
};
use datavinci::regex::{
    enumerate_within, intersect_minimal, CharClass, CompiledPattern, MaskedString, Pattern,
    ProductConfig, ProductOutcome,
};
use datavinci::table::{Column, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Compares intersect vs DP-planner cleans of `table` under `cfg`,
/// returning the number of cleaned columns (comparison cases).
fn assert_identical(table: &Table, cfg: &DataVinciConfig, context: &str) -> usize {
    let planner = DataVinci::with_config(DataVinciConfig {
        repair_strategy: RepairStrategy::Planner,
        ..cfg.clone()
    });
    let intersect = DataVinci::with_config(DataVinciConfig {
        repair_strategy: RepairStrategy::Intersect,
        ..cfg.clone()
    });
    let a = planner.clean_table(table);
    let b = intersect.clean_table(table);
    assert_eq!(
        format!("{a:#?}"),
        format!("{b:#?}"),
        "intersect strategy diverged from the DP planner: {context}"
    );
    a.columns.len()
}

#[test]
fn corpus_benchmarks_are_identical() {
    let scale = Scale::smoke();
    let mut cases = 0usize;
    for (name, bench) in [
        ("wikipedia", wikipedia_like(71, scale)),
        ("excel", excel_like(72, scale)),
        ("synthetic", synthetic_errors(73, scale)),
    ] {
        for (i, t) in bench.tables.iter().enumerate() {
            cases += assert_identical(
                &t.dirty,
                &DataVinciConfig::default(),
                &format!("{name} table {i}"),
            );
        }
    }
    assert!(cases >= 60, "expected a broad corpus sweep, got {cases}");
}

#[test]
fn edge_columns_are_identical() {
    let columns: Vec<(&str, Vec<String>)> = vec![
        ("empty", Vec::new()),
        ("blank rows", vec![String::new(); 6]),
        ("single row", vec!["a-1".into()]),
        (
            "all duplicate",
            std::iter::repeat_n("Q3-2001".to_string(), 24).collect(),
        ),
        (
            "all duplicate errors",
            (0..20)
                .map(|i| {
                    if i < 16 {
                        format!("a-{i}")
                    } else {
                        "X9".into()
                    }
                })
                .collect(),
        ),
        (
            "all distinct",
            (0..24).map(|i| format!("id-{i:03}")).collect(),
        ),
        (
            "semantic duplicates",
            [
                "US-1", "US-1", "FR-2", "usa_3", "usa_3", "US-1", "DE-4", "usa_3",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ),
        (
            "mixed kinds",
            ["1", "2", "x-1", "x-2", "x9", "x9", "", "TRUE"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
    ];
    for (name, values) in columns {
        let table = Table::new(vec![Column::parse(
            "c",
            &values.iter().map(String::as_str).collect::<Vec<_>>(),
        )]);
        assert_identical(&table, &DataVinciConfig::default(), name);
    }
}

#[test]
fn ablation_and_starved_budget_configs_are_identical() {
    // Every ablation runs both strategies over the same duplicate-heavy
    // table — including product configurations starved enough to force the
    // fallback on every value, which must change nothing.
    let mut rng = StdRng::seed_from_u64(99);
    let spec = TableSpec::new(80, vec![Flavor::PlayerWithCategory, Flavor::Quarter]);
    let clean = spec.generate(&mut rng);
    let noise = NoiseModel { cell_prob: 0.2 };
    let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
    let table = duplicate_rows(&mut rng, &dirty, 0.8);
    for (name, cfg) in [
        ("default", DataVinciConfig::default()),
        ("no semantics", DataVinciConfig::ablation_no_semantics()),
        (
            "limited semantics",
            DataVinciConfig::ablation_limited_semantics(),
        ),
        (
            "enumerated concretization",
            DataVinciConfig::ablation_no_learned_concretization(),
        ),
        (
            "edit distance ranking",
            DataVinciConfig::ablation_edit_distance_ranking(),
        ),
        (
            "starved delta",
            DataVinciConfig {
                delta: 0.95,
                ..DataVinciConfig::default()
            },
        ),
        (
            "starved state budget (all fallback)",
            DataVinciConfig {
                intersect: IntersectConfig {
                    state_budget: 1,
                    ..IntersectConfig::default()
                },
                ..DataVinciConfig::default()
            },
        ),
        (
            "tiny distance ceiling",
            DataVinciConfig {
                intersect: IntersectConfig {
                    max_distance: 1,
                    ..IntersectConfig::default()
                },
                ..DataVinciConfig::default()
            },
        ),
    ] {
        assert_identical(&table, &cfg, name);
    }
}

#[test]
fn generated_duplicate_sweep_is_identical() {
    // The bulk of the >1k cases: many small single-flavor tables across
    // duplication and noise regimes, seeded deterministically (the same
    // sweep shape `repair_plan_vs_rowwise` uses, different seed).
    let flavor_pool = [
        Flavor::Quarter,
        Flavor::PrefixedId,
        Flavor::City,
        Flavor::CountryCode,
        Flavor::Color,
        Flavor::ProductCode,
        Flavor::PlayerWithCategory,
        Flavor::Rating,
    ];
    let mut rng = StdRng::seed_from_u64(2525);
    let mut cases = 0usize;
    for i in 0..900 {
        let flavor = flavor_pool[i % flavor_pool.len()];
        let rows = 8 + (i % 5) * 4;
        let duplication = [0.0, 0.5, 0.9][i % 3];
        let spec = TableSpec::new(rows, vec![flavor]);
        let clean = spec.generate(&mut rng);
        let noise = NoiseModel {
            cell_prob: [0.05, 0.2, 0.45][(i / 3) % 3],
        };
        let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
        let table = if duplication > 0.0 {
            duplicate_rows(&mut rng, &dirty, duplication)
        } else {
            dirty
        };
        cases += assert_identical(
            &table,
            &DataVinciConfig::default(),
            &format!("sweep case {i} ({flavor:?}, dup {duplication})"),
        );
    }
    assert!(
        cases >= 900,
        "expected at least 900 sweep column comparisons, got {cases}"
    );
}

#[test]
fn total_case_volume_exceeds_one_thousand() {
    // Recounts the cheap-to-count portion of the suites above so a future
    // downsizing fails loudly instead of silently shrinking coverage.
    let scale = Scale::smoke();
    let min_text = DataVinciConfig::default().min_text_fraction;
    let mut columns = 0usize;
    for bench in [
        wikipedia_like(71, scale),
        excel_like(72, scale),
        synthetic_errors(73, scale),
    ] {
        for t in &bench.tables {
            columns += (0..t.dirty.n_cols())
                .filter(|&c| {
                    t.dirty
                        .column(c)
                        .is_some_and(|col| col.text_fraction() >= min_text)
                })
                .count();
        }
    }
    let sweep_min = 900;
    assert!(
        columns + sweep_min >= 1000,
        "differential volume dropped below 1k cases: {columns} corpus + {sweep_min} sweep"
    );
}

// ---------------------------------------------------------------------------
// Automaton-level properties: minimality identity and completeness.
// ---------------------------------------------------------------------------

/// A small pool of patterns exercising every DAG label kind (literals,
/// classes, quantifiers, disjunctions).
fn pattern_pool() -> Vec<Pattern> {
    vec![
        Pattern::lit("Q3-2001"),
        Pattern::concat([
            Pattern::lit("Q"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("-"),
            Pattern::class_n(CharClass::Digit, 4),
        ]),
        Pattern::concat([
            Pattern::class_plus(CharClass::Upper),
            Pattern::lit("-"),
            Pattern::class_plus(CharClass::Digit),
            Pattern::lit("-"),
            Pattern::disj(["PRO", "QUA", "CAT"]),
        ]),
        Pattern::concat([
            Pattern::disj(["ON", "OFF", "AUTO"]),
            Pattern::opt(Pattern::lit("!")),
        ]),
        Pattern::plus(Pattern::Class(CharClass::Lower)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The product's minimal program equals the DP's — same minimal
    /// distance, identical ranked actions — and capping the distance just
    /// below it must reject.
    #[test]
    fn product_minimal_program_equals_dp(
        pi in 0usize..5,
        value in "[a-zA-Z0-9.\\- ]{0,10}",
    ) {
        let p = &pattern_pool()[pi];
        let compiled = CompiledPattern::compile(p.clone());
        let v: MaskedString = MaskedString::from_plain(&value);
        let dag = compiled.dag_for_len(v.len());
        let dp = minimal_edit_program(&dag, &v);
        let (product, stats) = minimal_edit_program_product(&dag, &v, &IntersectConfig::default());
        prop_assert_eq!(format!("{dp:?}"), format!("{product:?}"));
        prop_assert!(!stats.fell_back, "default budgets must not fall back on small values");
        if let Some(program) = &product {
            if program.cost > 0 {
                let tight = ProductConfig {
                    max_distance: program.cost - 1,
                    ..ProductConfig::default()
                };
                prop_assert_eq!(
                    intersect_minimal(&dag, &v, &tight).0,
                    ProductOutcome::DistanceExceeded
                );
            }
        }
    }

    /// Completeness: enumeration within k = minimal + 1 is exhaustive —
    /// it contains the DP's program, its cheapest path costs exactly the
    /// minimal distance, and no path exceeds the cap. The DP cannot find
    /// a repair the product misses.
    #[test]
    fn enumeration_within_k_contains_every_repair(
        pi in 0usize..5,
        value in "[a-zA-Z0-9.\\- ]{0,6}",
    ) {
        let p = &pattern_pool()[pi];
        let compiled = CompiledPattern::compile(p.clone());
        let v: MaskedString = MaskedString::from_plain(&value);
        let dag = compiled.dag_for_len(v.len());
        let Some(dp) = minimal_edit_program(&dag, &v) else {
            // No accepting path at all: the product must agree at any cap.
            prop_assert!(enumerate_within(&dag, &v, 16, 100_000).paths.is_empty());
            return Ok(());
        };
        let k = dp.cost + 1;
        let all = enumerate_within(&dag, &v, k, 200_000);
        prop_assert!(!all.truncated, "exhaustive enumeration expected at these sizes");
        prop_assert!(!all.paths.is_empty());
        prop_assert_eq!(
            all.paths.iter().map(|path| path.cost).min(),
            Some(dp.cost),
            "cheapest enumerated repair must be the minimal distance"
        );
        prop_assert!(all.paths.iter().all(|path| path.cost <= k));
        // The DP's exact program appears among the enumerated repairs.
        let dp_fmt = format!("{dp:?}");
        prop_assert!(
            all.paths
                .iter()
                .any(|path| format!("{:?}", program_from_path(&dag, path)) == dp_fmt),
            "DP found a repair the product did not enumerate"
        );
    }
}
