//! Cross-system integration: every evaluated system runs over generated
//! benchmarks without panicking, deterministically, and with the paper's
//! qualitative orderings intact.

use std::collections::HashMap;

use datavinci::baselines::{
    AutoDetectLike, GptSim, HoloCleanLike, PottersWheelLike, RahaLike, T5Sim, WithRepairHead, Wmrr,
};
use datavinci::core::{CleaningSystem, DataVinci};
use datavinci::corpus::{synthetic_errors, wikipedia_like, Scale};
use datavinci::prelude::*;

fn small_scale() -> Scale {
    Scale {
        n_tables: 5,
        row_divisor: 10,
    }
}

/// All systems (with whatever context they need) against one benchmark:
/// total functions, sane outputs.
#[test]
fn every_system_runs_on_every_column() {
    let bench = wikipedia_like(77, small_scale());
    let clean_corpus: Vec<Table> = bench.tables.iter().map(|t| t.clean.clone()).collect();
    let autodetect = AutoDetectLike::train(&clean_corpus);
    let t5 = T5Sim::train([("c4t", "cat"), ("d0g", "dog"), ("cat", "cat")]);

    for bt in &bench.tables {
        let mut labels: HashMap<usize, Vec<usize>> = HashMap::new();
        for cell in &bt.corrupted {
            labels.entry(cell.col).or_default().push(cell.row);
        }
        let systems: Vec<Box<dyn CleaningSystem>> = vec![
            Box::new(DataVinci::new()),
            Box::new(Wmrr::new()),
            Box::new(HoloCleanLike::new()),
            Box::new(WithRepairHead::new(
                RahaLike::with_labels(labels),
                "Raha + GPT-3.5",
            )),
            Box::new(WithRepairHead::new(&autodetect, "Auto-Detect + GPT-3.5")),
            Box::new(WithRepairHead::new(
                PottersWheelLike::new(),
                "Potters-Wheel + GPT-3.5",
            )),
            Box::new(&t5),
            Box::new(GptSim::new()),
        ];
        for system in &systems {
            for col in 0..bt.dirty.n_cols() {
                let detections = system.detect(&bt.dirty, col);
                let repairs = system.repair(&bt.dirty, col);
                let n = bt.dirty.n_rows();
                for d in &detections {
                    assert!(d.row < n, "{} out-of-range detection", system.name());
                }
                for r in &repairs {
                    assert!(r.row < n, "{} out-of-range repair", system.name());
                    assert_eq!(
                        bt.dirty.cell(CellRef::new(col, r.row)).unwrap().render(),
                        r.original,
                        "{} original mismatch",
                        system.name()
                    );
                }
            }
        }
    }
}

/// Re-running a system on the same input yields identical output.
#[test]
fn systems_are_deterministic() {
    let bench = synthetic_errors(55, small_scale());
    let dv = DataVinci::new();
    let gpt = GptSim::new();
    for bt in bench.tables.iter().take(3) {
        for col in 0..bt.dirty.n_cols() {
            if bt.dirty.column(col).unwrap().text_fraction() < 0.5 {
                continue;
            }
            let a = dv.repair(&bt.dirty, col);
            let b = dv.repair(&bt.dirty, col);
            assert_eq!(a, b, "DataVinci must be deterministic");
            assert_eq!(gpt.repair(&bt.dirty, col), gpt.repair(&bt.dirty, col));
        }
    }
}

/// The paper's §5.2 framing: DataVinci's repairs must include mixed
/// syntactic+semantic fixes that regex-only and KB-only systems miss.
#[test]
fn datavinci_covers_cases_baselines_miss() {
    let table = Table::new(vec![Column::from_texts(
        "County ID",
        &[
            "Alabama_231",
            "Kansas_721",
            "Texas_201",
            "Oregon_246",
            "Nevad210",
        ],
    )]);
    let dv = DataVinci::new();
    let wmrr = Wmrr::new();
    let gpt = GptSim::new();

    let dv_fix = dv
        .repair(&table, 0)
        .into_iter()
        .find(|r| r.original == "Nevad210")
        .map(|r| r.repaired);
    assert_eq!(dv_fix.as_deref(), Some("Nevada_210"));

    // WMRR (no semantics) cannot produce the combined repair.
    let wmrr_fix = wmrr
        .repair(&table, 0)
        .into_iter()
        .find(|r| r.original == "Nevad210")
        .map(|r| r.repaired);
    assert_ne!(wmrr_fix.as_deref(), Some("Nevada_210"));

    // GPT-sim may fix the spelling but not reconstruct the delimiter+id
    // structure exactly.
    let gpt_fix = gpt
        .repair(&table, 0)
        .into_iter()
        .find(|r| r.original == "Nevad210")
        .map(|r| r.repaired);
    assert_ne!(gpt_fix.as_deref(), Some("Nevada_210"));
}

/// Raha's label budget protocol: labels beyond the first five are unused.
#[test]
fn raha_label_budget_respected() {
    use datavinci::baselines::LABEL_BUDGET;
    let mut many = HashMap::new();
    many.insert(0usize, (0..50).collect::<Vec<usize>>());
    let _ = RahaLike::with_labels(many);
    assert_eq!(LABEL_BUDGET, 5);
}

/// Detection-only systems return identity repairs; their repair head
/// changes that.
#[test]
fn repair_head_changes_detection_only_output() {
    let table = Table::new(vec![Column::from_texts(
        "status",
        &[
            "Active", "Active", "Active", "Active", "Active", "Inactive", "Inactive", "Inactive",
            "Actve",
        ],
    )]);
    let pw = PottersWheelLike::new();
    let bare = pw.repair(&table, 0);
    assert!(bare.iter().all(|r| r.original == r.repaired));

    let headed = WithRepairHead::new(PottersWheelLike::new(), "PW + head");
    let fixed = headed.repair(&table, 0);
    let target = fixed.iter().find(|r| r.original == "Actve");
    if let Some(r) = target {
        assert_eq!(r.repaired, "Active");
    }
}
