//! End-to-end benchmark assertions: the paper's headline *shapes* must hold
//! on small seeded benchmarks (absolute numbers are substrate-dependent and
//! recorded in EXPERIMENTS.md instead).
//!
//! All tests share one trained [`Harness`] (training corpora + T5 pairs are
//! identical across them), and the harness itself sweeps benchmark tables
//! through the engine's parallel path with cached DataVinci cleans — both
//! matter for keeping this suite's debug-mode wall time in budget.

use std::sync::OnceLock;

use datavinci_bench::{ExecMode, Harness, SystemKind};
use datavinci_corpus::{formula_benchmark, synthetic_errors, Scale};

fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| Harness::new(17))
}

fn scale() -> Scale {
    Scale {
        n_tables: 8,
        row_divisor: 8,
    }
}

/// Table 5/6 shape: DataVinci has the best synthetic F1; T5 has the highest
/// fire rate and lowest precision.
#[test]
fn synthetic_shape_datavinci_wins_t5_fires() {
    let harness = harness();
    let bench = synthetic_errors(1234, scale());

    let dv = harness.run_detection(SystemKind::DataVinci, &bench);
    let t5 = harness.run_detection(SystemKind::T5, &bench);
    let wmrr = harness.run_detection(SystemKind::Wmrr, &bench);
    let gpt = harness.run_detection(SystemKind::Gpt, &bench);

    assert!(dv.f1() > t5.f1(), "dv {dv:?} vs t5 {t5:?}");
    assert!(dv.f1() > wmrr.f1(), "dv {dv:?} vs wmrr {wmrr:?}");
    assert!(dv.f1() > gpt.f1(), "dv {dv:?} vs gpt {gpt:?}");
    assert!(
        t5.fire_rate() > dv.fire_rate(),
        "t5 fire {t5:?} vs dv {dv:?}"
    );
    assert!(t5.precision() < dv.precision());
    // DataVinci catches a substantial share of injected errors.
    assert!(dv.recall() > 50.0, "{dv:?}");
}

/// Table 9 shape: full DataVinci beats its no-semantics and no-learned-
/// concretization ablations on synthetic repair F1.
#[test]
fn ablations_are_worse_than_full() {
    let harness = harness();
    let bench = synthetic_errors(99, scale());

    let full = harness.run_repair(SystemKind::DataVinci, &bench);
    let no_sem = harness.run_repair(SystemKind::DvNoSemantics, &bench);
    let no_learned = harness.run_repair(SystemKind::DvNoLearnedConcretization, &bench);

    assert!(
        full.recall() >= no_sem.recall(),
        "full {full:?} vs no-sem {no_sem:?}"
    );
    // The enumerate-and-rank fallback is strong on small samples (the
    // ranker's closest-value property acts as an implicit constraint), so
    // allow small-sample noise; the paper-scale gap is recorded by the
    // table9 harness.
    assert!(
        full.f1() + 3.0 >= no_learned.f1(),
        "full {full:?} vs no-learned {no_learned:?}"
    );
}

/// Table 8 shape: exec-guided > unsupervised > no-repair on both metrics.
#[test]
fn execution_guidance_ordering() {
    let harness = harness();
    let cases = formula_benchmark(4321, 6, 3);

    let none = harness.run_execution(ExecMode::NoRepair, &cases);
    let unsup = harness.run_execution(ExecMode::System(SystemKind::DataVinci), &cases);
    let guided = harness.run_execution(ExecMode::DataVinciExecGuided, &cases);

    assert_eq!(none.formula_success, 0.0);
    assert!(unsup.cell_success >= none.cell_success);
    assert!(
        guided.formula_success >= unsup.formula_success,
        "guided {guided:?} vs unsup {unsup:?}"
    );
    assert!(guided.cell_success > none.cell_success);
    assert!(guided.formula_success > 40.0, "{guided:?}");
}

/// Repair metrics are internally consistent.
#[test]
fn metric_consistency() {
    let harness = harness();
    let bench = synthetic_errors(7, scale());
    for kind in SystemKind::main_lineup() {
        let d = harness.run_detection(kind, &bench);
        let r = harness.run_repair(kind, &bench);
        assert!(d.precision() <= 100.0 && d.recall() <= 100.0, "{kind:?}");
        assert!(r.certain_correct <= r.possible_correct, "{kind:?}");
        assert!(r.possible_correct <= r.suggested, "{kind:?}");
        assert!(r.correct_on_true_errors <= r.on_true_errors, "{kind:?}");
    }
}
