//! Differential suite: the distinct-value repair planner must be
//! byte-identical to the legacy per-row repair path.
//!
//! `RepairStrategy::Planner` (the default) groups duplicate error values
//! and shares edit programs, concretization, and ranking across each
//! group; `RepairStrategy::RowWise` is the reference loop it replaced.
//! Every comparison here formats both [`datavinci::core::TableReport`]s
//! (patterns, detections, repairs, every ranked candidate with its score)
//! and requires exact equality — across the corpus benchmarks, starved and
//! edge configurations, every ablation, and a large generated sweep of
//! duplicate-heavy columns. Well over 1 000 column comparisons run per
//! invocation (each suite asserts its own case count).

use datavinci::core::{DataVinci, DataVinciConfig, RepairStrategy};
use datavinci::corpus::{
    duplicate_rows, excel_like, synthetic_errors, wikipedia_like, Flavor, NoiseModel, Scale,
    TableSpec,
};
use datavinci::table::{Column, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Compares planner vs per-row cleans of `table` under `cfg`, returning the
/// number of cleaned columns (comparison cases).
fn assert_identical(table: &Table, cfg: &DataVinciConfig, context: &str) -> usize {
    let planner = DataVinci::with_config(DataVinciConfig {
        repair_strategy: RepairStrategy::Planner,
        ..cfg.clone()
    });
    let rowwise = DataVinci::with_config(DataVinciConfig {
        repair_strategy: RepairStrategy::RowWise,
        ..cfg.clone()
    });
    let a = planner.clean_table(table);
    let b = rowwise.clean_table(table);
    assert_eq!(
        format!("{a:#?}"),
        format!("{b:#?}"),
        "planner diverged from per-row path: {context}"
    );
    a.columns.len()
}

#[test]
fn corpus_benchmarks_are_identical() {
    let scale = Scale::smoke();
    let mut cases = 0usize;
    for (name, bench) in [
        ("wikipedia", wikipedia_like(71, scale)),
        ("excel", excel_like(72, scale)),
        ("synthetic", synthetic_errors(73, scale)),
    ] {
        for (i, t) in bench.tables.iter().enumerate() {
            cases += assert_identical(
                &t.dirty,
                &DataVinciConfig::default(),
                &format!("{name} table {i}"),
            );
        }
    }
    assert!(cases >= 60, "expected a broad corpus sweep, got {cases}");
}

#[test]
fn edge_columns_are_identical() {
    let columns: Vec<(&str, Vec<String>)> = vec![
        ("empty", Vec::new()),
        ("blank rows", vec![String::new(); 6]),
        ("single row", vec!["a-1".into()]),
        (
            "all duplicate",
            std::iter::repeat_n("Q3-2001".to_string(), 24).collect(),
        ),
        (
            "all duplicate errors",
            (0..20)
                .map(|i| {
                    if i < 16 {
                        format!("a-{i}")
                    } else {
                        "X9".into()
                    }
                })
                .collect(),
        ),
        (
            "all distinct",
            (0..24).map(|i| format!("id-{i:03}")).collect(),
        ),
        (
            "semantic duplicates",
            [
                "US-1", "US-1", "FR-2", "usa_3", "usa_3", "US-1", "DE-4", "usa_3",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ),
        (
            "mixed kinds",
            ["1", "2", "x-1", "x-2", "x9", "x9", "", "TRUE"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
    ];
    for (name, values) in columns {
        let table = Table::new(vec![Column::parse(
            "c",
            &values.iter().map(String::as_str).collect::<Vec<_>>(),
        )]);
        assert_identical(&table, &DataVinciConfig::default(), name);
    }
}

#[test]
fn ablation_configs_are_identical() {
    // Every ablation runs both repair strategies over the same
    // duplicate-heavy table: the planner must not depend on any default
    // switch being on.
    let mut rng = StdRng::seed_from_u64(99);
    let spec = TableSpec::new(80, vec![Flavor::PlayerWithCategory, Flavor::Quarter]);
    let clean = spec.generate(&mut rng);
    let noise = NoiseModel { cell_prob: 0.2 };
    let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
    let table = duplicate_rows(&mut rng, &dirty, 0.8);
    for (name, cfg) in [
        ("default", DataVinciConfig::default()),
        ("no semantics", DataVinciConfig::ablation_no_semantics()),
        (
            "limited semantics",
            DataVinciConfig::ablation_limited_semantics(),
        ),
        (
            "enumerated concretization",
            DataVinciConfig::ablation_no_learned_concretization(),
        ),
        (
            "edit distance ranking",
            DataVinciConfig::ablation_edit_distance_ranking(),
        ),
        (
            "starved delta",
            DataVinciConfig {
                delta: 0.95,
                ..DataVinciConfig::default()
            },
        ),
        (
            "permissive delta",
            DataVinciConfig {
                delta: 0.01,
                ..DataVinciConfig::default()
            },
        ),
    ] {
        assert_identical(&table, &cfg, name);
    }
}

#[test]
fn generated_duplicate_sweep_is_identical() {
    // The bulk of the >1k cases: many small single- and two-column tables
    // across duplication regimes (none, moderate, heavy), seeded
    // deterministically.
    let flavor_pool = [
        Flavor::Quarter,
        Flavor::PrefixedId,
        Flavor::City,
        Flavor::CountryCode,
        Flavor::Color,
        Flavor::ProductCode,
        Flavor::PlayerWithCategory,
        Flavor::Rating,
    ];
    let mut rng = StdRng::seed_from_u64(4242);
    let mut cases = 0usize;
    for i in 0..900 {
        let flavor = flavor_pool[i % flavor_pool.len()];
        let rows = 8 + (i % 5) * 4;
        let duplication = [0.0, 0.5, 0.9][i % 3];
        let spec = TableSpec::new(rows, vec![flavor]);
        let clean = spec.generate(&mut rng);
        let noise = NoiseModel {
            cell_prob: [0.05, 0.2, 0.45][(i / 3) % 3],
        };
        let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
        let table = if duplication > 0.0 {
            duplicate_rows(&mut rng, &dirty, duplication)
        } else {
            dirty
        };
        cases += assert_identical(
            &table,
            &DataVinciConfig::default(),
            &format!("sweep case {i} ({flavor:?}, dup {duplication})"),
        );
        // The same dirty content re-cleaned as its own output sanity-checks
        // stability cheaply on a fraction of cases (full idempotence lives
        // in tests/properties.rs).
    }
    assert!(
        cases >= 900,
        "expected at least 900 sweep column comparisons, got {cases}"
    );
}

#[test]
fn total_case_volume_exceeds_one_thousand() {
    // The per-suite sweeps above already compare well over 1k columns per
    // run; this guard recomputes the cheap-to-count portion so a future
    // downsizing of any suite fails loudly instead of silently shrinking
    // coverage. (Counting only: the benchmarks' cleanable columns + the
    // generated sweep's columns.)
    let scale = Scale::smoke();
    let min_text = DataVinciConfig::default().min_text_fraction;
    let mut columns = 0usize;
    for bench in [
        wikipedia_like(71, scale),
        excel_like(72, scale),
        synthetic_errors(73, scale),
    ] {
        for t in &bench.tables {
            columns += (0..t.dirty.n_cols())
                .filter(|&c| {
                    t.dirty
                        .column(c)
                        .is_some_and(|col| col.text_fraction() >= min_text)
                })
                .count();
        }
    }
    // Sweep: 900 tables, 1–2 columns each.
    let sweep_min = 900;
    assert!(
        columns + sweep_min >= 1000,
        "differential volume dropped below 1k cases: {columns} corpus + {sweep_min} sweep"
    );
}
