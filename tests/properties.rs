//! Property-based tests (proptest) over the workspace's core invariants.

use proptest::prelude::*;

use datavinci::core::{minimal_edit_program, Emit};
use datavinci::profile::{profile_plain, ProfilerConfig};
use datavinci::regex::{
    levenshtein, levenshtein_toks, levenshtein_within, CharClass, CompiledPattern, MaskedString,
    Pattern,
};

/// A small generator of patterns: literals, classes, disjunctions,
/// concatenations, and quantifiers (depth-bounded).
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        "[a-c]{1,3}".prop_map(Pattern::lit),
        Just(Pattern::Class(CharClass::Digit)),
        Just(Pattern::Class(CharClass::Lower)),
        Just(Pattern::Class(CharClass::Upper)),
        Just(Pattern::disj(["cat", "dog"])),
        Just(Pattern::disj(["ON", "OFF", "AUTO"])),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Pattern::concat),
            inner.clone().prop_map(Pattern::plus),
            inner.clone().prop_map(Pattern::opt),
            (inner, 2u32..4).prop_map(|(p, n)| Pattern::Repeat {
                body: Box::new(p),
                min: n,
                max: Some(n),
            }),
        ]
    })
}

/// Generates a string the pattern accepts, by sampling a derivation.
fn sample_member(pattern: &Pattern, picks: &mut impl Iterator<Item = usize>) -> String {
    let mut pick = |n: usize| picks.next().unwrap_or(0) % n.max(1);
    fn go(p: &Pattern, pick: &mut dyn FnMut(usize) -> usize) -> String {
        match p {
            Pattern::Empty => String::new(),
            Pattern::Str(s) => s.clone(),
            Pattern::Class(c) => {
                let candidates: Vec<char> = ('0'..='9')
                    .chain('a'..='z')
                    .chain('A'..='Z')
                    .chain(std::iter::once(' '))
                    .filter(|ch| c.contains(*ch))
                    .collect();
                candidates[pick(candidates.len())].to_string()
            }
            Pattern::Mask(_) => String::new(),
            Pattern::Disj(alts) => alts[pick(alts.len())].clone(),
            Pattern::Concat(parts) => parts.iter().map(|q| go(q, pick)).collect(),
            Pattern::Alt(parts) => go(&parts[pick(parts.len())], pick),
            Pattern::Repeat { body, min, max } => {
                let extra = match max {
                    Some(m) => pick((*m - *min + 1) as usize) as u32,
                    None => pick(3) as u32,
                };
                (0..min + extra).map(|_| go(body, pick)).collect()
            }
        }
    }
    go(pattern, &mut pick)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sampled members of a pattern's language always match it.
    #[test]
    fn sampled_members_match(pattern in arb_pattern(), picks in prop::collection::vec(0usize..97, 32)) {
        let member = sample_member(&pattern, &mut picks.into_iter());
        prop_assume!(member.len() <= 40);
        let compiled = CompiledPattern::compile(pattern);
        prop_assert!(compiled.matches(&MaskedString::from_plain(&member)),
            "{member:?} must match {}", compiled.pattern());
    }

    /// The repair DP always produces a program whose application, with any
    /// valid hole filling, lands in the pattern's language — and members
    /// repair at cost 0.
    #[test]
    fn repairs_always_land_in_language(
        pattern in arb_pattern(),
        value in "[a-zA-Z0-9.\\- ]{0,12}",
    ) {
        let compiled = CompiledPattern::compile(pattern);
        let v = MaskedString::from_plain(&value);
        let dag = compiled.dag_for_len(v.len());
        let program = minimal_edit_program(&dag, &v).expect("always repairable");
        if compiled.matches(&v) {
            prop_assert_eq!(program.cost, 0, "members repair free");
        }
        let repair = program.apply(&v);
        let fillers: Vec<String> = repair
            .fillable_holes()
            .iter()
            .map(|e| match e {
                Emit::Class(cc, _) => cc.representative().to_string(),
                Emit::Disj(alts, _) => alts[0].clone(),
                Emit::Char(_) | Emit::Mask(..) => unreachable!(),
            })
            .collect();
        let fixed = repair.fill(&fillers);
        prop_assert!(compiled.matches(&fixed),
            "{} not in L({}) after program {}", fixed, compiled.pattern(), program.shorthand());
    }

    /// DP cost is bounded above by full rewrite (delete all + min length)
    /// and is exactly Levenshtein for literal patterns.
    #[test]
    fn dp_cost_bounds(lit in "[a-z0-9]{1,8}", value in "[a-z0-9]{0,8}") {
        let pattern = Pattern::lit(lit.clone());
        let compiled = CompiledPattern::compile(pattern);
        let v = MaskedString::from_plain(&value);
        let dag = compiled.dag_for_len(v.len());
        let program = minimal_edit_program(&dag, &v).expect("repairable");
        prop_assert_eq!(program.cost, levenshtein(&lit, &value));
    }

    /// Levenshtein is a metric: symmetry + triangle inequality + identity.
    #[test]
    fn levenshtein_is_a_metric(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Token-level agrees with char-level on plain strings.
        prop_assert_eq!(
            levenshtein_toks(&MaskedString::from_plain(&a), &MaskedString::from_plain(&b)),
            levenshtein(&a, &b)
        );
    }

    /// The banded variant agrees with the exact distance.
    #[test]
    fn banded_levenshtein_agrees(a in "[a-d]{0,10}", b in "[a-d]{0,10}", bound in 0usize..6) {
        let exact = levenshtein(&a, &b);
        match levenshtein_within(&a, &b, bound) {
            Some(d) => prop_assert_eq!(d, exact),
            None => prop_assert!(exact > bound),
        }
    }

    /// Band-edge differential: the banded variant must agree with the
    /// exact distance when the bound sits just below, exactly at, and just
    /// above the true distance — the off-by-one regime a too-narrow band
    /// would corrupt — including multibyte UTF-8 and empty strings.
    #[test]
    fn banded_levenshtein_is_exact_at_the_band_edge(
        a in "[abé漢]{0,8}",
        b in "[abé漢]{0,8}",
    ) {
        let exact = levenshtein(&a, &b);
        for bound in [exact.saturating_sub(1), exact, exact + 1] {
            match levenshtein_within(&a, &b, bound) {
                Some(d) => {
                    prop_assert!(d <= bound, "reported {d} above bound {bound}");
                    prop_assert_eq!(d, exact);
                }
                None => prop_assert!(exact > bound, "rejected in-band distance {exact} at bound {bound}"),
            }
        }
        // A pure length gap is the band's worst case: the distance equals
        // the gap, so bound == gap must find it and bound == gap − 1 must
        // refuse.
        let gap = a.chars().count();
        prop_assert_eq!(levenshtein_within(&a, "", gap), Some(gap));
        prop_assert_eq!(levenshtein_within("", &a, gap), Some(gap));
        if gap > 0 {
            prop_assert_eq!(levenshtein_within(&a, "", gap - 1), None);
        }
    }

    /// The profiler's learned patterns jointly cover every input value.
    #[test]
    fn profiler_covers_all_values(values in prop::collection::vec("[a-zA-Z0-9.\\-_ ]{1,10}", 1..24)) {
        let profile = profile_plain(&values, &ProfilerConfig { max_patterns: 64, ..Default::default() });
        for (row, v) in values.iter().enumerate() {
            prop_assert!(
                profile.patterns.iter().any(|lp| lp.rows.contains(&row)),
                "value {v:?} (row {row}) uncovered by {:?}",
                profile.patterns.iter().map(|p| p.pattern.to_string()).collect::<Vec<_>>()
            );
        }
        // Coverage bookkeeping is consistent.
        for lp in &profile.patterns {
            prop_assert!((lp.coverage - lp.rows.len() as f64 / values.len() as f64).abs() < 1e-9);
            for &row in &lp.rows {
                prop_assert!(lp.compiled.matches(&MaskedString::from_plain(&values[row])));
            }
        }
    }
}

mod noise_properties {
    use super::*;
    use datavinci::corpus::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Corruption always changes the value and applies 1–4 distinct ops.
        #[test]
        fn corruption_changes_value(value in "[a-zA-Z0-9.\\-_ ]{1,12}", seed in 0u64..5000) {
            let model = NoiseModel::default();
            let mut rng = StdRng::seed_from_u64(seed);
            let (out, ops) = model.corrupt_value(&mut rng, &value);
            prop_assert_ne!(&out, &value);
            prop_assert!(!ops.is_empty() && ops.len() <= 4);
        }
    }
}

mod idempotence_properties {
    use super::*;
    use datavinci::core::{DataVinci, DataVinciConfig, RepairStrategy};
    use datavinci::corpus::{duplicate_rows, Flavor, NoiseModel, TableSpec};
    use datavinci::engine::Engine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Cleaning is idempotent: re-cleaning a cleaned table changes
        /// nothing. Repairs move outliers into the significant-pattern
        /// language, so a second pass finds no further repairs — under both
        /// the distinct-value planner and the per-row reference path.
        #[test]
        fn cleaning_is_idempotent(
            seed in 0u64..5_000,
            flavor_idx in 0usize..6,
            rows in 8usize..48,
            dup_idx in 0usize..3,
            noise_idx in 0usize..2,
        ) {
            let flavors = [
                Flavor::Quarter,
                Flavor::PrefixedId,
                Flavor::CountryCode,
                Flavor::ProductCode,
                Flavor::PlayerWithCategory,
                Flavor::City,
            ];
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = TableSpec::new(rows, vec![flavors[flavor_idx]]);
            let clean = spec.generate(&mut rng);
            let noise = NoiseModel { cell_prob: [0.1, 0.3][noise_idx] };
            let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
            let duplication = [0.0, 0.5, 0.9][dup_idx];
            let table = if duplication > 0.0 {
                duplicate_rows(&mut rng, &dirty, duplication)
            } else {
                dirty
            };
            for strategy in [RepairStrategy::Planner, RepairStrategy::RowWise] {
                let dv = DataVinci::with_config(DataVinciConfig {
                    repair_strategy: strategy,
                    ..DataVinciConfig::default()
                });
                let first = dv.clean_table(&table);
                let cleaned = Engine::apply(&table, &first);
                let second = dv.clean_table(&cleaned);
                let recleaned = Engine::apply(&cleaned, &second);
                prop_assert_eq!(
                    &recleaned,
                    &cleaned,
                    "{:?}: re-cleaning changed the table (flavor {:?}, {} rows)",
                    strategy,
                    flavors[flavor_idx],
                    rows
                );
            }
        }
    }
}

mod formula_properties {
    use super::*;
    use datavinci::formula::{parse, ColumnProgram};
    use datavinci::table::{Column, Table};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The evaluator is total: arbitrary text inputs never panic, they
        /// produce values or error values.
        #[test]
        fn evaluator_is_total(values in prop::collection::vec("[ -~]{0,12}", 1..8)) {
            let table = Table::new(vec![Column::from_texts("x", &values)]);
            for src in [
                "=SEARCH(\"-\", [@x])",
                "=VALUE([@x]) * 2 + LEN([@x])",
                "=LEFT([@x], 2) & RIGHT([@x], 1)",
                "=IF(ISNUMBER(VALUE([@x])), 1, 1/0)",
                "=DATEVALUE([@x])",
            ] {
                let program = ColumnProgram::parse(src).expect("template parses");
                let out = program.execute(&table);
                prop_assert_eq!(out.len(), table.n_rows());
            }
        }

        /// The lexer/parser never panics on arbitrary input.
        #[test]
        fn parser_is_total(src in "[ -~]{0,40}") {
            let _ = parse(&src);
        }
    }
}
