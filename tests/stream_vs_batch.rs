//! Differential test: streaming cleaning vs. the batch engine.
//!
//! The streaming contract (see `datavinci_engine::stream`) is that on a
//! *stationary* input — value distributions repeating chunk over chunk —
//! the chunk-at-a-time [`StreamCleaner`] emits output byte-identical to
//! batch-cleaning the same finite input in one call, and that windowed
//! compaction (the memory bound) never changes emitted rows on such input.
//! These tests check both properties on corpus-generated tables (realistic
//! flavors and noise, deterministic seeds), streaming several cycles of
//! each table's rows with the cycle as the chunk, plus the full
//! bytes → [`CsvChunkReader`] → [`StreamCleaner`] composition a `--follow`
//! CLI run uses.

use datavinci::corpus::{wikipedia_like, Scale};
use datavinci::engine::{Engine, StreamCleaner, StreamConfig};
use datavinci::table::{io, CellValue, CsvChunkReader, Table};

/// Renders a table's rows back to field strings (the form a CSV reader
/// would hand a streaming cleaner).
fn rows_of(table: &Table) -> Vec<Vec<String>> {
    (0..table.n_rows())
        .map(|r| {
            table
                .columns()
                .iter()
                .map(|c| c.get(r).map(CellValue::render).unwrap_or_default())
                .collect()
        })
        .collect()
}

fn headers_of(table: &Table) -> Vec<String> {
    table.headers().iter().map(|h| h.to_string()).collect()
}

/// A corpus table worth streaming: a few columns, enough rows for several
/// chunks, and at least one corrupted cell so repairs actually flow.
fn stream_fixture() -> (Vec<String>, Vec<Vec<String>>) {
    let bench = wikipedia_like(7, Scale::smoke());
    let table = bench
        .tables
        .iter()
        .find(|t| t.dirty.n_rows() >= 8 && t.dirty.n_rows() <= 60 && !t.corrupted.is_empty())
        .map(|t| &t.dirty)
        .expect("smoke benchmark contains a streamable table");
    (headers_of(table), rows_of(table))
}

fn batch_csv(header: &[String], rows: &[Vec<String>]) -> String {
    let table = io::rows_to_table(header, rows);
    let engine = Engine::new();
    let report = engine.clean_table(&table);
    io::to_csv(&Engine::apply(&table, &report.table_report()))
}

#[test]
fn streaming_matches_batch_on_cyclic_corpus_table() {
    let (header, cycle) = stream_fixture();
    let mut cleaner = StreamCleaner::new(&header, StreamConfig::default());
    let mut streamed = cleaner.csv_header();
    let mut all_rows = Vec::new();
    for _ in 0..3 {
        all_rows.extend(cycle.iter().cloned());
        streamed.push_str(&cleaner.push_rows(&cycle).csv);
    }
    assert_eq!(
        streamed,
        batch_csv(&header, &all_rows),
        "streaming must be byte-identical to batch on stationary input"
    );
    assert_eq!(cleaner.n_rows(), 3 * cycle.len());
}

#[test]
fn windowed_streaming_matches_unbounded_on_cyclic_corpus_table() {
    let (header, cycle) = stream_fixture();
    let cfg = StreamConfig {
        workers: 1,
        window_rows: 2 * cycle.len(),
        ..StreamConfig::default()
    };
    let mut windowed = StreamCleaner::new(&header, cfg);
    let mut unbounded = StreamCleaner::new(&header, StreamConfig::default());
    let mut a = windowed.csv_header();
    let mut b = unbounded.csv_header();
    for _ in 0..6 {
        a.push_str(&windowed.push_rows(&cycle).csv);
        b.push_str(&unbounded.push_rows(&cycle).csv);
    }
    assert_eq!(a, b, "window compaction must not change emitted rows");
    assert!(
        windowed.compactions() >= 2,
        "the window must actually have compacted (got {})",
        windowed.compactions()
    );
    // Residency is bounded by window + one chunk, independent of the six
    // cycles streamed.
    assert!(windowed.n_rows() == 6 * cycle.len());
}

#[test]
fn chunk_reader_feeding_cleaner_matches_batch() {
    // The full --follow composition: serialized bytes, pushed in arbitrary
    // 64-byte chunks through a CsvChunkReader, rows buffered to full cycles
    // and cleaned by a StreamCleaner.
    let (header, cycle) = stream_fixture();
    let mut text = {
        let t = io::rows_to_table(&header, &cycle);
        io::to_csv(&t)
    };
    let body: String = text.split_once('\n').unwrap().1.to_string();
    for _ in 0..2 {
        text.push_str(&body); // three cycles total
    }

    let mut reader = CsvChunkReader::new();
    let mut cleaner: Option<StreamCleaner> = None;
    let mut pending: Vec<Vec<String>> = Vec::new();
    let mut streamed = String::new();
    let mut all_rows = Vec::new();
    let bytes = text.as_bytes();
    let mut feed = |rows: Vec<Vec<String>>,
                    reader: &CsvChunkReader,
                    pending: &mut Vec<Vec<String>>,
                    streamed: &mut String,
                    final_flush: bool| {
        pending.extend(rows);
        let cleaner = cleaner.get_or_insert_with(|| {
            let c = StreamCleaner::new(reader.header().unwrap(), StreamConfig::default());
            streamed.push_str(&c.csv_header());
            c
        });
        while pending.len() >= cycle.len() || (final_flush && !pending.is_empty()) {
            let rest = pending.split_off(pending.len().min(cycle.len()));
            let chunk = std::mem::replace(pending, rest);
            all_rows.extend(chunk.iter().cloned());
            streamed.push_str(&cleaner.push_rows(&chunk).csv);
        }
    };
    for chunk in bytes.chunks(64) {
        let rows = reader.push(chunk).expect("valid CSV");
        feed(rows, &reader, &mut pending, &mut streamed, false);
    }
    let rows = reader.finish().expect("clean end of input");
    feed(rows, &reader, &mut pending, &mut streamed, true);

    assert_eq!(all_rows.len(), 3 * cycle.len(), "no rows lost in transit");
    assert_eq!(streamed, batch_csv(&header, &all_rows));
}
