//! Engine end-to-end through the façade: parallel cleaning must match the
//! sequential pipeline byte-for-byte, warm re-cleans must be cache-served,
//! and applied repairs must land in the table.

use datavinci::engine::{CacheOutcome, Engine, EngineConfig};
use datavinci::prelude::*;
use datavinci_corpus::{synthetic_errors, Scale};

fn small_bench_tables() -> Vec<Table> {
    synthetic_errors(
        77,
        Scale {
            n_tables: 3,
            row_divisor: 16,
        },
    )
    .tables
    .into_iter()
    .map(|t| t.dirty)
    .collect()
}

#[test]
fn parallel_batch_matches_sequential_cleaning() {
    let tables = small_bench_tables();
    let dv = DataVinci::new();
    let sequential: Vec<String> = tables
        .iter()
        .map(|t| format!("{:#?}", dv.clean_table(t)))
        .collect();

    let engine = Engine::with_config(EngineConfig {
        workers: 4,
        cache: true,
        ..EngineConfig::default()
    });
    let batch = engine.clean_batch(&tables);
    let parallel: Vec<String> = batch
        .tables
        .iter()
        .map(|r| format!("{:#?}", r.table_report()))
        .collect();
    assert_eq!(parallel, sequential);

    // Warm re-clean: all columns served from the report cache, same bytes.
    let warm = engine.clean_batch(&tables);
    assert!(warm
        .tables
        .iter()
        .flat_map(|t| &t.columns)
        .all(|c| c.cache == CacheOutcome::ReportHit));
    assert!(warm.cache.report_hits > 0, "{:?}", warm.cache);
    let warm_rendered: Vec<String> = warm
        .tables
        .iter()
        .map(|r| format!("{:#?}", r.table_report()))
        .collect();
    assert_eq!(warm_rendered, sequential);
}

#[test]
fn engine_repairs_apply_through_the_facade() {
    let table = Table::new(vec![Column::from_texts(
        "Quarter",
        &["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q32001"],
    )]);
    let engine = Engine::new();
    let report = engine.clean_table(&table);
    let repaired = Engine::apply(&table, &report.table_report());
    assert_eq!(repaired.column(0).unwrap().rendered()[4], "Q3-2001");
}
