//! Smoke test: every example under `examples/` must build and run to
//! completion, so the doc walk-throughs cannot silently rot.
//!
//! Each example is executed through `cargo run --example` in the same
//! profile the test suite was built with, so the binaries are already
//! compiled by the time the test invokes them (`cargo test` builds example
//! targets) and the run itself is cheap. Concurrent cargo invocations
//! serialize on cargo's own target-directory lock, which is why all the
//! examples run from a single test function.

use std::process::Command;

/// The six documented walk-throughs. Keep in sync with `examples/`.
const EXAMPLES: [&str; 6] = [
    "quickstart",
    "repair_anatomy",
    "execution_guided",
    "semantic_cleaning",
    "benchmark_tour",
    "engine_batch",
];

#[test]
fn every_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let mut listed: Vec<String> = std::fs::read_dir(format!("{manifest_dir}/examples"))
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    listed.sort();
    let mut expected: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(
        listed, expected,
        "examples/ drifted from the smoke-test list; update EXAMPLES"
    );

    for example in EXAMPLES {
        let mut command = Command::new(&cargo);
        command
            .args(["run", "--quiet", "--example", example])
            .current_dir(manifest_dir)
            // The test environment may have no registry access; everything
            // needed is a path dependency, so an offline run must succeed.
            .arg("--offline");
        if !cfg!(debug_assertions) {
            command.arg("--release");
        }
        let output = command
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {example} printed nothing; walk-throughs should narrate"
        );
    }
}
