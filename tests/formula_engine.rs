//! Integration tests for the formula engine as the execution substrate:
//! spreadsheet semantics across function families, error propagation, and
//! the Excel-Formulas benchmark protocol.

use datavinci::formula::ColumnProgram;
use datavinci::prelude::*;

fn run_one(src: &str, columns: Vec<Column>) -> Vec<CellValue> {
    let table = Table::new(columns);
    ColumnProgram::parse(src).expect("parses").execute(&table)
}

#[test]
fn text_pipeline_compositions() {
    let out = run_one(
        "=UPPER(LEFT(TRIM([@name]), 3)) & \"-\" & LEN([@name])",
        vec![Column::from_texts("name", &["  alice  ", "bob"])],
    );
    assert_eq!(out[0], CellValue::text("ALI-9"));
    assert_eq!(out[1], CellValue::text("BOB-3"));
}

#[test]
fn numeric_coercions_and_errors() {
    let out = run_one(
        "=VALUE([@x]) / 4",
        vec![Column::from_texts("x", &["100", "1,000", "$2", "abc", ""])],
    );
    assert_eq!(out[0], CellValue::Number(25.0));
    assert_eq!(out[1], CellValue::Number(250.0));
    assert_eq!(out[2], CellValue::Number(0.5));
    assert_eq!(out[3], CellValue::Error(ErrorValue::Value));
    assert_eq!(out[4], CellValue::Error(ErrorValue::Value));
}

#[test]
fn date_functions_compose() {
    let out = run_one(
        "=YEAR(DATEVALUE([@d])) * 100 + MONTH(DATEVALUE([@d]))",
        vec![Column::from_texts(
            "d",
            &["2021-07-14", "3/2/1999", "Q1-22"],
        )],
    );
    assert_eq!(out[0], CellValue::Number(202107.0));
    assert_eq!(out[1], CellValue::Number(199903.0));
    assert_eq!(out[2], CellValue::Error(ErrorValue::Value));
}

#[test]
fn error_values_are_data_not_exceptions() {
    // ISERROR must observe the inner error without propagating it; the
    // output column records errors as values.
    let out = run_one(
        "=IF(ISERROR(SEARCH(\"-\", [@v])), \"bad\", \"ok\")",
        vec![Column::from_texts("v", &["a-b", "ab"])],
    );
    assert_eq!(out[0], CellValue::text("ok"));
    assert_eq!(out[1], CellValue::text("bad"));
}

#[test]
fn substitution_chain_for_cleanup_formulas() {
    let out = run_one(
        "=VALUE(SUBSTITUTE(SUBSTITUTE([@m], \"$\", \"\"), \",\", \"\"))",
        vec![Column::from_texts("m", &["$1,234.50", "$88.00"])],
    );
    assert_eq!(out[0], CellValue::Number(1234.5));
    assert_eq!(out[1], CellValue::Number(88.0));
}

#[test]
fn multi_column_arithmetic() {
    let out = run_one(
        "=VALUE([@a]) + VALUE([@b]) * 2",
        vec![
            Column::from_texts("a", &["1", "2"]),
            Column::from_texts("b", &["10", "x"]),
        ],
    );
    assert_eq!(out[0], CellValue::Number(21.0));
    assert_eq!(out[1], CellValue::Error(ErrorValue::Value));
}

#[test]
fn execution_groups_match_error_cells() {
    let table = Table::new(vec![Column::from_texts(
        "v",
        &["10%", "20%", "broken", "30%"],
    )]);
    let program = ColumnProgram::parse("=VALUE(SUBSTITUTE([@v], \"%\", \"\"))").unwrap();
    let groups = program.execution_groups(&table);
    assert_eq!(groups.successes, vec![0, 1, 3]);
    assert_eq!(groups.failures, vec![2]);
    assert!((groups.success_rate() - 0.75).abs() < 1e-12);
}

#[test]
fn benchmark_cases_execute_under_engine_invariants() {
    use datavinci::corpus::formula_benchmark;
    for case in formula_benchmark(99, 5, 3) {
        // The engine never panics; outputs match row counts on both tables.
        assert_eq!(case.program.execute(&case.dirty).len(), case.dirty.n_rows());
        assert_eq!(case.program.execute(&case.clean).len(), case.clean.n_rows());
        // Failures are caused by corrupted input cells only.
        let failures = case.program.execution_groups(&case.dirty).failures;
        for row in failures {
            assert!(
                case.corrupted.iter().any(|c| c.row == row),
                "row {row} fails without a corrupted input in {:?}",
                case.program.source()
            );
        }
    }
}

#[test]
fn repair_head_formula_round_trip() {
    // Apply DataVinci's exec-guided repair, then confirm the produced table
    // keeps all clean-row outputs identical (repairs must not disturb
    // succeeding rows).
    use datavinci::corpus::formula_benchmark;
    let dv = DataVinci::new();
    for case in formula_benchmark(7, 3, 1) {
        let before = case.program.execute(&case.dirty);
        let report = dv.clean_with_program(&case.dirty, &case.program);
        let after = case.program.execute(&report.repaired_table);
        for row in 0..case.dirty.n_rows() {
            if !before[row].is_error() {
                assert_eq!(before[row], after[row], "clean row {row} disturbed");
            }
        }
    }
}
