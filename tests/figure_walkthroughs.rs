//! Integration tests reproducing the paper's worked examples: Figures 1, 2,
//! 4, 5, 6, 8 and the qualitative cases discussed in §5.1/§5.2.

use datavinci::prelude::*;

/// Figure 2 / Figure 5: the flagship mixed syntactic+semantic repair.
#[test]
fn figure2_usa_837_to_us_837_pro() {
    let table = Table::new(vec![
        Column::from_texts(
            "Category",
            &[
                "Professional",
                "Professional",
                "Professional",
                "Qualifier",
                "Qualifier",
                "Professional",
            ],
        ),
        Column::from_texts(
            "Player ID",
            &[
                "IN-674-PRO",
                "usa_837",
                "DZ-173-PRO",
                "US-201-QUA",
                "CN-924-QUA",
                "FR-475-PRO",
            ],
        ),
    ]);
    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 1);

    // ① significant pattern mixes a semantic mask with syntax.
    assert!(report
        .significant_patterns
        .iter()
        .any(|p| p.contains("{Country}") && p.contains("(PRO|QUA)")));
    // ② exactly the outlier detected.
    assert_eq!(report.detections.len(), 1);
    assert_eq!(report.detections[0].value, "usa_837");
    // ⑤/⑥ the top-ranked candidate is the paper's repair.
    assert_eq!(report.repairs[0].repaired, "US-837-PRO");
}

/// Figure 2, concretization detail: the disjunction choice must follow the
/// Category column (row 1 is a Qualifier → QUA suffix).
#[test]
fn figure2_constraint_follows_category_column() {
    let table = Table::new(vec![
        Column::from_texts(
            "Category",
            &[
                "Professional",
                "Qualifier",
                "Professional",
                "Qualifier",
                "Qualifier",
                "Professional",
            ],
        ),
        Column::from_texts(
            "Player ID",
            &[
                "IN-674-PRO",
                "usa_837",
                "DZ-173-PRO",
                "US-201-QUA",
                "CN-924-QUA",
                "FR-475-PRO",
            ],
        ),
    ]);
    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 1);
    assert_eq!(report.repairs[0].repaired, "US-837-QUA", "{report:#?}");
}

/// Figure 4: the (A[0-9].)+ column, outlier AAA3.
#[test]
fn figure4_outlier_detected_and_repaired_into_language() {
    let values = [
        "A2.",
        "A2.A3.",
        "A5.A7.",
        "A1.A2.A3.",
        "A9.",
        "A4.A5.",
        "AAA3",
    ];
    let table = Table::new(vec![Column::from_texts("c", &values)]);
    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 0);
    assert_eq!(report.detections.len(), 1);
    assert_eq!(report.detections[0].value, "AAA3");
    let repaired = &report.repairs[0].repaired;
    // The repair must parse as (A[0-9].)+ — checked structurally.
    assert!(
        repaired.len().is_multiple_of(3) && !repaired.is_empty(),
        "{repaired}"
    );
    for chunk in repaired.as_bytes().chunks(3) {
        assert_eq!(chunk[0], b'A', "{repaired}");
        assert!(chunk[1].is_ascii_digit(), "{repaired}");
        assert_eq!(chunk[2], b'.', "{repaired}");
    }
}

/// Figure 6 ①: an error covered by a significant pattern is invisible.
#[test]
fn figure6_error_covered_by_significant_pattern() {
    let table = Table::new(vec![Column::from_texts(
        "id",
        &["AB", "CD", "EF", "GH", "IJ0", "KL0", "MN0", "OP0"],
    )]);
    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 0);
    // Both halves are significant patterns; nothing can be flagged.
    assert!(report.detections.is_empty(), "{report:#?}");
}

/// Figure 6 ②: irregular data yields no significant pattern and no errors.
#[test]
fn figure6_irregular_column_yields_nothing() {
    let table = Table::new(vec![Column::from_texts(
        "irregular",
        &[
            "x#1", "Q-99-z", "..", "42%%", "?a?", "<<>>", "~zz~", "b@c@d", "e=5", "[]",
        ],
    )]);
    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 0);
    assert!(report.detections.is_empty(), "{report:#?}");
}

/// Figure 8: execution guidance sees what the unsupervised mode cannot.
#[test]
fn figure8_execution_guided_repair() {
    let table = Table::new(vec![Column::from_texts(
        "ID",
        &["C-19", "C-21", "C-33", "C-48", "C-55", "C51", "C52", "C53"],
    )]);
    let program = ColumnProgram::parse("=MID([@ID], SEARCH(\"-\", [@ID])+1, 2)*1").expect("parses");
    let dv = DataVinci::new();
    assert!(dv.clean_column(&table, 0).detections.is_empty());
    let report = dv.clean_with_program(&table, &program);
    assert!(report.fully_repaired());
    let fixed: Vec<String> = report.repaired_table.column(0).unwrap().rendered();
    assert_eq!(&fixed[5..], &["C-51", "C-52", "C-53"]);
}

/// §5.1: the county/state + id example — `Nevad210 → Nevada_210` requires
/// combining semantic masking with pattern repair. (Our gazetteer carries
/// states rather than Californian counties; same mechanism.)
#[test]
fn section51_nevada_mixed_repair() {
    let table = Table::new(vec![Column::from_texts(
        "County ID",
        &[
            "Alabama_231",
            "Kansas_721",
            "Texas_201",
            "Oregon_246",
            "Nevad210",
        ],
    )]);
    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 0);
    assert_eq!(report.detections.len(), 1, "{report:#?}");
    assert_eq!(report.repairs[0].original, "Nevad210");
    assert_eq!(report.repairs[0].repaired, "Nevada_210", "{report:#?}");
}

/// §5.1: GPT-sim catches the semantic quarter anomaly but misses the
/// syntactic S1.4; DataVinci catches S1.4.
#[test]
fn section51_gpt_vs_datavinci_profiles() {
    use datavinci::baselines::GptSim;
    use datavinci::core::CleaningSystem;

    let quarters = Table::new(vec![Column::from_texts(
        "q",
        &["Q1-22", "Q4-21", "Q5-20", "Q2-20", "Q1-21"],
    )]);
    let sections = Table::new(vec![Column::from_texts(
        "s",
        &["S.1.2", "S.2.3", "S1.4", "S.1.3", "S.2.1"],
    )]);

    let gpt = GptSim::new();
    assert!(gpt.detect(&quarters, 0).iter().any(|d| d.value == "Q5-20"));
    assert!(gpt.detect(&sections, 0).is_empty());

    let dv = DataVinci::new();
    let report = dv.clean_column(&sections, 0);
    assert_eq!(report.detections.len(), 1);
    assert_eq!(report.detections[0].value, "S1.4");
    assert_eq!(report.repairs[0].repaired, "S.1.4");
}

/// Figure 1 flavor: `03.45` style numeric inconsistencies are syntactic and
/// repairable from the majority pattern.
#[test]
fn figure1_decimal_comma_inconsistency() {
    let table = Table::new(vec![Column::from_texts(
        "amount",
        &["12,45", "3,99", "27,10", "88,05", "03.45"],
    )]);
    let dv = DataVinci::new();
    let report = dv.clean_column(&table, 0);
    assert_eq!(report.detections.len(), 1);
    assert_eq!(report.detections[0].value, "03.45");
    let repaired = &report.repairs[0].repaired;
    assert!(repaired.contains(','), "{repaired}");
}
