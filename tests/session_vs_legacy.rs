//! Differential suite: the table-scoped `AnalysisSession` must be
//! byte-identical to the pre-session "regenerate per repair" path.
//!
//! `DataVinci::clean_table` now runs every column through one shared
//! session (one rendered matrix, one `FeatureSet`, shared row feature
//! vectors, weighted dtree induction over distinct rows). The oracle is the
//! per-column loop over `clean_column`, which opens a fresh throwaway
//! session per column — exactly the pre-session cost model, where every
//! column repair regenerated its own table context. Every comparison
//! formats both [`datavinci::core::TableReport`]s (patterns, detections,
//! repairs, every ranked candidate with its score) and requires exact
//! equality — across the corpus benchmarks, every ablation, and a
//! duplicate-heavy generated sweep.
//!
//! Also here: the acceptance assertions that `FeatureSet::generate` runs at
//! most once per table per clean, and the proptest that weighted decision
//! tree induction equals row-expanded induction.

use proptest::prelude::*;

use datavinci::core::{
    learn, learn_weighted, DataVinci, DataVinciConfig, DtreeConfig, TableReport,
};
use datavinci::corpus::{
    duplicate_rows, excel_like, synthetic_errors, wikipedia_like, Flavor, NoiseModel, Scale,
    TableSpec,
};
use datavinci::table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-session oracle: every column cleaned through its own throwaway
/// session, so each column repair regenerates the whole table context.
fn clean_table_legacy(dv: &DataVinci, table: &Table) -> TableReport {
    let mut report = TableReport::default();
    for col in 0..table.n_cols() {
        let column = table.column(col).expect("in range");
        if column.text_fraction() < dv.config().min_text_fraction {
            continue;
        }
        report.columns.push(dv.clean_column(table, col));
    }
    report
}

/// Compares session-shared vs regenerate-per-column cleans of `table`,
/// returning the number of cleaned columns (comparison cases).
fn assert_identical(table: &Table, cfg: &DataVinciConfig, context: &str) -> usize {
    let dv = DataVinci::with_config(cfg.clone());
    let session = dv.session(table);
    let shared = dv.clean_table_in(&session);
    let legacy = clean_table_legacy(&dv, table);
    assert_eq!(
        format!("{shared:#?}"),
        format!("{legacy:#?}"),
        "session path diverged from regenerate-per-repair oracle: {context}"
    );
    let stats = session.stats();
    assert!(
        stats.feature_generations <= 1,
        "{context}: FeatureSet generated {} times in one table clean",
        stats.feature_generations
    );
    shared.columns.len()
}

#[test]
fn corpus_benchmarks_are_identical() {
    let scale = Scale::smoke();
    let mut cases = 0usize;
    for (name, bench) in [
        ("wikipedia", wikipedia_like(81, scale)),
        ("excel", excel_like(82, scale)),
        ("synthetic", synthetic_errors(83, scale)),
    ] {
        for (i, t) in bench.tables.iter().enumerate() {
            cases += assert_identical(
                &t.dirty,
                &DataVinciConfig::default(),
                &format!("{name} table {i}"),
            );
        }
    }
    assert!(cases >= 60, "expected a broad corpus sweep, got {cases}");
}

#[test]
fn ablation_configs_are_identical() {
    // Every ablation cleans the same duplicate-heavy multi-column table
    // both ways: the session must not depend on any default switch.
    let mut rng = StdRng::seed_from_u64(177);
    let spec = TableSpec::new(
        60,
        vec![
            Flavor::PlayerWithCategory,
            Flavor::Quarter,
            Flavor::City,
            Flavor::Color,
        ],
    );
    let clean = spec.generate(&mut rng);
    let noise = NoiseModel { cell_prob: 0.2 };
    let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
    let table = duplicate_rows(&mut rng, &dirty, 0.8);
    for (name, cfg) in [
        ("default", DataVinciConfig::default()),
        ("rowwise strategy", DataVinciConfig::rowwise_repair()),
        ("no semantics", DataVinciConfig::ablation_no_semantics()),
        (
            "limited semantics",
            DataVinciConfig::ablation_limited_semantics(),
        ),
        (
            "enumerated concretization",
            DataVinciConfig::ablation_no_learned_concretization(),
        ),
        (
            "edit distance ranking",
            DataVinciConfig::ablation_edit_distance_ranking(),
        ),
        (
            "starved delta",
            DataVinciConfig {
                delta: 0.95,
                ..DataVinciConfig::default()
            },
        ),
    ] {
        assert_identical(&table, &cfg, name);
    }
}

#[test]
fn generated_duplicate_sweep_is_identical() {
    // Multi-column tables across duplication regimes, both repair
    // strategies, seeded deterministically.
    let flavor_pool = [
        vec![Flavor::Quarter, Flavor::PrefixedId],
        vec![Flavor::PlayerWithCategory, Flavor::City],
        vec![Flavor::CountryCode, Flavor::Color, Flavor::ProductCode],
        vec![Flavor::Rating, Flavor::Status, Flavor::Quarter],
    ];
    let mut rng = StdRng::seed_from_u64(9119);
    let mut cases = 0usize;
    for i in 0..48 {
        let flavors = flavor_pool[i % flavor_pool.len()].clone();
        let rows = 10 + (i % 4) * 6;
        let duplication = [0.0, 0.5, 0.9][i % 3];
        let spec = TableSpec::new(rows, flavors);
        let clean = spec.generate(&mut rng);
        let noise = NoiseModel {
            cell_prob: [0.1, 0.3][(i / 3) % 2],
        };
        let (dirty, _) = noise.corrupt_table(&mut rng, &clean);
        let table = if duplication > 0.0 {
            duplicate_rows(&mut rng, &dirty, duplication)
        } else {
            dirty
        };
        let cfg = if i % 5 == 0 {
            DataVinciConfig::rowwise_repair()
        } else {
            DataVinciConfig::default()
        };
        cases += assert_identical(&table, &cfg, &format!("sweep case {i} (dup {duplication})"));
    }
    assert!(cases >= 60, "expected ≥60 sweep columns, got {cases}");
}

#[test]
fn feature_set_generates_at_most_once_per_table_clean() {
    // A table whose *three* textual columns all carry repairable errors:
    // the pre-session pipeline generated one FeatureSet per column repair
    // (three total); the session must generate exactly one and share it.
    let table = Table::new(vec![
        datavinci::table::Column::from_texts(
            "Category",
            &[
                "Professional",
                "Professional",
                "Qualifier",
                "Professional",
                "Qualifier",
                "Professional",
            ],
        ),
        datavinci::table::Column::from_texts(
            "Player ID",
            &[
                "IN-674-PRO",
                "usa_837",
                "US-201-QUA",
                "DZ-173-PRO",
                "CN-924-QUA",
                "FR-475-PRO",
            ],
        ),
        // A second hole-bearing column (repairing "EE" must insert the
        // (PRO|QUA) disjunction, which reads row features), so the oracle
        // demonstrably generates one FeatureSet per repaired column.
        datavinci::table::Column::from_texts(
            "Ref",
            &["AA-PRO", "BB-QUA", "CC-QUA", "DD-PRO", "EE", "FF-PRO"],
        ),
    ]);
    let dv = DataVinci::new();
    let session = dv.session(&table);
    let report = dv.clean_table_in(&session);
    let repaired_columns = report
        .columns
        .iter()
        .filter(|c| !c.repairs.is_empty())
        .count();
    assert!(
        repaired_columns >= 2,
        "workload must repair multiple columns, got {repaired_columns}"
    );
    let stats = session.stats();
    assert_eq!(
        stats.feature_generations, 1,
        "FeatureSet must be generated exactly once per table clean: {stats:?}"
    );
    // The row interner covered the table and the repair planner ran.
    assert_eq!(stats.table_rows, 6);
    assert!(stats.plan_error_rows >= 2);

    // The throwaway-session oracle generates once per *cleaned column* —
    // the duplicated work the session removes.
    let mut legacy_generations = 0;
    for c in &report.columns {
        let per_column = dv.session(&table);
        let _ = dv.clean_column_in(&per_column, c.col);
        legacy_generations += per_column.stats().feature_generations;
    }
    assert!(
        legacy_generations > 1,
        "oracle should regenerate per column, got {legacy_generations}"
    );
}

#[test]
fn exec_guided_and_analysis_reuse_stay_identical() {
    // The exec-guided path and analyze/repair splits ride the same session
    // plumbing; spot-check the flagship examples still behave.
    use datavinci::formula::ColumnProgram;
    let table = Table::new(vec![datavinci::table::Column::from_texts(
        "col1",
        &["c-1", "c-2", "c3", "c4"],
    )]);
    let program = ColumnProgram::parse("=SEARCH(\"-\", [@col1])").unwrap();
    let dv = DataVinci::new();
    let report = dv.clean_with_program(&table, &program);
    assert!(report.fully_repaired(), "{report:#?}");

    // analyze once, repair through two different sessions: identical.
    let session = dv.session(&table);
    let analysis = dv.analyze_column_in(&session, 0);
    let a = dv.repair_analysis_in(&session, &analysis);
    let b = dv.repair_analysis(&table, &analysis);
    assert_eq!(format!("{a:#?}"), format!("{b:#?}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weighted dtree induction over distinct (vector, label) pairs equals
    /// induction over the row-wise expansion, for arbitrary boolean
    /// matrices, label assignments, and multiplicities.
    #[test]
    fn weighted_dtree_equals_row_expanded(
        distinct in prop::collection::vec(
            (
                prop::collection::vec(prop_oneof![Just(false), Just(true)], 3),
                0u32..4,
                1usize..5,
            ),
            1..8,
        ),
        alpha in prop_oneof![Just(0.5), Just(0.8), Just(1.0)],
    ) {
        let cfg = DtreeConfig { alpha, ..DtreeConfig::default() };
        let rows: Vec<&[bool]> = distinct.iter().map(|(r, _, _)| r.as_slice()).collect();
        let labels: Vec<u32> = distinct.iter().map(|&(_, l, _)| l).collect();
        let weights: Vec<usize> = distinct.iter().map(|&(_, _, w)| w).collect();

        let mut expanded_rows: Vec<Vec<bool>> = Vec::new();
        let mut expanded_labels: Vec<u32> = Vec::new();
        for ((r, &l), &w) in rows.iter().zip(&labels).zip(&weights) {
            for _ in 0..w {
                expanded_rows.push(r.to_vec());
                expanded_labels.push(l);
            }
        }
        prop_assert_eq!(
            learn_weighted(&rows, &labels, &weights, &cfg),
            learn(&expanded_rows, &expanded_labels, &cfg)
        );
    }

    /// Session row interning never changes a clean: a one-column table with
    /// duplicated rows cleans identically through a shared session and the
    /// per-column oracle (tiny fuzz over values and duplication).
    #[test]
    fn fuzzed_single_columns_are_identical(
        base in prop::collection::vec("[a-c]{1,2}-[0-9]{1,2}", 4..10),
        dup in 1usize..4,
        errors in prop::collection::vec("[A-Z][0-9]", 0..3),
    ) {
        let mut values: Vec<String> = Vec::new();
        for v in &base {
            for _ in 0..dup {
                values.push(v.clone());
            }
        }
        values.extend(errors.iter().cloned());
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let table = Table::new(vec![datavinci::table::Column::from_texts("c", &refs)]);
        let dv = DataVinci::new();
        let shared = dv.clean_table(&table);
        let legacy = clean_table_legacy(&dv, &table);
        prop_assert_eq!(format!("{shared:#?}"), format!("{legacy:#?}"));
    }
}
