//! Column-transformation programs (paper §3.6, Definition via Example 7).
//!
//! A column-transformation program executes over each row tuple
//! independently and produces one output value per row. Executing one over a
//! table partitions rows into *successes* and *failures* (error values) —
//! the signal execution-guided repair learns from.

use crate::ast::Expr;
use crate::eval::{eval, RowCtx};
use crate::parser::{parse, ParseError};
use datavinci_table::{CellValue, Table};

/// A parsed, executable column-transformation program.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProgram {
    source: String,
    expr: Expr,
    inputs: Vec<String>,
}

/// The success/failure partition of one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionGroups {
    /// Rows whose output is a non-error value.
    pub successes: Vec<usize>,
    /// Rows whose output is an error value.
    pub failures: Vec<usize>,
}

impl ExecutionGroups {
    /// Fraction of rows that executed successfully.
    pub fn success_rate(&self) -> f64 {
        let n = self.successes.len() + self.failures.len();
        if n == 0 {
            1.0
        } else {
            self.successes.len() as f64 / n as f64
        }
    }

    /// Did every row execute successfully?
    pub fn fully_successful(&self) -> bool {
        self.failures.is_empty()
    }
}

impl ColumnProgram {
    /// Parses a formula into a program.
    pub fn parse(source: &str) -> Result<ColumnProgram, ParseError> {
        let expr = parse(source)?;
        let inputs = expr.input_columns();
        Ok(ColumnProgram {
            source: source.to_string(),
            expr,
            inputs,
        })
    }

    /// The original formula text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Distinct input column names, in first-use order.
    pub fn input_columns(&self) -> &[String] {
        &self.inputs
    }

    /// Executes over every row, producing the output column.
    pub fn execute(&self, table: &Table) -> Vec<CellValue> {
        (0..table.n_rows())
            .map(|row| self.execute_row(table, row))
            .collect()
    }

    /// Executes over a single row.
    ///
    /// Column-transformation programs are row-local by definition (each row
    /// tuple evaluates independently), so probing one row — the
    /// execution-guided repair validator's hot path — need not execute the
    /// whole column.
    pub fn execute_row(&self, table: &Table, row: usize) -> CellValue {
        eval(&self.expr, &RowCtx { table, row })
    }

    /// Executes and partitions rows by outcome.
    pub fn execution_groups(&self, table: &Table) -> ExecutionGroups {
        let mut groups = ExecutionGroups::default();
        for (row, out) in self.execute(table).iter().enumerate() {
            if out.is_error() {
                groups.failures.push(row);
            } else {
                groups.successes.push(row);
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    fn intro_table() -> Table {
        Table::new(vec![Column::from_texts(
            "col1",
            &["c-1", "c-2", "c3", "c4"],
        )])
    }

    #[test]
    fn intro_example_partition() {
        // Paper §1: =SEARCH("-", [@col1]) splits [c-1, c-2 | c3, c4].
        let p = ColumnProgram::parse("=SEARCH(\"-\", [@col1])").unwrap();
        let g = p.execution_groups(&intro_table());
        assert_eq!(g.successes, vec![0, 1]);
        assert_eq!(g.failures, vec![2, 3]);
        assert!((g.success_rate() - 0.5).abs() < 1e-12);
        assert!(!g.fully_successful());
    }

    #[test]
    fn input_columns_extracted() {
        let p = ColumnProgram::parse("=CONCAT([@a], \"-\", [@b])").unwrap();
        assert_eq!(p.input_columns(), ["a", "b"]);
    }

    #[test]
    fn execute_produces_one_output_per_row() {
        let p = ColumnProgram::parse("=LEN([@col1])").unwrap();
        let out = p.execute(&intro_table());
        assert_eq!(
            out,
            vec![
                CellValue::Number(3.0),
                CellValue::Number(3.0),
                CellValue::Number(2.0),
                CellValue::Number(2.0),
            ]
        );
    }

    #[test]
    fn execute_row_agrees_with_execute() {
        let p = ColumnProgram::parse("=SEARCH(\"-\", [@col1])").unwrap();
        let t = intro_table();
        let all = p.execute(&t);
        for (row, expected) in all.iter().enumerate() {
            assert_eq!(&p.execute_row(&t, row), expected, "row {row}");
        }
    }

    #[test]
    fn parse_errors_surface() {
        assert!(ColumnProgram::parse("=SEARCH(").is_err());
    }

    #[test]
    fn empty_table_fully_successful() {
        let p = ColumnProgram::parse("=LEN([@x])").unwrap();
        let t = Table::new(vec![Column::from_texts("x", &[] as &[&str])]);
        let g = p.execution_groups(&t);
        assert!(g.fully_successful());
        assert_eq!(g.success_rate(), 1.0);
    }
}
