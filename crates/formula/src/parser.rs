//! Pratt parser for formulas.
//!
//! Precedence (loosest → tightest): comparison, `&`, `+ -`, `* /`, `^`,
//! unary. `^` is right-associative like Excel's.

use crate::ast::{BinOp, Expr, UnOp};
use crate::lexer::{lex, LexError, Token};
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parses a formula string into an expression.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr(0)?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            message: format!("unexpected trailing tokens at {}", p.pos),
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

fn bin_op(tok: &Token) -> Option<(BinOp, u8)> {
    Some(match tok {
        Token::Eq => (BinOp::Eq, 1),
        Token::Ne => (BinOp::Ne, 1),
        Token::Lt => (BinOp::Lt, 1),
        Token::Le => (BinOp::Le, 1),
        Token::Gt => (BinOp::Gt, 1),
        Token::Ge => (BinOp::Ge, 1),
        Token::Amp => (BinOp::Concat, 2),
        Token::Plus => (BinOp::Add, 3),
        Token::Minus => (BinOp::Sub, 3),
        Token::Star => (BinOp::Mul, 4),
        Token::Slash => (BinOp::Div, 4),
        Token::Caret => (BinOp::Pow, 5),
        _ => return None,
    })
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == *tok => Ok(()),
            other => Err(ParseError {
                message: format!("expected {tok:?}, found {other:?}"),
            }),
        }
    }

    fn expr(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.prefix()?;
        while let Some((op, bp)) = self.peek().and_then(bin_op) {
            if bp < min_bp {
                break;
            }
            self.next();
            // `^` is right-associative; everything else left-associative.
            let next_bp = if op == BinOp::Pow { bp } else { bp + 1 };
            let rhs = self.expr(next_bp)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Num(n)) => Ok(Expr::Num(n)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Err(e)) => Ok(Expr::Err(e)),
            Some(Token::ColRef(name)) => Ok(Expr::ColRef(name)),
            Some(Token::Minus) => Ok(Expr::Unary(UnOp::Neg, Box::new(self.expr(6)?))),
            Some(Token::Plus) => Ok(Expr::Unary(UnOp::Pos, Box::new(self.expr(6)?))),
            Some(Token::LParen) => {
                let inner = self.expr(0)?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                if self.peek() == Some(&Token::LParen) {
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr(0)?);
                            match self.next() {
                                Some(Token::Comma) => continue,
                                Some(Token::RParen) => break,
                                other => {
                                    return Err(ParseError {
                                        message: format!(
                                            "expected ',' or ')' in argument list, found {other:?}"
                                        ),
                                    })
                                }
                            }
                        }
                    } else {
                        self.next();
                    }
                    Ok(Expr::Call(upper, args))
                } else {
                    match upper.as_str() {
                        "TRUE" => Ok(Expr::Bool(true)),
                        "FALSE" => Ok(Expr::Bool(false)),
                        _ => Err(ParseError {
                            message: format!("bare identifier {name:?} (missing parentheses?)"),
                        }),
                    }
                }
            }
            other => Err(ParseError {
                message: format!("unexpected token {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_search_formula() {
        let e = parse("=SEARCH(\"-\", [@col1])").unwrap();
        assert_eq!(
            e,
            Expr::Call(
                "SEARCH".into(),
                vec![Expr::Str("-".into()), Expr::ColRef("col1".into())]
            )
        );
    }

    #[test]
    fn precedence_and_associativity() {
        // 1+2*3 = 1+(2*3)
        let e = parse("1+2*3").unwrap();
        assert_eq!(
            e,
            Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Num(1.0)),
                Box::new(Expr::Binary(
                    BinOp::Mul,
                    Box::new(Expr::Num(2.0)),
                    Box::new(Expr::Num(3.0))
                ))
            )
        );
        // 2^3^2 is right-assoc: 2^(3^2)
        let e = parse("2^3^2").unwrap();
        match e {
            Expr::Binary(BinOp::Pow, lhs, _) => assert_eq!(*lhs, Expr::Num(2.0)),
            other => panic!("unexpected {other:?}"),
        }
        // Concat binds looser than +: "a" & 1+2
        let e = parse("\"a\"&1+2").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Concat, _, _)));
    }

    #[test]
    fn comparison_is_loosest() {
        let e = parse("[@a]&\"x\"=\"yx\"").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn unary_minus() {
        let e = parse("-[@n]+1").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Add, _, _)));
        // Excel quirk: unary minus binds tighter than `^`, so -2^2 = (-2)^2.
        let e = parse("-2^2").unwrap();
        match e {
            Expr::Binary(BinOp::Pow, lhs, _) => {
                assert!(matches!(*lhs, Expr::Unary(UnOp::Neg, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_calls() {
        let e = parse("IF(ISNUMBER(VALUE([@x])), LEN([@x]), 0)").unwrap();
        match e {
            Expr::Call(name, args) => {
                assert_eq!(name, "IF");
                assert_eq!(args.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn true_false_literals() {
        assert_eq!(parse("TRUE").unwrap(), Expr::Bool(true));
        assert_eq!(parse("false").unwrap(), Expr::Bool(false));
    }

    #[test]
    fn zero_arg_call() {
        assert_eq!(parse("NOW()").unwrap(), Expr::Call("NOW".into(), vec![]));
    }

    #[test]
    fn rejects_trailing_tokens_and_bad_args() {
        assert!(parse("1 2").is_err());
        assert!(parse("LEN(1 2)").is_err());
        assert!(parse("foo").is_err());
        assert!(parse("(1").is_err());
    }

    #[test]
    fn function_names_case_normalized() {
        assert_eq!(
            parse("len([@a])").unwrap(),
            Expr::Call("LEN".into(), vec![Expr::ColRef("a".into())])
        );
    }
}
