//! The built-in function library (~40 Excel functions).
//!
//! All functions receive eagerly evaluated scalar arguments; control-flow
//! forms with lazy/error-capturing semantics (`IF`, `IFERROR`, `IFNA`) are
//! special-cased in the evaluator.

use crate::value::{to_bool, to_number, to_text};
use datavinci_table::{CellValue, ErrorValue};

type R = Result<CellValue, ErrorValue>;

fn num(n: f64) -> R {
    if n.is_finite() {
        Ok(CellValue::Number(n))
    } else {
        Err(ErrorValue::Num)
    }
}

fn text(s: String) -> R {
    Ok(CellValue::Text(s))
}

fn arg(args: &[CellValue], i: usize) -> Result<&CellValue, ErrorValue> {
    args.get(i).ok_or(ErrorValue::Value)
}

fn opt_number(args: &[CellValue], i: usize, default: f64) -> Result<f64, ErrorValue> {
    match args.get(i) {
        Some(v) => to_number(v),
        None => Ok(default),
    }
}

/// Is `name` a known function?
pub fn is_known(name: &str) -> bool {
    KNOWN.contains(&name)
}

/// All dispatchable function names (the lazy forms included for docs).
pub const KNOWN: &[&str] = &[
    "LEN",
    "LEFT",
    "RIGHT",
    "MID",
    "UPPER",
    "LOWER",
    "TRIM",
    "PROPER",
    "CONCAT",
    "CONCATENATE",
    "SUBSTITUTE",
    "REPLACE",
    "REPT",
    "EXACT",
    "SEARCH",
    "FIND",
    "VALUE",
    "NUMBERVALUE",
    "TEXT",
    "CHAR",
    "CODE",
    "T",
    "ABS",
    "ROUND",
    "ROUNDUP",
    "ROUNDDOWN",
    "INT",
    "MOD",
    "SQRT",
    "POWER",
    "SIGN",
    "MIN",
    "MAX",
    "SUM",
    "AVERAGE",
    "PRODUCT",
    "AND",
    "OR",
    "NOT",
    "ISNUMBER",
    "ISTEXT",
    "ISBLANK",
    "ISERROR",
    "ISNA",
    "ISLOGICAL",
    "DATEVALUE",
    "YEAR",
    "MONTH",
    "DAY",
    "DATE",
    "IF",
    "IFERROR",
    "IFNA",
];

/// Dispatches a function call over evaluated arguments.
pub fn call(name: &str, args: &[CellValue]) -> R {
    match name {
        // ---- text ----
        "LEN" => num(to_text(arg(args, 0)?)?.chars().count() as f64),
        "UPPER" => text(to_text(arg(args, 0)?)?.to_uppercase()),
        "LOWER" => text(to_text(arg(args, 0)?)?.to_lowercase()),
        "TRIM" => {
            // Excel TRIM also collapses internal runs of spaces.
            let s = to_text(arg(args, 0)?)?;
            let words: Vec<&str> = s.split(' ').filter(|w| !w.is_empty()).collect();
            text(words.join(" "))
        }
        "PROPER" => {
            let s = to_text(arg(args, 0)?)?;
            let mut out = String::with_capacity(s.len());
            let mut start_of_word = true;
            for c in s.chars() {
                if c.is_ascii_alphabetic() {
                    if start_of_word {
                        out.extend(c.to_uppercase());
                    } else {
                        out.extend(c.to_lowercase());
                    }
                    start_of_word = false;
                } else {
                    out.push(c);
                    start_of_word = true;
                }
            }
            text(out)
        }
        "CONCAT" | "CONCATENATE" => {
            let mut out = String::new();
            for a in args {
                out.push_str(&to_text(a)?);
            }
            text(out)
        }
        "LEFT" => {
            let s = to_text(arg(args, 0)?)?;
            let n = opt_number(args, 1, 1.0)?;
            if n < 0.0 {
                return Err(ErrorValue::Value);
            }
            text(s.chars().take(n as usize).collect())
        }
        "RIGHT" => {
            let s = to_text(arg(args, 0)?)?;
            let n = opt_number(args, 1, 1.0)?;
            if n < 0.0 {
                return Err(ErrorValue::Value);
            }
            let chars: Vec<char> = s.chars().collect();
            let k = (n as usize).min(chars.len());
            text(chars[chars.len() - k..].iter().collect())
        }
        "MID" => {
            let s = to_text(arg(args, 0)?)?;
            let start = to_number(arg(args, 1)?)?;
            let len = to_number(arg(args, 2)?)?;
            if start < 1.0 || len < 0.0 {
                return Err(ErrorValue::Value);
            }
            text(
                s.chars()
                    .skip(start as usize - 1)
                    .take(len as usize)
                    .collect(),
            )
        }
        "SUBSTITUTE" => {
            let s = to_text(arg(args, 0)?)?;
            let old = to_text(arg(args, 1)?)?;
            let new = to_text(arg(args, 2)?)?;
            if old.is_empty() {
                return text(s);
            }
            match args.get(3) {
                None => text(s.replace(&old, &new)),
                Some(v) => {
                    let nth = to_number(v)?;
                    if nth < 1.0 {
                        return Err(ErrorValue::Value);
                    }
                    let nth = nth as usize;
                    let mut out = String::new();
                    let mut rest = s.as_str();
                    let mut count = 0usize;
                    while let Some(pos) = rest.find(&old) {
                        count += 1;
                        out.push_str(&rest[..pos]);
                        if count == nth {
                            out.push_str(&new);
                        } else {
                            out.push_str(&old);
                        }
                        rest = &rest[pos + old.len()..];
                    }
                    out.push_str(rest);
                    text(out)
                }
            }
        }
        "REPLACE" => {
            let s: Vec<char> = to_text(arg(args, 0)?)?.chars().collect();
            let start = to_number(arg(args, 1)?)?;
            let len = to_number(arg(args, 2)?)?;
            let new = to_text(arg(args, 3)?)?;
            if start < 1.0 || len < 0.0 {
                return Err(ErrorValue::Value);
            }
            let start = (start as usize - 1).min(s.len());
            let end = (start + len as usize).min(s.len());
            let mut out: String = s[..start].iter().collect();
            out.push_str(&new);
            out.extend(&s[end..]);
            text(out)
        }
        "REPT" => {
            let s = to_text(arg(args, 0)?)?;
            let n = to_number(arg(args, 1)?)?;
            if n < 0.0 || (n as usize) * s.len() > 32_767 {
                return Err(ErrorValue::Value);
            }
            text(s.repeat(n as usize))
        }
        "EXACT" => {
            let a = to_text(arg(args, 0)?)?;
            let b = to_text(arg(args, 1)?)?;
            Ok(CellValue::Bool(a == b))
        }
        "SEARCH" | "FIND" => {
            let needle = to_text(arg(args, 0)?)?;
            let hay = to_text(arg(args, 1)?)?;
            let start = opt_number(args, 2, 1.0)?;
            if start < 1.0 {
                return Err(ErrorValue::Value);
            }
            let hay_chars: Vec<char> = hay.chars().collect();
            let skip = start as usize - 1;
            if skip > hay_chars.len() {
                return Err(ErrorValue::Value);
            }
            let (h, n) = if name == "SEARCH" {
                (
                    hay_chars[skip..].iter().collect::<String>().to_lowercase(),
                    needle.to_lowercase(),
                )
            } else {
                (hay_chars[skip..].iter().collect::<String>(), needle)
            };
            match h.find(&n) {
                Some(byte_pos) => {
                    let char_pos = h[..byte_pos].chars().count();
                    num((skip + char_pos + 1) as f64)
                }
                None => Err(ErrorValue::Value),
            }
        }
        "VALUE" | "NUMBERVALUE" => {
            let raw = to_text(arg(args, 0)?)?;
            let mut s = raw.trim().to_string();
            let mut scale = 1.0;
            if s.ends_with('%') {
                s.pop();
                scale = 0.01;
            }
            if s.starts_with('$') {
                s.remove(0);
            }
            let s = s.replace(',', "");
            if s.is_empty() {
                return Err(ErrorValue::Value);
            }
            match s.parse::<f64>() {
                Ok(n) if n.is_finite() => num(n * scale),
                _ => Err(ErrorValue::Value),
            }
        }
        "TEXT" => {
            let v = to_number(arg(args, 0)?)?;
            let fmt = to_text(arg(args, 1)?)?;
            text(format_number(v, &fmt))
        }
        "CHAR" => {
            let n = to_number(arg(args, 0)?)?;
            if !(1.0..=255.0).contains(&n) {
                return Err(ErrorValue::Value);
            }
            text(char::from_u32(n as u32).unwrap_or('?').to_string())
        }
        "CODE" => {
            let s = to_text(arg(args, 0)?)?;
            match s.chars().next() {
                Some(c) => num(c as u32 as f64),
                None => Err(ErrorValue::Value),
            }
        }
        "T" => match arg(args, 0)? {
            CellValue::Text(s) => text(s.clone()),
            CellValue::Error(e) => Err(*e),
            _ => text(String::new()),
        },

        // ---- math ----
        "ABS" => num(to_number(arg(args, 0)?)?.abs()),
        "ROUND" | "ROUNDUP" | "ROUNDDOWN" => {
            let v = to_number(arg(args, 0)?)?;
            let digits = opt_number(args, 1, 0.0)?;
            let f = 10f64.powi(digits as i32);
            let scaled = v * f;
            let rounded = match name {
                "ROUND" => scaled.round(),
                "ROUNDUP" => scaled.abs().ceil() * scaled.signum(),
                _ => scaled.abs().floor() * scaled.signum(),
            };
            num(rounded / f)
        }
        "INT" => num(to_number(arg(args, 0)?)?.floor()),
        "MOD" => {
            let a = to_number(arg(args, 0)?)?;
            let b = to_number(arg(args, 1)?)?;
            if b == 0.0 {
                return Err(ErrorValue::Div0);
            }
            num(a - b * (a / b).floor())
        }
        "SQRT" => {
            let v = to_number(arg(args, 0)?)?;
            if v < 0.0 {
                return Err(ErrorValue::Num);
            }
            num(v.sqrt())
        }
        "POWER" => num(to_number(arg(args, 0)?)?.powf(to_number(arg(args, 1)?)?)),
        "SIGN" => {
            num(to_number(arg(args, 0)?)?.signum() * f64::from(to_number(arg(args, 0)?)? != 0.0))
        }
        "MIN" | "MAX" | "SUM" | "AVERAGE" | "PRODUCT" => {
            if args.is_empty() {
                return Err(ErrorValue::Value);
            }
            let nums: Result<Vec<f64>, ErrorValue> = args.iter().map(to_number).collect();
            let nums = nums?;
            let v = match name {
                "MIN" => nums.iter().copied().fold(f64::INFINITY, f64::min),
                "MAX" => nums.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                "SUM" => nums.iter().sum(),
                "AVERAGE" => nums.iter().sum::<f64>() / nums.len() as f64,
                _ => nums.iter().product(),
            };
            num(v)
        }

        // ---- logic / type predicates ----
        "AND" | "OR" => {
            if args.is_empty() {
                return Err(ErrorValue::Value);
            }
            let bools: Result<Vec<bool>, ErrorValue> = args.iter().map(to_bool).collect();
            let bools = bools?;
            Ok(CellValue::Bool(if name == "AND" {
                bools.iter().all(|b| *b)
            } else {
                bools.iter().any(|b| *b)
            }))
        }
        "NOT" => Ok(CellValue::Bool(!to_bool(arg(args, 0)?)?)),
        "ISNUMBER" => Ok(CellValue::Bool(arg(args, 0)?.is_number())),
        "ISTEXT" => Ok(CellValue::Bool(arg(args, 0)?.is_text())),
        "ISBLANK" => Ok(CellValue::Bool(arg(args, 0)?.is_blank())),
        "ISERROR" => Ok(CellValue::Bool(arg(args, 0)?.is_error())),
        "ISNA" => Ok(CellValue::Bool(arg(args, 0)?.is_na())),
        "ISLOGICAL" => Ok(CellValue::Bool(arg(args, 0)?.is_bool())),

        // ---- dates ----
        "DATEVALUE" => {
            let s = to_text(arg(args, 0)?)?;
            parse_date(&s)
                .map(CellValue::Number)
                .ok_or(ErrorValue::Value)
        }
        "DATE" => {
            let y = to_number(arg(args, 0)?)? as i64;
            let m = to_number(arg(args, 1)?)? as i64;
            let d = to_number(arg(args, 2)?)? as i64;
            if !(1..=12).contains(&m) || !(1..=31).contains(&d) || !(1900..=9999).contains(&y) {
                return Err(ErrorValue::Num);
            }
            num(serial_from_ymd(y, m as u32, d as u32))
        }
        "YEAR" | "MONTH" | "DAY" => {
            let serial = to_number(arg(args, 0)?)?;
            if serial < 1.0 {
                return Err(ErrorValue::Num);
            }
            let (y, m, d) = ymd_from_serial(serial);
            num(match name {
                "YEAR" => y as f64,
                "MONTH" => m as f64,
                _ => d as f64,
            })
        }

        // Lazy forms reaching here mean the evaluator missed them.
        "IF" | "IFERROR" | "IFNA" => Err(ErrorValue::Value),
        _ => Err(ErrorValue::Name),
    }
}

/// Minimal `TEXT` number formats.
fn format_number(v: f64, fmt: &str) -> String {
    let decimals = fmt
        .rsplit_once('.')
        .map(|(_, frac)| frac.chars().filter(|c| *c == '0').count())
        .unwrap_or(0);
    let grouped = fmt.contains(',');
    let percent = fmt.contains('%');
    let v = if percent { v * 100.0 } else { v };
    let body = format!("{v:.decimals$}");
    let body = if grouped {
        group_thousands(&body)
    } else {
        body
    };
    if percent {
        format!("{body}%")
    } else {
        body
    }
}

fn group_thousands(s: &str) -> String {
    let (sign, rest) = s.strip_prefix('-').map_or(("", s), |r| ("-", r));
    let (int, frac) = rest
        .split_once('.')
        .map_or((rest, None), |(i, f)| (i, Some(f)));
    let mut grouped = String::new();
    let digits: Vec<char> = int.chars().collect();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(*c);
    }
    match frac {
        Some(f) => format!("{sign}{grouped}.{f}"),
        None => format!("{sign}{grouped}"),
    }
}

/// Days-from-civil (Howard Hinnant's algorithm), anchored to Excel's
/// serial 1 = 1900-01-01 (the 1900 leap-year bug is deliberately not
/// reproduced).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = ((m + 9) % 12) as u64;
    let doy = (153 * mp + 2) / 5 + d as u64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i64 - 719_468
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn serial_from_ymd(y: i64, m: u32, d: u32) -> f64 {
    (days_from_civil(y, m, d) - days_from_civil(1899, 12, 31)) as f64
}

fn ymd_from_serial(serial: f64) -> (i64, u32, u32) {
    civil_from_days(serial as i64 + days_from_civil(1899, 12, 31))
}

/// Parses `YYYY-MM-DD` or `M/D/YYYY` into an Excel serial.
fn parse_date(s: &str) -> Option<f64> {
    let s = s.trim();
    let (y, m, d) = if let Some((y, rest)) = s.split_once('-') {
        let (m, d) = rest.split_once('-')?;
        (y.parse().ok()?, m.parse().ok()?, d.parse().ok()?)
    } else if let Some((m, rest)) = s.split_once('/') {
        let (d, y) = rest.split_once('/')?;
        (y.parse().ok()?, m.parse().ok()?, d.parse().ok()?)
    } else {
        return None;
    };
    if !(1900..=9999).contains(&y) || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    // Reject dates the calendar round-trip disagrees with (e.g. Feb 30).
    let serial = serial_from_ymd(y, m, d);
    let (ry, rm, rd) = ymd_from_serial(serial);
    (ry == y && rm == m && rd == d).then_some(serial)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> CellValue {
        CellValue::text(s)
    }

    fn n(v: f64) -> CellValue {
        CellValue::Number(v)
    }

    #[test]
    fn text_functions() {
        assert_eq!(call("LEN", &[t("abc")]), Ok(n(3.0)));
        assert_eq!(call("UPPER", &[t("aB")]), Ok(t("AB")));
        assert_eq!(call("TRIM", &[t("  a   b ")]), Ok(t("a b")));
        assert_eq!(call("PROPER", &[t("new york")]), Ok(t("New York")));
        assert_eq!(call("LEFT", &[t("abcd"), n(2.0)]), Ok(t("ab")));
        assert_eq!(call("RIGHT", &[t("abcd"), n(3.0)]), Ok(t("bcd")));
        assert_eq!(call("MID", &[t("abcdef"), n(2.0), n(3.0)]), Ok(t("bcd")));
        assert_eq!(call("REPT", &[t("ab"), n(3.0)]), Ok(t("ababab")));
        assert_eq!(call("CONCAT", &[t("a"), n(1.0), t("b")]), Ok(t("a1b")));
    }

    #[test]
    fn search_vs_find() {
        assert_eq!(call("SEARCH", &[t("b"), t("ABC")]), Ok(n(2.0)));
        assert_eq!(call("FIND", &[t("b"), t("ABC")]), Err(ErrorValue::Value));
        assert_eq!(call("FIND", &[t("B"), t("ABC")]), Ok(n(2.0)));
        assert_eq!(
            call("SEARCH", &[t("-"), t("c3")]),
            Err(ErrorValue::Value),
            "the paper's motivating example: SEARCH on c3 errors"
        );
        assert_eq!(call("SEARCH", &[t("-"), t("c-3")]), Ok(n(2.0)));
        // start offset
        assert_eq!(call("SEARCH", &[t("a"), t("banana"), n(3.0)]), Ok(n(4.0)));
    }

    #[test]
    fn substitute_and_replace() {
        assert_eq!(
            call("SUBSTITUTE", &[t("a-b-c"), t("-"), t("_")]),
            Ok(t("a_b_c"))
        );
        assert_eq!(
            call("SUBSTITUTE", &[t("a-b-c"), t("-"), t("_"), n(2.0)]),
            Ok(t("a-b_c"))
        );
        assert_eq!(
            call("REPLACE", &[t("abcdef"), n(2.0), n(3.0), t("XY")]),
            Ok(t("aXYef"))
        );
    }

    #[test]
    fn value_parsing() {
        assert_eq!(call("VALUE", &[t("1,234.5")]), Ok(n(1234.5)));
        assert_eq!(call("VALUE", &[t("$42")]), Ok(n(42.0)));
        assert_eq!(call("VALUE", &[t("50%")]), Ok(n(0.5)));
        assert_eq!(call("VALUE", &[t("12a")]), Err(ErrorValue::Value));
        assert_eq!(call("NUMBERVALUE", &[t("03.45")]), Ok(n(3.45)));
    }

    #[test]
    fn math_functions() {
        assert_eq!(call("ROUND", &[n(2.567), n(1.0)]), Ok(n(2.6)));
        assert_eq!(call("ROUNDDOWN", &[n(2.567), n(1.0)]), Ok(n(2.5)));
        assert_eq!(call("ROUNDUP", &[n(-2.51), n(0.0)]), Ok(n(-3.0)));
        assert_eq!(call("INT", &[n(-1.5)]), Ok(n(-2.0)));
        assert_eq!(call("MOD", &[n(-3.0), n(2.0)]), Ok(n(1.0)));
        assert_eq!(call("MOD", &[n(3.0), n(0.0)]), Err(ErrorValue::Div0));
        assert_eq!(call("SQRT", &[n(-1.0)]), Err(ErrorValue::Num));
        assert_eq!(call("SUM", &[n(1.0), t("2"), n(3.0)]), Ok(n(6.0)));
        assert_eq!(call("MAX", &[n(1.0), n(9.0), n(4.0)]), Ok(n(9.0)));
        assert_eq!(call("AVERAGE", &[n(2.0), n(4.0)]), Ok(n(3.0)));
    }

    #[test]
    fn logic_and_predicates() {
        assert_eq!(
            call("AND", &[CellValue::Bool(true), n(1.0)]),
            Ok(CellValue::Bool(true))
        );
        assert_eq!(
            call("OR", &[CellValue::Bool(false), n(0.0)]),
            Ok(CellValue::Bool(false))
        );
        assert_eq!(
            call("NOT", &[CellValue::Bool(false)]),
            Ok(CellValue::Bool(true))
        );
        assert_eq!(call("ISNUMBER", &[t("3")]), Ok(CellValue::Bool(false)));
        assert_eq!(call("ISNUMBER", &[n(3.0)]), Ok(CellValue::Bool(true)));
        assert_eq!(
            call("ISERROR", &[CellValue::Error(ErrorValue::NA)]),
            Ok(CellValue::Bool(true))
        );
    }

    #[test]
    fn dates_round_trip() {
        let serial = call("DATEVALUE", &[t("2020-03-15")]).unwrap();
        let s = serial.as_number().unwrap();
        assert_eq!(call("YEAR", &[n(s)]), Ok(n(2020.0)));
        assert_eq!(call("MONTH", &[n(s)]), Ok(n(3.0)));
        assert_eq!(call("DAY", &[n(s)]), Ok(n(15.0)));
        // US format.
        assert_eq!(call("DATEVALUE", &[t("3/15/2020")]), Ok(n(s)));
        // serial 1 = 1900-01-01.
        assert_eq!(call("YEAR", &[n(1.0)]), Ok(n(1900.0)));
        assert_eq!(call("DAY", &[n(1.0)]), Ok(n(1.0)));
        // Invalid dates rejected.
        assert_eq!(
            call("DATEVALUE", &[t("2020-02-30")]),
            Err(ErrorValue::Value)
        );
        assert_eq!(call("DATEVALUE", &[t("Q1-22")]), Err(ErrorValue::Value));
    }

    #[test]
    fn text_formatting() {
        assert_eq!(call("TEXT", &[n(1234.5), t("#,##0.00")]), Ok(t("1,234.50")));
        assert_eq!(call("TEXT", &[n(0.25), t("0%")]), Ok(t("25%")));
        assert_eq!(call("TEXT", &[n(7.0), t("0")]), Ok(t("7")));
    }

    #[test]
    fn unknown_function_is_name_error() {
        assert_eq!(call("FROBNICATE", &[]), Err(ErrorValue::Name));
    }

    #[test]
    fn exact_and_compare_helpers() {
        use crate::value::compare;
        assert_eq!(call("EXACT", &[t("a"), t("A")]), Ok(CellValue::Bool(false)));
        assert!(compare(&t("a"), &t("A")).unwrap().is_eq());
    }
}
