//! Excel-style value coercions with error propagation.

use datavinci_table::{CellValue, ErrorValue};

/// Coerces to a number: numbers pass, booleans map to 1/0, numeric text
/// parses, blanks are 0; anything else is `#VALUE!`.
pub fn to_number(v: &CellValue) -> Result<f64, ErrorValue> {
    match v {
        CellValue::Number(n) => Ok(*n),
        CellValue::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
        CellValue::Blank => Ok(0.0),
        CellValue::Text(s) => {
            let t = s.trim();
            t.parse::<f64>()
                .ok()
                .filter(|n| n.is_finite())
                .ok_or(ErrorValue::Value)
        }
        CellValue::Error(e) => Err(*e),
    }
}

/// Coerces to text: the rendering concatenation sees. Errors propagate.
pub fn to_text(v: &CellValue) -> Result<String, ErrorValue> {
    match v {
        CellValue::Error(e) => Err(*e),
        other => Ok(other.coerce_text().unwrap_or_default()),
    }
}

/// Coerces to a logical: booleans pass, numbers are `≠ 0`, TRUE/FALSE text
/// parses (case-insensitive), blanks are false.
pub fn to_bool(v: &CellValue) -> Result<bool, ErrorValue> {
    match v {
        CellValue::Bool(b) => Ok(*b),
        CellValue::Number(n) => Ok(*n != 0.0),
        CellValue::Blank => Ok(false),
        CellValue::Text(s) => match s.trim().to_ascii_uppercase().as_str() {
            "TRUE" => Ok(true),
            "FALSE" => Ok(false),
            _ => Err(ErrorValue::Value),
        },
        CellValue::Error(e) => Err(*e),
    }
}

/// Excel-style ordering for comparison operators: numbers < text < booleans;
/// text compares case-insensitively.
pub fn compare(a: &CellValue, b: &CellValue) -> Result<std::cmp::Ordering, ErrorValue> {
    use std::cmp::Ordering;
    fn rank(v: &CellValue) -> u8 {
        match v {
            CellValue::Number(_) | CellValue::Blank => 0,
            CellValue::Text(_) => 1,
            CellValue::Bool(_) => 2,
            CellValue::Error(_) => 3,
        }
    }
    if let CellValue::Error(e) = a {
        return Err(*e);
    }
    if let CellValue::Error(e) = b {
        return Err(*e);
    }
    let (ra, rb) = (rank(a), rank(b));
    if ra != rb {
        return Ok(ra.cmp(&rb));
    }
    Ok(match (a, b) {
        (CellValue::Text(x), CellValue::Text(y)) => x.to_lowercase().cmp(&y.to_lowercase()),
        (CellValue::Bool(x), CellValue::Bool(y)) => x.cmp(y),
        _ => {
            let x = to_number(a)?;
            let y = to_number(b)?;
            x.partial_cmp(&y).unwrap_or(Ordering::Equal)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_coercions() {
        assert_eq!(to_number(&CellValue::text("42")), Ok(42.0));
        assert_eq!(to_number(&CellValue::text(" 4.5 ")), Ok(4.5));
        assert_eq!(to_number(&CellValue::text("x")), Err(ErrorValue::Value));
        assert_eq!(to_number(&CellValue::Blank), Ok(0.0));
        assert_eq!(to_number(&CellValue::Bool(true)), Ok(1.0));
        assert_eq!(
            to_number(&CellValue::Error(ErrorValue::NA)),
            Err(ErrorValue::NA)
        );
    }

    #[test]
    fn bool_coercions() {
        assert_eq!(to_bool(&CellValue::text("true")), Ok(true));
        assert_eq!(to_bool(&CellValue::Number(0.0)), Ok(false));
        assert_eq!(to_bool(&CellValue::Number(-2.0)), Ok(true));
        assert_eq!(to_bool(&CellValue::text("yes")), Err(ErrorValue::Value));
    }

    #[test]
    fn comparisons() {
        use std::cmp::Ordering::*;
        assert_eq!(
            compare(&CellValue::text("ABC"), &CellValue::text("abc")),
            Ok(Equal)
        );
        assert_eq!(
            compare(&CellValue::Number(5.0), &CellValue::text("1")),
            Ok(Less),
            "numbers sort before text in Excel"
        );
        assert_eq!(
            compare(&CellValue::Number(2.0), &CellValue::Number(1.0)),
            Ok(Greater)
        );
        assert!(compare(&CellValue::Error(ErrorValue::NA), &CellValue::Number(1.0)).is_err());
    }
}
