//! Formula lexer.

use datavinci_table::ErrorValue;
use std::fmt;

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Numeric literal.
    Num(f64),
    /// Quoted string literal (quotes removed, `""` unescaped).
    Str(String),
    /// Identifier (function name, TRUE/FALSE).
    Ident(String),
    /// Structured column reference `[@Name]` / `[@[Name]]`.
    ColRef(String),
    /// Error literal.
    Err(ErrorValue),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `&`
    Amp,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Character offset.
    pub at: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a formula (a leading `=` is permitted and skipped).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    if chars.first() == Some(&'=') {
        i = 1;
    }
    let mut out = Vec::new();
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '^' => {
                out.push(Token::Caret);
                i += 1;
            }
            '&' => {
                out.push(Token::Amp);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let (s, next) = lex_string(&chars, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            '[' => {
                let (name, next) = lex_colref(&chars, i)?;
                out.push(Token::ColRef(name));
                i = next;
            }
            '#' => {
                let (e, next) = lex_error(&chars, i)?;
                out.push(Token::Err(e));
                i = next;
            }
            _ if c.is_ascii_digit()
                || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                // Scientific notation.
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    let mut j = i + 1;
                    if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
                        j += 1;
                    }
                    if j < chars.len() && chars[j].is_ascii_digit() {
                        i = j;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let n = text.parse::<f64>().map_err(|_| LexError {
                    message: format!("bad number literal {text:?}"),
                    at: start,
                })?;
                out.push(Token::Num(n));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            _ => {
                return Err(LexError {
                    message: format!("unexpected character {c:?}"),
                    at: i,
                })
            }
        }
    }
    Ok(out)
}

fn lex_string(chars: &[char], start: usize) -> Result<(String, usize), LexError> {
    let mut s = String::new();
    let mut i = start + 1;
    while i < chars.len() {
        if chars[i] == '"' {
            if chars.get(i + 1) == Some(&'"') {
                s.push('"');
                i += 2;
            } else {
                return Ok((s, i + 1));
            }
        } else {
            s.push(chars[i]);
            i += 1;
        }
    }
    Err(LexError {
        message: "unterminated string literal".into(),
        at: start,
    })
}

fn lex_colref(chars: &[char], start: usize) -> Result<(String, usize), LexError> {
    // `[@Name]` or `[@[Name with specials]]`.
    if chars.get(start + 1) != Some(&'@') {
        return Err(LexError {
            message: "expected '@' after '[' in column reference".into(),
            at: start,
        });
    }
    let mut i = start + 2;
    if chars.get(i) == Some(&'[') {
        i += 1;
        let name_start = i;
        while i < chars.len() && chars[i] != ']' {
            i += 1;
        }
        if chars.get(i) != Some(&']') || chars.get(i + 1) != Some(&']') {
            return Err(LexError {
                message: "unterminated bracketed column reference".into(),
                at: start,
            });
        }
        Ok((chars[name_start..i].iter().collect(), i + 2))
    } else {
        let name_start = i;
        while i < chars.len() && chars[i] != ']' {
            i += 1;
        }
        if chars.get(i) != Some(&']') {
            return Err(LexError {
                message: "unterminated column reference".into(),
                at: start,
            });
        }
        Ok((chars[name_start..i].iter().collect(), i + 1))
    }
}

fn lex_error(chars: &[char], start: usize) -> Result<(ErrorValue, usize), LexError> {
    for e in [
        ErrorValue::Value,
        ErrorValue::Div0,
        ErrorValue::NA,
        ErrorValue::Num,
        ErrorValue::Name,
        ErrorValue::Ref,
    ] {
        let lit: Vec<char> = e.as_str().chars().collect();
        if chars[start..].starts_with(&lit) {
            return Ok((e, start + lit.len()));
        }
    }
    Err(LexError {
        message: "unknown error literal".into(),
        at: start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_search_formula() {
        let toks = lex("=SEARCH(\"-\", [@col1])").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SEARCH".into()),
                Token::LParen,
                Token::Str("-".into()),
                Token::Comma,
                Token::ColRef("col1".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(lex("1.5").unwrap(), vec![Token::Num(1.5)]);
        assert_eq!(lex("2e3").unwrap(), vec![Token::Num(2000.0)]);
        assert_eq!(lex(".5").unwrap(), vec![Token::Num(0.5)]);
    }

    #[test]
    fn lex_operators() {
        let toks = lex("1<>2<=3>=4&5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Num(1.0),
                Token::Ne,
                Token::Num(2.0),
                Token::Le,
                Token::Num(3.0),
                Token::Ge,
                Token::Num(4.0),
                Token::Amp,
                Token::Num(5.0),
            ]
        );
    }

    #[test]
    fn lex_escaped_quotes() {
        assert_eq!(
            lex("\"he said \"\"hi\"\"\"").unwrap(),
            vec![Token::Str("he said \"hi\"".into())]
        );
    }

    #[test]
    fn lex_bracketed_column_name() {
        assert_eq!(
            lex("[@[Player ID]]").unwrap(),
            vec![Token::ColRef("Player ID".into())]
        );
    }

    #[test]
    fn lex_error_literals() {
        assert_eq!(lex("#N/A").unwrap(), vec![Token::Err(ErrorValue::NA)]);
        assert_eq!(lex("#DIV/0!").unwrap(), vec![Token::Err(ErrorValue::Div0)]);
    }

    #[test]
    fn lex_rejects_garbage() {
        assert!(lex("~").is_err());
        assert!(lex("\"open").is_err());
        assert!(lex("[@oops").is_err());
    }
}
