//! An Excel-like formula engine: the execution substrate for DataVinci's
//! execution-guided repair (paper §3.6) and the Excel-Formulas benchmark.
//!
//! The engine is deliberately spreadsheet-faithful where it matters to the
//! paper: structured column references (`[@col1]`), ~40 common functions
//! (`SEARCH`, `LEFT`, `VALUE`, `DATEVALUE`, …), Excel coercion rules, and
//! error *values* (`#VALUE!`, `#DIV/0!`, …) rather than exceptions — a
//! failing execution is data, and execution-guided repair groups rows by
//! exactly that signal.
//!
//! Entry points: [`ColumnProgram::parse`] → [`ColumnProgram::execute`] /
//! [`ColumnProgram::execution_groups`].

pub mod ast;
pub mod eval;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod program;
pub mod value;

pub use ast::{BinOp, Expr, UnOp};
pub use eval::{eval, RowCtx};
pub use parser::{parse, ParseError};
pub use program::{ColumnProgram, ExecutionGroups};
