//! Row-wise formula evaluation.

use crate::ast::{BinOp, Expr, UnOp};
use crate::functions;
use crate::value::{compare, to_number, to_text};
use datavinci_table::{CellValue, ErrorValue, Table};

/// Evaluation context: one row of a table.
#[derive(Debug, Clone, Copy)]
pub struct RowCtx<'a> {
    /// The table the formula reads.
    pub table: &'a Table,
    /// Row index.
    pub row: usize,
}

/// Evaluates an expression for one row; errors surface as error *values*
/// (the formula engine is total — it never panics on data).
pub fn eval(expr: &Expr, ctx: &RowCtx<'_>) -> CellValue {
    match eval_r(expr, ctx) {
        Ok(v) => v,
        Err(e) => CellValue::Error(e),
    }
}

fn eval_r(expr: &Expr, ctx: &RowCtx<'_>) -> Result<CellValue, ErrorValue> {
    match expr {
        Expr::Num(n) => Ok(CellValue::Number(*n)),
        Expr::Str(s) => Ok(CellValue::Text(s.clone())),
        Expr::Bool(b) => Ok(CellValue::Bool(*b)),
        Expr::Err(e) => Err(*e),
        Expr::ColRef(name) => {
            let col = ctx.table.column_by_name(name).ok_or(ErrorValue::Ref)?;
            let v = col.get(ctx.row).ok_or(ErrorValue::Ref)?;
            match v {
                CellValue::Error(e) => Err(*e),
                other => Ok(other.clone()),
            }
        }
        Expr::Unary(op, inner) => {
            let v = to_number(&eval_r(inner, ctx)?)?;
            Ok(CellValue::Number(match op {
                UnOp::Neg => -v,
                UnOp::Pos => v,
            }))
        }
        Expr::Binary(op, a, b) => {
            let va = eval_r(a, ctx)?;
            let vb = eval_r(b, ctx)?;
            eval_binop(*op, &va, &vb)
        }
        Expr::Call(name, args) => match name.as_str() {
            // Lazy / error-capturing control-flow forms.
            "IF" => {
                if args.len() < 2 || args.len() > 3 {
                    return Err(ErrorValue::Value);
                }
                let cond = crate::value::to_bool(&eval_r(&args[0], ctx)?)?;
                if cond {
                    eval_r(&args[1], ctx)
                } else {
                    match args.get(2) {
                        Some(e) => eval_r(e, ctx),
                        None => Ok(CellValue::Bool(false)),
                    }
                }
            }
            "IFERROR" => {
                if args.len() != 2 {
                    return Err(ErrorValue::Value);
                }
                match eval_r(&args[0], ctx) {
                    Err(_) => eval_r(&args[1], ctx),
                    ok => ok,
                }
            }
            "IFNA" => {
                if args.len() != 2 {
                    return Err(ErrorValue::Value);
                }
                match eval_r(&args[0], ctx) {
                    Err(ErrorValue::NA) => eval_r(&args[1], ctx),
                    other => other,
                }
            }
            // Type predicates must *see* errors, not propagate them.
            "ISERROR" | "ISNA" => {
                if args.len() != 1 {
                    return Err(ErrorValue::Value);
                }
                let v = match eval_r(&args[0], ctx) {
                    Ok(v) => v,
                    Err(e) => CellValue::Error(e),
                };
                functions::call(name, &[v])
            }
            _ => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(eval_r(a, ctx)?);
                }
                functions::call(name, &vals)
            }
        },
    }
}

fn eval_binop(op: BinOp, a: &CellValue, b: &CellValue) -> Result<CellValue, ErrorValue> {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow => {
            let x = to_number(a)?;
            let y = to_number(b)?;
            let v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        return Err(ErrorValue::Div0);
                    }
                    x / y
                }
                _ => x.powf(y),
            };
            if v.is_finite() {
                Ok(CellValue::Number(v))
            } else {
                Err(ErrorValue::Num)
            }
        }
        BinOp::Concat => {
            let mut s = to_text(a)?;
            s.push_str(&to_text(b)?);
            Ok(CellValue::Text(s))
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = compare(a, b)?;
            let result = match op {
                BinOp::Eq => ord.is_eq(),
                BinOp::Ne => ord.is_ne(),
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                _ => ord.is_ge(),
            };
            Ok(CellValue::Bool(result))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use datavinci_table::Column;

    fn table() -> Table {
        Table::new(vec![
            Column::from_texts("col1", &["c-1", "c-2", "c3", "c4"]),
            Column::parse("n", &["10", "20", "30", "x"]),
        ])
    }

    fn run(src: &str, row: usize) -> CellValue {
        let t = table();
        eval(&parse(src).unwrap(), &RowCtx { table: &t, row })
    }

    #[test]
    fn intro_search_example() {
        // =SEARCH("-", [@col1]) succeeds on c-1/c-2, errors on c3/c4.
        assert_eq!(run("=SEARCH(\"-\", [@col1])", 0), CellValue::Number(2.0));
        assert_eq!(run("=SEARCH(\"-\", [@col1])", 1), CellValue::Number(2.0));
        assert_eq!(
            run("=SEARCH(\"-\", [@col1])", 2),
            CellValue::Error(ErrorValue::Value)
        );
        assert_eq!(
            run("=SEARCH(\"-\", [@col1])", 3),
            CellValue::Error(ErrorValue::Value)
        );
    }

    #[test]
    fn arithmetic_with_coercion() {
        assert_eq!(run("[@n]*2", 0), CellValue::Number(20.0));
        assert_eq!(run("[@n]*2", 3), CellValue::Error(ErrorValue::Value));
        assert_eq!(run("1/0", 0), CellValue::Error(ErrorValue::Div0));
    }

    #[test]
    fn concat_operator() {
        assert_eq!(run("[@col1]&\"!\"", 0), CellValue::text("c-1!"));
        assert_eq!(run("1&2", 0), CellValue::text("12"));
    }

    #[test]
    fn if_is_lazy() {
        // The error branch is not taken, so no error.
        assert_eq!(run("IF(TRUE, 1, 1/0)", 0), CellValue::Number(1.0));
        assert_eq!(run("IF(FALSE, 1, 2)", 0), CellValue::Number(2.0));
        assert_eq!(run("IF(FALSE, 1)", 0), CellValue::Bool(false));
    }

    #[test]
    fn iferror_captures() {
        assert_eq!(run("IFERROR(1/0, -1)", 0), CellValue::Number(-1.0));
        assert_eq!(run("IFERROR(5, -1)", 0), CellValue::Number(5.0));
        assert_eq!(
            run("ISERROR(SEARCH(\"-\", [@col1]))", 2),
            CellValue::Bool(true)
        );
    }

    #[test]
    fn missing_column_is_ref_error() {
        assert_eq!(run("[@missing]", 0), CellValue::Error(ErrorValue::Ref));
    }

    #[test]
    fn comparisons() {
        assert_eq!(run("[@n]>=10", 0), CellValue::Bool(true));
        assert_eq!(run("\"abc\"=\"ABC\"", 0), CellValue::Bool(true));
        assert_eq!(run("1<>2", 0), CellValue::Bool(true));
    }

    #[test]
    fn error_cells_propagate_from_table() {
        let t = Table::new(vec![Column::parse("e", &["#N/A"])]);
        let v = eval(&parse("[@e]&\"x\"").unwrap(), &RowCtx { table: &t, row: 0 });
        assert_eq!(v, CellValue::Error(ErrorValue::NA));
    }
}
