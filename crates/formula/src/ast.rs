//! Formula AST.

use datavinci_table::ErrorValue;

/// Binary operators, in Excel notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^`
    Pow,
    /// `&` — text concatenation.
    Concat,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `+x`
    Pos,
}

/// A formula expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Logical literal (`TRUE`/`FALSE`).
    Bool(bool),
    /// Error literal (`#VALUE!` …).
    Err(ErrorValue),
    /// Structured column reference `[@Name]`.
    ColRef(String),
    /// Function call `NAME(args…)`.
    Call(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Collects the distinct column names referenced, in first-use order.
    pub fn input_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::ColRef(name) if !out.iter().any(|n| n == name) => {
                out.push(name.clone());
            }
            Expr::Call(_, args) => args.iter().for_each(|a| a.collect_columns(out)),
            Expr::Unary(_, a) => a.collect_columns(out),
            Expr::Binary(_, a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_columns_deduplicated_in_order() {
        let e = Expr::Binary(
            BinOp::Concat,
            Box::new(Expr::ColRef("b".into())),
            Box::new(Expr::Call(
                "LEN".into(),
                vec![Expr::Binary(
                    BinOp::Concat,
                    Box::new(Expr::ColRef("a".into())),
                    Box::new(Expr::ColRef("b".into())),
                )],
            )),
        );
        assert_eq!(e.input_columns(), vec!["b".to_string(), "a".to_string()]);
    }
}
