//! Distinct-value interning: the substrate of the repair planner.
//!
//! Real columns are dominated by duplicate values (categoricals, codes,
//! repeated ids), yet most of DataVinci's pipeline — masking, membership
//! scoring, edit-program search, candidate ranking — is a pure function of
//! the *value*, not the row. A [`ValuePool`] interns a column's rendered
//! values once so every later stage can compute per *distinct* value and
//! expand to rows, instead of recomputing per row.

use crate::arena::{ArenaRef, StrArena};
use crate::column::Column;

/// A column's distinct rendered values, their multiplicities, and the
/// row → distinct-index map.
///
/// Distinct values are stored sorted ascending, so `distinct_index` lookups
/// are a binary search and two pools over equal content compare equal.
/// Multiplicities let weighted aggregates (type support, coverage)
/// reproduce the per-row numbers exactly. Distinct text lives in a
/// [`StrArena`], so interning a column costs O(segments) heap allocations,
/// not one `String` per distinct value.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    /// Backing storage for the distinct values.
    arena: StrArena,
    /// Sorted distinct values (handles into `arena`).
    distinct: Vec<ArenaRef>,
    /// Multiplicity of each distinct value (aligned with `distinct`).
    counts: Vec<usize>,
    /// For every row, the index of its value in `distinct`.
    row_to_distinct: Vec<usize>,
}

impl PartialEq for ValuePool {
    fn eq(&self, other: &ValuePool) -> bool {
        // Content equality: arena segmentation is an implementation detail.
        self.counts == other.counts
            && self.row_to_distinct == other.row_to_distinct
            && self.iter_distinct().eq(other.iter_distinct())
    }
}

impl Eq for ValuePool {}

impl ValuePool {
    /// Interns a slice of rendered values (one per row).
    pub fn from_values<S: AsRef<str>>(values: &[S]) -> ValuePool {
        // Sort row indices by value, then walk runs of equal values.
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by(|&a, &b| values[a].as_ref().cmp(values[b].as_ref()));
        let mut arena = StrArena::new();
        let mut distinct: Vec<ArenaRef> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut row_to_distinct = vec![0usize; values.len()];
        for &row in &order {
            let v = values[row].as_ref();
            if distinct.last().map(|&r| arena.get(r)) != Some(v) {
                distinct.push(arena.push(v));
                counts.push(0);
            }
            let di = distinct.len() - 1;
            counts[di] += 1;
            row_to_distinct[row] = di;
        }
        ValuePool {
            arena,
            distinct,
            counts,
            row_to_distinct,
        }
    }

    /// Number of rows the pool covers.
    pub fn n_rows(&self) -> usize {
        self.row_to_distinct.len()
    }

    /// Number of distinct values.
    pub fn n_distinct(&self) -> usize {
        self.distinct.len()
    }

    /// True when the pool covers no rows.
    pub fn is_empty(&self) -> bool {
        self.row_to_distinct.is_empty()
    }

    /// The sorted distinct values, as slices into the pool's arena.
    pub fn distinct(&self) -> Vec<&str> {
        self.iter_distinct().collect()
    }

    /// Iterates the sorted distinct values without collecting them.
    pub fn iter_distinct(&self) -> impl Iterator<Item = &str> {
        self.distinct.iter().map(|&r| self.arena.get(r))
    }

    /// Multiplicities, aligned with [`ValuePool::distinct`].
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The distinct value at `di`.
    pub fn value(&self, di: usize) -> &str {
        self.arena.get(self.distinct[di])
    }

    /// Multiplicity of distinct value `di`.
    pub fn count(&self, di: usize) -> usize {
        self.counts[di]
    }

    /// The distinct index of row `row`.
    pub fn distinct_index(&self, row: usize) -> usize {
        self.row_to_distinct[row]
    }

    /// The row → distinct-index map, in row order.
    pub fn row_indices(&self) -> &[usize] {
        &self.row_to_distinct
    }

    /// The distinct index holding `value`, if present (binary search).
    pub fn index_of(&self, value: &str) -> Option<usize> {
        self.distinct
            .binary_search_by(|&d| self.arena.get(d).cmp(value))
            .ok()
    }

    /// Expands a per-distinct slice back to row order.
    ///
    /// `per_distinct` must have one entry per distinct value; the result has
    /// one (cloned) entry per row.
    pub fn expand<T: Clone>(&self, per_distinct: &[T]) -> Vec<T> {
        assert_eq!(
            per_distinct.len(),
            self.n_distinct(),
            "one entry per distinct value"
        );
        self.row_to_distinct
            .iter()
            .map(|&di| per_distinct[di].clone())
            .collect()
    }

    /// Row indices grouped by distinct value: `groups()[di]` lists, in
    /// ascending row order, every row carrying distinct value `di`.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> =
            self.counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (row, &di) in self.row_to_distinct.iter().enumerate() {
            groups[di].push(row);
        }
        groups
    }

    /// Fraction of rows that repeat an earlier value (0 for an all-distinct
    /// or empty column, → 1 for heavy duplication).
    pub fn duplication_ratio(&self) -> f64 {
        if self.row_to_distinct.is_empty() {
            return 0.0;
        }
        1.0 - self.n_distinct() as f64 / self.n_rows() as f64
    }

    /// A pool over this pool's rows plus `appended` extra rows — the
    /// append-only cache primitive. Equivalent to re-interning the grown
    /// column from scratch, but new values merge into the existing sorted
    /// order instead of re-sorting every row.
    pub fn extended<S: AsRef<str>>(&self, appended: &[S]) -> ValuePool {
        if appended.is_empty() {
            return self.clone();
        }
        // Intern the appended rows on their own, then merge the two sorted
        // distinct lists into a fresh arena and remap both row maps.
        let tail = ValuePool::from_values(appended);
        let mut arena = StrArena::new();
        let mut distinct: Vec<ArenaRef> =
            Vec::with_capacity(self.distinct.len() + tail.distinct.len());
        let mut counts: Vec<usize> = Vec::with_capacity(distinct.capacity());
        let mut old_map = vec![0usize; self.distinct.len()];
        let mut new_map = vec![0usize; tail.distinct.len()];
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.distinct.len() || j < tail.distinct.len() {
            let old_val = (i < self.distinct.len()).then(|| self.value(i));
            let new_val = (j < tail.distinct.len()).then(|| tail.value(j));
            let take_old = match (old_val, new_val) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_old {
                let equal = new_val == old_val;
                old_map[i] = distinct.len();
                distinct.push(arena.push(self.value(i)));
                counts.push(self.counts[i]);
                if equal {
                    new_map[j] = distinct.len() - 1;
                    *counts.last_mut().expect("just pushed") += tail.counts[j];
                    j += 1;
                }
                i += 1;
            } else {
                new_map[j] = distinct.len();
                distinct.push(arena.push(tail.value(j)));
                counts.push(tail.counts[j]);
                j += 1;
            }
        }
        let row_to_distinct: Vec<usize> = self
            .row_to_distinct
            .iter()
            .map(|&di| old_map[di])
            .chain(tail.row_to_distinct.iter().map(|&di| new_map[di]))
            .collect();
        ValuePool {
            arena,
            distinct,
            counts,
            row_to_distinct,
        }
    }
}

impl Column {
    /// Interns the column's rendered values into a [`ValuePool`].
    ///
    /// The pool is over exactly the strings [`Column::rendered`] returns, so
    /// pipeline stages operating on rendered values can share it.
    pub fn value_pool(&self) -> ValuePool {
        ValuePool::from_values(&self.rendered())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_sorted_with_counts() {
        let pool = ValuePool::from_values(&["b", "a", "b", "c", "a", "b"]);
        assert_eq!(pool.n_rows(), 6);
        assert_eq!(pool.n_distinct(), 3);
        assert_eq!(pool.distinct(), ["a", "b", "c"]);
        assert_eq!(pool.counts(), [2, 3, 1]);
        assert_eq!(pool.row_indices(), [1, 0, 1, 2, 0, 1]);
        assert_eq!(pool.index_of("b"), Some(1));
        assert_eq!(pool.index_of("zz"), None);
    }

    #[test]
    fn expand_round_trips_values() {
        let values = ["x-1", "y-2", "x-1", "x-1"];
        let pool = ValuePool::from_values(&values);
        let expanded = pool.expand(&pool.distinct());
        assert_eq!(expanded, values);
    }

    #[test]
    fn distinct_text_shares_few_arena_segments() {
        let values: Vec<String> = (0..500).map(|i| format!("v{:03}", i % 311)).collect();
        let pool = ValuePool::from_values(&values);
        assert_eq!(pool.n_distinct(), 311);
        // All 311 distinct strings fit in one bump segment: O(1) string
        // allocations for the whole pool, not one per distinct value.
        assert_eq!(pool.arena.n_segments(), 1);
        for di in 0..pool.n_distinct() {
            assert_eq!(pool.index_of(pool.value(di)), Some(di));
        }
    }

    #[test]
    fn groups_partition_rows_in_order() {
        let pool = ValuePool::from_values(&["b", "a", "b", "a"]);
        let groups = pool.groups();
        assert_eq!(groups, vec![vec![1, 3], vec![0, 2]]);
    }

    #[test]
    fn duplication_ratio_extremes() {
        assert_eq!(ValuePool::from_values::<&str>(&[]).duplication_ratio(), 0.0);
        assert_eq!(
            ValuePool::from_values(&["a", "b", "c"]).duplication_ratio(),
            0.0
        );
        let heavy = ValuePool::from_values(&["a", "a", "a", "a"]);
        assert!((heavy.duplication_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn extended_matches_from_scratch() {
        let base = ValuePool::from_values(&["m", "a", "m", "z"]);
        let grown = base.extended(&["a", "k", "m", "zz"]);
        let scratch = ValuePool::from_values(&["m", "a", "m", "z", "a", "k", "m", "zz"]);
        assert_eq!(grown, scratch);
        // No-op extension clones.
        assert_eq!(base.extended::<&str>(&[]), base);
    }

    #[test]
    fn column_value_pool_uses_rendered_values() {
        let col = Column::parse("x", &["7", "a", "a"]);
        let pool = col.value_pool();
        assert_eq!(pool.distinct(), ["7", "a"]);
        assert_eq!(pool.counts(), [1, 2]);
    }

    #[test]
    fn empty_and_blank_values_intern() {
        let pool = ValuePool::from_values(&["", "x", ""]);
        assert_eq!(pool.distinct(), ["", "x"]);
        assert_eq!(pool.counts(), [2, 1]);
        assert_eq!(pool.distinct_index(2), 0);
    }
}
