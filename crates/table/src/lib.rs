//! Table substrate for the DataVinci reproduction.
//!
//! DataVinci (Singh et al., SIGMOD/PVLDB) cleans *string columns in tabular
//! data*. This crate provides the minimal-but-complete tabular data model the
//! rest of the workspace builds on:
//!
//! * [`CellValue`] — a spreadsheet-style dynamic value (text, number, boolean,
//!   error value, blank) with Excel-like coercions,
//! * [`Column`] — a named vector of cells,
//! * [`Table`] — a collection of equally-long columns with row access,
//! * [`CellRef`]/[`ColRef`] — stable cell and column addressing,
//! * [`ValuePool`] — distinct-value interning (values, multiplicities, and
//!   the row → distinct map) behind the repair planner's dedup-and-share
//!   execution strategy,
//! * [`StrArena`]/[`ArenaInterner`] — bump-style string storage and exact
//!   interning, keeping the hot paths at O(distinct) *allocations* rather
//!   than O(distinct) `String`s,
//! * a lossless CSV reader/writer in [`io`], built on a resumable
//!   [`CsvChunkReader`] so files and streams can be ingested chunk by chunk
//!   with positioned [`CsvError`] diagnostics.
//!
//! The model intentionally mirrors what the paper's benchmarks need: values in
//! Wikipedia/Excel tables are predominantly *text* (67.6% in the paper's
//! corpus), and formula execution (Section 3.6) needs spreadsheet error
//! values such as `#VALUE!` to signal failing executions.

pub mod addr;
pub mod arena;
pub mod column;
pub mod io;
pub mod pool;
pub mod table;
pub mod value;

pub use addr::{CellRef, ColRef};
pub use arena::{ArenaInterner, ArenaRef, StrArena};
pub use column::{Column, Fingerprinter};
pub use io::{CsvChunkReader, CsvError, CsvErrorKind};
pub use pool::ValuePool;
pub use table::Table;
pub use value::{CellValue, ErrorValue};
