//! Named columns of cell values.

use crate::value::CellValue;

/// FxHash-style 64-bit multiplier (the golden-ratio constant used by the
/// rustc hasher). Implemented in-repo: the build environment is offline.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A cheap rolling content hash: fold bytes 8 at a time, FxHash-style.
///
/// Unlike [`std::hash::DefaultHasher`], the algorithm is defined by this
/// crate and never changes between toolchains, so its outputs are safe to
/// persist: the engine's on-disk artifact store keys entries by these
/// fingerprints and must find them again in a process built by a different
/// compiler. The concrete values are pinned by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprinter(u64);

impl Fingerprinter {
    /// A fresh hasher (zero state).
    pub fn new() -> Self {
        Fingerprinter(0)
    }

    fn add_word(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }

    /// Folds a length-delimited byte string into the state.
    pub fn add_bytes(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(word));
        }
        // Length separator: distinguishes ["ab","c"] from ["a","bc"].
        self.add_word(bytes.len() as u64 ^ FX_SEED);
    }

    /// Folds a 64-bit value into the state (delimited like an 8-byte string).
    pub fn add_u64(&mut self, value: u64) {
        self.add_bytes(&value.to_le_bytes());
    }

    /// The avalanched 64-bit digest of everything folded so far.
    pub fn finish(&self) -> u64 {
        // One extra round so a trailing empty string still perturbs state.
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(FX_SEED);
        h ^ (h >> 29)
    }
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

/// A named column: the unit DataVinci cleans.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    values: Vec<CellValue>,
}

impl Column {
    /// Builds a column from a name and values.
    pub fn new(name: impl Into<String>, values: Vec<CellValue>) -> Self {
        Column {
            name: name.into(),
            values,
        }
    }

    /// Builds a text column from raw strings (each parsed spreadsheet-style).
    pub fn parse(name: impl Into<String>, raw: &[&str]) -> Self {
        Column::new(name, raw.iter().map(|s| CellValue::parse(s)).collect())
    }

    /// Builds a column whose every cell is text, verbatim (no parsing).
    pub fn from_texts<S: AsRef<str>>(name: impl Into<String>, raw: &[S]) -> Self {
        Column::new(
            name,
            raw.iter().map(|s| CellValue::text(s.as_ref())).collect(),
        )
    }

    /// Column name (header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All cell values.
    pub fn values(&self) -> &[CellValue] {
        &self.values
    }

    /// Mutable access to all cell values.
    pub fn values_mut(&mut self) -> &mut Vec<CellValue> {
        &mut self.values
    }

    /// The value at `row`, if in bounds.
    pub fn get(&self, row: usize) -> Option<&CellValue> {
        self.values.get(row)
    }

    /// Overwrites the value at `row`. Panics if out of bounds.
    pub fn set(&mut self, row: usize, value: CellValue) {
        self.values[row] = value;
    }

    /// Iterates over `(row, text)` for every *text* cell.
    ///
    /// DataVinci learns patterns over the string values of a column; numeric
    /// or blank cells are not part of the string language.
    pub fn text_rows(&self) -> impl Iterator<Item = (usize, &str)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_text().map(|s| (i, s)))
    }

    /// All string contents rendered for display, one per row (non-text cells
    /// use their spreadsheet rendering). Useful for profiling whole columns.
    pub fn rendered(&self) -> Vec<String> {
        self.values.iter().map(|v| v.render()).collect()
    }

    /// A 64-bit content fingerprint over the column name and every rendered
    /// cell, in row order.
    ///
    /// Two columns with equal names and equal rendered values always agree;
    /// the engine's profile cache uses this to recognize unchanged columns.
    /// Because the hash folds rows in order, [`Column::fingerprint_prefix`]
    /// of an extended column equals the `fingerprint` of the original — the
    /// append-only detection primitive.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_prefix(self.values.len())
    }

    /// The fingerprint of the first `n_rows` rows (same name folding as
    /// [`Column::fingerprint`]). `n_rows` is clamped to the column length.
    pub fn fingerprint_prefix(&self, n_rows: usize) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.add_bytes(self.name.as_bytes());
        for v in self.values.iter().take(n_rows) {
            // Text cells (the common case) hash without allocating; other
            // kinds render exactly as `render()` would.
            match v.as_text() {
                Some(text) => fp.add_bytes(text.as_bytes()),
                None => fp.add_bytes(v.render().as_bytes()),
            }
        }
        fp.finish()
    }

    /// Fraction of cells that are text.
    pub fn text_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let n = self.values.iter().filter(|v| v.is_text()).count();
        n as f64 / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_mixed_cells() {
        let c = Column::parse("x", &["a", "1", "", "TRUE"]);
        assert_eq!(c.len(), 4);
        assert!(c.get(0).unwrap().is_text());
        assert!(c.get(1).unwrap().is_number());
        assert!(c.get(2).unwrap().is_blank());
        assert!(c.get(3).unwrap().is_bool());
    }

    #[test]
    fn from_texts_never_parses() {
        let c = Column::from_texts("x", &["1", "TRUE"]);
        assert!(c.get(0).unwrap().is_text());
        assert!(c.get(1).unwrap().is_text());
    }

    #[test]
    fn text_rows_skips_non_text() {
        let c = Column::parse("x", &["a", "1", "b"]);
        let rows: Vec<_> = c.text_rows().collect();
        assert_eq!(rows, vec![(0, "a"), (2, "b")]);
    }

    #[test]
    fn text_fraction() {
        let c = Column::parse("x", &["a", "1", "b", "c"]);
        assert!((c.text_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn set_overwrites() {
        let mut c = Column::from_texts("x", &["a"]);
        c.set(0, CellValue::text("b"));
        assert_eq!(c.get(0).unwrap().as_text(), Some("b"));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = Column::from_texts("ids", &["a-1", "a-2", "a-3"]);
        let b = Column::from_texts("ids", &["a-1", "a-2", "a-3"]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Value, order, name, and boundary changes all perturb the hash.
        let changed = Column::from_texts("ids", &["a-1", "a-2", "a-4"]);
        assert_ne!(a.fingerprint(), changed.fingerprint());
        let reordered = Column::from_texts("ids", &["a-2", "a-1", "a-3"]);
        assert_ne!(a.fingerprint(), reordered.fingerprint());
        let renamed = Column::from_texts("other", &["a-1", "a-2", "a-3"]);
        assert_ne!(a.fingerprint(), renamed.fingerprint());
        let rechunked = Column::from_texts("ids", &["a-1a-2", "", "a-3"]);
        assert_ne!(a.fingerprint(), rechunked.fingerprint());
    }

    #[test]
    fn fingerprint_prefix_matches_shorter_column() {
        let old = Column::from_texts("ids", &["a-1", "a-2"]);
        let appended = Column::from_texts("ids", &["a-1", "a-2", "a-3"]);
        assert_eq!(appended.fingerprint_prefix(2), old.fingerprint());
        assert_ne!(appended.fingerprint(), old.fingerprint());
        // Clamped beyond the end: whole column.
        assert_eq!(appended.fingerprint_prefix(99), appended.fingerprint());
    }

    #[test]
    fn fingerprint_of_empty_columns_differs_by_name() {
        let a = Column::from_texts::<&str>("a", &[]);
        let b = Column::from_texts::<&str>("b", &[]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    /// Pins the concrete digests the on-disk artifact store depends on.
    ///
    /// These constants define the persistence format's key space: a store
    /// written by one build must be readable by another, so any change here
    /// is a breaking format change and must bump the store version.
    #[test]
    fn fingerprints_are_pinned_across_toolchains() {
        let c = Column::from_texts("ids", &["a-1", "a-2", "a-3"]);
        assert_eq!(c.fingerprint(), 0x32f0_35fe_514e_9fb3);
        let empty = Column::from_texts::<&str>("ids", &[]);
        assert_eq!(empty.fingerprint(), 0x453b_511f_0805_ee8c);
        let mut fp = Fingerprinter::new();
        fp.add_bytes(b"datavinci");
        fp.add_u64(0x0123_4567_89ab_cdef);
        assert_eq!(fp.finish(), 0xd967_a4ed_8945_45c4);
        // An untouched hasher still avalanches to a fixed digest.
        assert_eq!(Fingerprinter::default().finish(), 0);
    }

    #[test]
    fn add_u64_matches_le_byte_folding() {
        let mut a = Fingerprinter::new();
        a.add_u64(0xdead_beef);
        let mut b = Fingerprinter::new();
        b.add_bytes(&0xdead_beef_u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
