//! Named columns of cell values.

use crate::value::CellValue;

/// A named column: the unit DataVinci cleans.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    values: Vec<CellValue>,
}

impl Column {
    /// Builds a column from a name and values.
    pub fn new(name: impl Into<String>, values: Vec<CellValue>) -> Self {
        Column {
            name: name.into(),
            values,
        }
    }

    /// Builds a text column from raw strings (each parsed spreadsheet-style).
    pub fn parse(name: impl Into<String>, raw: &[&str]) -> Self {
        Column::new(name, raw.iter().map(|s| CellValue::parse(s)).collect())
    }

    /// Builds a column whose every cell is text, verbatim (no parsing).
    pub fn from_texts<S: AsRef<str>>(name: impl Into<String>, raw: &[S]) -> Self {
        Column::new(
            name,
            raw.iter().map(|s| CellValue::text(s.as_ref())).collect(),
        )
    }

    /// Column name (header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All cell values.
    pub fn values(&self) -> &[CellValue] {
        &self.values
    }

    /// Mutable access to all cell values.
    pub fn values_mut(&mut self) -> &mut Vec<CellValue> {
        &mut self.values
    }

    /// The value at `row`, if in bounds.
    pub fn get(&self, row: usize) -> Option<&CellValue> {
        self.values.get(row)
    }

    /// Overwrites the value at `row`. Panics if out of bounds.
    pub fn set(&mut self, row: usize, value: CellValue) {
        self.values[row] = value;
    }

    /// Iterates over `(row, text)` for every *text* cell.
    ///
    /// DataVinci learns patterns over the string values of a column; numeric
    /// or blank cells are not part of the string language.
    pub fn text_rows(&self) -> impl Iterator<Item = (usize, &str)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_text().map(|s| (i, s)))
    }

    /// All string contents rendered for display, one per row (non-text cells
    /// use their spreadsheet rendering). Useful for profiling whole columns.
    pub fn rendered(&self) -> Vec<String> {
        self.values.iter().map(|v| v.render()).collect()
    }

    /// Fraction of cells that are text.
    pub fn text_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let n = self.values.iter().filter(|v| v.is_text()).count();
        n as f64 / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_mixed_cells() {
        let c = Column::parse("x", &["a", "1", "", "TRUE"]);
        assert_eq!(c.len(), 4);
        assert!(c.get(0).unwrap().is_text());
        assert!(c.get(1).unwrap().is_number());
        assert!(c.get(2).unwrap().is_blank());
        assert!(c.get(3).unwrap().is_bool());
    }

    #[test]
    fn from_texts_never_parses() {
        let c = Column::from_texts("x", &["1", "TRUE"]);
        assert!(c.get(0).unwrap().is_text());
        assert!(c.get(1).unwrap().is_text());
    }

    #[test]
    fn text_rows_skips_non_text() {
        let c = Column::parse("x", &["a", "1", "b"]);
        let rows: Vec<_> = c.text_rows().collect();
        assert_eq!(rows, vec![(0, "a"), (2, "b")]);
    }

    #[test]
    fn text_fraction() {
        let c = Column::parse("x", &["a", "1", "b", "c"]);
        assert!((c.text_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn set_overwrites() {
        let mut c = Column::from_texts("x", &["a"]);
        c.set(0, CellValue::text("b"));
        assert_eq!(c.get(0).unwrap().as_text(), Some("b"));
    }
}
