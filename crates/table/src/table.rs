//! Tables: equally-long named columns with row access.

use crate::addr::CellRef;
use crate::column::Column;
use crate::value::CellValue;

/// A table of named columns.
///
/// Invariant: all columns have the same number of rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    columns: Vec<Column>,
}

impl Table {
    /// Builds a table from columns.
    ///
    /// # Panics
    /// Panics if columns have differing lengths — benchmark builders construct
    /// rectangular tables by design, so a ragged input is a programming error.
    pub fn new(columns: Vec<Column>) -> Self {
        if let Some(first) = columns.first() {
            let n = first.len();
            assert!(
                columns.iter().all(|c| c.len() == n),
                "all table columns must have equal length"
            );
        }
        Table { columns }
    }

    /// An empty table.
    pub fn empty() -> Self {
        Table::default()
    }

    /// A 64-bit content fingerprint over every column (names and rendered
    /// cells, in order). Two tables with equal headers and rendered content
    /// agree; batch engines use this to recognize unchanged tables.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = crate::column::Fingerprinter::new();
        for col in &self.columns {
            fp.add_bytes(&col.fingerprint().to_le_bytes());
        }
        fp.finish()
    }

    /// A 64-bit fingerprint over the header names alone (order-sensitive).
    ///
    /// Uses the same toolchain-stable [`Fingerprinter`](crate::Fingerprinter)
    /// as [`Table::fingerprint`], so the value is safe to persist: session
    /// artifacts keyed by header shape survive a store written by a binary
    /// from a different compiler.
    pub fn header_fingerprint(&self) -> u64 {
        let mut fp = crate::column::Fingerprinter::new();
        for col in &self.columns {
            fp.add_bytes(col.name().as_bytes());
        }
        fp.finish()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Mutable column by index.
    pub fn column_mut(&mut self, idx: usize) -> Option<&mut Column> {
        self.columns.get_mut(idx)
    }

    /// Column index by (case-sensitive) header name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Column by header name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.column_index(name).and_then(|i| self.column(i))
    }

    /// The cell at `cell`, if in bounds.
    pub fn cell(&self, cell: CellRef) -> Option<&CellValue> {
        self.columns.get(cell.col).and_then(|c| c.get(cell.row))
    }

    /// Overwrites a cell. Panics if out of bounds.
    pub fn set_cell(&mut self, cell: CellRef, value: CellValue) {
        self.columns[cell.col].set(cell.row, value);
    }

    /// The row tuple at `row` as a vector of cell references.
    pub fn row(&self, row: usize) -> Vec<&CellValue> {
        self.columns.iter().filter_map(|c| c.get(row)).collect()
    }

    /// Appends a column.
    ///
    /// # Panics
    /// Panics if the new column's length disagrees with the table.
    pub fn push_column(&mut self, column: Column) {
        if !self.columns.is_empty() {
            assert_eq!(
                column.len(),
                self.n_rows(),
                "appended column length must match table"
            );
        }
        self.columns.push(column);
    }

    /// Header names in column order.
    pub fn headers(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name()).collect()
    }

    /// Iterates over all cell addresses in column-major order.
    pub fn cell_refs(&self) -> impl Iterator<Item = CellRef> + '_ {
        let rows = self.n_rows();
        (0..self.n_cols()).flat_map(move |c| (0..rows).map(move |r| CellRef::new(c, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(vec![
            Column::from_texts("a", &["x", "y"]),
            Column::from_texts("b", &["1", "2"]),
        ])
    }

    #[test]
    fn fingerprint_tracks_content_and_layout() {
        assert_eq!(t().fingerprint(), t().fingerprint());
        let mut changed = t();
        changed.set_cell(CellRef::new(0, 1), CellValue::text("z"));
        assert_ne!(t().fingerprint(), changed.fingerprint());
        // Adding a column changes the table print but not the columns'.
        let mut wider = t();
        wider.push_column(Column::from_texts("c", &["7", "8"]));
        assert_ne!(t().fingerprint(), wider.fingerprint());
        assert_eq!(
            t().column(0).unwrap().fingerprint(),
            wider.column(0).unwrap().fingerprint()
        );
    }

    /// Pins the table-level digests (see the column-level pin test): these
    /// are persisted by the engine's artifact store and must not drift.
    #[test]
    fn table_fingerprints_are_pinned_across_toolchains() {
        let t = Table::new(vec![
            Column::from_texts("a", &["x"]),
            Column::from_texts("b", &["1"]),
        ]);
        assert_eq!(t.fingerprint(), 0xb413_d550_9b7f_b978);
        assert_eq!(t.header_fingerprint(), 0x04f6_d150_0b56_0ee7);
    }

    #[test]
    fn header_fingerprint_ignores_values_tracks_headers() {
        let mut same_shape = t();
        same_shape.set_cell(CellRef::new(0, 0), CellValue::text("zz"));
        assert_eq!(t().header_fingerprint(), same_shape.header_fingerprint());
        let mut wider = t();
        wider.push_column(Column::from_texts("c", &["7", "8"]));
        assert_ne!(t().header_fingerprint(), wider.header_fingerprint());
        let renamed = Table::new(vec![
            Column::from_texts("a", &["x", "y"]),
            Column::from_texts("B", &["1", "2"]),
        ]);
        assert_ne!(t().header_fingerprint(), renamed.header_fingerprint());
    }

    #[test]
    fn dimensions() {
        let t = t();
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.headers(), vec!["a", "b"]);
    }

    #[test]
    fn lookup_by_name_and_index() {
        let t = t();
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_by_name("a").unwrap().len(), 2);
        assert!(t.column_by_name("zz").is_none());
    }

    #[test]
    fn cell_addressing() {
        let mut t = t();
        let cr = CellRef::new(1, 0);
        assert_eq!(t.cell(cr).unwrap().as_text(), Some("1"));
        t.set_cell(cr, CellValue::text("9"));
        assert_eq!(t.cell(cr).unwrap().as_text(), Some("9"));
        assert!(t.cell(CellRef::new(5, 0)).is_none());
    }

    #[test]
    fn row_access() {
        let t = t();
        let row = t.row(1);
        assert_eq!(row.len(), 2);
        assert_eq!(row[0].as_text(), Some("y"));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_tables_rejected() {
        Table::new(vec![
            Column::from_texts("a", &["x"]),
            Column::from_texts("b", &["1", "2"]),
        ]);
    }

    #[test]
    fn cell_refs_cover_table() {
        let t = t();
        assert_eq!(t.cell_refs().count(), 4);
    }
}
