//! Spreadsheet-style dynamic cell values with Excel-like parsing and coercion.

use std::fmt;

/// Spreadsheet error values, as produced by failing formula executions.
///
/// DataVinci's execution-guided repair (paper §3.6) groups rows by whether a
/// column-transformation program produced an error value; these are the error
/// kinds our formula engine can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorValue {
    /// `#VALUE!` — wrong operand type (e.g. arithmetic on non-numeric text).
    Value,
    /// `#DIV/0!` — division by zero.
    Div0,
    /// `#N/A` — value not available (e.g. `SEARCH` without a match).
    NA,
    /// `#NUM!` — invalid numeric argument (e.g. `SQRT(-1)`).
    Num,
    /// `#NAME?` — unknown function or name.
    Name,
    /// `#REF!` — invalid reference (e.g. missing column).
    Ref,
}

impl ErrorValue {
    /// The canonical Excel rendering, e.g. `#VALUE!`.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorValue::Value => "#VALUE!",
            ErrorValue::Div0 => "#DIV/0!",
            ErrorValue::NA => "#N/A",
            ErrorValue::Num => "#NUM!",
            ErrorValue::Name => "#NAME?",
            ErrorValue::Ref => "#REF!",
        }
    }

    /// Parses a canonical error rendering back into an [`ErrorValue`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "#VALUE!" => Some(ErrorValue::Value),
            "#DIV/0!" => Some(ErrorValue::Div0),
            "#N/A" => Some(ErrorValue::NA),
            "#NUM!" => Some(ErrorValue::Num),
            "#NAME?" => Some(ErrorValue::Name),
            "#REF!" => Some(ErrorValue::Ref),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single cell value.
///
/// `Text` is by far the dominant variant in real-world string-cleaning
/// workloads; the remaining variants exist so formula execution and the
/// `isNum`/`isLogical`/`isError`/`isNA` predicate templates of paper Table 2
/// have faithful semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// A string value — the target domain of DataVinci.
    Text(String),
    /// A numeric value (Excel numbers are all f64).
    Number(f64),
    /// A logical value.
    Bool(bool),
    /// A spreadsheet error value.
    Error(ErrorValue),
    /// An empty cell.
    Blank,
}

impl CellValue {
    /// Builds a text cell.
    pub fn text(s: impl Into<String>) -> Self {
        CellValue::Text(s.into())
    }

    /// Parses a raw string the way a spreadsheet import would: recognizes
    /// error literals, booleans, numbers, blanks, and falls back to text.
    ///
    /// Leading/trailing whitespace is preserved for text (whitespace issues
    /// are themselves data errors DataVinci should see) but numbers and
    /// booleans are detected on the trimmed form.
    pub fn parse(raw: &str) -> Self {
        if raw.is_empty() {
            return CellValue::Blank;
        }
        let trimmed = raw.trim();
        if let Some(e) = ErrorValue::parse(trimmed) {
            return CellValue::Error(e);
        }
        match trimmed {
            "TRUE" => return CellValue::Bool(true),
            "FALSE" => return CellValue::Bool(false),
            _ => {}
        }
        if trimmed == raw {
            if let Ok(n) = trimmed.parse::<f64>() {
                if n.is_finite() {
                    return CellValue::Number(n);
                }
            }
        }
        CellValue::Text(raw.to_string())
    }

    /// True when this is a text cell (paper predicate `isText`).
    pub fn is_text(&self) -> bool {
        matches!(self, CellValue::Text(_))
    }

    /// True when this is a numeric cell (paper predicate `isNum`).
    pub fn is_number(&self) -> bool {
        matches!(self, CellValue::Number(_))
    }

    /// True when this is a logical cell (paper predicate `isLogical`).
    pub fn is_bool(&self) -> bool {
        matches!(self, CellValue::Bool(_))
    }

    /// True when this is any error value (paper predicate `isError`).
    pub fn is_error(&self) -> bool {
        matches!(self, CellValue::Error(_))
    }

    /// True when this is specifically `#N/A` (paper predicate `isNA`).
    pub fn is_na(&self) -> bool {
        matches!(self, CellValue::Error(ErrorValue::NA))
    }

    /// True for the empty cell.
    pub fn is_blank(&self) -> bool {
        matches!(self, CellValue::Blank)
    }

    /// The text content if this is a text cell.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            CellValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content if this is a number cell.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            CellValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Excel-style coercion to a number: numbers pass through, booleans map
    /// to 0/1, numeric-looking text parses, everything else is `None`.
    pub fn coerce_number(&self) -> Option<f64> {
        match self {
            CellValue::Number(n) => Some(*n),
            CellValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            CellValue::Text(s) => {
                let t = s.trim();
                if t.is_empty() {
                    None
                } else {
                    t.parse::<f64>().ok().filter(|n| n.is_finite())
                }
            }
            CellValue::Blank => Some(0.0),
            CellValue::Error(_) => None,
        }
    }

    /// Excel-style coercion to text: the rendering a formula like `CONCAT`
    /// would observe. Errors do not coerce (formula engines propagate them).
    pub fn coerce_text(&self) -> Option<String> {
        match self {
            CellValue::Text(s) => Some(s.clone()),
            CellValue::Number(n) => Some(format_number(*n)),
            CellValue::Bool(b) => Some(if *b { "TRUE" } else { "FALSE" }.to_string()),
            CellValue::Blank => Some(String::new()),
            CellValue::Error(_) => None,
        }
    }

    /// The display rendering used by CSV output and reports.
    pub fn render(&self) -> String {
        match self {
            CellValue::Text(s) => s.clone(),
            CellValue::Number(n) => format_number(*n),
            CellValue::Bool(b) => (if *b { "TRUE" } else { "FALSE" }).to_string(),
            CellValue::Error(e) => e.as_str().to_string(),
            CellValue::Blank => String::new(),
        }
    }
}

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for CellValue {
    fn from(s: &str) -> Self {
        CellValue::Text(s.to_string())
    }
}

impl From<String> for CellValue {
    fn from(s: String) -> Self {
        CellValue::Text(s)
    }
}

impl From<f64> for CellValue {
    fn from(n: f64) -> Self {
        CellValue::Number(n)
    }
}

impl From<bool> for CellValue {
    fn from(b: bool) -> Self {
        CellValue::Bool(b)
    }
}

/// Renders a float the way a spreadsheet shows it: integers without the
/// trailing `.0`, other values in shortest round-trip form.
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognizes_numbers() {
        assert_eq!(CellValue::parse("42"), CellValue::Number(42.0));
        assert_eq!(CellValue::parse("-3.5"), CellValue::Number(-3.5));
        assert_eq!(CellValue::parse("1e3"), CellValue::Number(1000.0));
    }

    #[test]
    fn parse_recognizes_bools_and_errors() {
        assert_eq!(CellValue::parse("TRUE"), CellValue::Bool(true));
        assert_eq!(CellValue::parse("FALSE"), CellValue::Bool(false));
        assert_eq!(
            CellValue::parse("#VALUE!"),
            CellValue::Error(ErrorValue::Value)
        );
        assert_eq!(CellValue::parse("#N/A"), CellValue::Error(ErrorValue::NA));
    }

    #[test]
    fn parse_keeps_padded_numbers_as_text() {
        // " 42 " with padding is suspicious string data, not a clean number —
        // exactly the kind of value a cleaning system must be able to see.
        assert_eq!(CellValue::parse(" 42 "), CellValue::Text(" 42 ".into()));
    }

    #[test]
    fn parse_blank() {
        assert_eq!(CellValue::parse(""), CellValue::Blank);
    }

    #[test]
    fn parse_falls_back_to_text() {
        assert_eq!(CellValue::parse("Q1-22"), CellValue::Text("Q1-22".into()));
        assert_eq!(CellValue::parse("03.45"), CellValue::Number(3.45));
        assert_eq!(
            CellValue::parse("12/31/2020"),
            CellValue::Text("12/31/2020".into())
        );
    }

    #[test]
    fn coerce_number_matches_excel() {
        assert_eq!(CellValue::text("12").coerce_number(), Some(12.0));
        assert_eq!(CellValue::text(" 12 ").coerce_number(), Some(12.0));
        assert_eq!(CellValue::text("abc").coerce_number(), None);
        assert_eq!(CellValue::Bool(true).coerce_number(), Some(1.0));
        assert_eq!(CellValue::Blank.coerce_number(), Some(0.0));
        assert_eq!(CellValue::Error(ErrorValue::Value).coerce_number(), None);
    }

    #[test]
    fn coerce_text_renders_numbers_plainly() {
        assert_eq!(CellValue::Number(3.0).coerce_text().unwrap(), "3");
        assert_eq!(CellValue::Number(3.25).coerce_text().unwrap(), "3.25");
        assert_eq!(CellValue::Bool(false).coerce_text().unwrap(), "FALSE");
        assert!(CellValue::Error(ErrorValue::NA).coerce_text().is_none());
    }

    #[test]
    fn error_round_trip() {
        for e in [
            ErrorValue::Value,
            ErrorValue::Div0,
            ErrorValue::NA,
            ErrorValue::Num,
            ErrorValue::Name,
            ErrorValue::Ref,
        ] {
            assert_eq!(ErrorValue::parse(e.as_str()), Some(e));
        }
    }

    #[test]
    fn predicates() {
        assert!(CellValue::text("x").is_text());
        assert!(CellValue::Number(1.0).is_number());
        assert!(CellValue::Bool(true).is_bool());
        assert!(CellValue::Error(ErrorValue::NA).is_error());
        assert!(CellValue::Error(ErrorValue::NA).is_na());
        assert!(!CellValue::Error(ErrorValue::Value).is_na());
        assert!(CellValue::Blank.is_blank());
    }

    #[test]
    fn format_number_drops_integer_fraction() {
        assert_eq!(format_number(10.0), "10");
        assert_eq!(format_number(-2.0), "-2");
        assert_eq!(format_number(0.5), "0.5");
    }
}
