//! Lossless CSV reader/writer with resumable chunked ingestion.
//!
//! Supports RFC-4180-style quoting (`"a,b"`, doubled quotes, quoted
//! newlines). The reader is built around [`CsvChunkReader`], a resumable
//! state machine that consumes arbitrary byte chunks — a record (or even a
//! UTF-8 code point) may be split across chunk boundaries — and yields
//! complete row batches, so a table never needs to be fully resident.
//! [`parse_csv`] is the whole-text convenience wrapper on top of it.
//!
//! Parsing is **lossless**: `parse_csv(to_csv(t))` reproduces `t` exactly
//! for any table whose cells are in parse-normal form (see
//! [`crate::value::CellValue::parse`]). In particular:
//!
//! * only the single implicit empty record produced by the final newline is
//!   dropped — trailing rows whose cells are blank survive;
//! * a bare `\r` is data: the writer quotes fields containing `\r`, and the
//!   reader only swallows a `\r` that immediately precedes a `\n` (a CRLF
//!   line ending) outside quotes.
//!
//! Malformed input produces a positioned [`CsvError`] (1-based line number
//! of the offending record) instead of an opaque `None`.

use std::borrow::Cow;
use std::ops::Range;

use datavinci_telemetry as telemetry;

use crate::column::Column;
use crate::table::Table;
use crate::value::CellValue;

/// What went wrong while parsing CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvErrorKind {
    /// A record's field count disagrees with the header's.
    Ragged {
        /// Field count of the header record.
        expected: usize,
        /// Field count of the offending record.
        got: usize,
    },
    /// The input ended inside a quoted field.
    UnclosedQuote,
    /// The input contained no header record.
    MissingHeader,
    /// The input is not valid UTF-8.
    InvalidUtf8,
}

/// A positioned CSV parse diagnostic.
///
/// `line` is the 1-based physical line on which the offending record
/// *starts* (records with quoted newlines span several physical lines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based physical line number of the offending record's first line.
    pub line: usize,
    /// The failure class.
    pub kind: CsvErrorKind,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            CsvErrorKind::Ragged { expected, got } => write!(
                f,
                "line {}: ragged record: expected {expected} field(s), got {got}",
                self.line
            ),
            CsvErrorKind::UnclosedQuote => {
                write!(
                    f,
                    "line {}: unclosed quoted field at end of input",
                    self.line
                )
            }
            CsvErrorKind::MissingHeader => write!(f, "line {}: missing header record", self.line),
            CsvErrorKind::InvalidUtf8 => write!(f, "line {}: invalid UTF-8", self.line),
        }
    }
}

impl std::error::Error for CsvError {}

/// A resumable, chunk-at-a-time CSV reader.
///
/// Feed it byte (or `&str`) chunks of any size with [`CsvChunkReader::push`]
/// / [`CsvChunkReader::push_str`]; each call returns the *complete* data
/// records that ended inside that chunk, fields already unquoted. All
/// cross-chunk state — an open quoted field, a partial record, a `\r` that
/// may belong to a CRLF split across the boundary, even a partial UTF-8
/// code point — is carried inside the reader, so splitting the input at
/// every byte offset yields identical records (see the chunk-boundary
/// differential tests).
///
/// The first complete record becomes the header ([`CsvChunkReader::header`])
/// and is not returned as a row; every later record is validated against the
/// header's field count and reported with its starting line number on
/// mismatch. Call [`CsvChunkReader::finish`] at end of input to flush a
/// final unterminated record and surface unclosed-quote diagnostics.
#[derive(Debug, Default)]
pub struct CsvChunkReader {
    /// The current partial record, raw (quotes still embedded).
    cur: String,
    /// Inside a quoted field?
    in_quotes: bool,
    /// Saw a `\r` outside quotes that may pair with a `\n` to come.
    pending_cr: bool,
    /// Bytes of a UTF-8 code point split across a chunk boundary.
    utf8_carry: Vec<u8>,
    /// 1-based physical line currently being read.
    line: usize,
    /// Line on which the current record started.
    record_line: usize,
    /// The header record, once one complete record has been read.
    header: Option<Vec<String>>,
    /// Data rows consumed so far (diagnostics / telemetry).
    n_rows: usize,
}

impl CsvChunkReader {
    /// A fresh reader with no buffered state.
    pub fn new() -> CsvChunkReader {
        CsvChunkReader {
            line: 1,
            record_line: 1,
            ..CsvChunkReader::default()
        }
    }

    /// The header record, if at least one complete record has been read.
    pub fn header(&self) -> Option<&[String]> {
        self.header.as_deref()
    }

    /// Number of complete data rows yielded so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// 1-based physical line the reader is currently positioned on.
    pub fn line(&self) -> usize {
        self.line
    }

    /// True when no partial record, pending byte, or open quote is buffered
    /// (i.e. [`CsvChunkReader::finish`] would yield nothing).
    pub fn is_drained(&self) -> bool {
        self.cur.is_empty() && !self.in_quotes && !self.pending_cr && self.utf8_carry.is_empty()
    }

    /// Consumes one byte chunk, returning the complete data records that
    /// ended inside it. A multi-byte UTF-8 code point split across the
    /// chunk boundary is reassembled internally.
    pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<Vec<String>>, CsvError> {
        Ok(own_rows(self.push_cow(chunk)?))
    }

    /// [`CsvChunkReader::push`] for text chunks.
    pub fn push_str(&mut self, chunk: &str) -> Result<Vec<Vec<String>>, CsvError> {
        Ok(own_rows(self.push_str_cow(chunk)?))
    }

    /// Zero-copy variant of [`CsvChunkReader::push`]: fields of records
    /// fully contained in `chunk` that needed no quote/CRLF rewrite come
    /// back as `Cow::Borrowed` slices of `chunk`; only quoted fields and
    /// records spanning a chunk boundary are materialized.
    pub fn push_cow<'a>(&mut self, chunk: &'a [u8]) -> Result<Vec<Vec<Cow<'a, str>>>, CsvError> {
        // Re-join a code point split across the previous boundary: move
        // bytes from the chunk onto the carry until it decodes or is
        // provably invalid.
        let mut rows = Vec::new();
        let mut rest = chunk;
        while !self.utf8_carry.is_empty() && !rest.is_empty() {
            self.utf8_carry.push(rest[0]);
            rest = &rest[1..];
            match std::str::from_utf8(&self.utf8_carry) {
                Ok(s) => {
                    let s = s.to_owned();
                    self.utf8_carry.clear();
                    // A multi-byte code point is never a record terminator,
                    // so this yields no rows; own any that do appear for
                    // lifetime independence from the local buffer.
                    rows.extend(own_rows(self.push_str_cow(&s)?).into_iter().map(|row| {
                        row.into_iter()
                            .map(Cow::Owned)
                            .collect::<Vec<Cow<'a, str>>>()
                    }));
                    break;
                }
                Err(e) if e.error_len().is_none() => continue, // still incomplete
                Err(_) => {
                    return Err(self.error(CsvErrorKind::InvalidUtf8));
                }
            }
        }
        match std::str::from_utf8(rest) {
            Ok(s) => rows.extend(self.push_str_cow(s)?),
            Err(e) => {
                let (valid, tail) = rest.split_at(e.valid_up_to());
                if e.error_len().is_some() || tail.len() >= 4 {
                    return Err(self.error(CsvErrorKind::InvalidUtf8));
                }
                // An incomplete trailing code point: carry it to the next
                // chunk.
                let valid = std::str::from_utf8(valid).expect("valid prefix");
                rows.extend(self.push_str_cow(valid)?);
                self.utf8_carry.extend_from_slice(tail);
            }
        }
        Ok(rows)
    }

    /// [`CsvChunkReader::push_cow`] for text chunks: one pass over the raw
    /// bytes. Only the four structural bytes (`"`, `,`, `\n`, `\r`) steer
    /// the scan — all are ASCII, so slicing at their positions is always
    /// char-boundary-safe — and everything between terminators stays in
    /// place until a record completes.
    pub fn push_str_cow<'a>(&mut self, chunk: &'a str) -> Result<Vec<Vec<Cow<'a, str>>>, CsvError> {
        // `push_cow` funnels its decoded bytes through here, so this is the
        // one choke point for ingest volume telemetry.
        telemetry::counter("ingest.bytes", chunk.len() as u64);
        let bytes = chunk.as_bytes();
        let mut rows = Vec::new();
        let mut i = 0;
        if self.pending_cr && !bytes.is_empty() {
            self.pending_cr = false;
            if bytes[0] == b'\n' {
                // CRLF split across the chunk boundary: the \r was a
                // terminator, not data.
                i = 1;
                self.emit("", &mut rows)?;
            } else {
                // A bare \r is data.
                self.cur.push('\r');
            }
        }
        let mut rec_start = i;
        while i < bytes.len() {
            let b = bytes[i];
            if self.in_quotes {
                match b {
                    b'"' => self.in_quotes = false,
                    // Quoted newline: part of the value, but still a
                    // physical line for diagnostics.
                    b'\n' => self.line += 1,
                    _ => {}
                }
                i += 1;
            } else {
                match b {
                    b'"' => {
                        self.in_quotes = true;
                        i += 1;
                    }
                    b'\n' => {
                        self.emit(&chunk[rec_start..i], &mut rows)?;
                        i += 1;
                        rec_start = i;
                    }
                    b'\r' => {
                        if i + 1 < bytes.len() {
                            if bytes[i + 1] == b'\n' {
                                // CRLF line ending: neither byte is data.
                                self.emit(&chunk[rec_start..i], &mut rows)?;
                                i += 2;
                                rec_start = i;
                            } else {
                                // A bare \r is data; it stays in the slice.
                                i += 1;
                            }
                        } else {
                            // Chunk ends in \r: it may pair with a \n in
                            // the next chunk, so carry the partial record
                            // and remember the \r as a flag, not data.
                            self.cur.push_str(&chunk[rec_start..i]);
                            self.pending_cr = true;
                            i += 1;
                            rec_start = i;
                        }
                    }
                    _ => i += 1,
                }
            }
        }
        if rec_start < bytes.len() {
            // Unterminated tail: buffer it for the next chunk.
            self.cur.push_str(&chunk[rec_start..]);
        }
        if !rows.is_empty() {
            telemetry::counter("ingest.rows", rows.len() as u64);
        }
        Ok(rows)
    }

    /// Flushes end-of-input state: the final record if the input did not end
    /// with a newline, an [`CsvErrorKind::UnclosedQuote`] if it ended inside
    /// a quoted field. The reader is reusable for a fresh document
    /// afterwards only via [`CsvChunkReader::new`].
    pub fn finish(&mut self) -> Result<Vec<Vec<String>>, CsvError> {
        if !self.utf8_carry.is_empty() {
            return Err(self.error(CsvErrorKind::InvalidUtf8));
        }
        if self.in_quotes {
            return Err(self.error(CsvErrorKind::UnclosedQuote));
        }
        if self.pending_cr {
            // A final bare \r with no \n to pair with is data.
            self.pending_cr = false;
            self.cur.push('\r');
        }
        let mut rows = Vec::new();
        if !self.cur.is_empty() {
            self.emit("", &mut rows)?;
        }
        if !rows.is_empty() {
            telemetry::counter("ingest.rows", rows.len() as u64);
        }
        Ok(own_rows(rows))
    }

    /// Completes the record whose final (possibly empty) segment within the
    /// current chunk is `tail`: the first record becomes the header, the
    /// rest are validated against it and returned as rows. A record with no
    /// carried prefix splits straight off the chunk (borrowing unquoted
    /// fields); one that spans chunks goes through the owned buffer.
    fn emit<'a>(
        &mut self,
        tail: &'a str,
        rows: &mut Vec<Vec<Cow<'a, str>>>,
    ) -> Result<(), CsvError> {
        let at_line = self.record_line;
        self.line += 1;
        self.record_line = self.line;
        let fields: Vec<Cow<'a, str>> = if self.cur.is_empty() {
            split_fields_cow(tail)
        } else {
            self.cur.push_str(tail);
            let record = std::mem::take(&mut self.cur);
            split_fields(&record).into_iter().map(Cow::Owned).collect()
        };
        match &self.header {
            None => self.header = Some(fields.into_iter().map(Cow::into_owned).collect()),
            Some(header) => {
                if fields.len() != header.len() {
                    return Err(CsvError {
                        line: at_line,
                        kind: CsvErrorKind::Ragged {
                            expected: header.len(),
                            got: fields.len(),
                        },
                    });
                }
                self.n_rows += 1;
                rows.push(fields);
            }
        }
        Ok(())
    }

    fn error(&self, kind: CsvErrorKind) -> CsvError {
        CsvError {
            line: self.record_line,
            kind,
        }
    }
}

fn own_rows(rows: Vec<Vec<Cow<'_, str>>>) -> Vec<Vec<String>> {
    rows.into_iter()
        .map(|row| row.into_iter().map(Cow::into_owned).collect())
        .collect()
}

/// Builds a [`Table`] from a header and field rows (each row must have one
/// field per header entry — [`CsvChunkReader`] guarantees this). Cells are
/// parsed spreadsheet-style (see [`CellValue::parse`]).
pub fn rows_to_table<S: AsRef<str>>(header: &[String], rows: &[Vec<S>]) -> Table {
    let mut cols: Vec<Vec<CellValue>> = vec![Vec::with_capacity(rows.len()); header.len()];
    for row in rows {
        for (c, field) in row.iter().enumerate() {
            cols[c].push(CellValue::parse(field.as_ref()));
        }
    }
    Table::new(
        header
            .iter()
            .zip(cols)
            .map(|(name, values)| Column::new(name.clone(), values))
            .collect(),
    )
}

/// Parses CSV text with a header row into a [`Table`].
///
/// All cells are parsed spreadsheet-style (see [`CellValue::parse`]).
/// Ragged rows, unclosed quotes, and missing headers yield a positioned
/// [`CsvError`] naming the offending line.
///
/// The whole text is one chunk, so every unquoted field is borrowed
/// straight from `text` and cells are parsed into their columns without an
/// intermediate per-record `Vec<String>`.
pub fn parse_csv(text: &str) -> Result<Table, CsvError> {
    let _span = telemetry::span("ingest.parse_csv");
    let mut reader = CsvChunkReader::new();
    let rows = reader.push_str_cow(text)?;
    let tail = reader.finish()?;
    let header = reader.header.take().ok_or(CsvError {
        line: 1,
        kind: CsvErrorKind::MissingHeader,
    })?;
    let n_rows = rows.len() + tail.len();
    let mut cols: Vec<Vec<CellValue>> = vec![Vec::with_capacity(n_rows); header.len()];
    for row in &rows {
        for (c, field) in row.iter().enumerate() {
            cols[c].push(CellValue::parse(field));
        }
    }
    for row in &tail {
        for (c, field) in row.iter().enumerate() {
            cols[c].push(CellValue::parse(field));
        }
    }
    Ok(Table::new(
        header
            .into_iter()
            .zip(cols)
            .map(|(name, values)| Column::new(name, values))
            .collect(),
    ))
}

/// Renders a table to CSV text with a header row.
pub fn to_csv(table: &Table) -> String {
    let mut out = csv_header(table);
    append_csv_rows(&mut out, table, 0..table.n_rows());
    out
}

/// The table's header record as one CSV line (with trailing newline).
pub fn csv_header(table: &Table) -> String {
    let headers: Vec<String> = table.headers().iter().map(|h| quote(h)).collect();
    let mut out = headers.join(",");
    out.push('\n');
    out
}

/// Appends the CSV lines of `rows` to `out` (no header) — the streaming
/// emit primitive: a chunked cleaner writes the header once, then appends
/// each repaired chunk's rows as they complete.
pub fn append_csv_rows(out: &mut String, table: &Table, rows: Range<usize>) {
    for r in rows {
        let mut first = true;
        for c in table.columns() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&quote(&c.get(r).map(CellValue::render).unwrap_or_default()));
        }
        out.push('\n');
    }
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Splits one record into unquoted field strings.
fn split_fields(record: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = record.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        match ch {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(ch),
        }
    }
    fields.push(cur);
    fields
}

/// [`split_fields`] for the zero-copy path: fields without a quote are
/// returned as borrowed slices of `record`; quoted fields get the same
/// per-field unquoting as the owned splitter (each field's quote state
/// starts closed, because commas only split outside quotes).
fn split_fields_cow(record: &str) -> Vec<Cow<'_, str>> {
    let bytes = record.as_bytes();
    let mut fields = Vec::new();
    let mut start = 0;
    let mut has_quote = false;
    let mut in_quotes = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => {
                in_quotes = !in_quotes;
                has_quote = true;
            }
            b',' if !in_quotes => {
                fields.push(finish_field(&record[start..i], has_quote));
                has_quote = false;
                start = i + 1;
            }
            _ => {}
        }
    }
    fields.push(finish_field(&record[start..], has_quote));
    fields
}

fn finish_field(raw: &str, has_quote: bool) -> Cow<'_, str> {
    if has_quote {
        Cow::Owned(unquote_field(raw))
    } else {
        Cow::Borrowed(raw)
    }
}

/// Strips the quoting from one raw field, collapsing doubled quotes —
/// byte-for-byte the treatment a single field receives inside
/// [`split_fields`].
fn unquote_field(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if ch == '"' {
            if in_quotes {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    out.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                in_quotes = true;
            }
        } else {
            out.push(ch);
        }
    }
    out
}

/// The pre-zero-copy char-at-a-time reader, retained verbatim as the
/// differential oracle: `tests/csv_roundtrip.rs` and the `hotpath` bench
/// prove the borrowing scanner byte-identical to it on every input they
/// generate. Not instrumented — telemetry counts only the live path.
pub mod reference {
    use super::{split_fields, CsvError, CsvErrorKind, Table};

    /// The old resumable chunk reader (owned `String` fields throughout).
    #[derive(Debug, Default)]
    pub struct CsvChunkReader {
        cur: String,
        in_quotes: bool,
        pending_cr: bool,
        utf8_carry: Vec<u8>,
        line: usize,
        record_line: usize,
        header: Option<Vec<String>>,
        n_rows: usize,
    }

    impl CsvChunkReader {
        /// A fresh oracle reader.
        pub fn new() -> CsvChunkReader {
            CsvChunkReader {
                line: 1,
                record_line: 1,
                ..CsvChunkReader::default()
            }
        }

        /// The header record, if one complete record has been read.
        pub fn header(&self) -> Option<&[String]> {
            self.header.as_deref()
        }

        /// Number of complete data rows yielded so far.
        pub fn n_rows(&self) -> usize {
            self.n_rows
        }

        /// Consumes one byte chunk (see the live reader's `push`).
        pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<Vec<String>>, CsvError> {
            let mut rows = Vec::new();
            let mut rest = chunk;
            while !self.utf8_carry.is_empty() && !rest.is_empty() {
                self.utf8_carry.push(rest[0]);
                rest = &rest[1..];
                match std::str::from_utf8(&self.utf8_carry) {
                    Ok(s) => {
                        let s = s.to_owned();
                        self.utf8_carry.clear();
                        rows.extend(self.push_str(&s)?);
                        break;
                    }
                    Err(e) if e.error_len().is_none() => continue,
                    Err(_) => {
                        return Err(self.error(CsvErrorKind::InvalidUtf8));
                    }
                }
            }
            match std::str::from_utf8(rest) {
                Ok(s) => rows.extend(self.push_str(s)?),
                Err(e) => {
                    let (valid, tail) = rest.split_at(e.valid_up_to());
                    if e.error_len().is_some() || tail.len() >= 4 {
                        return Err(self.error(CsvErrorKind::InvalidUtf8));
                    }
                    let valid = std::str::from_utf8(valid).expect("valid prefix");
                    rows.extend(self.push_str(valid)?);
                    self.utf8_carry.extend_from_slice(tail);
                }
            }
            Ok(rows)
        }

        /// Consumes one text chunk (see the live reader's `push_str`).
        pub fn push_str(&mut self, chunk: &str) -> Result<Vec<Vec<String>>, CsvError> {
            let mut rows = Vec::new();
            for ch in chunk.chars() {
                if self.pending_cr {
                    self.pending_cr = false;
                    if ch == '\n' {
                        self.end_record(&mut rows)?;
                        continue;
                    }
                    self.cur.push('\r');
                }
                match ch {
                    '"' => {
                        self.in_quotes = !self.in_quotes;
                        self.cur.push(ch);
                    }
                    '\n' if !self.in_quotes => self.end_record(&mut rows)?,
                    '\r' if !self.in_quotes => self.pending_cr = true,
                    '\n' => {
                        self.line += 1;
                        self.cur.push(ch);
                    }
                    _ => self.cur.push(ch),
                }
            }
            Ok(rows)
        }

        /// Flushes end-of-input state (see the live reader's `finish`).
        pub fn finish(&mut self) -> Result<Vec<Vec<String>>, CsvError> {
            if !self.utf8_carry.is_empty() {
                return Err(self.error(CsvErrorKind::InvalidUtf8));
            }
            if self.in_quotes {
                return Err(self.error(CsvErrorKind::UnclosedQuote));
            }
            if self.pending_cr {
                self.pending_cr = false;
                self.cur.push('\r');
            }
            let mut rows = Vec::new();
            if !self.cur.is_empty() {
                self.end_record(&mut rows)?;
            }
            Ok(rows)
        }

        fn end_record(&mut self, rows: &mut Vec<Vec<String>>) -> Result<(), CsvError> {
            let record = std::mem::take(&mut self.cur);
            let at_line = self.record_line;
            self.line += 1;
            self.record_line = self.line;
            let fields = split_fields(&record);
            match &self.header {
                None => self.header = Some(fields),
                Some(header) => {
                    if fields.len() != header.len() {
                        return Err(CsvError {
                            line: at_line,
                            kind: CsvErrorKind::Ragged {
                                expected: header.len(),
                                got: fields.len(),
                            },
                        });
                    }
                    self.n_rows += 1;
                    rows.push(fields);
                }
            }
            Ok(())
        }

        fn error(&self, kind: CsvErrorKind) -> CsvError {
            CsvError {
                line: self.record_line,
                kind,
            }
        }
    }

    /// Whole-text parse through the oracle reader.
    pub fn parse_csv(text: &str) -> Result<Table, CsvError> {
        let mut reader = CsvChunkReader::new();
        let mut rows = reader.push_str(text)?;
        rows.extend(reader.finish()?);
        let header = reader.header.ok_or(CsvError {
            line: 1,
            kind: CsvErrorKind::MissingHeader,
        })?;
        Ok(super::rows_to_table(&header, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let csv = "a,b\nx,1\ny,2\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(to_csv(&t), csv);
    }

    #[test]
    fn quoted_fields() {
        let csv = "a\n\"x,y\"\n\"he said \"\"hi\"\"\"\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.column(0).unwrap().get(0).unwrap().as_text(), Some("x,y"));
        assert_eq!(
            t.column(0).unwrap().get(1).unwrap().as_text(),
            Some("he said \"hi\"")
        );
    }

    #[test]
    fn quoted_newline() {
        let csv = "a\n\"x\ny\"\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.column(0).unwrap().get(0).unwrap().as_text(), Some("x\ny"));
    }

    #[test]
    fn ragged_rejected_with_line_number() {
        let err = parse_csv("a,b\nx,1\nx\ny,2\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(
            err.kind,
            CsvErrorKind::Ragged {
                expected: 2,
                got: 1
            }
        );
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn ragged_line_number_skips_quoted_newlines() {
        // The quoted record spans physical lines 2-3; the ragged record
        // starts on line 4.
        let err = parse_csv("a,b\n\"x\ny\",1\nz\n").unwrap_err();
        assert_eq!(err.line, 4);
    }

    #[test]
    fn unclosed_quote_rejected() {
        let err = parse_csv("a\n\"x\n").unwrap_err();
        assert_eq!(err.kind, CsvErrorKind::UnclosedQuote);
        assert_eq!(err.line, 2);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(parse_csv("").unwrap_err().kind, CsvErrorKind::MissingHeader);
    }

    #[test]
    fn numbers_parse_on_read() {
        let t = parse_csv("n\n42\n").unwrap();
        assert!(t.column(0).unwrap().get(0).unwrap().is_number());
    }

    #[test]
    fn quoting_special_chars_on_write() {
        let t = Table::new(vec![Column::from_texts("h", &["a,b", "q\"q"])]);
        let csv = to_csv(&t);
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
        let back = parse_csv(&csv).unwrap();
        assert_eq!(
            back.column(0).unwrap().get(0).unwrap().as_text(),
            Some("a,b")
        );
    }

    #[test]
    fn trailing_blank_rows_survive() {
        // The old reader popped *all* trailing empty records, losing the
        // final two rows of this single-column table.
        let csv = "h\nx\n\n\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert!(t.column(0).unwrap().get(1).unwrap().is_blank());
        assert!(t.column(0).unwrap().get(2).unwrap().is_blank());
        assert_eq!(to_csv(&t), csv);
    }

    #[test]
    fn final_newline_produces_no_phantom_row() {
        let with = parse_csv("h\nx\n").unwrap();
        let without = parse_csv("h\nx").unwrap();
        assert_eq!(with, without);
        assert_eq!(with.n_rows(), 1);
    }

    #[test]
    fn bare_cr_is_data_and_round_trips() {
        // A bare \r inside a cell must be quoted on write and preserved on
        // read; only \r\n is a line ending.
        let t = Table::new(vec![Column::from_texts("h", &["a\rb", "c"])]);
        let csv = to_csv(&t);
        assert!(csv.contains("\"a\rb\""));
        let back = parse_csv(&csv).unwrap();
        assert_eq!(
            back.column(0).unwrap().get(0).unwrap().as_text(),
            Some("a\rb")
        );
        assert_eq!(to_csv(&back), csv);
    }

    #[test]
    fn crlf_line_endings_accepted() {
        let t = parse_csv("a,b\r\nx,1\r\ny,2\r\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.column(0).unwrap().get(1).unwrap().as_text(), Some("y"));
        // A lone final \r (no \n) is data on the last record.
        let t = parse_csv("a\nx\r").unwrap();
        assert_eq!(t.column(0).unwrap().get(0).unwrap().as_text(), Some("x\r"));
    }

    #[test]
    fn chunk_reader_carries_state_across_boundaries() {
        let csv = "a,b\r\n\"x,\ny\",1\r\nz,2\n";
        let whole = parse_csv(csv).unwrap();
        // Split at every char boundary: identical table.
        for split in 0..=csv.len() {
            if !csv.is_char_boundary(split) {
                continue;
            }
            let mut reader = CsvChunkReader::new();
            let mut rows = reader.push_str(&csv[..split]).unwrap();
            rows.extend(reader.push_str(&csv[split..]).unwrap());
            rows.extend(reader.finish().unwrap());
            let t = rows_to_table(reader.header().unwrap(), &rows);
            assert_eq!(t, whole, "split at byte {split}");
        }
    }

    #[test]
    fn chunk_reader_reassembles_split_utf8() {
        let csv = "h\nnaïve—α\n".as_bytes();
        let whole = parse_csv(std::str::from_utf8(csv).unwrap()).unwrap();
        for split in 0..=csv.len() {
            let mut reader = CsvChunkReader::new();
            let mut rows = reader.push(&csv[..split]).unwrap();
            rows.extend(reader.push(&csv[split..]).unwrap());
            rows.extend(reader.finish().unwrap());
            let t = rows_to_table(reader.header().unwrap(), &rows);
            assert_eq!(t, whole, "split at byte {split}");
        }
    }

    #[test]
    fn invalid_utf8_is_positioned() {
        let mut reader = CsvChunkReader::new();
        let _ = reader.push(b"h\nok\n").unwrap();
        let err = reader.push(&[0xff, 0xfe]).unwrap_err();
        assert_eq!(err.kind, CsvErrorKind::InvalidUtf8);
        assert_eq!(err.line, 3);
    }

    #[test]
    fn reader_yields_batches_per_chunk() {
        let mut reader = CsvChunkReader::new();
        let rows = reader.push_str("a,b\nx,1\ny,").unwrap();
        assert_eq!(rows, vec![vec!["x".to_string(), "1".to_string()]]);
        assert_eq!(reader.header().unwrap(), ["a", "b"]);
        let rows = reader.push_str("2\n").unwrap();
        assert_eq!(rows, vec![vec!["y".to_string(), "2".to_string()]]);
        assert_eq!(reader.finish().unwrap(), Vec::<Vec<String>>::new());
        assert!(reader.is_drained());
        assert_eq!(reader.n_rows(), 2);
    }
}
