//! Minimal CSV reader/writer for examples and fixtures.
//!
//! Supports RFC-4180-style quoting (`"a,b"`, doubled quotes). This is not a
//! general CSV library — it exists so examples and tests can round-trip small
//! tables without external dependencies.

use crate::column::Column;
use crate::table::Table;
use crate::value::CellValue;

/// Parses CSV text with a header row into a [`Table`].
///
/// All cells are parsed spreadsheet-style (see [`CellValue::parse`]).
/// Returns `None` for ragged input (rows with differing field counts).
pub fn parse_csv(text: &str) -> Option<Table> {
    let mut rows = Vec::new();
    for line in split_records(text) {
        rows.push(split_fields(&line));
    }
    let header = rows.first()?;
    let n = header.len();
    if rows.iter().any(|r| r.len() != n) {
        return None;
    }
    let mut cols: Vec<Vec<CellValue>> = vec![Vec::with_capacity(rows.len() - 1); n];
    for row in &rows[1..] {
        for (c, field) in row.iter().enumerate() {
            cols[c].push(CellValue::parse(field));
        }
    }
    Some(Table::new(
        header
            .iter()
            .zip(cols)
            .map(|(name, values)| Column::new(name.clone(), values))
            .collect(),
    ))
}

/// Renders a table to CSV text with a header row.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let headers: Vec<String> = table.headers().iter().map(|h| quote(h)).collect();
    out.push_str(&headers.join(","));
    out.push('\n');
    for r in 0..table.n_rows() {
        let fields: Vec<String> = table
            .columns()
            .iter()
            .map(|c| quote(&c.get(r).map(CellValue::render).unwrap_or_default()))
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Splits CSV text into logical records, respecting quoted newlines.
fn split_records(text: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for ch in text.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(ch);
            }
            '\n' if !in_quotes => {
                if !cur.is_empty() || !records.is_empty() {
                    records.push(std::mem::take(&mut cur));
                }
            }
            '\r' if !in_quotes => {}
            _ => cur.push(ch),
        }
    }
    if !cur.is_empty() {
        records.push(cur);
    }
    // Drop a trailing fully-empty record produced by a final newline.
    while records.last().is_some_and(|r| r.is_empty()) {
        records.pop();
    }
    records
}

/// Splits one record into unquoted field strings.
fn split_fields(record: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = record.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        match ch {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(ch),
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let csv = "a,b\nx,1\ny,2\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(to_csv(&t), csv);
    }

    #[test]
    fn quoted_fields() {
        let csv = "a\n\"x,y\"\n\"he said \"\"hi\"\"\"\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.column(0).unwrap().get(0).unwrap().as_text(), Some("x,y"));
        assert_eq!(
            t.column(0).unwrap().get(1).unwrap().as_text(),
            Some("he said \"hi\"")
        );
    }

    #[test]
    fn quoted_newline() {
        let csv = "a\n\"x\ny\"\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.column(0).unwrap().get(0).unwrap().as_text(), Some("x\ny"));
    }

    #[test]
    fn ragged_rejected() {
        assert!(parse_csv("a,b\nx\n").is_none());
    }

    #[test]
    fn numbers_parse_on_read() {
        let t = parse_csv("n\n42\n").unwrap();
        assert!(t.column(0).unwrap().get(0).unwrap().is_number());
    }

    #[test]
    fn quoting_special_chars_on_write() {
        let t = Table::new(vec![Column::from_texts("h", &["a,b", "q\"q"])]);
        let csv = to_csv(&t);
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
        let back = parse_csv(&csv).unwrap();
        assert_eq!(
            back.column(0).unwrap().get(0).unwrap().as_text(),
            Some("a,b")
        );
    }
}
