//! Stable cell and column addressing.

use std::fmt;

/// A column index within a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef(pub usize);

/// A (column, row) cell address within a table.
///
/// Detection and repair results are reported against cell addresses so they
/// can be scored against benchmark ground truth regardless of value content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellRef {
    /// Column index.
    pub col: usize,
    /// Row index (0-based, excluding the header).
    pub row: usize,
}

impl CellRef {
    /// Builds a cell reference.
    pub fn new(col: usize, row: usize) -> Self {
        CellRef { col, row }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col{}", self.0)
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}r{}", self.col, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ColRef(3).to_string(), "col3");
        assert_eq!(CellRef::new(1, 9).to_string(), "c1r9");
    }

    #[test]
    fn ordering_is_column_major() {
        let a = CellRef::new(0, 5);
        let b = CellRef::new(1, 0);
        assert!(a < b);
    }
}
