//! Bump-style string storage: many small strings, few allocations.
//!
//! The hot paths of the pipeline (value interning, row-key interning,
//! rendered-value dedup) create large populations of short strings whose
//! lifetimes all end together. Storing each in its own `String` costs one
//! heap allocation per value; a [`StrArena`] instead appends them into a
//! small number of fixed-capacity segments and hands out offset-based
//! [`ArenaRef`] handles, so a 200-distinct column costs a handful of
//! allocations rather than two hundred.
//!
//! [`ArenaInterner`] layers exact-match dedup on top: `intern` returns a
//! dense `u32` id in first-occurrence order, storing each distinct string
//! once. Both types are std-only (no hashbrown raw-entry tricks): the
//! interner buckets by a 64-bit hash and resolves collisions by comparing
//! the arena-resident bytes.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Default capacity of each arena segment, in bytes. Oversized strings get
/// a dedicated segment instead of forcing a realloc.
const SEGMENT_BYTES: usize = 16 * 1024;

/// A handle into a [`StrArena`]: segment index plus byte range.
///
/// Handles are `Copy`, 12 bytes, and remain valid for the arena's lifetime
/// (segments are append-only and never reallocate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaRef {
    seg: u32,
    start: u32,
    len: u32,
}

impl ArenaRef {
    /// Length in bytes of the referenced string.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// True when the referenced string is empty.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// Append-only string storage over fixed-capacity `String` segments.
#[derive(Debug, Default, Clone)]
pub struct StrArena {
    segments: Vec<String>,
    bytes: usize,
}

impl StrArena {
    /// An empty arena (no segments until the first push).
    pub fn new() -> StrArena {
        StrArena::default()
    }

    /// Appends `s` and returns its handle. Never copies or moves previously
    /// pushed strings: a segment that cannot fit `s` is left as-is and a new
    /// one is started.
    pub fn push(&mut self, s: &str) -> ArenaRef {
        let fits = self
            .segments
            .last()
            .is_some_and(|seg| seg.len() + s.len() <= seg.capacity());
        if !fits {
            self.segments
                .push(String::with_capacity(SEGMENT_BYTES.max(s.len())));
        }
        let seg = self.segments.len() - 1;
        let tail = &mut self.segments[seg];
        let start = tail.len();
        tail.push_str(s);
        self.bytes += s.len();
        ArenaRef {
            seg: seg as u32,
            start: start as u32,
            len: s.len() as u32,
        }
    }

    /// Resolves a handle back to its string slice.
    pub fn get(&self, r: ArenaRef) -> &str {
        &self.segments[r.seg as usize][r.start as usize..(r.start + r.len) as usize]
    }

    /// Total bytes stored.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of backing segments (≈ allocations made).
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }
}

/// Exact-match string interner over a [`StrArena`].
///
/// `intern` assigns dense `u32` ids in first-occurrence order — the same
/// numbering a `HashMap<String, usize>` with `entry(..).or_insert(len)`
/// produces — without allocating a key `String` per call.
#[derive(Debug, Default)]
pub struct ArenaInterner {
    arena: StrArena,
    /// 64-bit hash → (handle, id) entries; collisions compare arena bytes.
    buckets: HashMap<u64, Vec<(ArenaRef, u32)>>,
    /// Handle of each id, in id order.
    refs: Vec<ArenaRef>,
}

impl ArenaInterner {
    /// An empty interner.
    pub fn new() -> ArenaInterner {
        ArenaInterner::default()
    }

    /// The id of `s`, interning it on first sight.
    pub fn intern(&mut self, s: &str) -> u32 {
        let mut hasher = DefaultHasher::new();
        s.hash(&mut hasher);
        let bucket = self.buckets.entry(hasher.finish()).or_default();
        for &(r, id) in bucket.iter() {
            if self.arena.get(r) == s {
                return id;
            }
        }
        let r = self.arena.push(s);
        let id = self.refs.len() as u32;
        self.refs.push(r);
        bucket.push((r, id));
        id
    }

    /// The interned string with the given id.
    pub fn resolve(&self, id: u32) -> &str {
        self.arena.get(self.refs[id as usize])
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The backing arena (for allocation accounting).
    pub fn arena(&self) -> &StrArena {
        &self.arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut arena = StrArena::new();
        let a = arena.push("hello");
        let b = arena.push("");
        let c = arena.push("wörld");
        assert_eq!(arena.get(a), "hello");
        assert_eq!(arena.get(b), "");
        assert_eq!(arena.get(c), "wörld");
        assert_eq!(a.len(), 5);
        assert!(b.is_empty());
        assert_eq!(arena.bytes(), 5 + "wörld".len());
    }

    #[test]
    fn segments_never_move_existing_strings() {
        let mut arena = StrArena::new();
        let small = arena.push("abc");
        // A string larger than a whole segment gets its own segment; the
        // prior segment (and handle) stay valid.
        let big_src = "x".repeat(SEGMENT_BYTES + 7);
        let big = arena.push(&big_src);
        let after = arena.push("def");
        assert_eq!(arena.get(small), "abc");
        assert_eq!(arena.get(big), big_src);
        assert_eq!(arena.get(after), "def");
        assert!(arena.n_segments() >= 2);
    }

    #[test]
    fn many_small_strings_use_few_segments() {
        let mut arena = StrArena::new();
        let refs: Vec<(ArenaRef, String)> = (0..1000)
            .map(|i| {
                let s = format!("value-{i}");
                (arena.push(&s), s)
            })
            .collect();
        for (r, s) in &refs {
            assert_eq!(arena.get(*r), s);
        }
        // ~9 bytes per string → everything fits in a single 16 KiB segment.
        assert_eq!(arena.n_segments(), 1);
    }

    #[test]
    fn interner_assigns_first_occurrence_ids() {
        let mut interner = ArenaInterner::new();
        assert_eq!(interner.intern("b"), 0);
        assert_eq!(interner.intern("a"), 1);
        assert_eq!(interner.intern("b"), 0);
        assert_eq!(interner.intern(""), 2);
        assert_eq!(interner.intern("a"), 1);
        assert_eq!(interner.len(), 3);
        assert_eq!(interner.resolve(0), "b");
        assert_eq!(interner.resolve(1), "a");
        assert_eq!(interner.resolve(2), "");
    }

    #[test]
    fn interner_matches_hashmap_reference() {
        // Differential check against the map the interner replaces.
        let words: Vec<String> = (0..500).map(|i| format!("w{}", i % 37)).collect();
        let mut interner = ArenaInterner::new();
        let mut reference: HashMap<String, u32> = HashMap::new();
        for w in &words {
            let next = reference.len() as u32;
            let expect = *reference.entry(w.clone()).or_insert(next);
            assert_eq!(interner.intern(w), expect, "id for {w:?}");
        }
        assert_eq!(interner.len(), reference.len());
    }
}
