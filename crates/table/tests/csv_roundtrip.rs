//! Property tests for the lossless CSV round trip and the chunk reader.
//!
//! Two invariants, over corpus-generated tables exercising blanks, commas,
//! quotes, embedded newlines, CRLF, bare `\r`, and multi-byte UTF-8:
//!
//! 1. **Round trip is a fixed point.** `parse_csv` normalizes cells
//!    spreadsheet-style (`"1.0"` becomes the number `1`), so one
//!    parse→render cycle may rewrite a cell — but a *second* cycle must
//!    reproduce the first's table exactly. For cells already in
//!    parse-normal form the very first cycle is the identity.
//! 2. **Chunking is invisible.** Splitting the serialized bytes at *every*
//!    offset (including mid-code-point) and feeding both halves through a
//!    [`CsvChunkReader`] yields exactly the whole-text parse.

use proptest::prelude::*;

use datavinci_table::{io, CsvChunkReader, Table};

/// One generated cell: blank, plain, quote-worthy, multi-line, numeric,
/// spreadsheet-typed, or multi-byte.
fn arb_field() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[a-z]{1,6}",
        "[A-Z0-9]{1,4}",
        Just(",".to_string()),
        Just("\"".to_string()),
        Just("a,b".to_string()),
        Just("he said \"\"hi\"\"".to_string()),
        Just("two\nlines".to_string()),
        Just("crlf\r\ninside".to_string()),
        Just("bare\rcr".to_string()),
        Just("tab\tand space ".to_string()),
        Just("naïve—α".to_string()),
        Just("42".to_string()),
        Just("-3.5".to_string()),
        Just("TRUE".to_string()),
        Just("#VALUE!".to_string()),
    ]
}

/// A rectangular field grid: 1–4 columns, up to ~6 rows (trailing rows may
/// be all-blank — the regression the reader must not drop). The cell vector
/// is truncated to a whole number of rows in [`grid_to_table`].
fn arb_grid() -> impl Strategy<Value = (usize, Vec<String>)> {
    (1usize..5, prop::collection::vec(arb_field(), 0..25))
}

fn grid_to_table(cols: usize, cells: &[String]) -> Table {
    let header: Vec<String> = (0..cols).map(|c| format!("col{c}")).collect();
    let n_rows = cells.len() / cols;
    let rows: Vec<Vec<String>> = cells[..cols * n_rows]
        .chunks(cols)
        .map(|r| r.to_vec())
        .collect();
    io::rows_to_table(&header, &rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_a_fixed_point(grid in arb_grid()) {
        let (cols, cells) = grid;
        let t1 = grid_to_table(cols, &cells);
        // First cycle may normalize; it must at least parse cleanly.
        let t2 = io::parse_csv(&io::to_csv(&t1)).expect("rendered CSV reparses");
        // Second cycle must be the identity.
        let t3 = io::parse_csv(&io::to_csv(&t2)).expect("rendered CSV reparses");
        prop_assert_eq!(&t3, &t2, "parse∘render must reach a fixed point in one step");
        prop_assert_eq!(t2.n_rows(), t1.n_rows(), "no rows gained or lost");
        prop_assert_eq!(t2.n_cols(), t1.n_cols());
    }

    #[test]
    fn text_cells_round_trip_exactly(grid in arb_grid()) {
        // Restricted to cells that parse as text or blank (parse-normal for
        // this corpus): the first cycle is already the identity.
        let (cols, cells) = grid;
        let t1 = grid_to_table(cols, &cells);
        if t1
            .columns()
            .iter()
            .flat_map(|c| c.values())
            .all(|v| v.is_blank() || v.as_text().is_some())
        {
            let t2 = io::parse_csv(&io::to_csv(&t1)).expect("rendered CSV reparses");
            prop_assert_eq!(&t2, &t1, "text tables must round-trip losslessly");
        }
    }

    #[test]
    fn chunk_split_at_every_offset_is_invisible(grid in arb_grid()) {
        let (cols, cells) = grid;
        let t1 = grid_to_table(cols, &cells);
        let csv = io::to_csv(&t1);
        let whole = io::parse_csv(&csv).expect("rendered CSV reparses");
        let bytes = csv.as_bytes();
        for split in 0..=bytes.len() {
            let mut reader = CsvChunkReader::new();
            let mut rows = reader.push(&bytes[..split]).expect("first half");
            rows.extend(reader.push(&bytes[split..]).expect("second half"));
            rows.extend(reader.finish().expect("finish"));
            let header = reader.header().expect("header present").to_vec();
            let t = io::rows_to_table(&header, &rows);
            prop_assert_eq!(&t, &whole, "split at byte {} changed the parse", split);
        }
    }

    #[test]
    fn borrowing_path_split_at_every_offset_matches_oracle(grid in arb_grid()) {
        // The zero-copy API (`push_cow`, borrowed fields) against the
        // retained char-at-a-time oracle, at every chunk boundary.
        let (cols, cells) = grid;
        let csv = io::to_csv(&grid_to_table(cols, &cells));
        let bytes = csv.as_bytes();

        let mut oracle = io::reference::CsvChunkReader::new();
        let mut expected = oracle.push(bytes).expect("oracle parse");
        expected.extend(oracle.finish().expect("oracle finish"));

        for split in 0..=bytes.len() {
            let mut reader = CsvChunkReader::new();
            let mut rows: Vec<Vec<String>> = Vec::new();
            for chunk in [&bytes[..split], &bytes[split..]] {
                let cows = reader.push_cow(chunk).expect("borrowing push");
                rows.extend(
                    cows.into_iter()
                        .map(|row| row.into_iter().map(|f| f.into_owned()).collect()),
                );
            }
            rows.extend(reader.finish().expect("finish"));
            prop_assert_eq!(&rows, &expected, "split at byte {} diverged from oracle", split);
            prop_assert_eq!(reader.header(), oracle.header());
        }
    }

    #[test]
    fn whole_text_parse_matches_oracle(grid in arb_grid()) {
        let (cols, cells) = grid;
        let csv = io::to_csv(&grid_to_table(cols, &cells));
        let new = io::parse_csv(&csv).expect("live parse");
        let old = io::reference::parse_csv(&csv).expect("oracle parse");
        prop_assert_eq!(&new, &old, "zero-copy parse diverged from the oracle");
    }
}

/// A single-chunk parse of unquoted data must not allocate field copies:
/// every field comes back `Cow::Borrowed`.
#[test]
fn unquoted_fields_are_borrowed() {
    let csv = "a,b\nplain,42\nmore,text\n";
    let mut reader = CsvChunkReader::new();
    let rows = reader.push_str_cow(csv).expect("parse");
    assert_eq!(rows.len(), 2);
    for row in &rows {
        for field in row {
            assert!(
                matches!(field, std::borrow::Cow::Borrowed(_)),
                "unquoted field {field:?} should borrow from the chunk"
            );
        }
    }
    // Quoted fields are the ones that pay for a rewrite.
    let mut reader = CsvChunkReader::new();
    let rows = reader.push_str_cow("h\n\"q,uoted\"\n").expect("parse");
    assert!(matches!(rows[0][0], std::borrow::Cow::Owned(_)));
    assert_eq!(rows[0][0], "q,uoted");
}

/// Old-reader-vs-new over the committed corpus fixtures, whole-file and
/// line-at-a-time chunked.
#[test]
fn fixture_files_parse_identically_old_vs_new() {
    let fixtures = [
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/fixtures/cities.csv"
        ),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/fixtures/duplicates.csv"
        ),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/fixtures/players.csv"
        ),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/fixtures/quarters.csv"
        ),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../crates/engine/tests/fixtures/players.csv"
        ),
    ];
    for path in fixtures {
        let text = std::fs::read_to_string(path).expect("fixture readable");
        let new = io::parse_csv(&text).expect("live parse");
        let old = io::reference::parse_csv(&text).expect("oracle parse");
        assert_eq!(new, old, "{path} parses differently old vs new");

        // Chunked at every line boundary, too.
        let mut reader = CsvChunkReader::new();
        let mut rows = Vec::new();
        for line in text.split_inclusive('\n') {
            rows.extend(reader.push_str(line).expect("chunked push"));
        }
        rows.extend(reader.finish().expect("finish"));
        let header = reader.header().expect("header").to_vec();
        assert_eq!(
            io::rows_to_table(&header, &rows),
            new,
            "{path} chunked parse diverged"
        );
    }
}
