//! The thread-local collector and the free-function recording API.
//!
//! Recording is scoped, not global: [`collect`] installs a fresh
//! [`LocalCollector`] in a thread-local slot, runs a closure, and returns
//! the finished [`TaskProfile`]. Inside the closure, [`span`], [`counter`],
//! [`gauge`], and [`observe`] record into that collector with no locking;
//! outside any `collect` (or when `collect` was called with
//! `enabled = false`) every call is a near-no-op — one relaxed atomic load
//! when no collector exists anywhere in the process, one additional
//! thread-local read otherwise.
//!
//! Worker threads each run their task under their own `collect`; the
//! spawning thread grafts the finished profiles into its own collector
//! with [`absorb`] at join time. That keeps the hot path lock-free while
//! still producing one deterministic tree.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::metrics::MetricsFrame;
use crate::span::{merge_span_lists, SpanNode};

/// Everything one [`collect`] scope recorded: the closed-span forest and
/// the task-local metrics frame (which includes the per-span-name latency
/// histograms observed automatically as spans close).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskProfile {
    /// Root spans closed in this scope, aggregated by name.
    pub spans: Vec<SpanNode>,
    /// Counters, gauges, and histograms recorded in this scope.
    pub metrics: MetricsFrame,
}

impl TaskProfile {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.metrics.is_empty()
    }

    /// Fold another profile into this one: span forests merge by name,
    /// metrics merge frame-wise.
    pub fn merge(&mut self, other: &TaskProfile) {
        merge_span_lists(&mut self.spans, &other.spans);
        self.metrics.merge(&other.metrics);
    }

    /// Find a span by name anywhere in the forest.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        crate::span::find_span(&self.spans, name)
    }
}

struct OpenFrame {
    name: &'static str,
    started: Instant,
    children: Vec<SpanNode>,
}

/// The per-scope recording state. Only ever touched through the
/// thread-local slot; public so the type can appear in documentation.
#[derive(Debug)]
pub struct LocalCollector {
    id: u64,
    open: Vec<OpenFrame>,
    done: Vec<SpanNode>,
    metrics: MetricsFrame,
}

impl std::fmt::Debug for OpenFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenFrame")
            .field("name", &self.name)
            .finish()
    }
}

/// Count of currently-installed collectors across all threads. Zero means
/// every recording call can bail after a single relaxed load — this is the
/// "disabled telemetry is near-free" gate.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<LocalCollector>> = const { RefCell::new(None) };
}

impl LocalCollector {
    fn new() -> Self {
        LocalCollector {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            open: Vec::new(),
            done: Vec::new(),
            metrics: MetricsFrame::new(),
        }
    }

    fn open_span(&mut self, name: &'static str) {
        self.open.push(OpenFrame {
            name,
            started: Instant::now(),
            children: Vec::new(),
        });
    }

    fn close_span(&mut self) {
        let Some(frame) = self.open.pop() else { return };
        let total_ns = frame.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.metrics.observe_ns(frame.name, total_ns);
        let node = SpanNode {
            name: frame.name.to_string(),
            count: 1,
            total_ns,
            children: frame.children,
        };
        self.absorb_nodes(std::slice::from_ref(&node));
    }

    fn absorb_nodes(&mut self, nodes: &[SpanNode]) {
        let target = match self.open.last_mut() {
            Some(parent) => &mut parent.children,
            None => &mut self.done,
        };
        merge_span_lists(target, nodes);
    }

    fn finish(mut self) -> TaskProfile {
        while !self.open.is_empty() {
            self.close_span();
        }
        TaskProfile {
            spans: self.done,
            metrics: self.metrics,
        }
    }
}

/// RAII guard for one span. Created by [`span`]; records the span into the
/// installing collector when dropped. Guards are expected to drop in LIFO
/// order (the natural result of `let _span = span(...)` scoping).
#[must_use = "a span records its duration when dropped; binding it to _ closes it immediately"]
pub struct Span {
    /// Collector id this guard belongs to; 0 marks an inert guard.
    id: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        CURRENT.with(|c| {
            if let Some(col) = c.borrow_mut().as_mut() {
                // Only close if the installing collector is still current:
                // a guard smuggled out of its `collect` scope must not pop
                // frames from an unrelated collector.
                if col.id == self.id {
                    col.close_span();
                }
            }
        });
    }
}

/// Open a named span. Returns an inert guard (cost: one relaxed atomic
/// load) when no collector is installed.
pub fn span(name: &'static str) -> Span {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return Span { id: 0 };
    }
    CURRENT.with(|c| match c.borrow_mut().as_mut() {
        Some(col) => {
            col.open_span(name);
            Span { id: col.id }
        }
        None => Span { id: 0 },
    })
}

/// Add `delta` to a named counter in the current collector, if any.
pub fn counter(name: &str, delta: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    CURRENT.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.metrics.add_counter(name, delta);
        }
    });
}

/// Set a named gauge in the current collector, if any.
pub fn gauge(name: &str, value: f64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    CURRENT.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.metrics.set_gauge(name, value);
        }
    });
}

/// Record a duration into a named histogram in the current collector.
pub fn observe(name: &str, d: Duration) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    CURRENT.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.metrics.observe(name, d);
        }
    });
}

/// True when this thread currently records into a collector. Lets call
/// sites skip *computing* an expensive metric value (not just recording
/// it) when telemetry is off.
pub fn is_active() -> bool {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return false;
    }
    CURRENT.with(|c| c.borrow().is_some())
}

/// Graft a finished [`TaskProfile`] into the current collector: its spans
/// become children of the innermost open span (or roots), its metrics
/// merge into the collector's frame. This is how a spawning thread folds
/// worker-task profiles into its own tree at join time.
pub fn absorb(profile: &TaskProfile) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    CURRENT.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.absorb_nodes(&profile.spans);
            col.metrics.merge(&profile.metrics);
        }
    });
}

/// Run `f` with a fresh collector installed on this thread and return its
/// result together with everything recorded. With `enabled = false` the
/// closure runs bare and the profile is `None` — recording calls inside it
/// stay near-no-ops.
///
/// Nests correctly: a previously-installed collector is saved and restored
/// (also on unwind), so an engine-level `collect` inside a CLI-level
/// `collect` records into its own profile without corrupting the outer one.
/// This matters on single-worker pools, where tasks run inline on the
/// caller thread.
pub fn collect<R>(enabled: bool, f: impl FnOnce() -> R) -> (R, Option<TaskProfile>) {
    if !enabled {
        return (f(), None);
    }

    struct Restore {
        prev: Option<LocalCollector>,
        done: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            if !self.done {
                let prev = self.prev.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
                ACTIVE.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    ACTIVE.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| c.borrow_mut().replace(LocalCollector::new()));
    let mut restore = Restore { prev, done: false };

    let out = f();

    let col = CURRENT.with(|c| c.borrow_mut().take());
    CURRENT.with(|c| *c.borrow_mut() = restore.prev.take());
    ACTIVE.fetch_sub(1, Ordering::Relaxed);
    restore.done = true;

    (
        out,
        Some(col.map(LocalCollector::finish).unwrap_or_default()),
    )
}
