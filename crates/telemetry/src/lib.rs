//! `datavinci-telemetry`: std-only spans, counters, gauges, and latency
//! histograms for the DataVinci pipeline.
//!
//! Design (mirrors how the engine's `WorkerPool` executes work):
//!
//! - **Scoped, not global.** [`collect`] installs a thread-local
//!   [`LocalCollector`], runs a closure, and hands back a [`TaskProfile`]
//!   (span tree + metrics frame). Each worker task runs under its own
//!   `collect`; the spawning thread grafts finished profiles into its own
//!   tree with [`absorb`] at join time. The hot path never takes a lock.
//! - **Near-free when off.** With no collector installed anywhere,
//!   [`span`]/[`counter`]/[`observe`] cost one relaxed atomic load; with
//!   `collect(false, …)` they cost the same. No feature flags, no
//!   recompilation.
//! - **Deterministic trees.** Closed spans aggregate by name
//!   ([`SpanNode`]: ×count + total ns), and metrics live in `BTreeMap`s,
//!   so the merged result is independent of thread interleaving.
//! - **Spans are histograms too.** Every span closure also records its
//!   duration into a same-named [`Histogram`] in the task's
//!   [`MetricsFrame`], so `stage.profile` appears both as a tree node and
//!   as a latency distribution.
//!
//! The engine-lifetime accumulator is [`MetricsRegistry`]; reports carry
//! [`TaskProfile`]s. Canonical names used across the workspace are listed
//! in [`stages`].
//!
//! ```
//! use datavinci_telemetry as telemetry;
//!
//! let (sum, profile) = telemetry::collect(true, || {
//!     let _clean = telemetry::span("engine.clean_column");
//!     telemetry::counter("profile.patterns_learned", 3);
//!     (0..4u64).sum::<u64>()
//! });
//! assert_eq!(sum, 6);
//! let profile = profile.unwrap();
//! assert_eq!(profile.find_span("engine.clean_column").unwrap().count, 1);
//! assert_eq!(profile.metrics.counters["profile.patterns_learned"], 3);
//! ```

mod collector;
mod metrics;
mod span;

pub use collector::{absorb, collect, counter, gauge, is_active, observe, span};
pub use collector::{LocalCollector, Span, TaskProfile};
pub use metrics::{Histogram, MetricsFrame, MetricsRegistry, HIST_BUCKETS};
pub use span::{find_span, merge_span_lists, render_spans, SpanNode};

/// Canonical names for the six DataVinci pipeline stages. Exports seed an
/// (empty) histogram for each so the metrics schema always covers all six,
/// even on runs where a stage never fired (e.g. no semantic repairs →
/// no `stage.validate` samples).
pub mod stages {
    /// Value abstraction + semantic masking (paper stage ①).
    pub const MASK: &str = "stage.mask";
    /// Pattern learning over the masked column (paper stage ②).
    pub const PROFILE: &str = "stage.profile";
    /// Error detection against the learned profile (paper stage ③).
    pub const DETECT: &str = "stage.detect";
    /// Repair candidate synthesis: planning, DP, concretization (④).
    pub const REPAIR: &str = "stage.repair";
    /// Candidate ranking (⑤).
    pub const RANK: &str = "stage.rank";
    /// Execution-guided validation of semantic programs (⑥).
    pub const VALIDATE: &str = "stage.validate";

    /// All six, in pipeline order.
    pub const ALL: [&str; 6] = [MASK, PROFILE, DETECT, REPAIR, RANK, VALIDATE];
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_collect_returns_none() {
        let (v, p) = collect(false, || {
            let _s = span("never.recorded");
            counter("never.counted", 1);
            7
        });
        assert_eq!(v, 7);
        assert!(p.is_none());
    }

    #[test]
    fn recording_outside_any_scope_is_inert() {
        let _s = span("orphan");
        counter("orphan.count", 1);
        observe("orphan.lat", Duration::from_millis(1));
        assert!(!is_active());
    }

    #[test]
    fn spans_nest_and_aggregate_by_name() {
        let ((), p) = collect(true, || {
            let _root = span("root");
            for _ in 0..3 {
                let _child = span("child");
                let _grand = span("grand");
            }
        });
        let p = p.unwrap();
        assert_eq!(p.spans.len(), 1);
        let root = &p.spans[0];
        assert_eq!((root.name.as_str(), root.count), ("root", 1));
        let child = root.child("child").unwrap();
        assert_eq!(child.count, 3);
        assert_eq!(child.child("grand").unwrap().count, 3);
        // Span closures feed same-named histograms.
        assert_eq!(p.metrics.histograms["child"].count(), 3);
        assert_eq!(p.metrics.histograms["grand"].count(), 3);
    }

    #[test]
    fn counters_gauges_histograms_record_and_merge() {
        let ((), p1) = collect(true, || {
            counter("c", 2);
            gauge("g", 1.5);
            observe("h", Duration::from_nanos(100));
        });
        let ((), p2) = collect(true, || {
            counter("c", 3);
            gauge("g", 2.5);
            observe("h", Duration::from_nanos(300));
        });
        let mut m = p1.unwrap();
        m.merge(&p2.unwrap());
        assert_eq!(m.metrics.counters["c"], 5);
        assert_eq!(m.metrics.gauges["g"], 2.5);
        let h = &m.metrics.histograms["h"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_ns(), 400);
        assert_eq!(h.min_ns(), Some(100));
        assert_eq!(h.max_ns(), Some(300));
    }

    #[test]
    fn nested_collect_saves_and_restores_outer_scope() {
        let ((), outer) = collect(true, || {
            let _o = span("outer.work");
            counter("outer.c", 1);
            let ((), inner) = collect(true, || {
                let _i = span("inner.work");
                counter("inner.c", 1);
            });
            let inner = inner.unwrap();
            // Inner scope saw only its own records…
            assert_eq!(inner.spans.len(), 1);
            assert_eq!(inner.spans[0].name, "inner.work");
            assert!(!inner.metrics.counters.contains_key("outer.c"));
            // …and the outer scope is still live afterwards.
            counter("outer.c", 1);
        });
        let outer = outer.unwrap();
        assert_eq!(outer.metrics.counters["outer.c"], 2);
        assert!(outer.find_span("inner.work").is_none());
    }

    #[test]
    fn absorb_grafts_profiles_under_the_open_span() {
        let ((), task) = collect(true, || {
            let _t = span("task");
            counter("task.c", 4);
        });
        let task = task.unwrap();
        let ((), root) = collect(true, || {
            let _r = span("root");
            absorb(&task);
            absorb(&task);
        });
        let root = root.unwrap();
        let grafted = root.spans[0].child("task").unwrap();
        assert_eq!(grafted.count, 2);
        assert_eq!(root.metrics.counters["task.c"], 8);
    }

    #[test]
    fn worker_thread_profiles_merge_deterministically() {
        // Emulates the WorkerPool shape: tasks collect on their own
        // threads, the spawner absorbs at join.
        let profiles: Vec<TaskProfile> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move || {
                        let ((), p) = collect(true, || {
                            let _c = span("engine.clean_column");
                            counter("cells", i + 1);
                        });
                        p.unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let ((), batch) = collect(true, || {
            let _root = span("engine.clean_batch");
            for p in &profiles {
                absorb(p);
            }
        });
        let batch = batch.unwrap();
        let root = &batch.spans[0];
        assert_eq!(root.name, "engine.clean_batch");
        assert_eq!(root.child("engine.clean_column").unwrap().count, 4);
        assert_eq!(batch.metrics.counters["cells"], 1 + 2 + 3 + 4);
        assert_eq!(batch.metrics.histograms["engine.clean_column"].count(), 4);
    }

    #[test]
    fn span_guard_escaping_its_scope_is_inert() {
        let (guard, p) = collect(true, || span("escapee"));
        // Dropping the guard outside its collect scope must not touch any
        // other collector's frames.
        let ((), other) = collect(true, || {
            let _s = span("unrelated");
            drop(guard);
        });
        let p = p.unwrap();
        // The escaped span was force-closed by finish().
        assert_eq!(p.spans[0].name, "escapee");
        let other = other.unwrap();
        assert_eq!(other.spans.len(), 1);
        assert_eq!(other.spans[0].name, "unrelated");
        assert!(other.find_span("escapee").is_none());
    }

    #[test]
    fn histogram_quantiles_are_bucket_midpoints_clamped_to_range() {
        let mut h = Histogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.observe_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean_ns(), (100 + 200 + 400 + 800 + 100_000) / 5);
        // Rank 3 (400 ns) lands in bucket [256, 512): midpoint 383 — inside
        // the bucket, not its upper edge 511.
        assert_eq!(h.quantile_ns(0.5), 383);
        // 100 000 ns lands in bucket [65 536, 131 072): midpoint 98 303,
        // already within [min, max] so the clamp leaves it alone.
        assert_eq!(h.quantile_ns(1.0), 98_303);
        // Rank 1 (100 ns) is in bucket [64, 128): midpoint 95, clamped up
        // to the observed minimum.
        assert_eq!(h.quantile_ns(0.01), 100);
    }

    #[test]
    fn render_spans_shows_counts_and_percentages() {
        let ((), p) = collect(true, || {
            let _r = span("root");
            let _c = span("leaf");
        });
        let out = render_spans(&p.unwrap().spans);
        assert!(out.contains("root ×1"), "{out}");
        assert!(out.contains("└─ leaf ×1"), "{out}");
        assert!(out.contains("100.0%"), "{out}");
    }

    #[test]
    fn ensure_histogram_pins_schema_keys() {
        let mut m = MetricsFrame::new();
        for name in stages::ALL {
            m.ensure_histogram(name);
        }
        assert_eq!(m.histograms.len(), 6);
        assert_eq!(m.histograms[stages::VALIDATE].count(), 0);
    }
}
