//! The closed-span tree: aggregated per-name nodes and a text renderer.

/// One aggregated node in the span tree.
///
/// When a span named `n` closes under a parent that already has a child
/// named `n`, the two are folded together (`count` += 1, durations add),
/// so a column cleaned six times yields one `engine.clean_column ×6` node
/// rather than six siblings. Aggregation keys the tree purely on names,
/// which makes the final tree deterministic no matter how worker threads
/// interleaved.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Span name (e.g. `stage.profile`).
    pub name: String,
    /// Number of times a span with this name closed at this tree position.
    pub count: u64,
    /// Total wall-clock time across all `count` closures, in nanoseconds.
    pub total_ns: u64,
    /// Child spans, aggregated by name, in first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A leaf node for a single closed span.
    pub fn leaf(name: &str, total_ns: u64) -> Self {
        SpanNode {
            name: name.to_string(),
            count: 1,
            total_ns,
            children: Vec::new(),
        }
    }

    /// Fold `other` (same name) into this node, recursively merging
    /// children by name.
    pub fn merge_from(&mut self, other: &SpanNode) {
        debug_assert_eq!(self.name, other.name);
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        merge_span_lists(&mut self.children, &other.children);
    }

    /// Find a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Find a descendant by name anywhere under (and including) this node.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Merge a list of span nodes into `dst`, folding same-name nodes together
/// and appending first-seen names in order.
pub fn merge_span_lists(dst: &mut Vec<SpanNode>, src: &[SpanNode]) {
    for node in src {
        if let Some(existing) = dst.iter_mut().find(|n| n.name == node.name) {
            existing.merge_from(node);
        } else {
            dst.push(node.clone());
        }
    }
}

/// Find a span by name anywhere in a span forest.
pub fn find_span<'a>(spans: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
    spans.iter().find_map(|s| s.find(name))
}

/// Render a span forest as an indented tree with counts, total
/// milliseconds, and percentage of the root total — the `--trace` output.
pub fn render_spans(spans: &[SpanNode]) -> String {
    let root_total: u64 = spans.iter().map(|s| s.total_ns).sum();
    let mut out = String::new();
    for (i, node) in spans.iter().enumerate() {
        render_node(node, "", i + 1 == spans.len(), true, root_total, &mut out);
    }
    out
}

fn render_node(
    node: &SpanNode,
    prefix: &str,
    last: bool,
    is_root: bool,
    root_total: u64,
    out: &mut String,
) {
    let (branch, child_prefix) = if is_root {
        (String::new(), String::new())
    } else if last {
        (format!("{prefix}└─ "), format!("{prefix}   "))
    } else {
        (format!("{prefix}├─ "), format!("{prefix}│  "))
    };
    let ms = node.total_ns as f64 / 1e6;
    let pct = if root_total == 0 {
        0.0
    } else {
        100.0 * node.total_ns as f64 / root_total as f64
    };
    let label = format!("{branch}{} ×{}", node.name, node.count);
    out.push_str(&format!("{label:<44} {ms:>9.3} ms {pct:>5.1}%\n"));
    for (i, child) in node.children.iter().enumerate() {
        render_node(
            child,
            &child_prefix,
            i + 1 == node.children.len(),
            false,
            root_total,
            out,
        );
    }
}
