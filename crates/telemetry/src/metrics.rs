//! Counters, gauges, and log-scaled latency histograms.
//!
//! A [`MetricsFrame`] is a plain value: three ordered maps (counters,
//! gauges, histograms) that merge deterministically. Worker tasks each fill
//! a private frame (inside a [`crate::LocalCollector`]) and the frames are
//! merged at join time, so the hot path never touches a lock. The only
//! locked type is [`MetricsRegistry`], the engine-lifetime accumulator that
//! absorbs finished frames on the (cold) spawning thread.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Number of log₂(ns) buckets: bucket 0 holds 0 ns, bucket *i* holds
/// durations in `[2^(i−1), 2^i)` ns. 48 buckets cover > 3 days.
pub const HIST_BUCKETS: usize = 48;

/// A log₂-scaled latency histogram over nanoseconds.
///
/// Fixed bucket boundaries make merging two histograms a per-bucket add, so
/// per-task histograms combine deterministically regardless of thread
/// interleaving. Quantiles are bucket-midpoint estimates clamped into the
/// observed `[min, max]` range (the upper edge of a log₂ bucket overstates
/// a typical member by up to ~2×; the midpoint bounds the error at ±50%).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration, in nanoseconds.
    pub fn observe_ns(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_of(ns)] += 1;
    }

    /// Record one duration.
    pub fn observe(&mut self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Fold another histogram into this one (per-bucket add).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed durations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Smallest observation, if any.
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Largest observation, if any.
    pub fn max_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ns)
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Estimated `q`-quantile (0 < q ≤ 1) in nanoseconds: the midpoint of
    /// the bucket holding the rank-⌈q·count⌉ observation, clamped into
    /// `[min, max]`. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                // Bucket i > 0 spans [2^(i−1), 2^i): report its midpoint
                // rather than the upper edge, which overstates by ~2×.
                let estimate = if i == 0 {
                    0
                } else {
                    let lower = 1u64 << (i - 1);
                    let upper = (1u64 << i) - 1;
                    lower.midpoint(upper)
                };
                return estimate.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }
}

/// One task's (or one report's) worth of metrics: ordered maps of
/// counters (monotonic adds), gauges (last-write-wins levels), and latency
/// [`Histogram`]s. `BTreeMap` keys make every serialization deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsFrame {
    /// Monotonic event counts; merging frames adds them.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time levels; merging keeps the incoming frame's value.
    pub gauges: BTreeMap<String, f64>,
    /// Latency histograms; merging folds buckets together.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsFrame {
    /// An empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no counter, gauge, or histogram has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Add `delta` to the named counter.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Set the named counter to an absolute value (for mirroring totals
    /// that are already cumulative, e.g. cache-lifetime hit counts).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Set the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record a duration into the named histogram.
    pub fn observe(&mut self, name: &str, d: Duration) {
        self.observe_ns(name, d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Record a nanosecond duration into the named histogram.
    pub fn observe_ns(&mut self, name: &str, ns: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe_ns(ns);
        } else {
            let mut h = Histogram::new();
            h.observe_ns(ns);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Ensure the named histogram exists (possibly empty). Used to pin a
    /// deterministic schema: every canonical stage appears in the export
    /// even when it recorded nothing on this run.
    pub fn ensure_histogram(&mut self, name: &str) {
        self.histograms.entry(name.to_string()).or_default();
    }

    /// Fold `other` into this frame: counters add, gauges take `other`'s
    /// value, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsFrame) {
        for (k, v) in &other.counters {
            self.add_counter(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }
}

/// Thread-safe, engine-lifetime metrics accumulator.
///
/// The registry sits on the cold path only: worker tasks record into
/// lock-free [`MetricsFrame`]s via the thread-local collector, and the
/// engine absorbs each finished frame here once per clean. Direct
/// `add_counter`/`set_gauge` calls are for coarse per-event records
/// (e.g. one stream chunk), never per-cell work.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    inner: Mutex<MetricsFrame>,
}

impl MetricsRegistry {
    /// A registry; when `enabled` is false every record call is a no-op
    /// and [`MetricsRegistry::snapshot`] stays empty.
    pub fn new(enabled: bool) -> Self {
        MetricsRegistry {
            enabled,
            inner: Mutex::new(MetricsFrame::new()),
        }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Fold a finished frame into the accumulated totals.
    pub fn absorb_frame(&self, frame: &MetricsFrame) {
        if self.enabled {
            self.inner.lock().unwrap().merge(frame);
        }
    }

    /// Add `delta` to the named counter.
    pub fn add_counter(&self, name: &str, delta: u64) {
        if self.enabled {
            self.inner.lock().unwrap().add_counter(name, delta);
        }
    }

    /// Set the named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        if self.enabled {
            self.inner.lock().unwrap().set_gauge(name, value);
        }
    }

    /// Record a duration into the named histogram.
    pub fn observe(&self, name: &str, d: Duration) {
        if self.enabled {
            self.inner.lock().unwrap().observe(name, d);
        }
    }

    /// A copy of everything accumulated so far.
    pub fn snapshot(&self) -> MetricsFrame {
        self.inner.lock().unwrap().clone()
    }
}
