//! The Excel-Formulas benchmark generator (paper §4.2).
//!
//! Each case is a `(formula, input columns)` pair where the formula defines
//! an output column over the same table, at least one cell and fewer than
//! 25% of cells produce an error value, and the clean table executes fully.
//! The paper's dataset has 11,000 formulas (7,200 single-column, 3,800
//! multi-column with on average 3.4 inputs); the builder reproduces those
//! proportions at any scale, with 1–3-input templates.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::flavor::Flavor;
use crate::noise::NoiseModel;
use crate::tablegen::TableSpec;
use datavinci_formula::ColumnProgram;
use datavinci_table::{CellRef, Table};

/// One benchmark case.
#[derive(Debug, Clone)]
pub struct FormulaCase {
    /// The dirty table (inputs corrupted).
    pub dirty: Table,
    /// The latent clean table (formula fully succeeds on it).
    pub clean: Table,
    /// The column-transformation program.
    pub program: ColumnProgram,
    /// Ground-truth corrupted cells.
    pub corrupted: Vec<CellRef>,
    /// True when the formula reads more than one column.
    pub multi_column: bool,
}

/// Formula templates with their compatible input flavors.
const SINGLE_TEMPLATES: &[(&str, Flavor)] = &[
    ("=SEARCH(\"-\", [@col1])", Flavor::PrefixedId),
    ("=VALUE([@Count])*2", Flavor::NumericText),
    ("=YEAR(DATEVALUE([@Date]))", Flavor::DateIso),
    (
        "=MID([@SKU], SEARCH(\"-\", [@SKU])+1, 4)*1",
        Flavor::ProductCode,
    ),
    (
        "=VALUE(LEFT([@Rating], SEARCH(\"/\", [@Rating])-1))",
        Flavor::Rating,
    ),
    ("=VALUE(SUBSTITUTE([@Share], \"%\", \"\"))", Flavor::Percent),
    (
        "=VALUE(SUBSTITUTE([@Amount], \"$\", \"\"))",
        Flavor::CurrencyAmount,
    ),
    (
        "=LEFT([@Quarter], SEARCH(\"-\", [@Quarter])-1)&\"!\"",
        Flavor::Quarter,
    ),
];

const MULTI_TEMPLATES: &[(&str, &[Flavor])] = &[
    (
        "=SEARCH(\"-\", [@col1]) + VALUE([@Count])",
        &[Flavor::PrefixedId, Flavor::NumericText],
    ),
    (
        "=YEAR(DATEVALUE([@Date])) + VALUE([@Count])",
        &[Flavor::DateIso, Flavor::NumericText],
    ),
    (
        "=MID([@SKU], SEARCH(\"-\", [@SKU])+1, 4) & \"/\" & VALUE([@Count])",
        &[Flavor::ProductCode, Flavor::NumericText],
    ),
    (
        "=SEARCH(\"-\", [@col1]) + VALUE([@Count]) + YEAR(DATEVALUE([@Date]))",
        &[Flavor::PrefixedId, Flavor::NumericText, Flavor::DateIso],
    ),
];

/// Builds the benchmark: `n_single` single-column and `n_multi`
/// multi-column cases (paper scale: 7200 / 3800).
pub fn formula_benchmark(seed: u64, n_single: usize, n_multi: usize) -> Vec<FormulaCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_single + n_multi);
    while out
        .iter()
        .filter(|c: &&FormulaCase| !c.multi_column)
        .count()
        < n_single
    {
        let (src, flavor) = *SINGLE_TEMPLATES.choose(&mut rng).expect("non-empty");
        if let Some(case) = build_case(&mut rng, src, &[flavor], false) {
            out.push(case);
        }
    }
    while out.iter().filter(|c: &&FormulaCase| c.multi_column).count() < n_multi {
        let (src, flavors) = *MULTI_TEMPLATES.choose(&mut rng).expect("non-empty");
        if let Some(case) = build_case(&mut rng, src, flavors, true) {
            out.push(case);
        }
    }
    out
}

fn build_case(rng: &mut StdRng, src: &str, flavors: &[Flavor], multi: bool) -> Option<FormulaCase> {
    let program = ColumnProgram::parse(src).expect("templates parse");
    'attempt: for _ in 0..12 {
        let n_rows = rng.gen_range(40..=400);
        let spec = TableSpec::new(n_rows, flavors.to_vec());
        let clean = spec.generate(rng);
        // The clean table must execute fully (templates mostly guarantee
        // this; random separators can break e.g. SEARCH("-", …)).
        if !program.execution_groups(&clean).fully_successful() {
            continue 'attempt;
        }
        // Corrupt input columns until 1..25% of rows fail.
        let noise = NoiseModel { cell_prob: 0.08 };
        for _ in 0..8 {
            let (dirty, corrupted) = noise.corrupt_table(rng, &clean);
            let groups = program.execution_groups(&dirty);
            let fail_frac = groups.failures.len() as f64 / n_rows as f64;
            if !groups.failures.is_empty() && fail_frac < 0.25 {
                return Some(FormulaCase {
                    dirty,
                    clean,
                    program,
                    corrupted,
                    multi_column: multi,
                });
            }
        }
    }
    None
}

/// Average input-column count (Table 3 reports 1.4 overall).
pub fn avg_inputs(cases: &[FormulaCase]) -> f64 {
    if cases.is_empty() {
        return 0.0;
    }
    let total: usize = cases.iter().map(|c| c.program.input_columns().len()).sum();
    total as f64 / cases.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_satisfy_paper_invariants() {
        let cases = formula_benchmark(5, 6, 3);
        assert_eq!(cases.len(), 9);
        for case in &cases {
            // Clean executes fully.
            assert!(case
                .program
                .execution_groups(&case.clean)
                .fully_successful());
            // Dirty: ≥1 failing cell, <25% failing.
            let g = case.program.execution_groups(&case.dirty);
            assert!(!g.failures.is_empty());
            assert!(
                (g.failures.len() as f64) < 0.25 * case.dirty.n_rows() as f64,
                "{} failures of {}",
                g.failures.len(),
                case.dirty.n_rows()
            );
            // Multi flag consistent with inputs.
            assert_eq!(case.multi_column, case.program.input_columns().len() > 1);
        }
    }

    #[test]
    fn single_and_multi_counts() {
        let cases = formula_benchmark(9, 4, 2);
        assert_eq!(cases.iter().filter(|c| !c.multi_column).count(), 4);
        assert_eq!(cases.iter().filter(|c| c.multi_column).count(), 2);
        let avg = avg_inputs(&cases);
        assert!(avg > 1.0 && avg < 3.0, "{avg}");
    }

    #[test]
    fn deterministic() {
        let a = formula_benchmark(5, 3, 1);
        let b = formula_benchmark(5, 3, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dirty, y.dirty);
            assert_eq!(x.program.source(), y.program.source());
        }
    }

    #[test]
    fn corrupted_cells_are_in_input_columns() {
        let cases = formula_benchmark(13, 3, 2);
        for case in &cases {
            let inputs: Vec<usize> = case
                .program
                .input_columns()
                .iter()
                .filter_map(|n| case.dirty.column_index(n))
                .collect();
            for cell in &case.corrupted {
                assert!(inputs.contains(&cell.col), "{cell:?} vs {inputs:?}");
            }
        }
    }
}
