//! Workload substrate: benchmark corpus generation for the DataVinci
//! reproduction.
//!
//! The paper evaluates on proprietary Wikipedia/Excel corpora and releases
//! only preparation scripts; this crate is the equivalent release for the
//! reproduction — seeded, deterministic generators for
//!
//! * realistic clean columns across 22 [`Flavor`]s (syntactic, semantic,
//!   and mixed, incl. the Figure-2 correlated Category/Player-ID pair),
//! * the §4.2 seven-operation [`NoiseModel`] (20% cell corruption, 1–4 ops
//!   without replacement),
//! * the four benchmarks of Table 3 ([`wikipedia_like`], [`excel_like`],
//!   [`synthetic_errors`], [`formula_benchmark`]) with generation-time
//!   ground truth standing in for manual annotation.

pub mod benchmarks;
pub mod flavor;
pub mod formula_gen;
pub mod noise;
pub mod tablegen;

pub use benchmarks::{
    excel_like, synthetic_errors, wikipedia_like, BenchStats, BenchTable, Benchmark, Scale,
};
pub use flavor::Flavor;
pub use formula_gen::{avg_inputs, formula_benchmark, FormulaCase};
pub use noise::{NoiseModel, NoiseOp};
pub use tablegen::{duplicate_rows, random_spec, TableSpec};
