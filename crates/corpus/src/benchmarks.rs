//! The four evaluation benchmarks (paper §4.2, Table 3).
//!
//! The paper's corpora (Wikipedia tables, 1.8M-workbook Excel sample) are
//! proprietary — the authors themselves only release *scripts*. We
//! correspondingly release generators: seeded, deterministic builders whose
//! table/column/row statistics match Table 3 and whose error regimes match
//! each benchmark's role. Ground truth from generation replaces the paper's
//! manual annotation (see DESIGN.md §2).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::noise::NoiseModel;
use crate::tablegen::random_spec;
use datavinci_table::{CellRef, Table};

/// One benchmark table: dirty input, clean reference, corrupted cells.
#[derive(Debug, Clone)]
pub struct BenchTable {
    /// The table systems see.
    pub dirty: Table,
    /// The latent clean table.
    pub clean: Table,
    /// Ground-truth corrupted cells.
    pub corrupted: Vec<CellRef>,
}

/// A full benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (Table 3 row).
    pub name: &'static str,
    /// Tables.
    pub tables: Vec<BenchTable>,
}

/// Table-3 style statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchStats {
    /// Number of tables.
    pub n_tables: usize,
    /// Average columns per table.
    pub avg_cols: f64,
    /// Average rows per table.
    pub avg_rows: f64,
    /// Fraction of text cells corrupted.
    pub error_rate: f64,
}

impl Benchmark {
    /// Computes the benchmark's statistics.
    pub fn stats(&self) -> BenchStats {
        let n = self.tables.len().max(1);
        let cols: usize = self.tables.iter().map(|t| t.dirty.n_cols()).sum();
        let rows: usize = self.tables.iter().map(|t| t.dirty.n_rows()).sum();
        let cells: usize = self
            .tables
            .iter()
            .map(|t| t.dirty.n_cols() * t.dirty.n_rows())
            .sum();
        let errors: usize = self.tables.iter().map(|t| t.corrupted.len()).sum();
        BenchStats {
            n_tables: self.tables.len(),
            avg_cols: cols as f64 / n as f64,
            avg_rows: rows as f64 / n as f64,
            error_rate: errors as f64 / cells.max(1) as f64,
        }
    }
}

/// Size preset for benchmark builders.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of tables to build.
    pub n_tables: usize,
    /// Row-count divisor applied to the paper's averages (1 = paper scale).
    pub row_divisor: usize,
}

impl Scale {
    /// The paper's Table-3 scale.
    pub fn paper() -> Scale {
        Scale {
            n_tables: usize::MAX, // builders substitute their Table-3 count
            row_divisor: 1,
        }
    }

    /// A small scale for tests and smoke runs.
    pub fn smoke() -> Scale {
        Scale {
            n_tables: 12,
            row_divisor: 4,
        }
    }
}

fn build(
    name: &'static str,
    seed: u64,
    n_tables: usize,
    mean_cols: f64,
    mean_rows: f64,
    cell_prob: f64,
) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = NoiseModel { cell_prob };
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let spec = random_spec(&mut rng, mean_cols, mean_rows);
        let clean = spec.generate(&mut rng);
        let (dirty, corrupted) = noise.corrupt_table(&mut rng, &clean);
        tables.push(BenchTable {
            dirty,
            clean,
            corrupted,
        });
    }
    Benchmark { name, tables }
}

/// Wikipedia-Tables-like benchmark: 1000 tables, 5.1 cols, 27.3 rows,
/// sparse real-world-style errors (precision + fire-rate metrics).
pub fn wikipedia_like(seed: u64, scale: Scale) -> Benchmark {
    let n = if scale.n_tables == usize::MAX {
        1000
    } else {
        scale.n_tables
    };
    build(
        "Wikipedia Tables",
        seed,
        n,
        5.1,
        27.3_f64.max(27.3 / scale.row_divisor as f64),
        0.03,
    )
}

/// Excel-like benchmark: 200 tables, 1.6 cols, 523.4 rows, sparse errors.
pub fn excel_like(seed: u64, scale: Scale) -> Benchmark {
    let n = if scale.n_tables == usize::MAX {
        200
    } else {
        scale.n_tables
    };
    build(
        "Excel",
        seed,
        n,
        1.6,
        523.4 / scale.row_divisor as f64,
        0.02,
    )
}

/// Synthetic-Errors benchmark: 1000 tables, 4.3 cols, 447.5 rows, the §4.2
/// noise model at a 20% cell rate (recall ground truth).
pub fn synthetic_errors(seed: u64, scale: Scale) -> Benchmark {
    let n = if scale.n_tables == usize::MAX {
        1000
    } else {
        scale.n_tables
    };
    build(
        "Synthetic Errors",
        seed,
        n,
        4.3,
        447.5 / scale.row_divisor as f64,
        0.2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_track_construction_parameters() {
        let b = synthetic_errors(11, Scale::smoke());
        let s = b.stats();
        assert_eq!(s.n_tables, 12);
        assert!(s.avg_cols >= 1.0);
        assert!((0.1..0.3).contains(&s.error_rate), "{s:?}");
    }

    #[test]
    fn wikipedia_like_is_sparse() {
        let b = wikipedia_like(11, Scale::smoke());
        let s = b.stats();
        assert!(s.error_rate < 0.08, "{s:?}");
    }

    #[test]
    fn corrupted_cells_differ_from_clean() {
        let b = excel_like(5, Scale::smoke());
        for t in &b.tables {
            assert_eq!(t.dirty.n_rows(), t.clean.n_rows());
            assert_eq!(t.dirty.n_cols(), t.clean.n_cols());
            for &cell in &t.corrupted {
                assert_ne!(t.dirty.cell(cell), t.clean.cell(cell));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = wikipedia_like(3, Scale::smoke());
        let b = wikipedia_like(3, Scale::smoke());
        for (x, y) in a.tables.iter().zip(&b.tables) {
            assert_eq!(x.dirty, y.dirty);
            assert_eq!(x.corrupted, y.corrupted);
        }
        let c = wikipedia_like(4, Scale::smoke());
        assert!(a
            .tables
            .iter()
            .zip(&c.tables)
            .any(|(x, y)| x.dirty != y.dirty));
    }
}
