//! Column flavors: generators for realistic clean string columns.
//!
//! The paper's benchmarks come from proprietary Wikipedia/Excel corpora we
//! cannot ship, so the workload substrate generates columns spanning the
//! same regimes the paper's examples exercise: majority-syntactic patterns
//! (ids, quarters, dates, currency), pure semantic columns (cities,
//! colors), *mixed* syntactic+semantic columns (Figure 2's
//! `{Country}-[0-9]+-(CAT|PRO)` ids, `(Boston)`-style parenthesized
//! cities), and cross-column dependencies for concretization constraints.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use datavinci_semantic::{data::entries, SemanticType};
use datavinci_table::Column;

/// A column flavor. Most flavors generate one column; a few generate a
/// correlated *group* of columns (e.g. Category + Player-ID).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// `c-1`, `c-2`, … (prefix, separator, counter).
    PrefixedId,
    /// `Q3-2021` quarters.
    Quarter,
    /// ISO dates `2021-07-14`.
    DateIso,
    /// US dates `7/14/2021`.
    DateUs,
    /// Times `13:45`.
    Time,
    /// `$1,234.56` amounts.
    CurrencyAmount,
    /// `42.5%` percentages.
    Percent,
    /// US phone numbers `555-123-4567`.
    PhoneUs,
    /// Emails `jane.doe@example.com`.
    Email,
    /// City names.
    City,
    /// Country ISO-2 codes.
    CountryCode,
    /// Colors.
    Color,
    /// Month abbreviations.
    MonthAbbrev,
    /// Statuses.
    Status,
    /// First names.
    FirstName,
    /// Parenthesized cities `(Boston)` — Figure 1's mixed example.
    SemanticParen,
    /// County + id `Alpine_231` — §5.1's example.
    CountyId,
    /// Product codes `AB-1234`.
    ProductCode,
    /// Ratings `4.5/5`.
    Rating,
    /// Plain numbers rendered as text.
    NumericText,
    /// Versions `v1.2.3`.
    Version,
    /// The Figure-2 pair: a Category column plus a correlated
    /// `{Country}-[0-9]+-(CAT-CODE)` Player-ID column.
    PlayerWithCategory,
    /// Correlated City + State pair (a real functional dependency).
    CityWithState,
    /// Correlated Country + Continent pair.
    CountryWithContinent,
    /// Correlated Status + 3-letter status code pair.
    StatusWithCode,
}

impl Flavor {
    /// Every flavor, for random table specs.
    pub const ALL: [Flavor; 25] = [
        Flavor::PrefixedId,
        Flavor::Quarter,
        Flavor::DateIso,
        Flavor::DateUs,
        Flavor::Time,
        Flavor::CurrencyAmount,
        Flavor::Percent,
        Flavor::PhoneUs,
        Flavor::Email,
        Flavor::City,
        Flavor::CountryCode,
        Flavor::Color,
        Flavor::MonthAbbrev,
        Flavor::Status,
        Flavor::FirstName,
        Flavor::SemanticParen,
        Flavor::CountyId,
        Flavor::ProductCode,
        Flavor::Rating,
        Flavor::NumericText,
        Flavor::Version,
        Flavor::PlayerWithCategory,
        Flavor::CityWithState,
        Flavor::CountryWithContinent,
        Flavor::StatusWithCode,
    ];

    /// Sampling weight for random table specs: low-cardinality categorical
    /// columns dominate real spreadsheets, so they are drawn more often
    /// than high-entropy identifier columns.
    pub fn weight(&self) -> usize {
        match self {
            Flavor::City
            | Flavor::CountryCode
            | Flavor::Color
            | Flavor::MonthAbbrev
            | Flavor::Status
            | Flavor::FirstName
            | Flavor::SemanticParen
            | Flavor::Rating
            | Flavor::CityWithState
            | Flavor::CountryWithContinent
            | Flavor::StatusWithCode
            | Flavor::PlayerWithCategory => 3,
            _ => 1,
        }
    }

    /// How many columns the flavor generates.
    pub fn n_columns(&self) -> usize {
        match self {
            Flavor::PlayerWithCategory
            | Flavor::CityWithState
            | Flavor::CountryWithContinent
            | Flavor::StatusWithCode => 2,
            _ => 1,
        }
    }

    /// Generates the flavor's clean column group.
    pub fn generate(&self, rng: &mut StdRng, n_rows: usize) -> Vec<Column> {
        match self {
            Flavor::PlayerWithCategory => player_with_category(rng, n_rows),
            Flavor::CityWithState => fd_pair(
                rng,
                n_rows,
                SemanticType::City,
                SemanticType::State,
                "City",
                "State",
            ),
            Flavor::CountryWithContinent => fd_pair(
                rng,
                n_rows,
                SemanticType::Country,
                SemanticType::Continent,
                "Country",
                "Continent",
            ),
            Flavor::StatusWithCode => status_with_code(rng, n_rows),
            single => vec![single.generate_single(rng, n_rows)],
        }
    }

    fn generate_single(&self, rng: &mut StdRng, n: usize) -> Column {
        let mut values: Vec<String> = Vec::with_capacity(n);
        match self {
            Flavor::PrefixedId => {
                let prefix = *["c", "id", "X", "row", "P"].choose(rng).expect("non-empty");
                let sep = *['-', '_', '.'].choose(rng).expect("non-empty");
                let start: usize = rng.gen_range(1..400);
                for i in 0..n {
                    values.push(format!("{prefix}{sep}{}", start + i));
                }
            }
            Flavor::Quarter => {
                let four_digit_year = rng.gen_bool(0.5);
                for _ in 0..n {
                    let q = rng.gen_range(1..=4);
                    let y = rng.gen_range(1998..=2023);
                    if four_digit_year {
                        values.push(format!("Q{q}-{y}"));
                    } else {
                        values.push(format!("Q{q}-{}", y % 100));
                    }
                }
            }
            Flavor::DateIso => {
                for _ in 0..n {
                    values.push(format!(
                        "{:04}-{:02}-{:02}",
                        rng.gen_range(1990..=2024),
                        rng.gen_range(1..=12),
                        rng.gen_range(1..=28)
                    ));
                }
            }
            Flavor::DateUs => {
                for _ in 0..n {
                    values.push(format!(
                        "{}/{}/{}",
                        rng.gen_range(1..=12),
                        rng.gen_range(1..=28),
                        rng.gen_range(1990..=2024)
                    ));
                }
            }
            Flavor::Time => {
                for _ in 0..n {
                    values.push(format!(
                        "{:02}:{:02}",
                        rng.gen_range(0..24),
                        rng.gen_range(0..60)
                    ));
                }
            }
            Flavor::CurrencyAmount => {
                // One format per column: either all grouped thousands or all
                // sub-1000 amounts (mixing the two is exactly the kind of
                // legitimate diversity that would look like errors).
                let grouped = rng.gen_bool(0.5);
                for _ in 0..n {
                    let whole = if grouped {
                        rng.gen_range(1_000..1_000_000)
                    } else {
                        rng.gen_range(1..1_000)
                    };
                    let cents = rng.gen_range(0..100);
                    values.push(format!("${}.{cents:02}", group(whole)));
                }
            }
            Flavor::Percent => {
                for _ in 0..n {
                    values.push(format!("{:.1}%", rng.gen_range(0.0..100.0)));
                }
            }
            Flavor::PhoneUs => {
                for _ in 0..n {
                    values.push(format!(
                        "{}-{}-{:04}",
                        rng.gen_range(200..1000),
                        rng.gen_range(100..1000),
                        rng.gen_range(0..10_000)
                    ));
                }
            }
            Flavor::Email => {
                let domain = *["example.com", "mail.org", "corp.net"]
                    .choose(rng)
                    .expect("non-empty");
                for _ in 0..n {
                    let first = pick(rng, SemanticType::FirstName).to_lowercase();
                    let last = pick(rng, SemanticType::LastName).to_lowercase();
                    values.push(format!("{first}.{last}@{domain}"));
                }
            }
            Flavor::City => {
                let pool = pool_indices(rng, entries(SemanticType::City).len());
                for _ in 0..n {
                    let i = pool[rng.gen_range(0..pool.len())];
                    values.push(entries(SemanticType::City)[i].forms[0].to_string());
                }
            }
            Flavor::CountryCode => {
                let pool = pool_indices(rng, entries(SemanticType::Country).len());
                for _ in 0..n {
                    let i = pool[rng.gen_range(0..pool.len())];
                    values.push(entries(SemanticType::Country)[i].forms[1].to_string());
                }
            }
            Flavor::Color => {
                let pool = pool_indices(rng, entries(SemanticType::Color).len());
                for _ in 0..n {
                    let i = pool[rng.gen_range(0..pool.len())];
                    values.push(entries(SemanticType::Color)[i].forms[0].to_string());
                }
            }
            Flavor::MonthAbbrev => {
                for _ in 0..n {
                    values.push(pick_form(rng, SemanticType::Month, 1).to_string());
                }
            }
            Flavor::Status => {
                // Low-cardinality categorical.
                let choices: Vec<&str> = entries(SemanticType::Status)
                    .iter()
                    .take(4)
                    .map(|e| e.forms[0])
                    .collect();
                for _ in 0..n {
                    values.push((*choices.choose(rng).expect("non-empty")).to_string());
                }
            }
            Flavor::FirstName => {
                let pool = pool_indices(rng, entries(SemanticType::FirstName).len());
                for _ in 0..n {
                    let i = pool[rng.gen_range(0..pool.len())];
                    values.push(entries(SemanticType::FirstName)[i].forms[0].to_string());
                }
            }
            Flavor::SemanticParen => {
                let pool = pool_indices(rng, entries(SemanticType::City).len());
                for _ in 0..n {
                    let i = pool[rng.gen_range(0..pool.len())];
                    values.push(format!("({})", entries(SemanticType::City)[i].forms[0]));
                }
            }
            Flavor::CountyId => {
                for _ in 0..n {
                    values.push(format!(
                        "{}_{}",
                        pick(rng, SemanticType::State),
                        rng.gen_range(100..1000)
                    ));
                }
            }
            Flavor::ProductCode => {
                for _ in 0..n {
                    let a = rng.gen_range(b'A'..=b'Z') as char;
                    let b = rng.gen_range(b'A'..=b'Z') as char;
                    values.push(format!("{a}{b}-{:04}", rng.gen_range(0..10_000)));
                }
            }
            Flavor::Rating => {
                for _ in 0..n {
                    values.push(format!(
                        "{}.{}/5",
                        rng.gen_range(0..5),
                        rng.gen_range(0..10)
                    ));
                }
            }
            Flavor::NumericText => {
                for _ in 0..n {
                    values.push(format!("{}", rng.gen_range(0..100_000)));
                }
            }
            Flavor::Version => {
                for _ in 0..n {
                    values.push(format!(
                        "v{}.{}.{}",
                        rng.gen_range(0..10),
                        rng.gen_range(0..20),
                        rng.gen_range(0..50)
                    ));
                }
            }
            Flavor::PlayerWithCategory
            | Flavor::CityWithState
            | Flavor::CountryWithContinent
            | Flavor::StatusWithCode => unreachable!("handled by generate()"),
        }
        Column::from_texts(self.column_name(), &values)
    }

    /// A plausible header for the flavor.
    pub fn column_name(&self) -> &'static str {
        match self {
            Flavor::PrefixedId => "col1",
            Flavor::Quarter => "Quarter",
            Flavor::DateIso | Flavor::DateUs => "Date",
            Flavor::Time => "Time",
            Flavor::CurrencyAmount => "Amount",
            Flavor::Percent => "Share",
            Flavor::PhoneUs => "Phone",
            Flavor::Email => "Email",
            Flavor::City => "City",
            Flavor::CountryCode => "Country",
            Flavor::Color => "Color",
            Flavor::MonthAbbrev => "Month",
            Flavor::Status => "Status",
            Flavor::FirstName => "Name",
            Flavor::SemanticParen => "Venue",
            Flavor::CountyId => "County ID",
            Flavor::ProductCode => "SKU",
            Flavor::Rating => "Rating",
            Flavor::NumericText => "Count",
            Flavor::Version => "Version",
            Flavor::PlayerWithCategory => "Player ID",
            Flavor::CityWithState => "City",
            Flavor::CountryWithContinent => "Country",
            Flavor::StatusWithCode => "Status",
        }
    }
}

/// The Figure-2 pair: Category + correlated Player-ID.
fn player_with_category(rng: &mut StdRng, n: usize) -> Vec<Column> {
    let cats = entries(SemanticType::Category);
    let chosen: Vec<usize> = {
        let mut idx: Vec<usize> = (0..cats.len()).collect();
        idx.shuffle(rng);
        idx.truncate(2);
        idx
    };
    let mut category = Vec::with_capacity(n);
    let mut player = Vec::with_capacity(n);
    for _ in 0..n {
        let ci = *chosen.choose(rng).expect("non-empty");
        let full = cats[ci].forms[0];
        let code = cats[ci].forms[1];
        let country = pick_form(rng, SemanticType::Country, 1);
        category.push(full.to_string());
        player.push(format!("{country}-{}-{code}", rng.gen_range(100..1000)));
    }
    vec![
        Column::from_texts("Category", &category),
        Column::from_texts("Player ID", &player),
    ]
}

/// A deterministic FD pair: the right-hand entry is a fixed function of the
/// left-hand entry index (consistent across all generated tables, as a real
/// functional dependency would be).
fn fd_pair(
    rng: &mut StdRng,
    n: usize,
    left: SemanticType,
    right: SemanticType,
    lname: &str,
    rname: &str,
) -> Vec<Column> {
    let ls = entries(left);
    let rs = entries(right);
    let pool = pool_indices(rng, ls.len());
    let mut lvals = Vec::with_capacity(n);
    let mut rvals = Vec::with_capacity(n);
    for _ in 0..n {
        let li = pool[rng.gen_range(0..pool.len())];
        lvals.push(ls[li].forms[0].to_string());
        rvals.push(rs[li * 7 % rs.len()].forms[0].to_string());
    }
    vec![
        Column::from_texts(lname, &lvals),
        Column::from_texts(rname, &rvals),
    ]
}

/// Status plus its 3-letter uppercase code.
fn status_with_code(rng: &mut StdRng, n: usize) -> Vec<Column> {
    let ss = entries(SemanticType::Status);
    let mut svals = Vec::with_capacity(n);
    let mut cvals = Vec::with_capacity(n);
    for _ in 0..n {
        let si = rng.gen_range(0..ss.len().min(5));
        let full = ss[si].forms[0];
        svals.push(full.to_string());
        cvals.push(full.chars().take(3).collect::<String>().to_uppercase());
    }
    vec![
        Column::from_texts("Status", &svals),
        Column::from_texts("Code", &cvals),
    ]
}

/// Real-world categorical columns repeat a small vocabulary: draw a
/// per-column pool of 3–10 entries and sample rows from it.
fn pool_indices(rng: &mut StdRng, n_entries: usize) -> Vec<usize> {
    let k = rng.gen_range(3..=10usize).min(n_entries);
    let mut idx: Vec<usize> = (0..n_entries).collect();
    idx.shuffle(rng);
    idx.truncate(k);
    idx
}

#[allow(dead_code)]
fn pick(rng: &mut StdRng, t: SemanticType) -> &'static str {
    pick_form(rng, t, 0)
}

fn pick_form(rng: &mut StdRng, t: SemanticType, form: usize) -> &'static str {
    let es = entries(t);
    let e = &es[rng.gen_range(0..es.len())];
    e.forms.get(form).copied().unwrap_or(e.forms[0])
}

/// Thousands grouping for currency.
fn group(n: u32) -> String {
    let s = n.to_string();
    let bytes: Vec<char> = s.chars().collect();
    let mut out = String::new();
    for (i, c) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn every_flavor_generates_requested_rows() {
        let mut rng = rng();
        for flavor in Flavor::ALL {
            let cols = flavor.generate(&mut rng, 25);
            assert_eq!(cols.len(), flavor.n_columns(), "{flavor:?}");
            for c in &cols {
                assert_eq!(c.len(), 25, "{flavor:?}");
                assert!(c.values().iter().all(|v| v.is_text()), "{flavor:?}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Flavor::Quarter.generate(&mut rng(), 10);
        let b = Flavor::Quarter.generate(&mut rng(), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn player_pair_is_correlated() {
        let mut rng = rng();
        let cols = Flavor::PlayerWithCategory.generate(&mut rng, 40);
        let cat = &cols[0];
        let id = &cols[1];
        for row in 0..40 {
            let category = cat.get(row).unwrap().render();
            let player = id.get(row).unwrap().render();
            let code = player.rsplit('-').next().unwrap();
            // The id suffix is the category's 3-letter code.
            let expected = entries(SemanticType::Category)
                .iter()
                .find(|e| e.forms[0] == category)
                .map(|e| e.forms[1])
                .unwrap();
            assert_eq!(code, expected, "row {row}: {category} vs {player}");
        }
    }

    #[test]
    fn currency_grouping() {
        assert_eq!(group(1234567), "1,234,567");
        assert_eq!(group(999), "999");
        assert_eq!(group(1000), "1,000");
    }

    #[test]
    fn quarters_well_formed() {
        let mut rng = rng();
        let col = &Flavor::Quarter.generate(&mut rng, 50)[0];
        for v in col.values() {
            let s = v.render();
            assert!(s.starts_with('Q'), "{s}");
            let q: u32 = s[1..2].parse().unwrap();
            assert!((1..=4).contains(&q), "{s}");
        }
    }
}
