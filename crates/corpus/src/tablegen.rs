//! Whole-table generation from flavor specs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::flavor::Flavor;
use datavinci_table::{Column, Table};

/// A table specification: row count plus the flavor of each column group.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Number of rows.
    pub n_rows: usize,
    /// Column-group flavors (a flavor may expand to several columns).
    pub flavors: Vec<Flavor>,
}

impl TableSpec {
    /// Total columns the spec expands to.
    pub fn n_columns(&self) -> usize {
        self.flavors.iter().map(Flavor::n_columns).sum()
    }

    /// Generates the clean table.
    pub fn generate(&self, rng: &mut StdRng) -> Table {
        let mut columns: Vec<Column> = Vec::with_capacity(self.n_columns());
        let mut used_names: Vec<String> = Vec::new();
        for flavor in &self.flavors {
            for mut col in flavor.generate(rng, self.n_rows) {
                // De-duplicate headers (two City columns → City, City2).
                let mut name = col.name().to_string();
                let mut k = 2;
                while used_names.contains(&name) {
                    name = format!("{}{k}", col.name());
                    k += 1;
                }
                used_names.push(name.clone());
                col = Column::new(name, col.values().to_vec());
                columns.push(col);
            }
        }
        Table::new(columns)
    }
}

/// Draws a random spec: column count around `mean_cols`, row count around
/// `mean_rows` (geometric-ish spread, min 1 column / 4 rows).
pub fn random_spec(rng: &mut StdRng, mean_cols: f64, mean_rows: f64) -> TableSpec {
    let n_cols = sample_around(rng, mean_cols, 1.0).round().max(1.0) as usize;
    let n_rows = sample_around(rng, mean_rows, mean_rows * 0.5)
        .round()
        .max(4.0) as usize;
    let weighted: Vec<Flavor> = Flavor::ALL
        .into_iter()
        .flat_map(|f| std::iter::repeat_n(f, f.weight()))
        .collect();
    let mut flavors = Vec::new();
    let mut cols = 0usize;
    while cols < n_cols {
        let f = *weighted.choose(rng).expect("non-empty");
        if cols + f.n_columns() > n_cols && cols > 0 {
            break;
        }
        cols += f.n_columns();
        flavors.push(f);
    }
    TableSpec { n_rows, flavors }
}

/// A crude positive-skew sampler around a mean.
fn sample_around(rng: &mut StdRng, mean: f64, spread: f64) -> f64 {
    let u: f64 = rng.gen_range(-1.0..1.0);
    (mean + u * spread).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spec_generates_rectangular_table() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = TableSpec {
            n_rows: 30,
            flavors: vec![Flavor::Quarter, Flavor::PlayerWithCategory],
        };
        let t = spec.generate(&mut rng);
        assert_eq!(t.n_rows(), 30);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.headers(), vec!["Quarter", "Category", "Player ID"]);
    }

    #[test]
    fn duplicate_headers_deduplicated() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = TableSpec {
            n_rows: 5,
            flavors: vec![Flavor::City, Flavor::City],
        };
        let t = spec.generate(&mut rng);
        assert_eq!(t.headers(), vec!["City", "City2"]);
    }

    #[test]
    fn random_specs_have_sane_dimensions() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let spec = random_spec(&mut rng, 4.3, 100.0);
            assert!(spec.n_rows >= 4);
            assert!(!spec.flavors.is_empty());
            let t = spec.generate(&mut rng);
            assert_eq!(t.n_rows(), spec.n_rows);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TableSpec {
            n_rows: 10,
            flavors: vec![Flavor::ProductCode],
        };
        let a = spec.generate(&mut StdRng::seed_from_u64(9));
        let b = spec.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
