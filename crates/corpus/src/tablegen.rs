//! Whole-table generation from flavor specs.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::flavor::Flavor;
use datavinci_table::{Column, Table};

/// A table specification: row count plus the flavor of each column group.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Number of rows.
    pub n_rows: usize,
    /// Column-group flavors (a flavor may expand to several columns).
    pub flavors: Vec<Flavor>,
    /// Value-reuse probability in `[0, 1)`: after generation, each row is
    /// replaced, with this probability, by a copy of an earlier row drawn
    /// with a Zipf-ish head bias. `0.0` (the default) disables reuse.
    ///
    /// Real columns are dominated by duplicate values; this knob produces
    /// the duplicate-heavy regimes the distinct-value repair planner is
    /// benchmarked on. Rows (not cells) are duplicated so cross-column
    /// dependencies (e.g. Category ↔ Player-ID) survive.
    pub duplication: f64,
}

impl TableSpec {
    /// A spec with no value reuse.
    pub fn new(n_rows: usize, flavors: Vec<Flavor>) -> TableSpec {
        TableSpec {
            n_rows,
            flavors,
            duplication: 0.0,
        }
    }

    /// The same spec with the duplication knob set.
    pub fn with_duplication(mut self, duplication: f64) -> TableSpec {
        assert!(
            (0.0..1.0).contains(&duplication),
            "duplication must be in [0, 1)"
        );
        self.duplication = duplication;
        self
    }

    /// Total columns the spec expands to.
    pub fn n_columns(&self) -> usize {
        self.flavors.iter().map(Flavor::n_columns).sum()
    }

    /// Generates the clean table.
    pub fn generate(&self, rng: &mut StdRng) -> Table {
        let mut columns: Vec<Column> = Vec::with_capacity(self.n_columns());
        let mut used_names: Vec<String> = Vec::new();
        for flavor in &self.flavors {
            for mut col in flavor.generate(rng, self.n_rows) {
                // De-duplicate headers (two City columns → City, City2).
                let mut name = col.name().to_string();
                let mut k = 2;
                while used_names.contains(&name) {
                    name = format!("{}{k}", col.name());
                    k += 1;
                }
                used_names.push(name.clone());
                col = Column::new(name, col.values().to_vec());
                columns.push(col);
            }
        }
        if self.duplication > 0.0 {
            apply_duplication(rng, &mut columns, self.duplication);
        }
        Table::new(columns)
    }
}

/// Row-level value reuse over a finished table — the same Zipf-ish policy
/// [`TableSpec`]'s `duplication` knob applies during generation.
///
/// Useful for making *dirty* tables duplicate-heavy: corrupt first, then
/// duplicate, and the repeated rows carry repeated erroneous values — the
/// regime the distinct-value repair planner amortizes.
pub fn duplicate_rows(rng: &mut StdRng, table: &Table, ratio: f64) -> Table {
    let mut columns: Vec<Column> = table.columns().to_vec();
    apply_duplication(rng, &mut columns, ratio);
    Table::new(columns)
}

/// Replaces each row (beyond the first), with probability `ratio`, by a copy
/// of an earlier row. The source row is drawn as `⌊i·u²⌋` for uniform `u` —
/// a head-biased, Zipf-ish pick, so early rows become high-multiplicity
/// "popular" values while the tail stays diverse.
fn apply_duplication(rng: &mut StdRng, columns: &mut [Column], ratio: f64) {
    let n_rows = columns.first().map_or(0, Column::len);
    for i in 1..n_rows {
        if !rng.gen_bool(ratio) {
            continue;
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        let j = ((i as f64) * u * u) as usize;
        for col in columns.iter_mut() {
            let copied = col.get(j).expect("source row in range").clone();
            col.set(i, copied);
        }
    }
}

/// Draws a random spec: column count around `mean_cols`, row count around
/// `mean_rows` (geometric-ish spread, min 1 column / 4 rows).
pub fn random_spec(rng: &mut StdRng, mean_cols: f64, mean_rows: f64) -> TableSpec {
    let n_cols = sample_around(rng, mean_cols, 1.0).round().max(1.0) as usize;
    let n_rows = sample_around(rng, mean_rows, mean_rows * 0.5)
        .round()
        .max(4.0) as usize;
    let weighted: Vec<Flavor> = Flavor::ALL
        .into_iter()
        .flat_map(|f| std::iter::repeat_n(f, f.weight()))
        .collect();
    let mut flavors = Vec::new();
    let mut cols = 0usize;
    while cols < n_cols {
        let f = *weighted.choose(rng).expect("non-empty");
        if cols + f.n_columns() > n_cols && cols > 0 {
            break;
        }
        cols += f.n_columns();
        flavors.push(f);
    }
    TableSpec::new(n_rows, flavors)
}

/// A crude positive-skew sampler around a mean.
fn sample_around(rng: &mut StdRng, mean: f64, spread: f64) -> f64 {
    let u: f64 = rng.gen_range(-1.0..1.0);
    (mean + u * spread).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spec_generates_rectangular_table() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = TableSpec::new(30, vec![Flavor::Quarter, Flavor::PlayerWithCategory]);
        let t = spec.generate(&mut rng);
        assert_eq!(t.n_rows(), 30);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.headers(), vec!["Quarter", "Category", "Player ID"]);
    }

    #[test]
    fn duplicate_headers_deduplicated() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = TableSpec::new(5, vec![Flavor::City, Flavor::City]);
        let t = spec.generate(&mut rng);
        assert_eq!(t.headers(), vec!["City", "City2"]);
    }

    #[test]
    fn random_specs_have_sane_dimensions() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let spec = random_spec(&mut rng, 4.3, 100.0);
            assert!(spec.n_rows >= 4);
            assert!(!spec.flavors.is_empty());
            let t = spec.generate(&mut rng);
            assert_eq!(t.n_rows(), spec.n_rows);
        }
    }

    #[test]
    fn duplication_knob_reuses_whole_rows() {
        use datavinci_table::ValuePool;
        let mut rng = StdRng::seed_from_u64(7);
        let spec = TableSpec::new(200, vec![Flavor::PlayerWithCategory, Flavor::Quarter])
            .with_duplication(0.8);
        let t = spec.generate(&mut rng);
        assert_eq!(t.n_rows(), 200);
        // Heavy duplication: the Player-ID column (high-entropy when clean)
        // collapses to far fewer distinct values.
        let pool = ValuePool::from_values(&t.column(1).unwrap().rendered());
        assert!(
            pool.duplication_ratio() > 0.5,
            "expected heavy duplication, got {}",
            pool.duplication_ratio()
        );
        // Rows are duplicated wholesale: every duplicated Player ID carries
        // its source row's Category, preserving the FD.
        let cats = t.column(0).unwrap().rendered();
        let ids = t.column(1).unwrap().rendered();
        let mut seen: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        for (cat, id) in cats.iter().zip(&ids) {
            let suffix = &id[id.len() - 3..];
            let expect = seen.entry(suffix).or_insert(cat);
            assert_eq!(*expect, cat, "category must follow the id suffix");
        }
    }

    #[test]
    fn zero_duplication_leaves_generation_unchanged() {
        let spec = TableSpec::new(30, vec![Flavor::ProductCode]);
        let a = spec.generate(&mut StdRng::seed_from_u64(4));
        let b = spec
            .clone()
            .with_duplication(0.0)
            .generate(&mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TableSpec::new(10, vec![Flavor::ProductCode]);
        let a = spec.generate(&mut StdRng::seed_from_u64(9));
        let b = spec.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
