//! The synthetic noise model (paper §4.2, Synthetic Errors benchmark).
//!
//! "To introduce errors, we apply the following noise operations:
//! (1) random character insertion, deletion and change, (2) random delimiter
//! insertion, deletion and change, (3) random digit swap, (4) random shuffle
//! of characters, (5) random capitalization, (6) random decimal, comma swap
//! in numerics, (7) visually-inspired typos {o→0, l→1, e→3, a→4, t→7, s→5}.
//! We randomly corrupt cells with 20% probability. For each of the cells to
//! be corrupted, there is a 25% probability of applying 1, 2, 3 or 4 noise
//! operations, sampled without replacement."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use datavinci_table::{CellRef, CellValue, Table};

/// The seven noise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseOp {
    /// (1) insert/delete/change a random character.
    CharEdit,
    /// (2) insert/delete/change a random delimiter.
    DelimEdit,
    /// (3) swap two adjacent digits.
    DigitSwap,
    /// (4) shuffle all characters.
    Shuffle,
    /// (5) flip capitalization of random letters.
    Capitalization,
    /// (6) swap `.` and `,` in numeric-looking values.
    DecimalCommaSwap,
    /// (7) visually-inspired typos.
    VisualTypo,
}

impl NoiseOp {
    /// All seven operations.
    pub const ALL: [NoiseOp; 7] = [
        NoiseOp::CharEdit,
        NoiseOp::DelimEdit,
        NoiseOp::DigitSwap,
        NoiseOp::Shuffle,
        NoiseOp::Capitalization,
        NoiseOp::DecimalCommaSwap,
        NoiseOp::VisualTypo,
    ];

    /// Applies the operation. May be a no-op when inapplicable (e.g. digit
    /// swap on a digit-free value).
    pub fn apply(&self, rng: &mut StdRng, value: &str) -> String {
        let chars: Vec<char> = value.chars().collect();
        match self {
            NoiseOp::CharEdit => char_edit(rng, chars, random_char),
            NoiseOp::DelimEdit => char_edit(rng, chars, random_delim),
            NoiseOp::DigitSwap => {
                let digit_pairs: Vec<usize> = (0..chars.len().saturating_sub(1))
                    .filter(|&i| {
                        chars[i].is_ascii_digit()
                            && chars[i + 1].is_ascii_digit()
                            && chars[i] != chars[i + 1]
                    })
                    .collect();
                let mut chars = chars;
                if let Some(&i) = digit_pairs.choose(rng) {
                    chars.swap(i, i + 1);
                }
                chars.into_iter().collect()
            }
            NoiseOp::Shuffle => {
                let mut chars = chars;
                chars.shuffle(rng);
                chars.into_iter().collect()
            }
            NoiseOp::Capitalization => {
                let mut chars = chars;
                let letters: Vec<usize> = (0..chars.len())
                    .filter(|&i| chars[i].is_ascii_alphabetic())
                    .collect();
                for &i in letters.iter().filter(|_| rng.gen_bool(0.5)) {
                    chars[i] = if chars[i].is_ascii_uppercase() {
                        chars[i].to_ascii_lowercase()
                    } else {
                        chars[i].to_ascii_uppercase()
                    };
                }
                chars.into_iter().collect()
            }
            NoiseOp::DecimalCommaSwap => chars
                .into_iter()
                .map(|c| match c {
                    '.' => ',',
                    ',' => '.',
                    other => other,
                })
                .collect(),
            NoiseOp::VisualTypo => {
                let mut chars = chars;
                let swappable: Vec<usize> = (0..chars.len())
                    .filter(|&i| visual_typo(chars[i]).is_some())
                    .collect();
                if let Some(&i) = swappable.choose(rng) {
                    chars[i] = visual_typo(chars[i]).expect("filtered");
                }
                chars.into_iter().collect()
            }
        }
    }
}

fn visual_typo(c: char) -> Option<char> {
    match c {
        'o' => Some('0'),
        'l' => Some('1'),
        'e' => Some('3'),
        'a' => Some('4'),
        't' => Some('7'),
        's' => Some('5'),
        _ => None,
    }
}

fn random_char(rng: &mut StdRng) -> char {
    const POOL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    POOL[rng.gen_range(0..POOL.len())] as char
}

fn random_delim(rng: &mut StdRng) -> char {
    const POOL: &[char] = &['-', '_', '.', '/', ',', ':', ' '];
    POOL[rng.gen_range(0..POOL.len())]
}

/// Insert/delete/change with a character drawn from `pool`.
fn char_edit(rng: &mut StdRng, mut chars: Vec<char>, pool: fn(&mut StdRng) -> char) -> String {
    match rng.gen_range(0..3u8) {
        0 => {
            // insert
            let pos = rng.gen_range(0..=chars.len());
            chars.insert(pos, pool(rng));
        }
        1 if !chars.is_empty() => {
            // delete
            let pos = rng.gen_range(0..chars.len());
            chars.remove(pos);
        }
        _ if !chars.is_empty() => {
            // change
            let pos = rng.gen_range(0..chars.len());
            chars[pos] = pool(rng);
        }
        _ => {
            chars.push(pool(rng));
        }
    }
    chars.into_iter().collect()
}

/// Noise-model configuration.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Per-cell corruption probability (paper: 20%).
    pub cell_prob: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel { cell_prob: 0.2 }
    }
}

impl NoiseModel {
    /// Corrupts one value, guaranteeing the output differs. Returns the
    /// corrupted value and the operations applied.
    pub fn corrupt_value(&self, rng: &mut StdRng, value: &str) -> (String, Vec<NoiseOp>) {
        for _attempt in 0..8 {
            // 1–4 ops, uniform, sampled without replacement.
            let k = rng.gen_range(1..=4usize);
            let mut ops: Vec<NoiseOp> = NoiseOp::ALL.to_vec();
            ops.shuffle(rng);
            ops.truncate(k);
            let mut out = value.to_string();
            for op in &ops {
                out = op.apply(rng, &out);
            }
            if out != value {
                return (out, ops);
            }
        }
        // Last resort: a forced character change.
        let forced = NoiseOp::CharEdit;
        let mut out = forced.apply(rng, value);
        while out == value {
            out = forced.apply(rng, &format!("{value}x"));
        }
        (out, vec![forced])
    }

    /// Corrupts a table's text cells. Returns the dirty table and the
    /// corrupted cell addresses (the recall ground truth).
    pub fn corrupt_table(&self, rng: &mut StdRng, clean: &Table) -> (Table, Vec<CellRef>) {
        let mut dirty = clean.clone();
        let mut corrupted = Vec::new();
        for col in 0..clean.n_cols() {
            for row in 0..clean.n_rows() {
                let cell = CellRef::new(col, row);
                let Some(CellValue::Text(text)) = clean.cell(cell) else {
                    continue;
                };
                if !rng.gen_bool(self.cell_prob) {
                    continue;
                }
                let (noisy, _) = self.corrupt_value(rng, text);
                dirty.set_cell(cell, CellValue::Text(noisy));
                corrupted.push(cell);
            }
        }
        (dirty, corrupted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn corrupt_value_always_changes() {
        let model = NoiseModel::default();
        let mut rng = rng();
        for v in ["Q1-2021", "abc", "x", "12,5", "Boston"] {
            for _ in 0..20 {
                let (out, ops) = model.corrupt_value(&mut rng, v);
                assert_ne!(out, v);
                assert!(!ops.is_empty() && ops.len() <= 4, "{ops:?}");
                // Without replacement: no duplicate ops.
                let mut dedup = ops.clone();
                dedup.dedup();
                let mut sorted = ops.clone();
                sorted.sort_by_key(|o| format!("{o:?}"));
                sorted.dedup();
                assert_eq!(sorted.len(), ops.len(), "{ops:?}");
            }
        }
    }

    #[test]
    fn visual_typos_match_paper_map() {
        assert_eq!(visual_typo('o'), Some('0'));
        assert_eq!(visual_typo('l'), Some('1'));
        assert_eq!(visual_typo('e'), Some('3'));
        assert_eq!(visual_typo('a'), Some('4'));
        assert_eq!(visual_typo('t'), Some('7'));
        assert_eq!(visual_typo('s'), Some('5'));
        assert_eq!(visual_typo('x'), None);
    }

    #[test]
    fn decimal_comma_swap() {
        let mut r = rng();
        assert_eq!(
            NoiseOp::DecimalCommaSwap.apply(&mut r, "1,234.5"),
            "1.234,5"
        );
    }

    #[test]
    fn digit_swap_swaps_adjacent_digits() {
        let mut r = rng();
        let out = NoiseOp::DigitSwap.apply(&mut r, "ab12cd");
        assert_eq!(out, "ab21cd");
        // No digits → no-op.
        assert_eq!(NoiseOp::DigitSwap.apply(&mut r, "abcd"), "abcd");
    }

    #[test]
    fn corrupt_table_rate_is_plausible() {
        let model = NoiseModel::default();
        let mut r = rng();
        let values: Vec<String> = (0..2000).map(|i| format!("v-{i}")).collect();
        let clean = Table::new(vec![Column::from_texts("c", &values)]);
        let (dirty, corrupted) = model.corrupt_table(&mut r, &clean);
        let rate = corrupted.len() as f64 / 2000.0;
        assert!((0.15..0.25).contains(&rate), "rate {rate}");
        // Every corrupted cell actually differs; untouched cells are equal.
        for cell in clean.cell_refs() {
            let changed = clean.cell(cell) != dirty.cell(cell);
            assert_eq!(changed, corrupted.contains(&cell), "{cell}");
        }
    }

    #[test]
    fn non_text_cells_never_corrupted() {
        let model = NoiseModel { cell_prob: 1.0 };
        let mut r = rng();
        let clean = Table::new(vec![Column::parse("n", &["1", "2", "3"])]);
        let (dirty, corrupted) = model.corrupt_table(&mut r, &clean);
        assert!(corrupted.is_empty());
        assert_eq!(dirty, clean);
    }
}
