//! Crate-local first-occurrence interning.
//!
//! The masking model and the column-type detector both compute per
//! *distinct* value and weight aggregates by multiplicity; this helper is
//! their shared intern step. (The heavier, sorted `datavinci_table::ValuePool`
//! is not used here — this crate sits below the table layer.)

/// Distinct values in first-occurrence order, their multiplicities, and the
/// input-position → distinct-index map.
pub(crate) struct Interned<'a> {
    /// Distinct values, in first-occurrence order.
    pub distinct: Vec<&'a str>,
    /// Multiplicity of each distinct value.
    pub counts: Vec<usize>,
    /// For every input position, the index of its value in `distinct`.
    pub row_to_distinct: Vec<usize>,
}

/// Interns `values`, preserving first-occurrence order.
pub(crate) fn intern_values<'a, S: AsRef<str>>(values: &'a [S]) -> Interned<'a> {
    let mut index: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    let mut distinct: Vec<&str> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    let mut row_to_distinct: Vec<usize> = Vec::with_capacity(values.len());
    for v in values {
        let v = v.as_ref();
        let di = *index.entry(v).or_insert_with(|| {
            distinct.push(v);
            counts.push(0);
            distinct.len() - 1
        });
        counts[di] += 1;
        row_to_distinct.push(di);
    }
    Interned {
        distinct,
        counts,
        row_to_distinct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_in_first_occurrence_order() {
        let i = intern_values(&["b", "a", "b", "b", "c"]);
        assert_eq!(i.distinct, ["b", "a", "c"]);
        assert_eq!(i.counts, [3, 1, 1]);
        assert_eq!(i.row_to_distinct, [0, 1, 0, 0, 2]);
    }

    #[test]
    fn empty_input() {
        let i = intern_values::<&str>(&[]);
        assert!(i.distinct.is_empty());
        assert!(i.row_to_distinct.is_empty());
    }
}
