//! Static gazetteer data for the twenty semantic types.
//!
//! Each entry lists *forms*: parallel renderings of the same concept. Form
//! positions are aligned within a type (e.g. countries: `[full, ISO-2,
//! ISO-3]`), which is how the mock LLM reproduces GPT's in-context behaviour
//! of normalizing to the form the rest of the column uses (`usa → US` when
//! the column writes ISO-2 codes).

use crate::types::SemanticType;

/// One concept with its aligned surface forms. `forms[0]` is the full name.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// Parallel surface forms; position is meaningful within a type.
    pub forms: &'static [&'static str],
}

macro_rules! entries {
    ($( [$($form:literal),+ $(,)?] ),+ $(,)?) => {
        &[ $( Entry { forms: &[$($form),+] } ),+ ]
    };
}

/// Gazetteer entries for `t`.
pub fn entries(t: SemanticType) -> &'static [Entry] {
    match t {
        SemanticType::Country => COUNTRIES,
        SemanticType::City => CITIES,
        SemanticType::State => STATES,
        SemanticType::FirstName => FIRST_NAMES,
        SemanticType::LastName => LAST_NAMES,
        SemanticType::Month => MONTHS,
        SemanticType::Weekday => WEEKDAYS,
        SemanticType::Color => COLORS,
        SemanticType::Currency => CURRENCIES,
        SemanticType::Language => LANGUAGES,
        SemanticType::Continent => CONTINENTS,
        SemanticType::Nationality => NATIONALITIES,
        SemanticType::Company => COMPANIES,
        SemanticType::Team => TEAMS,
        SemanticType::Gender => GENDERS,
        SemanticType::Category => CATEGORIES,
        SemanticType::Sport => SPORTS,
        SemanticType::Status => STATUSES,
        SemanticType::Religion => RELIGIONS,
        SemanticType::Region => REGIONS,
    }
}

/// Countries: `[full, ISO-2, ISO-3]`.
static COUNTRIES: &[Entry] = entries![
    ["United States", "US", "USA"],
    ["United Kingdom", "GB", "GBR"],
    ["Germany", "DE", "DEU"],
    ["France", "FR", "FRA"],
    ["Spain", "ES", "ESP"],
    ["Italy", "IT", "ITA"],
    ["Portugal", "PT", "PRT"],
    ["Netherlands", "NL", "NLD"],
    ["Belgium", "BE", "BEL"],
    ["Switzerland", "CH", "CHE"],
    ["Austria", "AT", "AUT"],
    ["Sweden", "SE", "SWE"],
    ["Norway", "NO", "NOR"],
    ["Denmark", "DK", "DNK"],
    ["Finland", "FI", "FIN"],
    ["Poland", "PL", "POL"],
    ["Ireland", "IE", "IRL"],
    ["Greece", "GR", "GRC"],
    ["Turkey", "TR", "TUR"],
    ["Russia", "RU", "RUS"],
    ["Ukraine", "UA", "UKR"],
    ["China", "CN", "CHN"],
    ["Japan", "JP", "JPN"],
    ["India", "IN", "IND"],
    ["Indonesia", "ID", "IDN"],
    ["Thailand", "TH", "THA"],
    ["Vietnam", "VN", "VNM"],
    ["Singapore", "SG", "SGP"],
    ["Australia", "AU", "AUS"],
    ["New Zealand", "NZ", "NZL"],
    ["Canada", "CA", "CAN"],
    ["Mexico", "MX", "MEX"],
    ["Brazil", "BR", "BRA"],
    ["Argentina", "AR", "ARG"],
    ["Chile", "CL", "CHL"],
    ["Colombia", "CO", "COL"],
    ["Peru", "PE", "PER"],
    ["Egypt", "EG", "EGY"],
    ["Nigeria", "NG", "NGA"],
    ["Kenya", "KE", "KEN"],
    ["Morocco", "MA", "MAR"],
    ["Algeria", "DZ", "DZA"],
    ["South Africa", "ZA", "ZAF"],
    ["South Korea", "KR", "KOR"],
    ["Saudi Arabia", "SA", "SAU"],
    ["Israel", "IL", "ISR"],
];

static CITIES: &[Entry] = entries![
    ["New York"],
    ["Los Angeles"],
    ["Chicago"],
    ["Houston"],
    ["Phoenix"],
    ["Philadelphia"],
    ["San Antonio"],
    ["San Diego"],
    ["Dallas"],
    ["Austin"],
    ["Boston"],
    ["Seattle"],
    ["Denver"],
    ["Miami"],
    ["Atlanta"],
    ["London"],
    ["Paris"],
    ["Berlin"],
    ["Madrid"],
    ["Rome"],
    ["Amsterdam"],
    ["Vienna"],
    ["Prague"],
    ["Dublin"],
    ["Lisbon"],
    ["Stockholm"],
    ["Oslo"],
    ["Copenhagen"],
    ["Helsinki"],
    ["Warsaw"],
    ["Tokyo"],
    ["Osaka"],
    ["Seoul"],
    ["Beijing"],
    ["Shanghai"],
    ["Mumbai"],
    ["Delhi"],
    ["Bangkok"],
    ["Jakarta"],
    ["Sydney"],
    ["Melbourne"],
    ["Toronto"],
    ["Vancouver"],
    ["Montreal"],
    ["Birmingham"],
    ["Manchester"],
    ["Liverpool"],
    ["Glasgow"],
    ["Edinburgh"],
    ["Cairo"],
];

/// US states: `[full, USPS code]`.
static STATES: &[Entry] = entries![
    ["Alabama", "AL"],
    ["Alaska", "AK"],
    ["Arizona", "AZ"],
    ["Arkansas", "AR"],
    ["California", "CA"],
    ["Colorado", "CO"],
    ["Connecticut", "CT"],
    ["Delaware", "DE"],
    ["Florida", "FL"],
    ["Georgia", "GA"],
    ["Hawaii", "HI"],
    ["Idaho", "ID"],
    ["Illinois", "IL"],
    ["Indiana", "IN"],
    ["Iowa", "IA"],
    ["Kansas", "KS"],
    ["Kentucky", "KY"],
    ["Louisiana", "LA"],
    ["Maine", "ME"],
    ["Maryland", "MD"],
    ["Massachusetts", "MA"],
    ["Michigan", "MI"],
    ["Minnesota", "MN"],
    ["Mississippi", "MS"],
    ["Missouri", "MO"],
    ["Montana", "MT"],
    ["Nebraska", "NE"],
    ["Nevada", "NV"],
    ["New Hampshire", "NH"],
    ["New Jersey", "NJ"],
    ["New Mexico", "NM"],
    ["New York", "NY"],
    ["North Carolina", "NC"],
    ["North Dakota", "ND"],
    ["Ohio", "OH"],
    ["Oklahoma", "OK"],
    ["Oregon", "OR"],
    ["Pennsylvania", "PA"],
    ["Rhode Island", "RI"],
    ["South Carolina", "SC"],
    ["South Dakota", "SD"],
    ["Tennessee", "TN"],
    ["Texas", "TX"],
    ["Utah", "UT"],
    ["Vermont", "VT"],
    ["Virginia", "VA"],
    ["Washington", "WA"],
    ["West Virginia", "WV"],
    ["Wisconsin", "WI"],
    ["Wyoming", "WY"],
];

static FIRST_NAMES: &[Entry] = entries![
    ["James"],
    ["Mary"],
    ["Robert"],
    ["Patricia"],
    ["John"],
    ["Jennifer"],
    ["Michael"],
    ["Linda"],
    ["David"],
    ["Elizabeth"],
    ["William"],
    ["Barbara"],
    ["Richard"],
    ["Susan"],
    ["Joseph"],
    ["Jessica"],
    ["Thomas"],
    ["Sarah"],
    ["Charles"],
    ["Karen"],
    ["Christopher"],
    ["Lisa"],
    ["Daniel"],
    ["Nancy"],
    ["Matthew"],
    ["Betty"],
    ["Anthony"],
    ["Margaret"],
    ["Mark"],
    ["Sandra"],
    ["Donald"],
    ["Ashley"],
    ["Steven"],
    ["Kimberly"],
    ["Paul"],
    ["Emily"],
    ["Andrew"],
    ["Donna"],
    ["Joshua"],
    ["Michelle"],
    ["Kenneth"],
    ["Carol"],
    ["Kevin"],
    ["Amanda"],
    ["Brian"],
    ["Dorothy"],
    ["George"],
    ["Melissa"],
];

static LAST_NAMES: &[Entry] = entries![
    ["Smith"],
    ["Johnson"],
    ["Williams"],
    ["Brown"],
    ["Jones"],
    ["Garcia"],
    ["Miller"],
    ["Davis"],
    ["Rodriguez"],
    ["Martinez"],
    ["Hernandez"],
    ["Lopez"],
    ["Gonzalez"],
    ["Wilson"],
    ["Anderson"],
    ["Taylor"],
    ["Moore"],
    ["Jackson"],
    ["Martin"],
    ["Lee"],
    ["Perez"],
    ["Thompson"],
    ["White"],
    ["Harris"],
    ["Sanchez"],
    ["Clark"],
    ["Ramirez"],
    ["Lewis"],
    ["Robinson"],
    ["Walker"],
    ["Young"],
    ["Allen"],
    ["King"],
    ["Wright"],
];

/// Months: `[full, 3-letter]`.
static MONTHS: &[Entry] = entries![
    ["January", "Jan"],
    ["February", "Feb"],
    ["March", "Mar"],
    ["April", "Apr"],
    ["May", "May"],
    ["June", "Jun"],
    ["July", "Jul"],
    ["August", "Aug"],
    ["September", "Sep"],
    ["October", "Oct"],
    ["November", "Nov"],
    ["December", "Dec"],
];

/// Weekdays: `[full, 3-letter]`.
static WEEKDAYS: &[Entry] = entries![
    ["Monday", "Mon"],
    ["Tuesday", "Tue"],
    ["Wednesday", "Wed"],
    ["Thursday", "Thu"],
    ["Friday", "Fri"],
    ["Saturday", "Sat"],
    ["Sunday", "Sun"],
];

static COLORS: &[Entry] = entries![
    ["red"],
    ["green"],
    ["blue"],
    ["yellow"],
    ["orange"],
    ["purple"],
    ["pink"],
    ["brown"],
    ["black"],
    ["white"],
    ["gray"],
    ["cyan"],
    ["magenta"],
    ["violet"],
    ["indigo"],
    ["teal"],
    ["maroon"],
    ["navy"],
    ["olive"],
    ["silver"],
    ["gold"],
    ["beige"],
    ["turquoise"],
    ["crimson"],
    ["dark green"],
    ["dark blue"],
    ["dark red"],
    ["light green"],
    ["light blue"],
    ["light gray"],
];

/// Currencies: `[full, ISO code]`.
static CURRENCIES: &[Entry] = entries![
    ["US Dollar", "USD"],
    ["Euro", "EUR"],
    ["British Pound", "GBP"],
    ["Japanese Yen", "JPY"],
    ["Swiss Franc", "CHF"],
    ["Canadian Dollar", "CAD"],
    ["Australian Dollar", "AUD"],
    ["Chinese Yuan", "CNY"],
    ["Indian Rupee", "INR"],
    ["Brazilian Real", "BRL"],
    ["Mexican Peso", "MXN"],
    ["South Korean Won", "KRW"],
    ["Swedish Krona", "SEK"],
    ["Norwegian Krone", "NOK"],
    ["Danish Krone", "DKK"],
    ["Polish Zloty", "PLN"],
    ["Turkish Lira", "TRY"],
    ["Russian Ruble", "RUB"],
    ["Singapore Dollar", "SGD"],
    ["Hong Kong Dollar", "HKD"],
];

static LANGUAGES: &[Entry] = entries![
    ["English"],
    ["Spanish"],
    ["French"],
    ["German"],
    ["Italian"],
    ["Portuguese"],
    ["Dutch"],
    ["Russian"],
    ["Mandarin"],
    ["Japanese"],
    ["Korean"],
    ["Arabic"],
    ["Hindi"],
    ["Bengali"],
    ["Turkish"],
    ["Polish"],
    ["Swedish"],
    ["Greek"],
    ["Hebrew"],
    ["Vietnamese"],
];

static CONTINENTS: &[Entry] = entries![
    ["Africa"],
    ["Antarctica"],
    ["Asia"],
    ["Europe"],
    ["North America"],
    ["Oceania"],
    ["South America"],
];

static NATIONALITIES: &[Entry] = entries![
    ["American"],
    ["British"],
    ["German"],
    ["French"],
    ["Spanish"],
    ["Italian"],
    ["Portuguese"],
    ["Dutch"],
    ["Swiss"],
    ["Austrian"],
    ["Swedish"],
    ["Norwegian"],
    ["Danish"],
    ["Finnish"],
    ["Polish"],
    ["Irish"],
    ["Greek"],
    ["Turkish"],
    ["Russian"],
    ["Chinese"],
    ["Japanese"],
    ["Indian"],
    ["Australian"],
    ["Canadian"],
    ["Mexican"],
    ["Brazilian"],
    ["Argentine"],
    ["Egyptian"],
    ["Nigerian"],
    ["Kenyan"],
];

static COMPANIES: &[Entry] = entries![
    ["Acme Corp"],
    ["Globex"],
    ["Initech"],
    ["Umbrella"],
    ["Stark Industries"],
    ["Wayne Enterprises"],
    ["Wonka Industries"],
    ["Tyrell Corp"],
    ["Cyberdyne"],
    ["Soylent Corp"],
    ["Massive Dynamic"],
    ["Hooli"],
    ["Pied Piper"],
    ["Aperture Science"],
    ["Black Mesa"],
    ["Oscorp"],
    ["LexCorp"],
    ["Weyland-Yutani"],
    ["Nakatomi Trading"],
    ["Gringotts"],
];

static TEAMS: &[Entry] = entries![
    ["Eagles"],
    ["Tigers"],
    ["Lions"],
    ["Bears"],
    ["Sharks"],
    ["Wolves"],
    ["Hawks"],
    ["Falcons"],
    ["Panthers"],
    ["Raptors"],
    ["Bulls"],
    ["Rams"],
    ["Cougars"],
    ["Stallions"],
    ["Titans"],
    ["Giants"],
    ["Pirates"],
    ["Vikings"],
    ["Spartans"],
    ["Warriors"],
];

/// Genders: `[full, 1-letter]`.
static GENDERS: &[Entry] = entries![["Male", "M"], ["Female", "F"], ["Nonbinary", "X"],];

/// Competition categories: `[full, 3-letter]` — Figure 2's PRO/QUA domain.
static CATEGORIES: &[Entry] = entries![
    ["Junior", "JUN"],
    ["Senior", "SEN"],
    ["Professional", "PRO"],
    ["Amateur", "AMA"],
    ["Qualifier", "QUA"],
    ["Expert", "EXP"],
    ["Beginner", "BEG"],
    ["Intermediate", "INT"],
];

static SPORTS: &[Entry] = entries![
    ["Soccer"],
    ["Basketball"],
    ["Baseball"],
    ["Tennis"],
    ["Cricket"],
    ["Hockey"],
    ["Golf"],
    ["Rugby"],
    ["Swimming"],
    ["Athletics"],
    ["Volleyball"],
    ["Badminton"],
    ["Cycling"],
    ["Boxing"],
    ["Skiing"],
];

static STATUSES: &[Entry] = entries![
    ["Active"],
    ["Inactive"],
    ["Pending"],
    ["Completed"],
    ["Cancelled"],
    ["Open"],
    ["Closed"],
    ["Draft"],
    ["Approved"],
    ["Rejected"],
    ["Shipped"],
    ["Delivered"],
];

static RELIGIONS: &[Entry] = entries![
    ["Christianity"],
    ["Islam"],
    ["Hinduism"],
    ["Buddhism"],
    ["Judaism"],
    ["Sikhism"],
    ["Taoism"],
    ["Shinto"],
];

static REGIONS: &[Entry] = entries![
    ["North"],
    ["South"],
    ["East"],
    ["West"],
    ["Northeast"],
    ["Northwest"],
    ["Southeast"],
    ["Southwest"],
    ["Central"],
    ["Midwest"],
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_has_entries() {
        for t in SemanticType::ALL {
            assert!(!entries(t).is_empty(), "{t:?}");
        }
    }

    #[test]
    fn forms_are_nonempty_strings() {
        for t in SemanticType::ALL {
            for e in entries(t) {
                assert!(!e.forms.is_empty());
                for f in e.forms {
                    assert!(!f.is_empty(), "{t:?} has empty form");
                }
            }
        }
    }

    #[test]
    fn aligned_form_counts_within_type() {
        // Types with coded forms keep a uniform arity so form positions align.
        for t in [
            SemanticType::Country,
            SemanticType::State,
            SemanticType::Month,
            SemanticType::Weekday,
            SemanticType::Currency,
            SemanticType::Gender,
            SemanticType::Category,
        ] {
            let n = entries(t)[0].forms.len();
            assert!(n >= 2, "{t:?}");
            assert!(entries(t).iter().all(|e| e.forms.len() == n), "{t:?}");
        }
    }

    #[test]
    fn figure2_vocabulary_present() {
        let cats = entries(SemanticType::Category);
        assert!(cats
            .iter()
            .any(|e| e.forms[0] == "Professional" && e.forms[1] == "PRO"));
        let countries = entries(SemanticType::Country);
        assert!(countries
            .iter()
            .any(|e| e.forms[1] == "US" && e.forms[2] == "USA"));
    }
}
