//! The semantic-abstraction prompt (paper Figure 3).
//!
//! The prompt has four components: a task description, the closed set of
//! maskable semantic types, few-shot examples demonstrating both masking
//! (`US-123 → {country(US)}-123`) and in-mask repair (`u.k.-392 →
//! {country(UK)}-392`), and the batch of column values. Long columns are
//! processed in batches sized to the model's context window (4k tokens for
//! GPT-3.5; we estimate ~4 characters per token).

use crate::types::SemanticType;

/// Simulated model context window, in tokens (GPT-3.5 in the paper).
pub const MAX_PROMPT_TOKENS: usize = 4000;

/// Crude token estimate (~4 characters per token).
pub fn token_estimate(text: &str) -> usize {
    text.len().div_ceil(4)
}

/// Prompt section markers (the mock LLM parses these back out).
pub const COLUMN_MARKER: &str = "### Column";
pub const VALUES_MARKER: &str = "Values:";
pub const OUTPUT_MARKER: &str = "### Masked values (one per line):";

/// One prompt covering a contiguous batch of rows.
#[derive(Debug, Clone)]
pub struct PromptBatch {
    /// The full prompt text.
    pub prompt: String,
    /// Row indices covered, in order.
    pub rows: Vec<usize>,
}

/// The static prompt preamble: task + types + few-shot examples.
pub fn preamble(mask_types: &[SemanticType]) -> String {
    let mut p = String::new();
    p.push_str(
        "### Task\n\
         You are given a column of spreadsheet values. Replace every substring\n\
         that denotes one of the listed semantic types with a mask of the form\n\
         {type(value)}. Keep all other characters exactly as they are. If a\n\
         masked substring contains a spelling mistake or a non-canonical form,\n\
         you may repair it inside the mask: write {type(value')} where value'\n\
         is the corrected, column-consistent form. Mask at the granularity of\n\
         the listed types only; never mask whole values that merely contain a\n\
         typed substring.\n\n",
    );
    p.push_str("### Semantic types\n");
    let names: Vec<&str> = mask_types.iter().map(|t| t.name()).collect();
    p.push_str(&names.join(", "));
    p.push_str("\n\n### Examples\n");
    for (input, output) in EXAMPLES {
        p.push_str("Input: ");
        p.push_str(input);
        p.push_str("\nOutput: ");
        p.push_str(output);
        p.push('\n');
    }
    p.push('\n');
    p
}

/// Few-shot examples, mirroring Figure 3 / §3.2 of the paper.
const EXAMPLES: &[(&str, &str)] = &[
    ("US-123", "{country(US)}-123"),
    ("u.k.-392", "{country(UK)}-392"),
    ("bleu phone 3", "{color(blue)} phone 3"),
    ("Bostn, MA", "{city(Boston)}, {state(MA)}"),
    ("Q4-2002", "Q4-2002"),
];

/// Splits a column into prompt batches under the token budget.
pub fn build_prompts(
    header: &str,
    values: &[String],
    mask_types: &[SemanticType],
) -> Vec<PromptBatch> {
    let pre = preamble(mask_types);
    let fixed = format!("{pre}{COLUMN_MARKER}\nHeader: {header}\n{VALUES_MARKER}\n");
    let fixed_tokens = token_estimate(&fixed) + token_estimate(OUTPUT_MARKER) + 2;

    let mut batches = Vec::new();
    let mut body = String::new();
    let mut rows: Vec<usize> = Vec::new();
    let mut used = fixed_tokens;
    for (i, v) in values.iter().enumerate() {
        // Each value appears in the prompt and again in the completion.
        let cost = 2 * (token_estimate(v) + 1);
        if !rows.is_empty() && used + cost > MAX_PROMPT_TOKENS {
            batches.push(PromptBatch {
                prompt: format!("{fixed}{body}{OUTPUT_MARKER}\n"),
                rows: std::mem::take(&mut rows),
            });
            body.clear();
            used = fixed_tokens;
        }
        body.push_str(v);
        body.push('\n');
        rows.push(i);
        used += cost;
    }
    if !rows.is_empty() || batches.is_empty() {
        batches.push(PromptBatch {
            prompt: format!("{fixed}{body}{OUTPUT_MARKER}\n"),
            rows,
        });
    }
    batches
}

/// Extracts the batch's values back out of a prompt (the mock LLM's "read").
pub fn parse_prompt_values(prompt: &str) -> Vec<String> {
    let mut in_values = false;
    let mut out = Vec::new();
    for line in prompt.lines() {
        if line == OUTPUT_MARKER {
            break;
        }
        if in_values {
            out.push(line.to_string());
        }
        if line == VALUES_MARKER {
            in_values = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn prompt_contains_all_components() {
        let batches = build_prompts(
            "Player ID",
            &owned(&["usa_837", "Ind-674-PRO"]),
            &SemanticType::ALL,
        );
        assert_eq!(batches.len(), 1);
        let p = &batches[0].prompt;
        assert!(p.contains("### Task"));
        assert!(p.contains("### Semantic types"));
        assert!(p.contains("country, city"));
        assert!(p.contains("### Examples"));
        assert!(p.contains("{country(UK)}-392"));
        assert!(p.contains("Header: Player ID"));
        assert!(p.contains("usa_837"));
        assert!(p.ends_with(&format!("{OUTPUT_MARKER}\n")));
    }

    #[test]
    fn round_trip_values_through_prompt() {
        let values = owned(&["a-1", "b-2", "weird {brace}"]);
        let batches = build_prompts("h", &values, &SemanticType::ALL);
        let parsed = parse_prompt_values(&batches[0].prompt);
        assert_eq!(parsed, values);
    }

    #[test]
    fn long_columns_split_into_batches() {
        let long: Vec<String> = (0..4000).map(|i| format!("value-{i:06}")).collect();
        let batches = build_prompts("h", &long, &SemanticType::ALL);
        assert!(batches.len() > 1, "expected multiple batches");
        for b in &batches {
            assert!(token_estimate(&b.prompt) <= MAX_PROMPT_TOKENS + 64);
        }
        // Batches partition the rows in order.
        let mut all: Vec<usize> = batches.iter().flat_map(|b| b.rows.clone()).collect();
        assert_eq!(all.len(), 4000);
        all.dedup();
        assert_eq!(all, (0..4000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_column_single_empty_batch() {
        let batches = build_prompts("h", &[], &SemanticType::ALL);
        assert_eq!(batches.len(), 1);
        assert!(batches[0].rows.is_empty());
    }

    #[test]
    fn token_estimate_is_quarter_length() {
        assert_eq!(token_estimate("abcdefgh"), 2);
        assert_eq!(token_estimate("abc"), 1);
        assert_eq!(token_estimate(""), 0);
    }
}
