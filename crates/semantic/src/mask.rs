//! The semantic abstraction driver: column → masked column (and back).
//!
//! Orchestrates the paper's §3.2 flow: build Figure-3 prompts in batches,
//! call the language model, parse the `{type(suggestion)}` syntax into
//! [`MaskedString`]s over mask tokens, and record per-row occurrences so
//! repaired masked values can be *re-concretized* into plain strings.

use std::collections::HashMap;

use crate::llm::LanguageModel;
use crate::prompt::build_prompts;
use crate::types::SemanticType;
use datavinci_regex::{MaskAlphabet, MaskId, MaskedString, Tok};

/// One mask occurrence within a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskOccurrence {
    /// The mask symbol (one per semantic type within a column).
    pub mask: MaskId,
    /// The semantic type.
    pub semantic_type: SemanticType,
    /// The LLM's (possibly repaired) replacement text for this occurrence.
    pub suggestion: String,
}

/// One abstracted value: the masked string plus its mask occurrences in
/// left-to-right order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MaskedValue {
    /// The masked string the pattern engine sees.
    pub masked: MaskedString,
    /// Occurrences, aligned with the mask tokens in `masked`.
    pub occurrences: Vec<MaskOccurrence>,
}

/// A fully abstracted column.
#[derive(Debug, Clone, Default)]
pub struct AbstractedColumn {
    /// Abstracted values, one per row.
    pub values: Vec<MaskedValue>,
    /// Mask-symbol names (semantic type display names).
    pub alphabet: MaskAlphabet,
    /// Column-level default suggestion per mask symbol (majority), used to
    /// concretize masks *inserted* by repairs.
    pub defaults: HashMap<MaskId, String>,
}

impl AbstractedColumn {
    /// Abstraction that performs no masking (the "no semantic abstraction"
    /// ablation of paper §5.4.1, and the fast path for mask-free columns).
    pub fn plain<S: AsRef<str>>(values: &[S]) -> AbstractedColumn {
        AbstractedColumn {
            values: values
                .iter()
                .map(|v| MaskedValue {
                    masked: MaskedString::from_plain(v.as_ref()),
                    occurrences: Vec::new(),
                })
                .collect(),
            alphabet: MaskAlphabet::new(),
            defaults: HashMap::new(),
        }
    }

    /// Did abstraction produce any masks at all?
    pub fn has_masks(&self) -> bool {
        self.values.iter().any(|v| !v.occurrences.is_empty())
    }

    /// The masked strings, in row order (pattern-learner input).
    pub fn masked_strings(&self) -> Vec<MaskedString> {
        self.values.iter().map(|v| v.masked.clone()).collect()
    }

    /// Concretizes a (possibly repaired) masked string for row `row`:
    /// mask tokens are replaced by that row's occurrence suggestions in
    /// order; extra (repair-inserted) masks fall back to the column default.
    pub fn concretize(&self, row: usize, repaired: &MaskedString) -> String {
        let occurrences = self
            .values
            .get(row)
            .map(|v| v.occurrences.as_slice())
            .unwrap_or(&[]);
        let mut used: HashMap<MaskId, usize> = HashMap::new();
        let mut out = String::new();
        for tok in repaired.toks() {
            match tok {
                Tok::Char(c) => out.push(*c),
                Tok::Mask(id) => {
                    let k = used.entry(*id).or_insert(0);
                    let nth = occurrences
                        .iter()
                        .filter(|o| o.mask == *id)
                        .nth(*k)
                        .map(|o| o.suggestion.as_str());
                    *k += 1;
                    match nth.or_else(|| self.defaults.get(id).map(String::as_str)) {
                        Some(text) => out.push_str(text),
                        None => out.push('\u{FFFD}'),
                    }
                }
            }
        }
        out
    }
}

/// The abstraction engine: an LLM behind the Figure-3 prompt.
pub struct SemanticAbstractor<L: LanguageModel> {
    llm: L,
    mask_types: Vec<SemanticType>,
}

impl<L: LanguageModel> SemanticAbstractor<L> {
    /// Wraps a language model with the default maskable-type set.
    pub fn new(llm: L) -> Self {
        SemanticAbstractor {
            llm,
            mask_types: SemanticType::ALL
                .into_iter()
                .filter(|t| !matches!(t, SemanticType::Category | SemanticType::Gender))
                .collect(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &L {
        &self.llm
    }

    /// Abstracts a column: prompts the model batch-wise, parses masks.
    ///
    /// Parsing is memoized per distinct response line: duplicate values mask
    /// to duplicate lines, and re-parsing a line already seen interns
    /// nothing new, so replaying the memo is byte-identical to parsing every
    /// row.
    pub fn abstract_column(&self, header: &str, values: &[String]) -> AbstractedColumn {
        let batches = build_prompts(header, values, &self.mask_types);
        let mut alphabet = MaskAlphabet::new();
        let mut parsed: HashMap<String, MaskedValue> = HashMap::new();
        let mut out: Vec<MaskedValue> = vec![MaskedValue::default(); values.len()];
        for batch in batches {
            let response = self.llm.complete(&batch.prompt);
            let lines: Vec<&str> = response.lines().collect();
            for (k, &row) in batch.rows.iter().enumerate() {
                let masked_text = lines.get(k).copied().unwrap_or(values[row].as_str());
                out[row] = match parsed.get(masked_text) {
                    Some(v) => v.clone(),
                    None => {
                        let v = parse_masked_value(masked_text, &mut alphabet);
                        parsed.insert(masked_text.to_string(), v.clone());
                        v
                    }
                };
            }
        }

        // Column defaults: majority suggestion per mask symbol.
        let mut votes: HashMap<MaskId, HashMap<&str, usize>> = HashMap::new();
        for v in &out {
            for o in &v.occurrences {
                *votes
                    .entry(o.mask)
                    .or_default()
                    .entry(o.suggestion.as_str())
                    .or_insert(0) += 1;
            }
        }
        let defaults: HashMap<MaskId, String> = votes
            .into_iter()
            .filter_map(|(id, v)| {
                v.into_iter()
                    .max_by_key(|&(text, count)| (count, std::cmp::Reverse(text.len()), text))
                    .map(|(text, _)| (id, text.to_string()))
            })
            .collect();

        AbstractedColumn {
            values: out,
            alphabet,
            defaults,
        }
    }
}

/// Parses one `{type(suggestion)}`-syntax line into a masked value.
///
/// Malformed mask syntax degrades gracefully to literal characters — a
/// hosted LLM can always produce junk, and junk must not panic a cleaner.
pub fn parse_masked_value(text: &str, alphabet: &mut MaskAlphabet) -> MaskedValue {
    let chars: Vec<char> = text.chars().collect();
    let mut masked = MaskedString::default();
    let mut occurrences = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if let Some((semantic_type, suggestion, end)) = parse_mask_at(&chars, i) {
                let id = alphabet.intern(&semantic_type.display_name());
                masked.push(Tok::Mask(id));
                occurrences.push(MaskOccurrence {
                    mask: id,
                    semantic_type,
                    suggestion,
                });
                i = end;
                continue;
            }
        }
        masked.push(Tok::Char(chars[i]));
        i += 1;
    }
    MaskedValue {
        masked,
        occurrences,
    }
}

/// Tries to parse `{name(suggestion)}` starting at `start`; returns the
/// type, suggestion, and the index one past the closing `}`.
fn parse_mask_at(chars: &[char], start: usize) -> Option<(SemanticType, String, usize)> {
    let open = chars[start + 1..].iter().position(|&c| c == '(')? + start + 1;
    let name: String = chars[start + 1..open].iter().collect();
    let semantic_type = SemanticType::parse(&name)?;
    // Find ")}" — suggestions never contain that two-char sequence.
    let mut j = open + 1;
    while j + 1 < chars.len() {
        if chars[j] == ')' && chars[j + 1] == '}' {
            let suggestion: String = chars[open + 1..j].iter().collect();
            return Some((semantic_type, suggestion, j + 2));
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::GazetteerLlm;

    fn abstractor() -> SemanticAbstractor<GazetteerLlm> {
        SemanticAbstractor::new(GazetteerLlm::new())
    }

    fn col(values: &[&str]) -> AbstractedColumn {
        abstractor().abstract_column(
            "col",
            &values.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn parse_masked_value_basic() {
        let mut alpha = MaskAlphabet::new();
        let v = parse_masked_value("{country(US)}_837", &mut alpha);
        assert_eq!(v.masked.len(), 5); // mask + _ + 8 + 3 + 7
        assert_eq!(v.occurrences.len(), 1);
        assert_eq!(v.occurrences[0].suggestion, "US");
        assert_eq!(v.occurrences[0].semantic_type, SemanticType::Country);
        assert_eq!(alpha.name(v.occurrences[0].mask), Some("Country"));
    }

    #[test]
    fn parse_malformed_masks_as_literals() {
        let mut alpha = MaskAlphabet::new();
        let v = parse_masked_value("{oops}x", &mut alpha);
        assert!(v.occurrences.is_empty());
        assert_eq!(v.masked.to_plain().as_deref(), Some("{oops}x"));
        let v2 = parse_masked_value("{country(US}", &mut alpha);
        assert!(v2.occurrences.is_empty());
    }

    #[test]
    fn figure2_abstraction_end_to_end() {
        let c = col(&[
            "Ind-674-PRO",
            "usa_837",
            "Alg-173-PRO",
            "US-201-QUA",
            "Chn-924-QUA",
            "FR-475-PRO",
        ]);
        assert!(c.has_masks());
        // Row 1 (usa_837): one country mask, suggestion normalized by the
        // column's majority form.
        let v = &c.values[1];
        assert_eq!(v.occurrences.len(), 1);
        assert_eq!(v.occurrences[0].semantic_type, SemanticType::Country);
        // The masked string is ⟨Country⟩_837.
        assert_eq!(v.masked.render(&c.alphabet), "⟨Country⟩_837");
    }

    #[test]
    fn concretize_replaces_masks_in_order() {
        let c = col(&["US-1-FR", "DE-2-IT", "GB-3-ES", "FR-4-US"]);
        let v = &c.values[0];
        assert_eq!(v.occurrences.len(), 2);
        let plain = c.concretize(0, &v.masked);
        assert_eq!(plain, "US-1-FR");
    }

    #[test]
    fn concretize_inserted_mask_uses_column_default() {
        let c = col(&["US-1", "US-2", "US-3", "FR-4"]);
        let id = c.values[0].occurrences[0].mask;
        // A repaired value that *inserts* an extra mask beyond row 0's one
        // occurrence: [mask, '-', mask].
        let repaired = MaskedString::from_toks(vec![Tok::Mask(id), Tok::Char('-'), Tok::Mask(id)]);
        let plain = c.concretize(0, &repaired);
        // First mask → row suggestion (US), second → column majority (US).
        assert_eq!(plain, "US-US");
    }

    #[test]
    fn plain_abstraction_never_masks() {
        let c = AbstractedColumn::plain(&["US-1", "FR-2"]);
        assert!(!c.has_masks());
        assert_eq!(c.values[0].masked.to_plain().as_deref(), Some("US-1"));
        assert_eq!(c.concretize(0, &c.values[0].masked), "US-1");
    }

    #[test]
    fn masked_strings_align_with_rows() {
        let c = col(&["red 1", "green 2", "blue 3"]);
        let strings = c.masked_strings();
        assert_eq!(strings.len(), 3);
        assert!(strings.iter().all(|s| s.has_masks()));
    }
}
