//! The twenty semantic types DataVinci masks.
//!
//! Paper §3.2: "Sherlock, a prior work on semantic type detection, introduced
//! a method to classify a column as one of 78 popular semantic types … We
//! take the 20 most frequently occurring semantic types, which cover 99.2% of
//! values with a detected semantic type." We fix a comparable top-20 set;
//! the exact membership matters less than having a closed, typed vocabulary
//! the mask/concretize machinery operates over.

/// A maskable semantic type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SemanticType {
    /// Countries (forms: full name, ISO-2, ISO-3).
    Country,
    /// Cities.
    City,
    /// US states (forms: full name, USPS code).
    State,
    /// Given names.
    FirstName,
    /// Family names.
    LastName,
    /// Calendar months (forms: full, 3-letter).
    Month,
    /// Weekdays (forms: full, 3-letter).
    Weekday,
    /// Colors.
    Color,
    /// Currencies (forms: full name, ISO code).
    Currency,
    /// Languages.
    Language,
    /// Continents.
    Continent,
    /// Nationalities.
    Nationality,
    /// Companies.
    Company,
    /// Sports teams.
    Team,
    /// Genders (forms: full, 1-letter code).
    Gender,
    /// Competition categories (forms: full, 3-letter code) — e.g.
    /// Professional/PRO, the Figure-2 suffix domain.
    Category,
    /// Sports.
    Sport,
    /// Workflow statuses.
    Status,
    /// Religions.
    Religion,
    /// Compass/market regions.
    Region,
}

impl SemanticType {
    /// All twenty types.
    pub const ALL: [SemanticType; 20] = [
        SemanticType::Country,
        SemanticType::City,
        SemanticType::State,
        SemanticType::FirstName,
        SemanticType::LastName,
        SemanticType::Month,
        SemanticType::Weekday,
        SemanticType::Color,
        SemanticType::Currency,
        SemanticType::Language,
        SemanticType::Continent,
        SemanticType::Nationality,
        SemanticType::Company,
        SemanticType::Team,
        SemanticType::Gender,
        SemanticType::Category,
        SemanticType::Sport,
        SemanticType::Status,
        SemanticType::Religion,
        SemanticType::Region,
    ];

    /// Stable lowercase name, used in prompt/mask syntax: `{country(US)}`.
    pub fn name(&self) -> &'static str {
        match self {
            SemanticType::Country => "country",
            SemanticType::City => "city",
            SemanticType::State => "state",
            SemanticType::FirstName => "firstname",
            SemanticType::LastName => "lastname",
            SemanticType::Month => "month",
            SemanticType::Weekday => "weekday",
            SemanticType::Color => "color",
            SemanticType::Currency => "currency",
            SemanticType::Language => "language",
            SemanticType::Continent => "continent",
            SemanticType::Nationality => "nationality",
            SemanticType::Company => "company",
            SemanticType::Team => "team",
            SemanticType::Gender => "gender",
            SemanticType::Category => "category",
            SemanticType::Sport => "sport",
            SemanticType::Status => "status",
            SemanticType::Religion => "religion",
            SemanticType::Region => "region",
        }
    }

    /// Parses the lowercase name back into a type.
    pub fn parse(name: &str) -> Option<SemanticType> {
        SemanticType::ALL.into_iter().find(|t| t.name() == name)
    }

    /// Capitalized display name used when rendering patterns (`{Country}`).
    pub fn display_name(&self) -> String {
        let name = self.name();
        let mut out = String::with_capacity(name.len());
        let mut chars = name.chars();
        if let Some(c) = chars.next() {
            out.extend(c.to_uppercase());
        }
        out.extend(chars);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_types() {
        assert_eq!(SemanticType::ALL.len(), 20);
    }

    #[test]
    fn names_parse_round_trip() {
        for t in SemanticType::ALL {
            assert_eq!(SemanticType::parse(t.name()), Some(t));
        }
        assert_eq!(SemanticType::parse("quarter"), None);
    }

    #[test]
    fn display_names_capitalized() {
        assert_eq!(SemanticType::Country.display_name(), "Country");
        assert_eq!(SemanticType::FirstName.display_name(), "Firstname");
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = SemanticType::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }
}
