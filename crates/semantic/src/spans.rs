//! Candidate span extraction for semantic lookup.
//!
//! A span is a substring that could denote a semantic concept: a single
//! word, a run of up to three words joined by single spaces (`New York`,
//! `dark green`), or a dotted abbreviation (`u.k.` → lookup text `uk`).
//! Positions are in characters.

/// A candidate span within a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Start offset in characters.
    pub start: usize,
    /// Length in characters (of the original text).
    pub len: usize,
    /// Text to look up (dots stripped for abbreviations).
    pub lookup: String,
}

impl Span {
    /// Does this span overlap another?
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.start + other.len && other.start < self.start + self.len
    }
}

/// Extracts all candidate spans, longest-first then leftmost.
pub fn candidate_spans(value: &str) -> Vec<Span> {
    let chars: Vec<char> = value.chars().collect();
    let mut words: Vec<(usize, usize)> = Vec::new(); // (start, len) of alpha runs
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_ascii_alphabetic() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_alphabetic() {
                i += 1;
            }
            words.push((start, i - start));
        } else {
            i += 1;
        }
    }

    let mut spans: Vec<Span> = Vec::new();

    // Multi-word spans: consecutive words separated by exactly one space.
    for w in (1..=3usize).rev() {
        if words.len() < w {
            continue;
        }
        'outer: for s in 0..=(words.len() - w) {
            for k in s..s + w - 1 {
                let (cs, cl) = words[k];
                let (ns, _) = words[k + 1];
                if ns != cs + cl + 1 || chars[cs + cl] != ' ' {
                    continue 'outer;
                }
            }
            let (start, _) = words[s];
            let (ls, ll) = words[s + w - 1];
            let len = ls + ll - start;
            let lookup: String = chars[start..start + len].iter().collect();
            spans.push(Span { start, len, lookup });
        }
    }

    // Dotted abbreviations: single letters separated by dots, e.g. `u.k.`.
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_ascii_alphabetic()
            && i + 1 < chars.len()
            && chars[i + 1] == '.'
            && (i == 0 || !chars[i - 1].is_ascii_alphabetic())
        {
            let start = i;
            let mut letters = String::new();
            let mut j = i;
            while j + 1 < chars.len() && chars[j].is_ascii_alphabetic() && chars[j + 1] == '.' {
                letters.push(chars[j]);
                j += 2;
            }
            if letters.chars().count() >= 2 {
                spans.push(Span {
                    start,
                    len: j - start,
                    lookup: letters,
                });
                i = j;
                continue;
            }
        }
        i += 1;
    }

    // Longest first, then leftmost — the greedy masking order.
    spans.sort_by_key(|s| (std::cmp::Reverse(s.len), s.start));
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookups(value: &str) -> Vec<String> {
        candidate_spans(value)
            .into_iter()
            .map(|s| s.lookup)
            .collect()
    }

    #[test]
    fn single_words() {
        assert_eq!(lookups("usa_837"), vec!["usa"]);
        assert_eq!(lookups("Ind-674-PRO"), vec!["Ind", "PRO"]);
    }

    #[test]
    fn multi_word_spans_longest_first() {
        let l = lookups("New York City");
        assert_eq!(l[0], "New York City");
        assert!(l.contains(&"New York".to_string()));
        assert!(l.contains(&"York City".to_string()));
        assert!(l.contains(&"City".to_string()));
    }

    #[test]
    fn double_space_blocks_joining() {
        let l = lookups("New  York");
        assert!(!l.contains(&"New York".to_string()));
        assert!(l.contains(&"New".to_string()));
    }

    #[test]
    fn dotted_abbreviation() {
        let spans = candidate_spans("u.k.-392");
        let abbr = spans.iter().find(|s| s.lookup == "uk").expect("uk span");
        assert_eq!(abbr.start, 0);
        assert_eq!(abbr.len, 4); // "u.k."
    }

    #[test]
    fn overlap_detection() {
        let a = Span {
            start: 0,
            len: 4,
            lookup: "ab c".into(),
        };
        let b = Span {
            start: 3,
            len: 2,
            lookup: "cd".into(),
        };
        let c = Span {
            start: 4,
            len: 1,
            lookup: "d".into(),
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn no_words_no_spans() {
        assert!(candidate_spans("12-34").is_empty());
        assert!(candidate_spans("").is_empty());
    }
}
