//! Semantic substrate for DataVinci: the twenty semantic types, the
//! gazetteer knowledge base, the Figure-3 abstraction prompt, and a
//! deterministic mock LLM.
//!
//! Paper §3.2 masks semantic substrings (`usa_837` → `{country(US)}_837` →
//! `m₁_837`) before pattern learning, allowing one syntactic repair engine
//! to fix mixed syntactic+semantic strings. The hosted GPT-3.5 is replaced
//! here by [`GazetteerLlm`] behind the [`LanguageModel`] trait — it consumes
//! the very same prompt text and reproduces the contract: type-restricted
//! masking, in-mask spelling repair (bounded edit distance), and
//! normalization to the column-majority surface form. See DESIGN.md §2 for
//! the substitution argument.

pub mod data;
pub mod detect;
pub mod gazetteer;
pub(crate) mod intern;
pub mod llm;
pub mod mask;
pub mod prompt;
pub mod spans;
pub mod types;

pub use detect::{detect_column_type, detect_column_type_pooled, ColumnTypeMemo, TypeDetection};
pub use gazetteer::{fuzzy_budget, Gazetteer, Hit};
pub use llm::{
    GazetteerLlm, GazetteerLlmConfig, LanguageModel, MaskCache, MaskCacheStats,
    DEFAULT_MASK_CACHE_CAPACITY,
};
pub use mask::{
    parse_masked_value, AbstractedColumn, MaskOccurrence, MaskedValue, SemanticAbstractor,
};
pub use types::SemanticType;
