//! The language-model interface and its deterministic gazetteer-backed
//! implementation.
//!
//! The paper drives semantic abstraction with GPT-3.5 (§3.2). We cannot ship
//! a hosted LLM, so [`GazetteerLlm`] reproduces the *contract*: it receives
//! the actual Figure-3 prompt, reads the column back out, and produces one
//! masked value per line — masking substrings of the twenty types,
//! repairing misspellings via bounded-edit-distance lookup, and normalizing
//! to the surface form the majority of the column uses (the in-context
//! behaviour that turns `usa` into `US` when the column writes ISO-2 codes).
//! Any other model can be plugged in through [`LanguageModel`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::gazetteer::{Gazetteer, Hit};
use crate::prompt::{parse_prompt_values, OUTPUT_MARKER};
use crate::spans::{candidate_spans, Span};
use crate::types::SemanticType;

/// Default bound on memoized per-value hit lists; beyond it the cache stops
/// admitting new values (lookups still hit) so a pathological stream of
/// unique values cannot grow the model's footprint without bound.
/// Configurable per model via [`GazetteerLlmConfig::mask_cache_capacity`]
/// (surfaced on `datavinci_core`'s `DataVinciConfig`).
pub const DEFAULT_MASK_CACHE_CAPACITY: usize = 16_384;

/// Cumulative mask-cache telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskCacheStats {
    /// Memoized values currently held.
    pub entries: u64,
    /// Lookups served from the memo.
    pub hits: u64,
    /// Lookups that had to sweep the gazetteer.
    pub misses: u64,
}

/// Memoized per-value gazetteer hits.
///
/// `GazetteerLlm`'s per-value hit sweep is a pure function of the value (spans ×
/// fuzzy lookups — the expensive part of masking), so its results are
/// shared across prompt batches, columns, and engine runs. Thread-safe: the
/// engine's worker pool masks columns concurrently through one model, and
/// analysis sessions hold an [`Arc`] handle to the same cache so its reuse
/// shows up in session telemetry.
#[derive(Debug)]
pub struct MaskCache {
    hits: Mutex<HashMap<String, Vec<(Span, Hit)>>>,
    capacity: usize,
    hit_count: AtomicU64,
    miss_count: AtomicU64,
}

impl Default for MaskCache {
    fn default() -> Self {
        MaskCache::with_capacity(DEFAULT_MASK_CACHE_CAPACITY)
    }
}

impl MaskCache {
    /// An empty cache bounded to `capacity` memoized values (min 1).
    pub fn with_capacity(capacity: usize) -> MaskCache {
        MaskCache {
            hits: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hit_count: AtomicU64::new(0),
            miss_count: AtomicU64::new(0),
        }
    }

    /// Number of memoized values.
    pub fn len(&self) -> usize {
        self.hits.lock().expect("mask cache poisoned").len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative telemetry.
    pub fn stats(&self) -> MaskCacheStats {
        MaskCacheStats {
            entries: self.len() as u64,
            hits: self.hit_count.load(Ordering::Relaxed),
            misses: self.miss_count.load(Ordering::Relaxed),
        }
    }

    /// Drops every memoized entry and resets telemetry.
    pub fn clear(&self) {
        self.hits.lock().expect("mask cache poisoned").clear();
        self.hit_count.store(0, Ordering::Relaxed);
        self.miss_count.store(0, Ordering::Relaxed);
    }

    /// `compute(value)` through the memo.
    fn get_or_compute(
        &self,
        value: &str,
        compute: impl FnOnce(&str) -> Vec<(Span, Hit)>,
    ) -> Vec<(Span, Hit)> {
        if let Some(hit) = self.hits.lock().expect("mask cache poisoned").get(value) {
            self.hit_count.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.miss_count.fetch_add(1, Ordering::Relaxed);
        let computed = compute(value);
        let mut map = self.hits.lock().expect("mask cache poisoned");
        if map.len() < self.capacity {
            map.insert(value.to_string(), computed.clone());
        }
        computed
    }
}

/// A completion-style language model.
pub trait LanguageModel {
    /// Completes a prompt, returning the generated text.
    fn complete(&self, prompt: &str) -> String;

    /// Model identifier for reports.
    fn name(&self) -> &'static str;
}

/// Configuration for the gazetteer-backed mock LLM.
#[derive(Debug, Clone)]
pub struct GazetteerLlmConfig {
    /// Mask a semantic type only when at least this fraction of batch values
    /// contains a hit of that type (the whole-column-context effect).
    pub min_type_support: f64,
    /// …and at least this many values.
    pub min_type_count: usize,
    /// Types the model is allowed to mask. Defaults to the Sherlock-style
    /// set: every type except [`SemanticType::Category`] and
    /// [`SemanticType::Gender`] (short-code domains the paper's Figure 2
    /// shows being handled *syntactically* via disjunctions).
    pub mask_types: Vec<SemanticType>,
    /// When false, masked substrings are reproduced verbatim instead of
    /// being repaired/normalized — the "Limited semantic concretization"
    /// ablation of paper §5.4.1.
    pub repair_in_mask: bool,
    /// Bound on the per-value hit memo ([`MaskCache`]).
    pub mask_cache_capacity: usize,
}

impl Default for GazetteerLlmConfig {
    fn default() -> Self {
        GazetteerLlmConfig {
            min_type_support: 0.5,
            min_type_count: 2,
            mask_types: SemanticType::ALL
                .into_iter()
                .filter(|t| !matches!(t, SemanticType::Category | SemanticType::Gender))
                .collect(),
            repair_in_mask: true,
            mask_cache_capacity: DEFAULT_MASK_CACHE_CAPACITY,
        }
    }
}

/// Deterministic mock LLM over the gazetteer knowledge base.
#[derive(Debug, Default)]
pub struct GazetteerLlm {
    gaz: Gazetteer,
    cfg: GazetteerLlmConfig,
    cache: Arc<MaskCache>,
}

impl GazetteerLlm {
    /// Builds the model with default configuration.
    pub fn new() -> GazetteerLlm {
        GazetteerLlm::with_config(GazetteerLlmConfig::default())
    }

    /// Builds the model with explicit configuration.
    pub fn with_config(cfg: GazetteerLlmConfig) -> GazetteerLlm {
        let cache = Arc::new(MaskCache::with_capacity(cfg.mask_cache_capacity));
        GazetteerLlm {
            gaz: Gazetteer::new(),
            cfg,
            cache,
        }
    }

    /// Access to the underlying knowledge base.
    pub fn gazetteer(&self) -> &Gazetteer {
        &self.gaz
    }

    /// The per-value hit memo (telemetry / tests).
    pub fn mask_cache(&self) -> &MaskCache {
        &self.cache
    }

    /// A shared handle to the hit memo, for analysis sessions to surface
    /// its telemetry alongside their own.
    pub fn mask_cache_handle(&self) -> Arc<MaskCache> {
        Arc::clone(&self.cache)
    }

    /// Masks a whole column (the semantics behind `complete`).
    ///
    /// Masking is computed once per *distinct* value: the batch is interned,
    /// the column-level aggregates (type support, majority surface forms)
    /// are taken with multiplicity weights, each distinct value is masked
    /// once, and the results expand back to row order. Byte-identical to
    /// [`GazetteerLlm::mask_column_rowwise`] by construction — the
    /// aggregates are linear in the rows and the per-value work is a pure
    /// function of the value.
    pub fn mask_column(&self, values: &[String]) -> Vec<String> {
        let pool = crate::intern::intern_values(values);
        // Pass 1 runs once per distinct value, through the hit memo.
        let all_hits: Vec<Vec<(Span, Hit)>> = pool
            .distinct
            .iter()
            .map(|v| self.cache.get_or_compute(v, |v| self.value_hits(v)))
            .collect();
        let masked = self.mask_values_weighted(&pool.distinct, &pool.counts, all_hits);
        pool.row_to_distinct
            .iter()
            .map(|&di| masked[di].clone())
            .collect()
    }

    /// The per-row reference implementation of [`GazetteerLlm::mask_column`]:
    /// no interning, no hit memo, every row weighted 1 — the pre-planner
    /// cost model. The differential suites and the repair benchmark use it
    /// as the oracle for the distinct-value path.
    pub fn mask_column_rowwise(&self, values: &[String]) -> Vec<String> {
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let weights = vec![1usize; refs.len()];
        let all_hits: Vec<Vec<(Span, Hit)>> = refs.iter().map(|v| self.value_hits(v)).collect();
        self.mask_values_weighted(&refs, &weights, all_hits)
    }

    /// Masks one batch of values, each carrying a multiplicity weight;
    /// `all_hits` holds each value's pass-1 span hits.
    fn mask_values_weighted(
        &self,
        values: &[&str],
        weights: &[usize],
        all_hits: Vec<Vec<(Span, Hit)>>,
    ) -> Vec<String> {
        // Type support across the batch: in how many rows does each type
        // appear at all? (Each value counts once per type, times its weight.)
        let mut support: HashMap<SemanticType, usize> = HashMap::new();
        for (hits, &w) in all_hits.iter().zip(weights) {
            let mut seen: Vec<SemanticType> = Vec::new();
            for (_, h) in hits {
                if !seen.contains(&h.semantic_type) {
                    seen.push(h.semantic_type);
                    *support.entry(h.semantic_type).or_insert(0) += w;
                }
            }
        }
        let n = values
            .iter()
            .zip(weights)
            .filter(|(v, _)| !v.trim().is_empty())
            .map(|(_, &w)| w)
            .sum::<usize>()
            .max(1);
        let kept: Vec<SemanticType> = SemanticType::ALL
            .into_iter()
            .filter(|t| {
                support.get(t).is_some_and(|&c| {
                    c >= self.cfg.min_type_count && c as f64 / n as f64 >= self.cfg.min_type_support
                })
            })
            .collect();

        // Majority surface form per kept type (among exact hits, weighted).
        let mut form_votes: HashMap<SemanticType, HashMap<usize, usize>> = HashMap::new();
        for (hits, &w) in all_hits.iter().zip(weights) {
            for (_, h) in hits {
                if h.distance == 0 && kept.contains(&h.semantic_type) {
                    *form_votes
                        .entry(h.semantic_type)
                        .or_default()
                        .entry(h.form)
                        .or_insert(0) += w;
                }
            }
        }
        let majority_form: HashMap<SemanticType, usize> = form_votes
            .into_iter()
            .map(|(t, votes)| {
                let best = votes
                    .into_iter()
                    .max_by_key(|&(form, count)| (count, std::cmp::Reverse(form)))
                    .map(|(form, _)| form)
                    .unwrap_or(0);
                (t, best)
            })
            .collect();

        // Pass 2: greedy non-overlapping masking, once per distinct value.
        values
            .iter()
            .zip(&all_hits)
            .map(|(v, hits)| self.mask_value(v, hits, &kept, &majority_form))
            .collect()
    }

    fn value_hits(&self, value: &str) -> Vec<(Span, Hit)> {
        let chars: Vec<char> = value.chars().collect();
        let mut out = Vec::new();
        for span in candidate_spans(value) {
            // A short code form (`DE`, `PRO`) adjacent to an alphanumeric
            // character is a word fragment, not a code: `de` inside `Rh0de`
            // must not match Delaware.
            if span.lookup.chars().count() <= 3 {
                let before = span.start.checked_sub(1).map(|i| chars[i]);
                let after = chars.get(span.start + span.len).copied();
                if before.is_some_and(|c| c.is_ascii_alphanumeric())
                    || after.is_some_and(|c| c.is_ascii_alphanumeric())
                {
                    continue;
                }
            }
            let mut hits = self.gaz.lookup_fuzzy(&span.lookup);
            if hits.is_empty() {
                // Visual-typo inversion inside the span (Rh0de → Rhode).
                let inverted = invert_visual_typos(&span.lookup);
                if inverted != span.lookup {
                    hits = self
                        .gaz
                        .lookup_fuzzy(&inverted)
                        .into_iter()
                        .map(|h| Hit {
                            distance: h.distance.max(1),
                            ..h
                        })
                        .collect();
                }
            }
            for h in hits {
                if self.cfg.mask_types.contains(&h.semantic_type) {
                    out.push((span.clone(), h));
                }
            }
        }
        // Whole-value strategies for values a spurious delimiter or typo
        // broke apart (Flo_rida → Florida): strip non-alphanumerics, invert
        // visual typos, and look the collapsed surface up as one span.
        let n_chars = value.chars().count();
        let alpha: usize = value.chars().filter(|c| c.is_ascii_alphabetic()).count();
        // Only reach for whole-value repair when no ordinary span already
        // accounts for the value's alphabetic content — `(Liverpool)` is a
        // wrapped entity, not a broken one.
        let best_covered = out.iter().map(|(s, _)| s.len).max().unwrap_or(0);
        if alpha >= 4 && best_covered < alpha {
            let stripped: String = value
                .chars()
                .filter(|c| c.is_ascii_alphanumeric() || *c == ' ')
                .collect();
            for candidate in [stripped.clone(), invert_visual_typos(&stripped)] {
                let trimmed = candidate.trim();
                if trimmed.chars().count() < 4 {
                    continue;
                }
                // Granularity guard (§3.2): a whole-value mask must not
                // swallow residual digits — `dark green 2` is a color plus
                // a number, not one concept.
                if trimmed.chars().any(|c| c.is_ascii_digit()) {
                    continue;
                }
                let hits = self.gaz.lookup_fuzzy(trimmed);
                if !hits.is_empty() {
                    let span = Span {
                        start: 0,
                        len: n_chars,
                        lookup: trimmed.to_string(),
                    };
                    for h in hits {
                        if self.cfg.mask_types.contains(&h.semantic_type) {
                            out.push((
                                span.clone(),
                                Hit {
                                    distance: h.distance.max(1),
                                    ..h
                                },
                            ));
                        }
                    }
                    break;
                }
            }
        }
        // Greedy masking prefers longer spans; keep the list sorted that
        // way even after the whole-value strategies appended entries.
        out.sort_by_key(|(s, h)| (std::cmp::Reverse(s.len), s.start, h.distance));
        out
    }

    fn mask_value(
        &self,
        value: &str,
        hits: &[(Span, Hit)],
        kept: &[SemanticType],
        majority_form: &HashMap<SemanticType, usize>,
    ) -> String {
        // Choose non-overlapping spans greedily (hits are already in
        // longest-first span order); prefer the kept type listed earliest in
        // SemanticType::ALL when a span is ambiguous.
        let mut chosen: Vec<(Span, Hit)> = Vec::new();
        for (span, hit) in hits {
            if !kept.contains(&hit.semantic_type) {
                continue;
            }
            if chosen.iter().any(|(s, _)| s.overlaps(span)) {
                // Same span may carry several typed hits; keep the first
                // (ALL-ordered via kept iteration below). Overlap with a
                // *different* span blocks outright.
                continue;
            }
            // Ambiguity resolution: among all hits on this same span, pick
            // the kept type with the smallest ALL-index.
            let mut best = *hit;
            for (s2, h2) in hits {
                if s2 == span
                    && kept.contains(&h2.semantic_type)
                    && type_rank(h2.semantic_type) < type_rank(best.semantic_type)
                {
                    best = *h2;
                }
            }
            chosen.push((span.clone(), best));
        }
        chosen.sort_by_key(|(s, _)| s.start);

        // Render: copy chars, replacing chosen spans with {type(suggestion)}.
        let chars: Vec<char> = value.chars().collect();
        let mut out = String::with_capacity(value.len() + 16);
        let mut pos = 0usize;
        for (span, hit) in &chosen {
            while pos < span.start {
                out.push(chars[pos]);
                pos += 1;
            }
            let original: String = chars[span.start..span.start + span.len].iter().collect();
            let suggestion: String = if self.cfg.repair_in_mask {
                let form = majority_form
                    .get(&hit.semantic_type)
                    .copied()
                    .unwrap_or(hit.form);
                let form_text = hit.entry_form(form).unwrap_or_else(|| hit.form_text());
                if hit.distance == 0 && form == hit.form && original.eq_ignore_ascii_case(form_text)
                {
                    // Exact hit already in the column-majority form: keep
                    // the user's spelling (case included). Only genuine
                    // repairs (fuzzy hits, aliases) and form switches
                    // rewrite.
                    original
                } else {
                    hit.entry_form(form)
                        .unwrap_or_else(|| hit.form_text())
                        .to_string()
                }
            } else {
                // Limited mode: re-use the original substring verbatim.
                original
            };
            out.push('{');
            out.push_str(hit.semantic_type.name());
            out.push('(');
            out.push_str(&suggestion);
            out.push_str(")}");
            pos = span.start + span.len;
        }
        while pos < chars.len() {
            out.push(chars[pos]);
            pos += 1;
        }
        out
    }
}

/// The §4.2 visually-inspired typo map, inverted (digits back to letters).
fn invert_visual_typos(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '0' => 'o',
            '1' => 'l',
            '3' => 'e',
            '4' => 'a',
            '7' => 't',
            '5' => 's',
            other => other,
        })
        .collect()
}

fn type_rank(t: SemanticType) -> usize {
    SemanticType::ALL
        .iter()
        .position(|x| *x == t)
        .unwrap_or(usize::MAX)
}

impl LanguageModel for GazetteerLlm {
    fn complete(&self, prompt: &str) -> String {
        debug_assert!(
            prompt.contains(OUTPUT_MARKER),
            "prompt must end with the output marker"
        );
        let values = parse_prompt_values(prompt);
        let masked = self.mask_column(&values);
        masked.join("\n")
    }

    fn name(&self) -> &'static str {
        "gazetteer-llm-sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(values: &[&str]) -> Vec<String> {
        let llm = GazetteerLlm::new();
        llm.mask_column(&values.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn figure2_column_masks_countries_not_categories() {
        let out = mask(&[
            "Ind-674-PRO",
            "usa_837",
            "Alg-173-PRO",
            "US-201-QUA",
            "Chn-924-QUA",
            "FR-475-PRO",
        ]);
        // Countries are masked; the PRO/QUA suffixes stay syntactic.
        assert!(out[0].starts_with("{country("));
        assert!(out[0].ends_with("-674-PRO"), "{}", out[0]);
        assert!(out[1].starts_with("{country("), "{}", out[1]);
        assert!(out[1].ends_with("_837"));
        assert!(!out[0].contains("category"));
    }

    #[test]
    fn majority_form_normalizes_suggestions() {
        // Column predominantly ISO-2 (form index 1): usa normalizes to US.
        let out = mask(&["US-1", "FR-2", "DE-3", "usa-4", "IT-5"]);
        assert_eq!(out[3], "{country(US)}-4", "{out:?}");
        assert_eq!(out[0], "{country(US)}-1");
    }

    #[test]
    fn example1_colors_with_spelling_repair() {
        let out = mask(&["red 1", "dark green 2", "blue phone 3", "bluee 4"]);
        assert_eq!(out[0], "{color(red)} 1");
        assert_eq!(out[1], "{color(dark green)} 2");
        assert_eq!(out[2], "{color(blue)} phone 3");
        // "bluee" (5 chars, budget 1) repairs to blue.
        assert_eq!(out[3], "{color(blue)} 4");
    }

    #[test]
    fn unsupported_types_stay_unmasked() {
        // One stray city name in a non-semantic column: support too low.
        let out = mask(&["x-1", "y-2", "Boston", "z-4", "w-5"]);
        assert_eq!(out[2], "Boston");
    }

    #[test]
    fn quarters_stay_syntactic() {
        // §3.2 granularity: Q4-2002 must not be masked wholesale.
        let out = mask(&["Q4-2002", "Q3-2002", "Q32001"]);
        assert_eq!(out, vec!["Q4-2002", "Q3-2002", "Q32001"]);
    }

    #[test]
    fn dotted_abbreviations_repair() {
        let out = mask(&["US-1", "u.k.-392", "DE-7", "FR-9"]);
        assert_eq!(out[1], "{country(GB)}-392");
    }

    #[test]
    fn complete_round_trip_through_prompt() {
        use crate::prompt::build_prompts;
        let llm = GazetteerLlm::new();
        let values: Vec<String> = ["US-1", "FR-2", "usa-3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let batches = build_prompts("Code", &values, &llm.cfg.mask_types);
        let response = llm.complete(&batches[0].prompt);
        let lines: Vec<&str> = response.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2], "{country(US)}-3");
    }

    #[test]
    fn pooled_masking_matches_rowwise_reference() {
        // Duplicate-heavy, mixed, typo'd, and empty values: the interned
        // weighted path must reproduce the per-row oracle byte for byte.
        let columns: Vec<Vec<&str>> = vec![
            vec!["US-1", "US-1", "US-1", "usa-4", "FR-2", "US-1", ""],
            vec![
                "red 1",
                "red 1",
                "dark green 2",
                "blue phone 3",
                "bluee 4",
                "red 1",
            ],
            vec!["Boston", "Boston", "Birminxham", "Boston", "Miami"],
            vec!["Q4-2002", "Q4-2002", "Q32001"],
            vec!["", " ", ""],
        ];
        for col in columns {
            let llm = GazetteerLlm::new();
            let values: Vec<String> = col.iter().map(|s| s.to_string()).collect();
            assert_eq!(
                llm.mask_column(&values),
                llm.mask_column_rowwise(&values),
                "{values:?}"
            );
        }
    }

    #[test]
    fn mask_cache_memoizes_per_distinct_value() {
        let llm = GazetteerLlm::new();
        let values: Vec<String> = ["US-1", "US-1", "FR-2", "US-1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        llm.mask_column(&values);
        assert_eq!(llm.mask_cache().len(), 2);
        assert_eq!(llm.mask_cache().stats().misses, 2);
        // A repeat clean re-uses the memo (no growth) and stays identical.
        let again = llm.mask_column(&values);
        assert_eq!(llm.mask_cache().len(), 2);
        assert_eq!(llm.mask_cache().stats().hits, 2);
        assert_eq!(again, llm.mask_column_rowwise(&values));
        llm.mask_cache().clear();
        assert!(llm.mask_cache().is_empty());
        assert_eq!(llm.mask_cache().stats(), MaskCacheStats::default());
    }

    #[test]
    fn mask_cache_capacity_bounds_admissions() {
        // Capacity 1: only the first distinct value is admitted; later
        // values recompute (miss) but results stay correct.
        let llm = GazetteerLlm::with_config(GazetteerLlmConfig {
            mask_cache_capacity: 1,
            ..GazetteerLlmConfig::default()
        });
        assert_eq!(llm.mask_cache().capacity(), 1);
        let values: Vec<String> = ["US-1", "FR-2", "US-1", "FR-2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = llm.mask_column(&values);
        assert_eq!(llm.mask_cache().len(), 1);
        assert_eq!(out, llm.mask_column_rowwise(&values));
    }

    #[test]
    fn ambiguous_span_prefers_earlier_type() {
        // "New York" is city and state; with both supported, city (earlier
        // in ALL) wins.
        let out = mask(&["New York", "Boston", "Chicago", "New York"]);
        assert!(out[0].starts_with("{city("), "{}", out[0]);
    }
}
