//! The gazetteer knowledge base: indexed, fuzzy-matchable semantic forms.
//!
//! This is the knowledge the mock LLM draws on. Lookups support
//! case-insensitive exact matching and bounded-edit-distance fuzzy matching
//! (the mechanism by which the abstraction step can *repair* semantic
//! substrings: `bleu → blue`, `Birminxham → Birmingham`; paper §3.2).

use std::collections::HashMap;

use crate::data::{entries, Entry};
use crate::types::SemanticType;
use datavinci_regex::levenshtein_within;

/// A resolved gazetteer hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Which semantic type matched.
    pub semantic_type: SemanticType,
    /// Entry index within the type.
    pub entry: usize,
    /// Which surface form of the entry matched.
    pub form: usize,
    /// Edit distance of the query to the matched form (0 = exact, case-
    /// insensitively).
    pub distance: usize,
}

impl Hit {
    /// The matched form's canonical spelling.
    pub fn form_text(&self) -> &'static str {
        entries(self.semantic_type)[self.entry].forms[self.form]
    }

    /// A specific form of the hit entry, if the entry has that position.
    pub fn entry_form(&self, form: usize) -> Option<&'static str> {
        entries(self.semantic_type)[self.entry]
            .forms
            .get(form)
            .copied()
    }
}

/// The indexed knowledge base.
#[derive(Debug)]
pub struct Gazetteer {
    /// lowercase form → hits sharing that surface.
    exact: HashMap<String, Vec<Hit>>,
    /// All (lowercase form, hit) pairs for fuzzy scans, grouped by length.
    by_len: Vec<Vec<(String, Hit)>>,
}

/// Fuzzy budget for a query of `len` characters. Short tokens (codes like
/// `US`, `PRO`) only match exactly; longer words tolerate 1–2 edits.
pub fn fuzzy_budget(len: usize) -> usize {
    match len {
        0..=3 => 0,
        4..=7 => 1,
        _ => 2,
    }
}

/// Common alternate surfaces that are not canonical forms: `(alias, type,
/// full name of the target entry)`. Alias hits resolve to the entry's form 0
/// and are then normalized by the column-majority logic (`u.k.` → `GB` in an
/// ISO-2 column, paper Figure 3's second example modulo canonical code).
const ALIASES: &[(&str, SemanticType, &str)] = &[
    ("uk", SemanticType::Country, "United Kingdom"),
    ("america", SemanticType::Country, "United States"),
    ("holland", SemanticType::Country, "Netherlands"),
    ("nyc", SemanticType::City, "New York"),
    ("ny", SemanticType::City, "New York"),
    ("grey", SemanticType::Color, "gray"),
];

impl Gazetteer {
    /// Builds the default gazetteer over all twenty types.
    pub fn new() -> Gazetteer {
        let mut exact: HashMap<String, Vec<Hit>> = HashMap::new();
        let mut by_len: Vec<Vec<(String, Hit)>> = Vec::new();
        for t in SemanticType::ALL {
            for (ei, Entry { forms }) in entries(t).iter().enumerate() {
                for (fi, form) in forms.iter().enumerate() {
                    let lower = form.to_lowercase();
                    let hit = Hit {
                        semantic_type: t,
                        entry: ei,
                        form: fi,
                        distance: 0,
                    };
                    exact.entry(lower.clone()).or_default().push(hit);
                    let len = lower.chars().count();
                    if by_len.len() <= len {
                        by_len.resize(len + 1, Vec::new());
                    }
                    by_len[len].push((lower, hit));
                }
            }
        }
        for (alias, t, full) in ALIASES {
            if let Some(ei) = entries(*t).iter().position(|e| e.forms[0] == *full) {
                exact.entry(alias.to_string()).or_default().push(Hit {
                    semantic_type: *t,
                    entry: ei,
                    form: 0,
                    distance: 0,
                });
            }
        }
        Gazetteer { exact, by_len }
    }

    /// Case-insensitive exact lookup. Multiple hits are possible (e.g.
    /// `New York` is both a city and a state; `May` a month and a name).
    pub fn lookup_exact(&self, query: &str) -> &[Hit] {
        self.exact
            .get(&query.to_lowercase())
            .map_or(&[], Vec::as_slice)
    }

    /// Fuzzy lookup with the length-scaled budget: returns the closest hits
    /// (all tied at minimal distance), or the exact hits at distance 0.
    pub fn lookup_fuzzy(&self, query: &str) -> Vec<Hit> {
        let exact = self.lookup_exact(query);
        if !exact.is_empty() {
            return exact.to_vec();
        }
        let lower = query.to_lowercase();
        let qlen = lower.chars().count();
        let budget = fuzzy_budget(qlen);
        if budget == 0 {
            return Vec::new();
        }
        let mut best = usize::MAX;
        let mut hits: Vec<Hit> = Vec::new();
        let lo = qlen.saturating_sub(budget);
        let hi = qlen + budget;
        for len in lo..=hi.min(self.by_len.len().saturating_sub(1)) {
            for (form, hit) in &self.by_len[len] {
                // Never fuzzy-match against short code forms: an edit on a
                // 2–3 char code is a different code, not a typo.
                if len <= 3 {
                    continue;
                }
                if let Some(d) = levenshtein_within(&lower, form, budget) {
                    if d > 0 && d < best {
                        best = d;
                        hits.clear();
                    }
                    if d > 0 && d == best {
                        hits.push(Hit {
                            distance: d,
                            ..*hit
                        });
                    }
                }
            }
        }
        hits
    }

    /// Fuzzy lookup restricted to one semantic type.
    pub fn lookup_fuzzy_typed(&self, query: &str, t: SemanticType) -> Vec<Hit> {
        self.lookup_fuzzy(query)
            .into_iter()
            .filter(|h| h.semantic_type == t)
            .collect()
    }

    /// All entries for a type (passthrough to the static data).
    pub fn entries(&self, t: SemanticType) -> &'static [Entry] {
        entries(t)
    }
}

impl Default for Gazetteer {
    fn default() -> Self {
        Gazetteer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_lookup_is_case_insensitive() {
        let g = Gazetteer::new();
        let hits = g.lookup_exact("usa");
        assert!(hits
            .iter()
            .any(|h| h.semantic_type == SemanticType::Country && h.form_text() == "USA"));
        let hits = g.lookup_exact("BOSTON");
        assert!(hits.iter().any(|h| h.semantic_type == SemanticType::City));
    }

    #[test]
    fn fuzzy_repairs_typos() {
        let g = Gazetteer::new();
        // bleu → blue (distance 2 ≤ budget 1? "bleu" has 4 chars → budget 1).
        // Transposition costs 2 under plain Levenshtein, so use a clearer
        // case first:
        let hits = g.lookup_fuzzy("Birminxham");
        assert!(hits
            .iter()
            .any(|h| h.form_text() == "Birmingham" && h.distance == 1));
        let hits = g.lookup_fuzzy("Nevad");
        assert!(hits
            .iter()
            .any(|h| h.semantic_type == SemanticType::State && h.form_text() == "Nevada"));
    }

    #[test]
    fn short_codes_never_fuzzy_match() {
        let g = Gazetteer::new();
        assert!(g.lookup_fuzzy("XQ").is_empty());
        // "PR0" (digit zero) must not fuzz onto 3-letter code "PRO".
        assert!(g.lookup_fuzzy("PR0").is_empty());
    }

    #[test]
    fn fuzzy_returns_minimal_distance_ties() {
        let g = Gazetteer::new();
        let hits = g.lookup_fuzzy("Pariss");
        assert!(!hits.is_empty());
        let d = hits[0].distance;
        assert!(hits.iter().all(|h| h.distance == d));
        assert!(hits.iter().any(|h| h.form_text() == "Paris"));
    }

    #[test]
    fn typed_filter() {
        let g = Gazetteer::new();
        // "May" is a month; restrict to FirstName → no hit expected since
        // May is not in our first-name list.
        let hits = g.lookup_fuzzy_typed("May", SemanticType::Month);
        assert!(!hits.is_empty());
        let hits = g.lookup_fuzzy_typed("May", SemanticType::Color);
        assert!(hits.is_empty());
    }

    #[test]
    fn entry_form_access() {
        let g = Gazetteer::new();
        let hit = g.lookup_exact("usa")[0];
        assert_eq!(hit.entry_form(0), Some("United States"));
        assert_eq!(hit.entry_form(1), Some("US"));
        assert_eq!(hit.entry_form(9), None);
    }

    #[test]
    fn ambiguous_surfaces_return_all_types() {
        let g = Gazetteer::new();
        let hits = g.lookup_exact("new york");
        let types: Vec<SemanticType> = hits.iter().map(|h| h.semantic_type).collect();
        assert!(types.contains(&SemanticType::City));
        assert!(types.contains(&SemanticType::State));
    }
}
