//! Sherlock-style semantic column-type detection (stand-in).
//!
//! The paper uses Sherlock \[8\] to pick the 20 most frequent semantic types.
//! At runtime we only need a lightweight column classifier — for deciding
//! whether a column is semantic at all (GPT-sim baseline) and for reports.
//! This stand-in scores each type by the fraction of values containing a
//! gazetteer hit and returns the best-supported type above a threshold.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::gazetteer::Gazetteer;
use crate::spans::candidate_spans;
use crate::types::SemanticType;

/// A detected column type with its support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeDetection {
    /// The detected semantic type.
    pub semantic_type: SemanticType,
    /// Fraction of (non-blank) values supporting the type.
    pub confidence: f64,
}

/// Memoized column-type detections, keyed by `(column, threshold)`.
///
/// Type detection sweeps the gazetteer over every distinct value of a
/// column — expensive enough that a table-scoped analysis session runs it
/// at most once per column and hands the verdict to every later consumer.
/// Thread-safe, like the session that owns it.
#[derive(Debug, Default)]
pub struct ColumnTypeMemo {
    verdicts: Mutex<HashMap<(usize, u64), Option<TypeDetection>>>,
}

impl ColumnTypeMemo {
    /// [`detect_column_type_pooled`] through the memo: the sweep runs only
    /// on the first call for a given `(col, min_confidence)` pair.
    pub fn detect<S: AsRef<str>>(
        &self,
        col: usize,
        distinct: &[S],
        multiplicity: &[usize],
        gaz: &Gazetteer,
        min_confidence: f64,
    ) -> Option<TypeDetection> {
        let key = (col, min_confidence.to_bits());
        if let Some(hit) = self.verdicts.lock().expect("type memo poisoned").get(&key) {
            return *hit;
        }
        let verdict = detect_column_type_pooled(distinct, multiplicity, gaz, min_confidence);
        self.verdicts
            .lock()
            .expect("type memo poisoned")
            .insert(key, verdict);
        verdict
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.verdicts.lock().expect("type memo poisoned").len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Detects the dominant semantic type of a column, if any type reaches
/// `min_confidence` support.
///
/// Interns the column first and scores each *distinct* value once via
/// [`detect_column_type_pooled`] — the per-value gazetteer sweep is the
/// expensive part, and real columns are dominated by duplicates.
pub fn detect_column_type(
    values: &[String],
    gaz: &Gazetteer,
    min_confidence: f64,
) -> Option<TypeDetection> {
    let pool = crate::intern::intern_values(values);
    detect_column_type_pooled(&pool.distinct, &pool.counts, gaz, min_confidence)
}

/// [`detect_column_type`] over pre-interned distinct values.
///
/// `distinct[i]` occurs `multiplicity[i]` times in the column; each distinct
/// value is gazetteer-swept once and its hits weighted by multiplicity, so
/// the detection equals the per-row computation exactly. Callers holding a
/// `datavinci_table::ValuePool` pass its `distinct()`/`counts()` slices.
pub fn detect_column_type_pooled<S: AsRef<str>>(
    distinct: &[S],
    multiplicity: &[usize],
    gaz: &Gazetteer,
    min_confidence: f64,
) -> Option<TypeDetection> {
    assert_eq!(distinct.len(), multiplicity.len(), "one weight per value");
    let mut counts = [0usize; SemanticType::ALL.len()];
    let mut n = 0usize;
    for (v, &w) in distinct.iter().zip(multiplicity) {
        let v = v.as_ref();
        if v.trim().is_empty() {
            continue;
        }
        n += w;
        let mut seen = [false; SemanticType::ALL.len()];
        for span in candidate_spans(v) {
            for hit in gaz.lookup_fuzzy(&span.lookup) {
                let i = SemanticType::ALL
                    .iter()
                    .position(|t| *t == hit.semantic_type)
                    .expect("type in ALL");
                if !seen[i] {
                    seen[i] = true;
                    counts[i] += w;
                }
            }
        }
    }
    if n == 0 {
        return None;
    }
    let (best, &count) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))?;
    let confidence = count as f64 / n as f64;
    (confidence >= min_confidence).then_some(TypeDetection {
        semantic_type: SemanticType::ALL[best],
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detect(values: &[&str]) -> Option<TypeDetection> {
        let gaz = Gazetteer::new();
        detect_column_type(
            &values.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &gaz,
            0.5,
        )
    }

    #[test]
    fn detects_city_column() {
        let d = detect(&["Boston", "Miami", "Chicago", "Seattle"]).unwrap();
        assert_eq!(d.semantic_type, SemanticType::City);
        assert_eq!(d.confidence, 1.0);
    }

    #[test]
    fn detects_embedded_semantics() {
        let d = detect(&["(Boston)", "(Miami)", "(NY"]).unwrap();
        assert_eq!(d.semantic_type, SemanticType::City);
    }

    #[test]
    fn no_detection_for_syntactic_columns() {
        assert!(detect(&["Q1-22", "Q4-21", "Q2-20"]).is_none());
        assert!(detect(&["123", "456", "789"]).is_none());
    }

    #[test]
    fn tolerates_typos() {
        let d = detect(&["Birmingham", "Birminxham", "Manchester", "Liverpool"]).unwrap();
        assert_eq!(d.semantic_type, SemanticType::City);
        assert_eq!(d.confidence, 1.0);
    }

    #[test]
    fn empty_column_none() {
        assert!(detect(&[]).is_none());
        assert!(detect(&["", " "]).is_none());
    }

    #[test]
    fn memo_returns_cached_verdicts() {
        let gaz = Gazetteer::new();
        let memo = ColumnTypeMemo::default();
        let distinct = ["Boston", "Miami"];
        let counts = [2usize, 1];
        assert!(memo.is_empty());
        let first = memo.detect(0, &distinct, &counts, &gaz, 0.5);
        assert_eq!(
            first.map(|d| d.semantic_type),
            Some(SemanticType::City),
            "{first:?}"
        );
        // A second call must come from the memo (same verdict, no growth);
        // a different threshold is its own key.
        assert_eq!(memo.detect(0, &distinct, &counts, &gaz, 0.5), first);
        assert_eq!(memo.len(), 1);
        memo.detect(0, &distinct, &counts, &gaz, 0.9);
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn pooled_detection_matches_rowwise_expansion() {
        // Weighted distinct values vs. the same column written out row by
        // row: identical detection and confidence.
        let gaz = Gazetteer::new();
        let distinct = ["Boston", "x-9", "Miami", ""];
        let counts = [3usize, 2, 1, 2];
        let rows: Vec<String> = distinct
            .iter()
            .zip(&counts)
            .flat_map(|(v, &c)| std::iter::repeat_n(v.to_string(), c))
            .collect();
        for min in [0.1, 0.5, 0.9] {
            assert_eq!(
                detect_column_type_pooled(&distinct, &counts, &gaz, min),
                detect_column_type(&rows, &gaz, min),
                "min_confidence {min}"
            );
        }
    }
}
