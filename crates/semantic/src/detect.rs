//! Sherlock-style semantic column-type detection (stand-in).
//!
//! The paper uses Sherlock \[8\] to pick the 20 most frequent semantic types.
//! At runtime we only need a lightweight column classifier — for deciding
//! whether a column is semantic at all (GPT-sim baseline) and for reports.
//! This stand-in scores each type by the fraction of values containing a
//! gazetteer hit and returns the best-supported type above a threshold.

use crate::gazetteer::Gazetteer;
use crate::spans::candidate_spans;
use crate::types::SemanticType;

/// A detected column type with its support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeDetection {
    /// The detected semantic type.
    pub semantic_type: SemanticType,
    /// Fraction of (non-blank) values supporting the type.
    pub confidence: f64,
}

/// Detects the dominant semantic type of a column, if any type reaches
/// `min_confidence` support.
pub fn detect_column_type(
    values: &[String],
    gaz: &Gazetteer,
    min_confidence: f64,
) -> Option<TypeDetection> {
    let mut counts = [0usize; SemanticType::ALL.len()];
    let mut n = 0usize;
    for v in values {
        if v.trim().is_empty() {
            continue;
        }
        n += 1;
        let mut seen = [false; SemanticType::ALL.len()];
        for span in candidate_spans(v) {
            for hit in gaz.lookup_fuzzy(&span.lookup) {
                let i = SemanticType::ALL
                    .iter()
                    .position(|t| *t == hit.semantic_type)
                    .expect("type in ALL");
                if !seen[i] {
                    seen[i] = true;
                    counts[i] += 1;
                }
            }
        }
    }
    if n == 0 {
        return None;
    }
    let (best, &count) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))?;
    let confidence = count as f64 / n as f64;
    (confidence >= min_confidence).then_some(TypeDetection {
        semantic_type: SemanticType::ALL[best],
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detect(values: &[&str]) -> Option<TypeDetection> {
        let gaz = Gazetteer::new();
        detect_column_type(
            &values.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &gaz,
            0.5,
        )
    }

    #[test]
    fn detects_city_column() {
        let d = detect(&["Boston", "Miami", "Chicago", "Seattle"]).unwrap();
        assert_eq!(d.semantic_type, SemanticType::City);
        assert_eq!(d.confidence, 1.0);
    }

    #[test]
    fn detects_embedded_semantics() {
        let d = detect(&["(Boston)", "(Miami)", "(NY"]).unwrap();
        assert_eq!(d.semantic_type, SemanticType::City);
    }

    #[test]
    fn no_detection_for_syntactic_columns() {
        assert!(detect(&["Q1-22", "Q4-21", "Q2-20"]).is_none());
        assert!(detect(&["123", "456", "789"]).is_none());
    }

    #[test]
    fn tolerates_typos() {
        let d = detect(&["Birmingham", "Birminxham", "Manchester", "Liverpool"]).unwrap();
        assert_eq!(d.semantic_type, SemanticType::City);
        assert_eq!(d.confidence, 1.0);
    }

    #[test]
    fn empty_column_none() {
        assert!(detect(&[]).is_none());
        assert!(detect(&["", " "]).is_none());
    }
}
