//! The end-to-end DataVinci pipeline (paper Figure 2):
//! abstraction ⓪→ significant patterns ① → outlier detection ② →
//! edit programs ③ → value constraints ④ → candidate repairs ⑤ →
//! heuristic ranking ⑥.
//!
//! All table-scoped state — the rendered cell matrix, the generated
//! [`crate::FeatureSet`], row feature vectors, per-column value pools, and
//! the semantic memos — lives on an [`AnalysisSession`] created once per
//! table clean and shared by every column (see [`DataVinci::clean_table`]).
//! The table-taking entry points remain as thin wrappers that open a
//! fresh session per call; they double as the "regenerate per repair"
//! oracle the session paths are differentially tested against.

use std::collections::HashMap;
use std::sync::Arc;

use crate::concretize::Concretizer;
use crate::config::{DataVinciConfig, RankingMode, RepairStrategy, SemanticMode};
use crate::edit::AbstractRepair;
use crate::edit::EditProgram;
use crate::ranker::CandidateProperties;
use crate::repair_dp::minimal_edit_program;
use crate::repair_intersect::minimal_edit_program_product;
use crate::repair_plan::RepairPlan;
use crate::session::AnalysisSession;
use crate::system::{CleaningSystem, Detection, RepairCandidate, RepairSuggestion};
use datavinci_profile::{profile_column_pooled, rescore_profile_pooled, ColumnProfile, MaskedPool};
use datavinci_regex::MaskedString;
use datavinci_semantic::{AbstractedColumn, GazetteerLlm, GazetteerLlmConfig, SemanticAbstractor};
use datavinci_table::{Table, ValuePool};
use datavinci_telemetry::{self as telemetry, stages};

/// Everything DataVinci derives about one column before repairing.
///
/// `Clone` so batch engines can cache a finished analysis and replay it
/// against unchanged column content. The rendered values and interning
/// pool are shared (`Arc`) with the session that produced them, so cloning
/// an analysis never re-renders or re-interns the column.
#[derive(Debug, Clone)]
pub struct ColumnAnalysis {
    /// The analyzed column index.
    pub col: usize,
    /// Rendered cell values, one per row (rendered once per session).
    pub values: Arc<Vec<String>>,
    /// Distinct-value interning of `values` (computed once per session;
    /// the repair planner and cache layers key their sharing on it).
    pub pool: Arc<ValuePool>,
    /// The semantic abstraction (mask occurrences, defaults).
    pub abstraction: AbstractedColumn,
    /// Masked values, one per row.
    pub masked: Vec<MaskedString>,
    /// Learned pattern profile.
    pub profile: ColumnProfile,
    /// Indices (into `profile.patterns`) of significant patterns.
    pub significant: Vec<usize>,
    /// Detected error rows (sorted).
    pub error_rows: Vec<usize>,
    /// Rows flagged purely because the semantic layer normalized their
    /// value (subset of `error_rows`).
    pub semantic_only_rows: Vec<usize>,
}

impl ColumnAnalysis {
    /// Rendered significant patterns (paper notation).
    pub fn significant_patterns(&self) -> Vec<String> {
        self.significant
            .iter()
            .map(|&i| {
                datavinci_regex::render(
                    &self.profile.patterns[i].pattern,
                    &self.abstraction.alphabet,
                )
            })
            .collect()
    }
}

/// The per-column cleaning report.
#[derive(Debug, Clone)]
pub struct ColumnReport {
    /// Column index.
    pub col: usize,
    /// Number of rows analyzed.
    pub n_rows: usize,
    /// Significant patterns, rendered.
    pub significant_patterns: Vec<String>,
    /// Detected errors.
    pub detections: Vec<Detection>,
    /// Repair suggestions (one per detection with a non-identity repair).
    pub repairs: Vec<RepairSuggestion>,
}

impl ColumnReport {
    /// Fraction of cells flagged as errors (the paper's *fire rate*).
    pub fn fire_rate(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.detections.len() as f64 / self.n_rows as f64
        }
    }

    /// An empty report for a skipped column.
    pub fn empty(col: usize, n_rows: usize) -> ColumnReport {
        ColumnReport {
            col,
            n_rows,
            significant_patterns: Vec::new(),
            detections: Vec::new(),
            repairs: Vec::new(),
        }
    }
}

/// A whole-table cleaning report.
#[derive(Debug, Clone, Default)]
pub struct TableReport {
    /// Per-column reports (cleaned columns only).
    pub columns: Vec<ColumnReport>,
}

/// One pattern's precomputed repair for a group of duplicate error values:
/// the minimal edit program's cost/edit stats and its abstract repair.
struct PatternRepair {
    cost: usize,
    alnum: usize,
    repair: AbstractRepair,
}

/// The per-row concretization outcome that keys the planner's candidate
/// memo: for each repairable significant pattern (by index into
/// `analysis.significant`), the filler tuples the concretizer produced.
type Signature = Vec<(usize, Vec<Vec<String>>)>;

/// Lazily built per-group repair state (see
/// [`DataVinci::repair_analysis`]'s planner path).
#[derive(Default)]
struct GroupState {
    /// Per significant pattern: the DP outcome (None = unrepairable), built
    /// at the group's first error row.
    repairs: Option<Vec<Option<PatternRepair>>>,
    /// Every hole of every repairable pattern predicts independently of the
    /// row (constant trees / pooled majorities): the finished candidate
    /// list is shared outright, with no per-row feature lookups.
    invariant: bool,
    /// The shared candidate list, once built (invariant groups only).
    shared: Option<Vec<RepairCandidate>>,
    /// Per significant pattern: fillers → (concretized repair, score).
    filled: Vec<HashMap<Vec<String>, (String, f64)>>,
    /// Finished ranked candidate lists, keyed by filler signature.
    by_signature: HashMap<Signature, Vec<RepairCandidate>>,
}

/// ⑥ Ranks candidates in place: score ascending (ties by repaired string),
/// deduplicated by repaired string, truncated to the top 8. Shared verbatim
/// by the per-row and planner paths so they cannot drift.
fn rank_candidates(out: &mut Vec<RepairCandidate>) {
    let _span = telemetry::span(stages::RANK);
    out.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.repaired.cmp(&b.repaired))
    });
    out.dedup_by(|a, b| a.repaired == b.repaired);
    out.truncate(8);
}

/// The DataVinci system.
pub struct DataVinci {
    cfg: DataVinciConfig,
    abstractor: SemanticAbstractor<GazetteerLlm>,
}

impl Default for DataVinci {
    fn default() -> Self {
        DataVinci::new()
    }
}

impl DataVinci {
    /// DataVinci with default configuration.
    pub fn new() -> DataVinci {
        DataVinci::with_config(DataVinciConfig::default())
    }

    /// DataVinci with explicit configuration (incl. ablations).
    pub fn with_config(cfg: DataVinciConfig) -> DataVinci {
        let llm_cfg = GazetteerLlmConfig {
            repair_in_mask: cfg.semantics != SemanticMode::Limited,
            mask_cache_capacity: cfg.mask_cache_capacity,
            ..GazetteerLlmConfig::default()
        };
        DataVinci {
            cfg,
            abstractor: SemanticAbstractor::new(GazetteerLlm::with_config(llm_cfg)),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DataVinciConfig {
        &self.cfg
    }

    /// The semantic abstractor (shared with the execution-guided path).
    pub(crate) fn abstractor_ref(&self) -> &SemanticAbstractor<GazetteerLlm> {
        &self.abstractor
    }

    /// The system's shared semantic mask-cache handle — the cache sessions
    /// opened via [`DataVinci::session`] share. Exposed so callers
    /// reconstructing a [`crate::SessionSnapshot`] from persisted parts can
    /// wire it to the same cache a live session would use.
    pub fn mask_cache(&self) -> Arc<datavinci_semantic::MaskCache> {
        self.abstractor.model().mask_cache_handle()
    }

    /// Opens a table-scoped [`AnalysisSession`] wired to this system's
    /// shared semantic caches. Create one per table clean and pass it to
    /// the `*_in` entry points; every column then shares one rendered
    /// matrix, one [`crate::FeatureSet`], and one set of memos.
    pub fn session<'t>(&self, table: &'t Table) -> AnalysisSession<'t> {
        AnalysisSession::with_mask_cache(table, self.abstractor.model().mask_cache_handle())
    }

    /// Resumes a detached session snapshot onto `table` (the snapshot's
    /// table plus appended rows), falling back to a fresh session wired to
    /// this system's caches when the snapshot does not fit — the streaming
    /// append path's entry point.
    pub fn resume_session<'t>(
        &self,
        snapshot: crate::SessionSnapshot,
        table: &'t Table,
    ) -> AnalysisSession<'t> {
        match AnalysisSession::resume(snapshot, table) {
            Ok(session) => session,
            Err(_) => self.session(table),
        }
    }

    /// Detects the dominant semantic type of column `col` against this
    /// system's gazetteer, through the session's memos: the column's value
    /// pool is reused and the gazetteer sweep runs at most once per
    /// `(column, threshold)` for the session's lifetime (the CLI's
    /// `--types` report is the primary consumer).
    pub fn column_type_in(
        &self,
        session: &AnalysisSession<'_>,
        col: usize,
        min_confidence: f64,
    ) -> Option<datavinci_semantic::TypeDetection> {
        session.column_type(col, self.abstractor.model().gazetteer(), min_confidence)
    }

    /// Runs abstraction, profiling and detection on one column through a
    /// throwaway single-column session. Prefer [`DataVinci::analyze_column_in`]
    /// when cleaning more than one column of the table.
    pub fn analyze_column(&self, table: &Table, col: usize) -> ColumnAnalysis {
        self.analyze_column_in(&self.session(table), col)
    }

    /// Runs abstraction, profiling and detection on one column, reading all
    /// table-scoped state from the shared session.
    pub fn analyze_column_in(&self, session: &AnalysisSession<'_>, col: usize) -> ColumnAnalysis {
        let column = session.table().column(col).expect("column index in range");
        let values = session.column_values(col);
        let pool = session.value_pool(col);
        let (abstraction, masked) = self.abstract_values(column.name(), &values);
        let profile = {
            let _span = telemetry::span(stages::PROFILE);
            let mpool = MaskedPool::new(&masked);
            profile_column_pooled(&masked, &mpool, &self.cfg.profiler)
        };
        self.detect_with_profile(col, values, pool, abstraction, masked, profile)
    }

    /// Runs abstraction and detection on one column, *reusing* a previously
    /// analyzed prior instead of re-learning patterns from scratch.
    pub fn analyze_column_appended(
        &self,
        table: &Table,
        col: usize,
        prior: &ColumnAnalysis,
    ) -> ColumnAnalysis {
        self.analyze_column_appended_in(&self.session(table), col, prior)
    }

    /// [`DataVinci::analyze_column_appended`] against a shared session.
    ///
    /// The prior's patterns are re-scored (membership + coverage) against
    /// the current column content, so this is sound whenever the prior
    /// still describes the column language — in particular for unchanged or
    /// append-only column content, which batch engines recognize via
    /// [`datavinci_table::Column::fingerprint`]. When the prior's rows are
    /// a prefix of the current column (the append-only case), the prior's
    /// interning pool is *extended* with the appended rows instead of
    /// re-interning the whole column (and the extended pool is installed
    /// into the session for later consumers); otherwise interning restarts
    /// from scratch (the caller's append detection was stale).
    pub fn analyze_column_appended_in(
        &self,
        session: &AnalysisSession<'_>,
        col: usize,
        prior: &ColumnAnalysis,
    ) -> ColumnAnalysis {
        let column = session.table().column(col).expect("column index in range");
        let values = session.column_values(col);
        // A resumed session ([`AnalysisSession::resume`]) already carries
        // the pool extended over the appended rows — re-extending `prior`'s
        // would redo the merge it just did.
        let pool = if let Some(cached) = session.cached_pool(col) {
            cached
        } else if values.len() >= prior.values.len()
            && values[..prior.values.len()] == prior.values[..]
        {
            let extended = Arc::new(prior.pool.extended(&values[prior.values.len()..]));
            session.install_pool(col, Arc::clone(&extended));
            extended
        } else {
            session.value_pool(col)
        };
        let (abstraction, masked) = self.abstract_values(column.name(), &values);
        let profile = {
            let _span = telemetry::span(stages::PROFILE);
            let mpool = MaskedPool::new(&masked);
            rescore_profile_pooled(&prior.profile, &masked, &mpool)
        };
        self.detect_with_profile(col, values, pool, abstraction, masked, profile)
    }

    /// ⓪ Abstraction: semantic abstraction + masked strings over rendered
    /// values.
    fn abstract_values(
        &self,
        column_name: &str,
        values: &[String],
    ) -> (AbstractedColumn, Vec<MaskedString>) {
        let _span = telemetry::span(stages::MASK);
        let abstraction = match self.cfg.semantics {
            SemanticMode::None => AbstractedColumn::plain(values),
            SemanticMode::Full | SemanticMode::Limited => {
                self.abstractor.abstract_column(column_name, values)
            }
        };
        let masked = abstraction.masked_strings();
        (abstraction, masked)
    }

    /// ①–② Significance + detection over a finished profile.
    fn detect_with_profile(
        &self,
        col: usize,
        values: Arc<Vec<String>>,
        pool: Arc<ValuePool>,
        abstraction: AbstractedColumn,
        masked: Vec<MaskedString>,
        profile: ColumnProfile,
    ) -> ColumnAnalysis {
        let _span = telemetry::span(stages::DETECT);
        let significant: Vec<usize> = (0..profile.patterns.len())
            .filter(|&i| profile.patterns[i].coverage >= self.cfg.delta)
            .collect();

        // ② Values outside the union of significant patterns are errors.
        let mut error_rows: Vec<usize> = Vec::new();
        if !significant.is_empty() {
            for row in 0..values.len() {
                let covered = significant
                    .iter()
                    .any(|&i| profile.patterns[i].rows.binary_search(&row).is_ok());
                if !covered {
                    error_rows.push(row);
                }
            }
        }
        // Semantic-only errors: the abstraction normalized the value (e.g.
        // `Birminxham` → `Birmingham`); surface these even when the masked
        // shape satisfies a significant pattern.
        let mut semantic_only_rows = Vec::new();
        if self.cfg.semantics == SemanticMode::Full && !significant.is_empty() {
            // The syntactic prefix is sorted; rows appended below must not
            // be searched (they would break the sort mid-loop).
            let syntactic = error_rows.len();
            // The normalization verdict is a pure function of (value,
            // abstraction), so it is computed once per distinct value and
            // shared across duplicate rows; rows whose abstraction differs
            // despite an equal value (prompt batches can disagree) get
            // their own verdict.
            let mut verdicts: Vec<Vec<(usize, bool)>> = vec![Vec::new(); pool.n_distinct()];
            for row in 0..values.len() {
                if error_rows[..syntactic].binary_search(&row).is_ok() {
                    continue;
                }
                let di = pool.distinct_index(row);
                let cached = verdicts[di]
                    .iter()
                    .find(|&&(rep, _)| abstraction.values[rep] == abstraction.values[row])
                    .map(|&(_, v)| v);
                let normalized = match cached {
                    Some(v) => v,
                    None => {
                        let v = abstraction.concretize(row, &masked[row]) != values[row];
                        verdicts[di].push((row, v));
                        v
                    }
                };
                if normalized {
                    semantic_only_rows.push(row);
                    error_rows.push(row);
                }
            }
            error_rows.sort_unstable();
        }

        ColumnAnalysis {
            col,
            values,
            pool,
            abstraction,
            masked,
            profile,
            significant,
            error_rows,
            semantic_only_rows,
        }
    }

    /// Detects and repairs one column through a throwaway session. Prefer
    /// [`DataVinci::clean_column_in`] when cleaning more than one column.
    pub fn clean_column(&self, table: &Table, col: usize) -> ColumnReport {
        let session = self.session(table);
        self.clean_column_in(&session, col)
    }

    /// Detects and repairs one column against a shared session.
    pub fn clean_column_in(&self, session: &AnalysisSession<'_>, col: usize) -> ColumnReport {
        let analysis = self.analyze_column_in(session, col);
        self.repair_analysis_in(session, &analysis)
    }

    /// Repairs the errors of a finished analysis through a throwaway
    /// session (regenerating the table context — the pre-session oracle;
    /// batch callers use [`DataVinci::repair_analysis_in`]).
    pub fn repair_analysis(&self, table: &Table, analysis: &ColumnAnalysis) -> ColumnReport {
        let session = self.session(table);
        self.repair_analysis_in(&session, analysis)
    }

    /// Repairs the errors of a finished analysis.
    ///
    /// Public so batch engines (and the execution-guided path) can replay a
    /// cached or reused [`ColumnAnalysis`] without re-abstracting the
    /// column; the analysis's own rendered `values` are reused throughout,
    /// and the concretizer borrows the session's shared feature context.
    ///
    /// Dispatches on [`DataVinciConfig::repair_strategy`]: the distinct-value
    /// planner by default, the per-row reference loop, or the planner with
    /// product-automaton edit search. All produce byte-identical reports.
    pub fn repair_analysis_in(
        &self,
        session: &AnalysisSession<'_>,
        analysis: &ColumnAnalysis,
    ) -> ColumnReport {
        let _span = telemetry::span(stages::REPAIR);
        match self.cfg.repair_strategy {
            RepairStrategy::Planner | RepairStrategy::Intersect => {
                self.repair_analysis_planned(session, analysis)
            }
            RepairStrategy::RowWise => self.repair_analysis_rowwise(session, analysis),
        }
    }

    /// One minimal-edit-program search, routed per
    /// [`DataVinciConfig::repair_strategy`]: the unbounded DP, or the
    /// bounded pattern × edit-automaton product (which returns the
    /// identical program and additionally reports exploration counters
    /// under `stage.repair`).
    fn edit_program_for(
        &self,
        dag: &datavinci_regex::Dag,
        value: &MaskedString,
    ) -> Option<EditProgram> {
        if self.cfg.repair_strategy == RepairStrategy::Intersect {
            let (program, stats) = minimal_edit_program_product(dag, value, &self.cfg.intersect);
            telemetry::counter("repair.product_runs", 1);
            telemetry::counter("repair.product_states", stats.states_explored);
            if stats.fell_back {
                telemetry::counter("repair.product_fallbacks", 1);
            }
            program
        } else {
            minimal_edit_program(dag, value)
        }
    }

    /// The report skeleton plus the trained concretizer and borrowed clean
    /// values — the prologue both repair strategies share.
    fn repair_prologue<'s, 't>(
        &'s self,
        session: &'s AnalysisSession<'t>,
        analysis: &'s ColumnAnalysis,
    ) -> (ColumnReport, Vec<&'s str>, Concretizer<'s, 't>) {
        let values = &analysis.values;
        let report = ColumnReport {
            col: analysis.col,
            n_rows: values.len(),
            significant_patterns: analysis.significant_patterns(),
            detections: Vec::new(),
            repairs: Vec::new(),
        };

        // Non-error values, for the ranker's closest-value property
        // (`error_rows` is sorted; borrow instead of cloning each value).
        let clean_values: Vec<&str> = (0..values.len())
            .filter(|r| analysis.error_rows.binary_search(r).is_err())
            .map(|r| values[r].as_str())
            .collect();

        let mut concretizer = Concretizer::new(session, &self.cfg);
        for &pi in &analysis.significant {
            let lp = &analysis.profile.patterns[pi];
            let training_rows: Vec<usize> = lp
                .rows
                .iter()
                .copied()
                .filter(|r| analysis.error_rows.binary_search(r).is_err())
                .collect();
            concretizer.train_pattern(pi, lp, &training_rows, &analysis.masked);
        }
        (report, clean_values, concretizer)
    }

    /// The per-row reference implementation of
    /// [`DataVinci::repair_analysis_in`]: every error row runs the full
    /// ③–⑥ path independently. Kept as the differential oracle the planner
    /// is proven against.
    fn repair_analysis_rowwise(
        &self,
        session: &AnalysisSession<'_>,
        analysis: &ColumnAnalysis,
    ) -> ColumnReport {
        if analysis.significant.is_empty() || analysis.error_rows.is_empty() {
            return ColumnReport {
                col: analysis.col,
                n_rows: analysis.values.len(),
                significant_patterns: analysis.significant_patterns(),
                detections: Vec::new(),
                repairs: Vec::new(),
            };
        }
        let values = &analysis.values;
        let (mut report, clean_values, mut concretizer) = self.repair_prologue(session, analysis);

        for &row in &analysis.error_rows {
            report.detections.push(Detection {
                row,
                value: values[row].clone(),
            });
            let candidates =
                self.candidates_for_row(analysis, &mut concretizer, row, &clean_values);
            if let Some(best) = candidates.first() {
                if best.repaired != values[row] {
                    report.repairs.push(RepairSuggestion {
                        row,
                        original: values[row].clone(),
                        repaired: best.repaired.clone(),
                        candidates,
                    });
                }
            }
        }
        report
    }

    /// The distinct-value planner: error rows are grouped by value (and
    /// abstraction) via [`RepairPlan`]; each group runs the repair DP and
    /// abstract-repair construction once, and concretized candidates,
    /// ranking measurements, and finished candidate lists are memoized at
    /// group scope. Only the decision-tree hole predictions — which read
    /// the *row's* cross-column features — run per row, and rows whose
    /// predictions agree share the entire ranked list.
    fn repair_analysis_planned(
        &self,
        session: &AnalysisSession<'_>,
        analysis: &ColumnAnalysis,
    ) -> ColumnReport {
        if analysis.significant.is_empty() || analysis.error_rows.is_empty() {
            return ColumnReport {
                col: analysis.col,
                n_rows: analysis.values.len(),
                significant_patterns: analysis.significant_patterns(),
                detections: Vec::new(),
                repairs: Vec::new(),
            };
        }
        let values = &analysis.values;
        let (mut report, clean_values, mut concretizer) = self.repair_prologue(session, analysis);

        // Pattern renderings, once per pattern instead of once per
        // candidate (aligned with `analysis.significant`).
        let provenance: Vec<String> = analysis
            .significant
            .iter()
            .map(|&pi| {
                datavinci_regex::render(
                    &analysis.profile.patterns[pi].pattern,
                    &analysis.abstraction.alphabet,
                )
            })
            .collect();

        let plan = RepairPlan::build_in(analysis, session);
        telemetry::counter("repair.plan_groups", plan.groups().len() as u64);
        telemetry::counter("repair.plan_error_rows", analysis.error_rows.len() as u64);
        let mut states: Vec<GroupState> = plan
            .groups()
            .iter()
            .map(|_| GroupState::default())
            .collect();

        for (i, &row) in analysis.error_rows.iter().enumerate() {
            report.detections.push(Detection {
                row,
                value: values[row].clone(),
            });
            let g = plan.group_of_error(i);
            let rep = plan.groups()[g].representative();

            // Singleton groups have nothing to share: run the reference
            // row path directly (identical by construction) and skip the
            // memo bookkeeping, so the planner costs nothing on
            // all-distinct columns.
            if plan.groups()[g].rows.len() == 1 {
                let candidates =
                    self.candidates_for_row(analysis, &mut concretizer, row, &clean_values);
                if let Some(best) = candidates.first() {
                    if best.repaired != values[row] {
                        report.repairs.push(RepairSuggestion {
                            row,
                            original: values[row].clone(),
                            repaired: best.repaired.clone(),
                            candidates,
                        });
                    }
                }
                continue;
            }
            let state = &mut states[g];

            // ③ Once per group: minimal edit programs against every
            // significant pattern, their abstract repairs and edit stats.
            if state.repairs.is_none() {
                telemetry::counter("repair.dp_runs", analysis.significant.len() as u64);
                let value = &analysis.masked[rep];
                let repairs: Vec<Option<PatternRepair>> = analysis
                    .significant
                    .iter()
                    .map(|&pi| {
                        let lp = &analysis.profile.patterns[pi];
                        let dag = lp.compiled.dag_for_len(value.len());
                        self.edit_program_for(&dag, value)
                            .map(|program| PatternRepair {
                                cost: program.cost,
                                alnum: program.alnum_edits(value),
                                repair: program.apply(value),
                            })
                    })
                    .collect();
                state.invariant = repairs.iter().enumerate().all(|(si, pr)| {
                    pr.as_ref().is_none_or(|pr| {
                        concretizer.predictions_row_invariant(analysis.significant[si], &pr.repair)
                    })
                });
                state.filled = vec![HashMap::new(); analysis.significant.len()];
                state.repairs = Some(repairs);
            }
            // Row-invariant groups share the finished list outright.
            if let Some(shared) = (state.invariant).then(|| state.shared.clone()).flatten() {
                if let Some(best) = shared.first() {
                    if best.repaired != values[row] {
                        report.repairs.push(RepairSuggestion {
                            row,
                            original: values[row].clone(),
                            repaired: best.repaired.clone(),
                            candidates: shared,
                        });
                    }
                }
                continue;
            }
            let GroupState {
                repairs,
                filled,
                by_signature,
                ..
            } = state;
            let repairs = repairs.as_ref().expect("built above");

            // ④ Per row: concretization fillers (the trees read this row's
            // features). The filler signature keys the candidate memo.
            let mut signature: Signature = Vec::new();
            for (si, pr) in repairs.iter().enumerate() {
                let Some(pr) = pr else { continue };
                let pi = analysis.significant[si];
                signature.push((si, concretizer.fillers(pi, row, &pr.repair)));
            }

            // ⑤–⑥ Once per distinct signature: concretize, measure, rank.
            let candidates = match by_signature.get(&signature) {
                Some(cached) => cached.clone(),
                None => {
                    let original = values[rep].as_str();
                    let mut out: Vec<RepairCandidate> = Vec::new();
                    for (si, tuples) in &signature {
                        let pr = repairs[*si].as_ref().expect("signature lists repairables");
                        let lp = &analysis.profile.patterns[analysis.significant[*si]];
                        for fillers in tuples {
                            let (repaired, score) = match filled[*si].get(fillers) {
                                Some(hit) => hit.clone(),
                                None => {
                                    let repaired_masked = pr.repair.fill(fillers);
                                    let repaired =
                                        analysis.abstraction.concretize(rep, &repaired_masked);
                                    let props = CandidateProperties::measure(
                                        original,
                                        &repaired,
                                        pr.alnum,
                                        lp.coverage,
                                        &clean_values,
                                    );
                                    let score = match self.cfg.ranking {
                                        RankingMode::Heuristic => {
                                            props.heuristic_score(&self.cfg.weights)
                                        }
                                        RankingMode::EditDistance => props.edit_distance_score(),
                                    };
                                    filled[*si].insert(fillers.clone(), (repaired.clone(), score));
                                    (repaired, score)
                                }
                            };
                            out.push(RepairCandidate {
                                repaired,
                                cost: pr.cost,
                                score,
                                provenance: provenance[*si].clone(),
                            });
                        }
                    }
                    rank_candidates(&mut out);
                    by_signature.insert(signature, out.clone());
                    out
                }
            };
            let state = &mut states[g];
            if state.invariant && state.shared.is_none() {
                state.shared = Some(candidates.clone());
            }

            if let Some(best) = candidates.first() {
                if best.repaired != values[row] {
                    report.repairs.push(RepairSuggestion {
                        row,
                        original: values[row].clone(),
                        repaired: best.repaired.clone(),
                        candidates,
                    });
                }
            }
        }
        report
    }

    /// ③–⑥ for one error row: edit programs against every significant
    /// pattern, concretization, ranking.
    fn candidates_for_row(
        &self,
        analysis: &ColumnAnalysis,
        concretizer: &mut Concretizer<'_, '_>,
        row: usize,
        clean_values: &[&str],
    ) -> Vec<RepairCandidate> {
        let original = analysis.values[row].as_str();
        let value = &analysis.masked[row];
        telemetry::counter("repair.dp_runs", analysis.significant.len() as u64);
        let mut out: Vec<RepairCandidate> = Vec::new();
        for &pi in &analysis.significant {
            let lp = &analysis.profile.patterns[pi];
            let dag = lp.compiled.dag_for_len(value.len());
            let Some(program) = self.edit_program_for(&dag, value) else {
                continue;
            };
            let abstract_repair = program.apply(value);
            let alnum = program.alnum_edits(value);
            for fillers in concretizer.fillers(pi, row, &abstract_repair) {
                let repaired_masked = abstract_repair.fill(&fillers);
                let repaired = analysis.abstraction.concretize(row, &repaired_masked);
                let props = CandidateProperties::measure(
                    original,
                    &repaired,
                    alnum,
                    lp.coverage,
                    clean_values,
                );
                let score = match self.cfg.ranking {
                    RankingMode::Heuristic => props.heuristic_score(&self.cfg.weights),
                    RankingMode::EditDistance => props.edit_distance_score(),
                };
                out.push(RepairCandidate {
                    repaired,
                    cost: program.cost,
                    score,
                    provenance: datavinci_regex::render(
                        &lp.pattern,
                        &analysis.abstraction.alphabet,
                    ),
                });
            }
        }
        rank_candidates(&mut out);
        out
    }

    /// Cleans every sufficiently-textual column of a table through one
    /// shared [`AnalysisSession`] — the rendered matrix, feature set, and
    /// row feature vectors are built at most once for the whole table.
    pub fn clean_table(&self, table: &Table) -> TableReport {
        let session = self.session(table);
        self.clean_table_in(&session)
    }

    /// [`DataVinci::clean_table`] against a caller-owned session, so the
    /// caller can read [`AnalysisSession::stats`] afterwards (session reuse
    /// telemetry) or share the session further.
    pub fn clean_table_in(&self, session: &AnalysisSession<'_>) -> TableReport {
        let table = session.table();
        let mut report = TableReport::default();
        for col in 0..table.n_cols() {
            let column = table.column(col).expect("in range");
            if column.text_fraction() < self.cfg.min_text_fraction {
                continue;
            }
            report.columns.push(self.clean_column_in(session, col));
        }
        report
    }
}

impl CleaningSystem for DataVinci {
    fn name(&self) -> &'static str {
        "DataVinci"
    }

    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        self.clean_column(table, col).detections
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        self.clean_column(table, col).repairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    fn figure2_table() -> Table {
        Table::new(vec![
            Column::from_texts(
                "Category",
                &[
                    "Professional",
                    "Professional",
                    "Professional",
                    "Qualifier",
                    "Qualifier",
                    "Professional",
                ],
            ),
            Column::from_texts(
                "Player ID",
                &[
                    "IN-674-PRO",
                    "usa_837",
                    "DZ-173-PRO",
                    "US-201-QUA",
                    "CN-924-QUA",
                    "FR-475-PRO",
                ],
            ),
        ])
    }

    #[test]
    fn figure2_end_to_end() {
        // The flagship walk-through: usa_837 → US-837-PRO.
        let dv = DataVinci::new();
        let report = dv.clean_column(&figure2_table(), 1);
        assert_eq!(report.detections.len(), 1, "{report:#?}");
        assert_eq!(report.detections[0].value, "usa_837");
        assert_eq!(report.repairs.len(), 1);
        let repair = &report.repairs[0];
        assert_eq!(repair.repaired, "US-837-PRO", "{repair:#?}");
        // The significant pattern is the masked mixed pattern.
        assert!(
            report
                .significant_patterns
                .iter()
                .any(|p| p.contains("{Country}") && p.contains("(PRO|QUA)")),
            "{:?}",
            report.significant_patterns
        );
    }

    #[test]
    fn no_significant_patterns_means_no_errors() {
        // Figure 6 ②: irregular data → nothing detected.
        let table = Table::new(vec![Column::from_texts(
            "irregular",
            &[
                "a-1", "Q999", "x.y.z", "42%", "?", "<<>>", "", "~~", "b@c", "zz top",
            ],
        )]);
        let dv = DataVinci::new();
        let report = dv.clean_column(&table, 0);
        assert!(report.detections.is_empty(), "{report:#?}");
    }

    #[test]
    fn frequent_outlier_pattern_is_not_detected() {
        // Figure 6 ① / Figure 8: C51-style values covered by a significant
        // pattern are invisible to unsupervised DataVinci.
        let table = Table::new(vec![Column::from_texts(
            "id",
            &["C-19", "C-21", "C-33", "C-48", "C51", "C52", "C53", "C54"],
        )]);
        let dv = DataVinci::new();
        let report = dv.clean_column(&table, 0);
        assert!(report.detections.is_empty(), "{report:#?}");
    }

    #[test]
    fn syntactic_quarter_repair() {
        // §3.2 granularity example: Q32001 → Q3-2001.
        let table = Table::new(vec![Column::from_texts(
            "Quarter",
            &["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q32001"],
        )]);
        let dv = DataVinci::new();
        let report = dv.clean_column(&table, 0);
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.repairs.len(), 1);
        assert_eq!(report.repairs[0].repaired, "Q3-2001", "{report:#?}");
    }

    #[test]
    fn semantic_only_error_detected_and_repaired() {
        let table = Table::new(vec![Column::from_texts(
            "City",
            &["Boston", "Miami", "Birminxham", "Chicago", "Seattle"],
        )]);
        let dv = DataVinci::new();
        let report = dv.clean_column(&table, 0);
        assert_eq!(report.detections.len(), 1, "{report:#?}");
        assert_eq!(report.repairs[0].original, "Birminxham");
        assert_eq!(report.repairs[0].repaired, "Birmingham");
    }

    #[test]
    fn example1_color_column() {
        // [red 1, dark green 2, blue phone 3]: "phone" must be deleted.
        let table = Table::new(vec![Column::from_texts(
            "c",
            &["red 1", "dark green 2", "blue phone 3", "white 4", "navy 5"],
        )]);
        let dv = DataVinci::new();
        let report = dv.clean_column(&table, 0);
        assert_eq!(report.detections.len(), 1, "{report:#?}");
        assert_eq!(report.detections[0].value, "blue phone 3");
        assert_eq!(report.repairs[0].repaired, "blue 3", "{report:#?}");
    }

    #[test]
    fn clean_table_skips_numeric_columns() {
        let table = Table::new(vec![
            Column::parse("nums", &["1", "2", "3", "4"]),
            Column::from_texts("ids", &["a-1", "a-2", "a-3", "a9"]),
        ]);
        let dv = DataVinci::new();
        let report = dv.clean_table(&table);
        assert_eq!(report.columns.len(), 1);
        assert_eq!(report.columns[0].col, 1);
    }

    #[test]
    fn fire_rate() {
        let r = ColumnReport {
            col: 0,
            n_rows: 10,
            significant_patterns: vec![],
            detections: vec![
                Detection {
                    row: 1,
                    value: "x".into(),
                },
                Detection {
                    row: 2,
                    value: "y".into(),
                },
            ],
            repairs: vec![],
        };
        assert!((r.fire_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn no_semantics_ablation_misses_semantic_repair() {
        let dv = DataVinci::with_config(DataVinciConfig::ablation_no_semantics());
        let report = dv.clean_column(&figure2_table(), 1);
        // Without masking the column becomes irregular enough that the
        // correct mixed repair is unreachable; the suggestion (if any)
        // must differ from the semantic ground truth.
        let got = report
            .repairs
            .iter()
            .find(|r| r.original == "usa_837")
            .map(|r| r.repaired.clone());
        assert_ne!(got.as_deref(), Some("US-837-PRO"), "{report:#?}");
    }
}
