//! Common interfaces shared by DataVinci and the baseline systems.

use datavinci_table::Table;

/// A detected data error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Row index within the target column.
    pub row: usize,
    /// The erroneous value as rendered text.
    pub value: String,
}

/// One scored repair candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairCandidate {
    /// The repaired value.
    pub repaired: String,
    /// Edit-program cost (when applicable; heuristic systems report 0).
    pub cost: usize,
    /// Ranker score (lower is better).
    pub score: f64,
    /// The pattern (or rule) that produced the candidate, rendered.
    pub provenance: String,
}

/// A repair suggestion for one detected error.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairSuggestion {
    /// Row index.
    pub row: usize,
    /// The original erroneous value.
    pub original: String,
    /// The top-ranked repaired value.
    pub repaired: String,
    /// All scored candidates, best first (possibly truncated).
    pub candidates: Vec<RepairCandidate>,
}

/// A detection-and-repair system, the interface every evaluated system
/// implements (Table 4).
pub trait CleaningSystem {
    /// System name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Detects data errors in one column.
    fn detect(&self, table: &Table, col: usize) -> Vec<Detection>;

    /// Detects and repairs: returns one suggestion per detected error.
    /// Detection-only systems return suggestions equal to the original
    /// value (the harness pairs them with a repair head instead).
    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion>;
}

impl<S: CleaningSystem + ?Sized> CleaningSystem for &S {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        (**self).detect(table, col)
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        (**self).repair(table, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let d = Detection {
            row: 3,
            value: "usa_837".into(),
        };
        assert_eq!(d.row, 3);
        let s = RepairSuggestion {
            row: 3,
            original: "usa_837".into(),
            repaired: "US-837-PRO".into(),
            candidates: vec![],
        };
        assert_ne!(s.original, s.repaired);
    }
}
