//! Concretizing abstract edit actions with learned value constraints
//! (paper §3.4).
//!
//! For every character class / string disjunction the abstract repair must
//! emit, we learn a decision tree from rows whose value matches the
//! significant pattern: features are Table-2 predicates over all columns,
//! labels are the concrete character/alternative the matching path consumed
//! on that atom occurrence (Example 5). At repair time the tree predicts
//! the filler from the *error row's* features (Figure 2's `{CAT1}` ↔
//! Category-column constraint). Fallbacks: pooled-occurrence majority, then
//! the class representative / first alternative.
//!
//! The concretizer reads all table-scoped state — the [`FeatureSet`],
//! row feature vectors, table-level row interning — from the shared
//! [`AnalysisSession`], so every column of a table (and both repair
//! strategies) work from one generated context. Decision trees are induced
//! over *distinct* row feature vectors weighted by multiplicity
//! ([`crate::dtree::learn_weighted`]), byte-identical to per-row expansion.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use crate::config::DataVinciConfig;
use crate::dtree::{learn_weighted, DecisionTree};
use crate::edit::{AbstractRepair, Emit};
use crate::features::FeatureSet;
use crate::session::AnalysisSession;
use datavinci_profile::LearnedPattern;
use datavinci_regex::{AtomId, AtomKey, MaskedString};

/// Training data and learned trees for one significant pattern.
#[derive(Debug, Default)]
struct PatternTraining {
    /// (atom occurrence) → (row, consumed text) examples.
    examples: HashMap<AtomKey, Vec<(usize, String)>>,
    /// Pooled per-atom examples (all occurrences).
    pooled: HashMap<AtomId, Vec<(usize, String)>>,
    /// Learned trees (lazily), keyed by atom occurrence; `None` caches a
    /// failed learn.
    trees: HashMap<AtomKey, Option<(DecisionTree, Vec<String>)>>,
}

/// The concretization engine for one column repair, reading its table-wide
/// context (features, row vectors) from a shared [`AnalysisSession`].
pub struct Concretizer<'s, 't> {
    session: &'s AnalysisSession<'t>,
    cfg: &'s DataVinciConfig,
    /// Per-pattern training state, keyed by caller-provided pattern index.
    training: HashMap<usize, PatternTraining>,
}

impl<'s, 't> Concretizer<'s, 't> {
    /// Builds the engine over a session's shared table context. The feature
    /// set is *not* regenerated here — the session generates it at most
    /// once per table and every concretizer borrows it.
    pub fn new(session: &'s AnalysisSession<'t>, cfg: &'s DataVinciConfig) -> Concretizer<'s, 't> {
        Concretizer {
            session,
            cfg,
            training: HashMap::new(),
        }
    }

    /// The session's feature set (for reports/tests).
    pub fn features(&self) -> &FeatureSet {
        self.session.features()
    }

    /// Registers training data for a pattern: bindings of every matching
    /// (non-error) row. `rows` are table-row indices; `masked` is the full
    /// masked column.
    ///
    /// Bindings are a pure function of the masked value, so the matching
    /// walk runs once per *distinct* training value and duplicate rows
    /// share its result — the training-side half of the distinct-value
    /// repair planner.
    pub fn train_pattern(
        &mut self,
        pattern_idx: usize,
        pattern: &LearnedPattern,
        rows: &[usize],
        masked: &[MaskedString],
    ) {
        if self.training.contains_key(&pattern_idx) {
            return;
        }
        let mut t = PatternTraining::default();
        let mut by_value: HashMap<&MaskedString, Option<Vec<(AtomKey, String)>>> = HashMap::new();
        for &row in rows {
            let Some(value) = masked.get(row) else {
                continue;
            };
            let items = by_value.entry(value).or_insert_with(|| {
                pattern.compiled.bindings(value).map(|b| {
                    b.items
                        .into_iter()
                        .map(|item| (item.key, item.text))
                        .collect()
                })
            });
            let Some(items) = items else {
                continue;
            };
            for (key, text) in items.iter() {
                t.examples
                    .entry(*key)
                    .or_default()
                    .push((row, text.clone()));
                t.pooled
                    .entry(key.atom)
                    .or_default()
                    .push((row, text.clone()));
            }
        }
        self.training.insert(pattern_idx, t);
    }

    /// Produces filler tuples for the repair's fillable holes.
    ///
    /// With learned concretization: one tuple (tree/majority predictions).
    /// Without (§5.4.2 ablation): the capped cross-product of observed
    /// candidate values per hole, for the ranker to sort.
    pub fn fillers(
        &mut self,
        pattern_idx: usize,
        error_row: usize,
        repair: &AbstractRepair,
    ) -> Vec<Vec<String>> {
        let holes: Vec<Emit> = repair.fillable_holes().into_iter().cloned().collect();
        if holes.is_empty() {
            return vec![Vec::new()];
        }
        if self.cfg.learned_concretization {
            let tuple: Vec<String> = holes
                .iter()
                .map(|h| self.predict_hole(pattern_idx, error_row, h))
                .collect();
            vec![tuple]
        } else {
            let per_hole: Vec<Vec<String>> = holes
                .iter()
                .map(|h| self.enumerate_hole(pattern_idx, h))
                .collect();
            cross_product(&per_hole, self.cfg.max_enumerated_candidates)
        }
    }

    /// Predicts one hole's filler via tree → pooled majority → default.
    fn predict_hole(&mut self, pattern_idx: usize, error_row: usize, hole: &Emit) -> String {
        let key = hole_key(hole);
        if let Some(prediction) = self.tree_prediction(pattern_idx, error_row, key) {
            if filler_valid(hole, &prediction) {
                return prediction;
            }
        }
        if let Some(majority) = self.pooled_majority(pattern_idx, key.atom) {
            if filler_valid(hole, &majority) {
                return majority;
            }
        }
        default_filler(hole)
    }

    /// Learns (or fetches) the tree for one atom occurrence, returning the
    /// cached slot.
    fn ensure_tree(
        &mut self,
        pattern_idx: usize,
        key: AtomKey,
    ) -> Option<&Option<(DecisionTree, Vec<String>)>> {
        let training = self.training.get_mut(&pattern_idx)?;
        if !training.trees.contains_key(&key) {
            let examples = training.examples.get(&key).map_or(&[][..], Vec::as_slice);
            let learned = learn_tree(examples, self.session, self.cfg);
            training.trees.insert(key, learned);
        }
        self.training.get(&pattern_idx)?.trees.get(&key)
    }

    /// True when every fillable hole of `repair` predicts independently of
    /// the error row: its tree is absent (pooled-majority fallback) or a
    /// constant leaf. The repair planner then computes one filler tuple for
    /// a whole group of duplicate error values, skipping the per-row
    /// feature lookups entirely. (Enumeration mode never reads row
    /// features, so it is always invariant.)
    pub fn predictions_row_invariant(
        &mut self,
        pattern_idx: usize,
        repair: &AbstractRepair,
    ) -> bool {
        if !self.cfg.learned_concretization {
            return true;
        }
        let holes: Vec<AtomKey> = repair.fillable_holes().into_iter().map(hole_key).collect();
        holes.into_iter().all(|key| {
            !matches!(
                self.ensure_tree(pattern_idx, key),
                Some(Some((DecisionTree::Split { .. }, _)))
            )
        })
    }

    fn tree_prediction(
        &mut self,
        pattern_idx: usize,
        error_row: usize,
        key: AtomKey,
    ) -> Option<String> {
        // One map lookup serves both the learn-miss check and the
        // prediction, and the hot path borrows the cached tree/labels/
        // features instead of cloning them per hole.
        self.ensure_tree(pattern_idx, key);
        let training = self.training.get(&pattern_idx)?;
        let (tree, labels) = training.trees.get(&key)?.as_ref()?;
        // Constant trees predict the same label for every row — skip the
        // (cross-column) feature computation entirely. This makes the
        // common duplicate-heavy case row-independent, which the repair
        // planner's signature memo then collapses across a whole group.
        if let DecisionTree::Leaf(label) = tree {
            return labels.get(*label as usize).cloned();
        }
        let f = self.session.row_features(error_row);
        let label = tree.predict(&f) as usize;
        labels.get(label).cloned()
    }

    fn pooled_majority(&self, pattern_idx: usize, atom: AtomId) -> Option<String> {
        let pooled = self.training.get(&pattern_idx)?.pooled.get(&atom)?;
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for (_, t) in pooled {
            *counts.entry(t.as_str()).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(t, c)| (c, std::cmp::Reverse(t)))
            .map(|(t, _)| t.to_string())
    }

    /// Candidate fillers for the enumeration ablation: distinct observed
    /// values for the occurrence, else pooled, else the default.
    fn enumerate_hole(&self, pattern_idx: usize, hole: &Emit) -> Vec<String> {
        let key = hole_key(hole);
        let observed: Vec<String> = self
            .training
            .get(&pattern_idx)
            .map(|t| {
                let source = t.examples.get(&key).map(|v| v.as_slice()).unwrap_or(&[]);
                let mut texts: Vec<String> = source.iter().map(|(_, t)| t.clone()).collect();
                if texts.is_empty() {
                    if let Some(pooled) = t.pooled.get(&key.atom) {
                        texts = pooled.iter().map(|(_, t)| t.clone()).collect();
                    }
                }
                texts.sort();
                texts.dedup();
                texts.retain(|t| filler_valid(hole, t));
                texts
            })
            .unwrap_or_default();
        if observed.is_empty() {
            vec![default_filler(hole)]
        } else {
            observed
        }
    }
}

/// Learns the decision tree for one atom occurrence's examples.
///
/// Examples are grouped by `(distinct table row, label)` — duplicate rows
/// produce identical feature vectors, so the tree is induced over the
/// distinct vectors weighted by multiplicity instead of materializing one
/// vector per example row ([`learn_weighted`] is exactly equal to the
/// row-expanded induction). Feature vectors come from the session's
/// table-wide memo, shared across patterns and columns.
fn learn_tree(
    examples: &[(usize, String)],
    session: &AnalysisSession<'_>,
    cfg: &DataVinciConfig,
) -> Option<(DecisionTree, Vec<String>)> {
    if examples.len() < 2 {
        return None;
    }
    let mut label_names: Vec<String> = examples.iter().map(|(_, t)| t.clone()).collect();
    label_names.sort();
    label_names.dedup();
    if label_names.len() < 2 {
        // Constant label: a leaf is exact, and cheap to represent.
        return Some((DecisionTree::Leaf(0), label_names));
    }
    // Group in first-occurrence order; the representative row's feature
    // vector stands for every example of the group.
    let mut index: HashMap<(usize, u32), usize> = HashMap::new();
    let mut reps: Vec<(usize, u32)> = Vec::new();
    let mut weights: Vec<usize> = Vec::new();
    for (row, text) in examples {
        let di = session.distinct_row(*row);
        let label = label_names.iter().position(|l| l == text).expect("deduped") as u32;
        match index.entry((di, label)) {
            Entry::Occupied(e) => weights[*e.get()] += 1,
            Entry::Vacant(e) => {
                e.insert(reps.len());
                reps.push((*row, label));
                weights.push(1);
            }
        }
    }
    let vectors: Vec<Arc<[bool]>> = reps
        .iter()
        .map(|&(row, _)| session.row_features(row))
        .collect();
    let rows: Vec<&[bool]> = vectors.iter().map(|v| &v[..]).collect();
    let labels: Vec<u32> = reps.iter().map(|&(_, label)| label).collect();
    learn_weighted(&rows, &labels, &weights, &cfg.dtree).map(|t| (t, label_names))
}

fn hole_key(hole: &Emit) -> AtomKey {
    match hole {
        Emit::Class(_, key) | Emit::Disj(_, key) | Emit::Mask(_, key) => *key,
        Emit::Char(_) => unreachable!("concrete emissions are not holes"),
    }
}

/// A filler is valid when it lies in the hole's domain.
fn filler_valid(hole: &Emit, text: &str) -> bool {
    match hole {
        Emit::Class(cc, _) => {
            let mut chars = text.chars();
            matches!((chars.next(), chars.next()), (Some(c), None) if cc.contains(c))
        }
        Emit::Disj(alts, _) => alts.iter().any(|a| a == text),
        _ => false,
    }
}

/// The last-resort filler.
fn default_filler(hole: &Emit) -> String {
    match hole {
        Emit::Class(cc, _) => cc.representative().to_string(),
        Emit::Disj(alts, _) => alts.first().cloned().unwrap_or_default(),
        Emit::Mask(..) | Emit::Char(_) => String::new(),
    }
}

/// Bounded cross-product of per-hole candidate lists.
fn cross_product(per_hole: &[Vec<String>], cap: usize) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = vec![Vec::new()];
    for candidates in per_hole {
        let mut next = Vec::new();
        'outer: for prefix in &out {
            for c in candidates {
                let mut tuple = prefix.clone();
                tuple.push(c.clone());
                next.push(tuple);
                if next.len() >= cap {
                    break 'outer;
                }
            }
        }
        out = next;
        if out.len() >= cap {
            out.truncate(cap);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_profile::{profile_plain, ProfilerConfig};
    use datavinci_table::{Column, Table};

    /// Figure-2-shaped table: suffix determined by the Category column.
    fn figure2_table() -> Table {
        Table::new(vec![
            Column::from_texts(
                "Category",
                &[
                    "Professional",
                    "Qualifier",
                    "Professional",
                    "Qualifier",
                    "Professional",
                ],
            ),
            Column::from_texts("Player ID", &["AA-PRO", "BB-QUA", "CC-PRO", "DD-QUA", "EE"]),
        ])
    }

    #[test]
    fn figure2_constraint_learned_from_category_column() {
        let table = figure2_table();
        let cfg = DataVinciConfig::default();
        // Profile the Player ID column (plain; no semantics needed here).
        let values: Vec<String> = table.column(1).unwrap().rendered();
        let profile = profile_plain(&values, &ProfilerConfig::default());
        let lp = profile
            .patterns
            .iter()
            .find(|p| p.pattern.to_string().contains("(PRO|QUA)"))
            .expect("disjunction pattern learned");

        let session = AnalysisSession::new(&table);
        let mut cz = Concretizer::new(&session, &cfg);
        cz.train_pattern(0, lp, &lp.rows, &masked(&values));

        // Repair "EE" (row 4): DP would need I(-), I(PRO|QUA); simulate the
        // hole directly.
        let compiled = &lp.compiled;
        let dag = compiled.dag_for_len(2);
        let program = crate::repair_dp::minimal_edit_program(&dag, &"EE".into()).unwrap();
        let repair = program.apply(&"EE".into());
        let fillers = cz.fillers(0, 4, &repair);
        assert_eq!(fillers.len(), 1);
        // Row 4's Category is Professional → the tree must pick PRO.
        let repaired = repair.fill(&fillers[0]);
        assert_eq!(repaired.to_plain().as_deref(), Some("EE-PRO"));
    }

    fn masked(values: &[String]) -> Vec<MaskedString> {
        values.iter().map(|v| MaskedString::from_plain(v)).collect()
    }

    #[test]
    fn enumeration_mode_produces_multiple_candidates() {
        let table = figure2_table();
        let cfg = DataVinciConfig::ablation_no_learned_concretization();
        let values: Vec<String> = table.column(1).unwrap().rendered();
        let profile = profile_plain(&values, &ProfilerConfig::default());
        let lp = profile
            .patterns
            .iter()
            .find(|p| p.pattern.to_string().contains("(PRO|QUA)"))
            .expect("disjunction pattern");
        let session = AnalysisSession::new(&table);
        let mut cz = Concretizer::new(&session, &cfg);
        cz.train_pattern(0, lp, &lp.rows, &masked(&values));
        let dag = lp.compiled.dag_for_len(2);
        let program = crate::repair_dp::minimal_edit_program(&dag, &"EE".into()).unwrap();
        let repair = program.apply(&"EE".into());
        let fillers = cz.fillers(0, 4, &repair);
        assert!(fillers.len() >= 2, "expected enumeration, got {fillers:?}");
    }

    #[test]
    fn fallback_to_majority_without_features() {
        // Single-column table: no cross-column features survive, trees
        // cannot split usefully → pooled majority.
        let table = Table::new(vec![Column::from_texts(
            "c",
            &["A1", "A1", "A1", "A2", "B9"],
        )]);
        let cfg = DataVinciConfig::default();
        let values: Vec<String> = table.column(0).unwrap().rendered();
        let profile = profile_plain(&values, &ProfilerConfig::default());
        let lp = &profile.patterns[0];
        let session = AnalysisSession::new(&table);
        let mut cz = Concretizer::new(&session, &cfg);
        cz.train_pattern(0, lp, &lp.rows, &masked(&values));
        let dag = lp.compiled.dag_for_len(0);
        let program = crate::repair_dp::minimal_edit_program(&dag, &"".into()).unwrap();
        let repair = program.apply(&"".into());
        let fillers = cz.fillers(0, 0, &repair);
        assert_eq!(fillers.len(), 1);
        // All fillers drawn from observed characters.
        for f in &fillers[0] {
            assert!(!f.is_empty());
        }
    }

    #[test]
    fn cross_product_is_capped() {
        let per_hole = vec![
            vec!["a".to_string(), "b".to_string(), "c".to_string()],
            vec!["1".to_string(), "2".to_string(), "3".to_string()],
            vec!["x".to_string(), "y".to_string(), "z".to_string()],
        ];
        let tuples = cross_product(&per_hole, 10);
        assert!(tuples.len() <= 10);
        assert!(tuples.iter().all(|t| t.len() == 3));
    }

    #[test]
    fn filler_validity() {
        use datavinci_regex::{AtomId, CharClass};
        let key = AtomKey {
            atom: AtomId(0),
            occ: 0,
        };
        let class_hole = Emit::Class(CharClass::Digit, key);
        assert!(filler_valid(&class_hole, "7"));
        assert!(!filler_valid(&class_hole, "x"));
        assert!(!filler_valid(&class_hole, "77"));
        let disj_hole = Emit::Disj(vec!["CAT".into(), "PRO".into()], key);
        assert!(filler_valid(&disj_hole, "PRO"));
        assert!(!filler_valid(&disj_hole, "DOG"));
    }
}
