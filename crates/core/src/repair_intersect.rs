//! The [`crate::RepairStrategy::Intersect`] edit-program search: per-value
//! minimal repair via the pattern × edit-automaton product of
//! [`datavinci_regex::intersect`], with iterative deepening on the
//! distance cap and a fallback to the unbounded repair DP.
//!
//! The product search with cap *k* settles only states reachable within
//! *k* edits, so for near-clean values (the common case — most error cells
//! are one or two edits from a significant pattern) it touches a small
//! corner of the `(value length + 1) × DAG nodes` table the DP always
//! fills. Doubling the cap on [`ProductOutcome::DistanceExceeded`]
//! preserves minimality: the first cap that admits any accepting path
//! admits the *minimal* one, and the product's relaxation order makes that
//! path byte-identical to [`minimal_edit_program`]'s choice. Overflowing
//! [`crate::IntersectConfig::state_budget`] (or the hard
//! [`crate::IntersectConfig::max_distance`] ceiling) falls back to the DP,
//! so the strategy's output equals the planner's on every input.

use crate::config::IntersectConfig;
use crate::edit::{EditAction, EditProgram};
use crate::repair_dp::{emit_for, minimal_edit_program};
use datavinci_regex::intersect::{intersect_minimal, ProductConfig, ProductOutcome, ProductStep};
use datavinci_regex::{Dag, DagLabel, MaskedString, ProductPath};

/// What one product-backed search did (feeds `stage.repair` counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntersectStats {
    /// Product states settled across all deepening attempts.
    pub states_explored: u64,
    /// Number of product searches run (deepening rounds).
    pub attempts: u32,
    /// True when the search gave up and the unbounded DP produced the
    /// program instead.
    pub fell_back: bool,
}

/// Minimal edit program for `value` against `dag`, searched through the
/// bounded product construction. Returns exactly what
/// [`minimal_edit_program`] would return (same program, same cost, same
/// tie-breaks) — the product only changes *how much* of the edit space is
/// explored, never *which* repair wins.
pub fn minimal_edit_program_product(
    dag: &Dag,
    value: &MaskedString,
    cfg: &IntersectConfig,
) -> (Option<EditProgram>, IntersectStats) {
    let mut stats = IntersectStats::default();
    let mut k = 2usize.min(cfg.max_distance);
    loop {
        stats.attempts += 1;
        let (outcome, s) = intersect_minimal(
            dag,
            value,
            &ProductConfig {
                max_distance: k,
                state_budget: cfg.state_budget,
            },
        );
        stats.states_explored += s.states_explored as u64;
        match outcome {
            ProductOutcome::Found(path) => {
                return (Some(program_from_path(dag, &path)), stats);
            }
            ProductOutcome::BudgetExceeded => break,
            ProductOutcome::DistanceExceeded => {
                if k >= cfg.max_distance {
                    break;
                }
                k = (k.max(1) * 2).min(cfg.max_distance);
            }
        }
    }
    stats.fell_back = true;
    (minimal_edit_program(dag, value), stats)
}

/// Lowers a product path into the [`EditProgram`] the concretizer and
/// ranker consume, resolving each step's DAG edge to its emission.
pub fn program_from_path(dag: &Dag, path: &ProductPath) -> EditProgram {
    let actions = path
        .steps
        .iter()
        .map(|step| match *step {
            ProductStep::Match { .. } => EditAction::Match,
            ProductStep::Delete => EditAction::Delete,
            ProductStep::Insert { edge } => EditAction::Insert(emit_for(dag, edge)),
            ProductStep::Substitute { edge } => EditAction::Substitute(emit_for(dag, edge)),
            ProductStep::MatchDisj { edge, alt } => {
                let DagLabel::Disj(d, key) = dag.edges[edge].label else {
                    unreachable!("MatchDisj step on a non-disjunction edge");
                };
                EditAction::MatchDisj {
                    alt: dag.disjs[d as usize][alt].iter().collect(),
                    key,
                }
            }
        })
        .collect();
    EditProgram {
        actions,
        cost: path.cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_regex::{CharClass, CompiledPattern, Pattern};

    fn both(
        p: &Pattern,
        value: &str,
        cfg: &IntersectConfig,
    ) -> (Option<EditProgram>, Option<EditProgram>, IntersectStats) {
        let compiled = CompiledPattern::compile(p.clone());
        let v: MaskedString = value.into();
        let dag = compiled.dag_for_len(v.len());
        let dp = minimal_edit_program(&dag, &v);
        let (product, stats) = minimal_edit_program_product(&dag, &v, cfg);
        (dp, product, stats)
    }

    fn patterns() -> Vec<Pattern> {
        vec![
            Pattern::concat([
                Pattern::lit("Q"),
                Pattern::Class(CharClass::Digit),
                Pattern::lit("-"),
                Pattern::class_n(CharClass::Digit, 4),
            ]),
            Pattern::concat([
                Pattern::class_plus(CharClass::Digit),
                Pattern::lit("-"),
                Pattern::disj(["CAT", "PRO"]),
            ]),
            Pattern::lit("approved"),
            Pattern::plus(Pattern::Class(CharClass::Upper)),
        ]
    }

    #[test]
    fn product_program_is_byte_identical_to_dp() {
        let cfg = IntersectConfig::default();
        for p in patterns() {
            for value in [
                "Q3-2001",
                "Q32001",
                "837",
                "837-PRO",
                "approved",
                "aproved",
                "ZZ",
                "z9",
                "",
                "Q3--2001x",
            ] {
                let (dp, product, stats) = both(&p, value, &cfg);
                assert_eq!(
                    format!("{dp:?}"),
                    format!("{product:?}"),
                    "pattern {p:?} value {value:?}"
                );
                assert!(!stats.fell_back, "no fallback expected at default caps");
                assert!(stats.attempts >= 1);
            }
        }
    }

    #[test]
    fn budget_overflow_falls_back_to_dp() {
        let cfg = IntersectConfig {
            state_budget: 1,
            ..IntersectConfig::default()
        };
        let (dp, product, stats) = both(&patterns()[0], "Q32001", &cfg);
        assert!(stats.fell_back);
        assert_eq!(format!("{dp:?}"), format!("{product:?}"));
    }

    #[test]
    fn distance_ceiling_falls_back_to_dp() {
        let cfg = IntersectConfig {
            max_distance: 1,
            ..IntersectConfig::default()
        };
        // "zzzzzzzz" is far from `approved`: the ceiling trips and the DP
        // supplies the (still identical) answer.
        let (dp, product, stats) = both(&Pattern::lit("approved"), "zzzzzzzz", &cfg);
        assert!(stats.fell_back);
        assert_eq!(format!("{dp:?}"), format!("{product:?}"));
    }

    #[test]
    fn deepening_stops_at_the_first_admitting_cap() {
        // Distance-4 repair: caps 2 then 4 → two attempts, no fallback.
        let cfg = IntersectConfig::default();
        let (_, product, stats) = both(&Pattern::lit("abcdef"), "ab", &cfg);
        assert_eq!(product.expect("program").cost, 4);
        assert_eq!(stats.attempts, 2);
        assert!(!stats.fell_back);
    }
}
