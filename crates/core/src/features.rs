//! Predicate-template features over table rows (paper Table 2 / §3.4).
//!
//! Concretization decision trees split on boolean features generated from
//! twelve predicate templates, instantiated over *every* column. String
//! constants come from cell values and from tokens after splitting on
//! non-alphanumeric characters, case changes, and alpha/digit boundaries;
//! `length` uses the top-5 most frequent cell lengths per column.
//! Predicates that are constant across the table (all-true / all-false) are
//! dropped, mirroring paper Example 6.

use std::collections::HashMap;

use datavinci_table::{CellValue, Table};

/// A fully instantiated predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `equals(col, s)`
    Equals(usize, String),
    /// `contains(col, s)`
    Contains(usize, String),
    /// `startsWith(col, s)`
    StartsWith(usize, String),
    /// `endsWith(col, s)`
    EndsWith(usize, String),
    /// `length(col, n)`
    Length(usize, usize),
    /// `hasDigits(col)`
    HasDigits(usize),
    /// `isNum(col)`
    IsNum(usize),
    /// `isError(col)`
    IsError(usize),
    /// `isFormula(col)` — always false in our model (cells store values).
    IsFormula(usize),
    /// `isLogical(col)`
    IsLogical(usize),
    /// `isNA(col)`
    IsNA(usize),
    /// `isText(col)`
    IsText(usize),
}

impl Predicate {
    /// Evaluates the predicate for one row.
    pub fn eval(&self, table: &Table, row: usize) -> bool {
        let cell = |c: usize| table.column(c).and_then(|col| col.get(row));
        match self {
            Predicate::Equals(c, s) => cell(*c).is_some_and(|v| v.render().eq_ignore_ascii_case(s)),
            Predicate::Contains(c, s) => {
                cell(*c).is_some_and(|v| v.render().to_lowercase().contains(&s.to_lowercase()))
            }
            Predicate::StartsWith(c, s) => {
                cell(*c).is_some_and(|v| v.render().to_lowercase().starts_with(&s.to_lowercase()))
            }
            Predicate::EndsWith(c, s) => {
                cell(*c).is_some_and(|v| v.render().to_lowercase().ends_with(&s.to_lowercase()))
            }
            Predicate::Length(c, n) => cell(*c).is_some_and(|v| v.render().chars().count() == *n),
            Predicate::HasDigits(c) => {
                cell(*c).is_some_and(|v| v.render().chars().any(|ch| ch.is_ascii_digit()))
            }
            Predicate::IsNum(c) => cell(*c).is_some_and(CellValue::is_number),
            Predicate::IsError(c) => cell(*c).is_some_and(CellValue::is_error),
            Predicate::IsFormula(_) => false,
            Predicate::IsLogical(c) => cell(*c).is_some_and(CellValue::is_bool),
            Predicate::IsNA(c) => cell(*c).is_some_and(CellValue::is_na),
            Predicate::IsText(c) => cell(*c).is_some_and(CellValue::is_text),
        }
    }

    /// Human-readable rendering, e.g. `contains(col1, "AR")`.
    pub fn render(&self, table: &Table) -> String {
        let name = |c: &usize| {
            table
                .column(*c)
                .map(|col| col.name().to_string())
                .unwrap_or_else(|| format!("col{c}"))
        };
        match self {
            Predicate::Equals(c, s) => format!("equals({}, {s:?})", name(c)),
            Predicate::Contains(c, s) => format!("contains({}, {s:?})", name(c)),
            Predicate::StartsWith(c, s) => format!("startsWith({}, {s:?})", name(c)),
            Predicate::EndsWith(c, s) => format!("endsWith({}, {s:?})", name(c)),
            Predicate::Length(c, n) => format!("length({}, {n})", name(c)),
            Predicate::HasDigits(c) => format!("hasDigits({})", name(c)),
            Predicate::IsNum(c) => format!("isNum({})", name(c)),
            Predicate::IsError(c) => format!("isError({})", name(c)),
            Predicate::IsFormula(c) => format!("isFormula({})", name(c)),
            Predicate::IsLogical(c) => format!("isLogical({})", name(c)),
            Predicate::IsNA(c) => format!("isNA({})", name(c)),
            Predicate::IsText(c) => format!("isText({})", name(c)),
        }
    }
}

/// Splits a cell text into constant-candidate tokens: (a) non-alphanumeric
/// boundaries, (b) case changes, (c) alpha/digit switches (paper §3.4).
pub fn split_tokens(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    // (a) split on non-alphanumeric characters.
    for tok in text.split(|c: char| !c.is_ascii_alphanumeric()) {
        if !tok.is_empty() {
            out.push(tok.to_string());
        }
    }
    // (b) case changes and (c) alpha/digit switches inside each (a)-token.
    let base: Vec<String> = out.clone();
    for tok in base {
        let chars: Vec<char> = tok.chars().collect();
        let mut start = 0;
        for i in 1..chars.len() {
            let prev = chars[i - 1];
            let cur = chars[i];
            let case_change = prev.is_ascii_lowercase() && cur.is_ascii_uppercase();
            let kind_change = prev.is_ascii_digit() != cur.is_ascii_digit();
            if case_change || kind_change {
                let piece: String = chars[start..i].iter().collect();
                if piece.chars().count() < tok.chars().count() {
                    out.push(piece);
                }
                start = i;
            }
        }
        if start > 0 {
            out.push(chars[start..].iter().collect());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Per-column caps keeping the feature space tractable.
const MAX_CONSTANTS_PER_COLUMN: usize = 24;
const TOP_LENGTHS: usize = 5;

/// The generated feature set for one table.
#[derive(Debug, Clone, Default)]
pub struct FeatureSet {
    /// Instantiated, non-constant predicates.
    pub predicates: Vec<Predicate>,
    /// Lowercased string constant per predicate (empty for constant-free
    /// templates) — precomputed so the hot row-evaluation path does not
    /// re-lowercase the constant for every (predicate, row) pair.
    lowered: Vec<String>,
}

/// One row's cells rendered once, plus the lowercase form — the shared
/// input for evaluating every predicate of the row without re-rendering.
///
/// Owns its data (kind tags + rendered strings, no cell borrows): a
/// rendered matrix can therefore outlive the `Table` it came from and be
/// *extended in place* when rows are appended (`RenderedTable::extend`),
/// which is what makes analysis sessions resumable across table growth.
struct RenderedRow {
    kinds: Vec<u8>,
    rendered: Vec<String>,
    lowered: Vec<String>,
}

/// A coarse cell-kind discriminant. Every [`Predicate`] template is a pure
/// function of `(kind_tag, rendered text)` per referenced cell, so two rows
/// agreeing on both evaluate identically on *every* feature — the invariant
/// behind table-level row interning (`datavinci_core::AnalysisSession`).
fn kind_tag(cell: Option<&CellValue>) -> u8 {
    match cell {
        None => b'_',
        Some(c) if c.is_number() => b'n',
        Some(c) if c.is_bool() => b'b',
        Some(c) if c.is_error() => b'e',
        Some(c) if c.is_na() => b'0',
        Some(c) if c.is_text() => b't',
        Some(_) => b'?',
    }
}

/// The whole table's cells rendered and lowercased once — the shared matrix
/// every feature generation and row evaluation of one table reads, instead
/// of re-rendering rows per column repair.
///
/// Owns its renderings (no borrows into the table), so it can be kept in an
/// owned session snapshot and grown incrementally with
/// [`RenderedTable::extend`] as rows are appended.
#[derive(Default)]
pub struct RenderedTable {
    rows: Vec<RenderedRow>,
}

impl RenderedTable {
    /// Renders every cell of the table (once).
    pub fn new(table: &Table) -> RenderedTable {
        let mut rendered = RenderedTable::default();
        rendered.extend(table, 0);
        rendered
    }

    /// Renders rows `from_row..table.n_rows()` and appends them — the
    /// incremental path for append-only table growth. `from_row` must equal
    /// the current [`RenderedTable::n_rows`] (already-rendered rows are
    /// immutable).
    pub fn extend(&mut self, table: &Table, from_row: usize) {
        assert_eq!(from_row, self.rows.len(), "extend only appends");
        self.rows
            .extend((from_row..table.n_rows()).map(|row| RenderedRow::new(table, row)));
    }

    /// Number of rendered rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// A collision-free identity key for one row: the `(kind, rendered)`
    /// pairs of its cells, length-prefixed. Rows with equal keys evaluate
    /// identically on every predicate (see `kind_tag`), so they can share
    /// one feature vector.
    pub fn row_key(&self, row: usize) -> String {
        let mut key = String::new();
        self.write_row_key(row, &mut key);
        key
    }

    /// [`RenderedTable::row_key`] into a caller-provided buffer, so the
    /// row-interning loop can reuse one allocation across all rows.
    pub fn write_row_key(&self, row: usize, key: &mut String) {
        use std::fmt::Write;
        let rr = &self.rows[row];
        for (kind, rendered) in rr.kinds.iter().zip(&rr.rendered) {
            key.push(*kind as char);
            write!(key, "{}:", rendered.len()).expect("String write is infallible");
            key.push_str(rendered);
        }
    }
}

impl RenderedRow {
    fn new(table: &Table, row: usize) -> RenderedRow {
        let cells: Vec<Option<&CellValue>> =
            table.columns().iter().map(|col| col.get(row)).collect();
        let kinds: Vec<u8> = cells.iter().map(|c| kind_tag(*c)).collect();
        let rendered: Vec<String> = cells
            .iter()
            .map(|c| c.map(CellValue::render).unwrap_or_default())
            .collect();
        let lowered: Vec<String> = rendered.iter().map(|s| s.to_lowercase()).collect();
        RenderedRow {
            kinds,
            rendered,
            lowered,
        }
    }

    /// [`Predicate::eval`] against the cached renderings (identical
    /// semantics — every template is a pure function of the cell's kind tag
    /// and rendered text; `lowered_constant` is the predicate's constant
    /// already lowercased).
    fn eval(&self, p: &Predicate, lowered_constant: &str) -> bool {
        let present = |c: usize| self.kinds.get(c).is_some_and(|&k| k != b'_');
        let kind_is = |c: usize, tag: u8| self.kinds.get(c) == Some(&tag);
        match p {
            Predicate::Equals(c, s) => present(*c) && self.rendered[*c].eq_ignore_ascii_case(s),
            Predicate::Contains(c, _) => present(*c) && self.lowered[*c].contains(lowered_constant),
            Predicate::StartsWith(c, _) => {
                present(*c) && self.lowered[*c].starts_with(lowered_constant)
            }
            Predicate::EndsWith(c, _) => {
                present(*c) && self.lowered[*c].ends_with(lowered_constant)
            }
            Predicate::Length(c, n) => present(*c) && self.rendered[*c].chars().count() == *n,
            Predicate::HasDigits(c) => {
                present(*c) && self.rendered[*c].chars().any(|ch| ch.is_ascii_digit())
            }
            Predicate::IsNum(c) => kind_is(*c, b'n'),
            Predicate::IsError(c) => kind_is(*c, b'e'),
            Predicate::IsFormula(_) => false,
            Predicate::IsLogical(c) => kind_is(*c, b'b'),
            Predicate::IsNA(c) => kind_is(*c, b'0'),
            Predicate::IsText(c) => kind_is(*c, b't'),
        }
    }
}

/// The predicate's string constant, lowercased (empty when the template has
/// none).
fn lowered_constant(p: &Predicate) -> String {
    match p {
        Predicate::Contains(_, s) | Predicate::StartsWith(_, s) | Predicate::EndsWith(_, s) => {
            s.to_lowercase()
        }
        _ => String::new(),
    }
}

impl FeatureSet {
    /// Rebuilds a feature set from its predicates alone, recomputing the
    /// lowered-constant cache. Used when loading a persisted artifact: the
    /// predicates are the durable part; `lowered` is derived.
    pub fn from_predicates(predicates: Vec<Predicate>) -> FeatureSet {
        let lowered = predicates.iter().map(lowered_constant).collect();
        FeatureSet {
            predicates,
            lowered,
        }
    }

    /// Generates features over every column of the table.
    ///
    /// Convenience for [`FeatureSet::generate_rendered`] with a freshly
    /// rendered matrix; table-scoped callers (sessions) render once and
    /// share the matrix across generation and every row evaluation.
    pub fn generate(table: &Table) -> FeatureSet {
        FeatureSet::generate_rendered(table, &RenderedTable::new(table))
    }

    /// Generates features over every column, evaluating candidate
    /// predicates against a pre-rendered cell matrix.
    pub fn generate_rendered(table: &Table, rendered: &RenderedTable) -> FeatureSet {
        let n_rows = table.n_rows();
        let mut predicates = Vec::new();
        for (c, col) in table.columns().iter().enumerate() {
            // Constant candidates: frequent cell values + split tokens.
            let mut counts: HashMap<String, usize> = HashMap::new();
            let mut len_counts: HashMap<usize, usize> = HashMap::new();
            for v in col.values() {
                let text = v.render();
                *len_counts.entry(text.chars().count()).or_insert(0) += 1;
                if !text.is_empty() {
                    *counts.entry(text.clone()).or_insert(0) += 1;
                }
                for tok in split_tokens(&text) {
                    *counts.entry(tok).or_insert(0) += 1;
                }
            }
            let mut constants: Vec<(String, usize)> = counts.into_iter().collect();
            constants.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            constants.truncate(MAX_CONSTANTS_PER_COLUMN);

            for (s, _) in &constants {
                predicates.push(Predicate::Equals(c, s.clone()));
                predicates.push(Predicate::Contains(c, s.clone()));
                predicates.push(Predicate::StartsWith(c, s.clone()));
                predicates.push(Predicate::EndsWith(c, s.clone()));
            }
            let mut lens: Vec<(usize, usize)> = len_counts.into_iter().collect();
            lens.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (len, _) in lens.into_iter().take(TOP_LENGTHS) {
                predicates.push(Predicate::Length(c, len));
            }
            predicates.push(Predicate::HasDigits(c));
            predicates.push(Predicate::IsNum(c));
            predicates.push(Predicate::IsError(c));
            predicates.push(Predicate::IsLogical(c));
            predicates.push(Predicate::IsNA(c));
            predicates.push(Predicate::IsText(c));
        }

        // Drop constant predicates (true everywhere or nowhere). Rows are
        // rendered once each and shared by every candidate's evaluation;
        // a predicate stops being evaluated as soon as it has shown both
        // truth values.
        let lowered: Vec<String> = predicates.iter().map(lowered_constant).collect();
        let mut first: Vec<Option<bool>> = vec![None; predicates.len()];
        let mut mixed: Vec<bool> = vec![false; predicates.len()];
        let mut undecided = predicates.len();
        for row in 0..n_rows {
            if undecided == 0 {
                break;
            }
            let rr = &rendered.rows[row];
            for (i, p) in predicates.iter().enumerate() {
                if mixed[i] {
                    continue;
                }
                let v = rr.eval(p, &lowered[i]);
                match first[i] {
                    None => first[i] = Some(v),
                    Some(f) if f != v => {
                        mixed[i] = true;
                        undecided -= 1;
                    }
                    Some(_) => {}
                }
            }
        }
        let (predicates, lowered): (Vec<Predicate>, Vec<String>) = predicates
            .into_iter()
            .zip(lowered)
            .zip(&mixed)
            .filter(|(_, &m)| m)
            .map(|(pair, _)| pair)
            .unzip();
        FeatureSet {
            predicates,
            lowered,
        }
    }

    /// Evaluates all predicates for one row (the row's cells are rendered
    /// once and shared across predicates).
    pub fn row_features(&self, table: &Table, row: usize) -> Vec<bool> {
        self.eval_row(&RenderedRow::new(table, row))
    }

    /// [`FeatureSet::row_features`] against a pre-rendered cell matrix.
    pub fn row_features_rendered(&self, rendered: &RenderedTable, row: usize) -> Vec<bool> {
        self.eval_row(&rendered.rows[row])
    }

    fn eval_row(&self, rr: &RenderedRow) -> Vec<bool> {
        self.predicates
            .iter()
            .zip(&self.lowered)
            .map(|(p, low)| rr.eval(p, low))
            .collect()
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether the feature set is empty.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    fn figure2_table() -> Table {
        Table::new(vec![
            Column::from_texts(
                "Category",
                &["Professional", "Qualifier", "Professional", "Qualifier"],
            ),
            Column::from_texts(
                "Player ID",
                &["Ind-674-PRO", "US-201-QUA", "FR-475-PRO", "Chn-924-QUA"],
            ),
        ])
    }

    #[test]
    fn split_tokens_all_three_ways() {
        // Example 6: "Ind-674-PRO" → {Ind, 674, PRO} (plus the full value
        // handled separately).
        let toks = split_tokens("Ind-674-PRO");
        assert!(toks.contains(&"Ind".to_string()));
        assert!(toks.contains(&"674".to_string()));
        assert!(toks.contains(&"PRO".to_string()));
        // Case change split.
        let toks = split_tokens("fooBar");
        assert!(toks.contains(&"foo".to_string()));
        assert!(toks.contains(&"Bar".to_string()));
        // Alpha/digit switch.
        let toks = split_tokens("Q32001");
        assert!(toks.contains(&"Q".to_string()));
        assert!(toks.contains(&"32001".to_string()));
    }

    #[test]
    fn constant_predicates_dropped() {
        let t = figure2_table();
        let fs = FeatureSet::generate(&t);
        // contains(Player ID, "-") would be true for every row → dropped.
        assert!(!fs
            .predicates
            .iter()
            .any(|p| matches!(p, Predicate::Contains(1, s) if s == "-")));
        // contains(Player ID, "PRO") splits rows → kept.
        assert!(fs
            .predicates
            .iter()
            .any(|p| matches!(p, Predicate::Contains(1, s) if s == "PRO")));
    }

    #[test]
    fn category_equality_feature_exists_and_predicts() {
        let t = figure2_table();
        let fs = FeatureSet::generate(&t);
        let idx = fs
            .predicates
            .iter()
            .position(|p| matches!(p, Predicate::Equals(0, s) if s == "Professional"))
            .expect("equals(Category, Professional) kept");
        let f0 = fs.row_features(&t, 0);
        let f1 = fs.row_features(&t, 1);
        assert!(f0[idx]);
        assert!(!f1[idx]);
    }

    #[test]
    fn case_insensitive_matching() {
        let p = Predicate::Contains(0, "pro".into());
        let t = Table::new(vec![Column::from_texts("c", &["X-PRO"])]);
        assert!(p.eval(&t, 0));
    }

    #[test]
    fn render_forms() {
        let t = figure2_table();
        assert_eq!(
            Predicate::Equals(0, "AR".into()).render(&t),
            "equals(Category, \"AR\")"
        );
        assert_eq!(Predicate::Length(1, 10).render(&t), "length(Player ID, 10)");
    }

    #[test]
    fn length_predicate() {
        let t = Table::new(vec![Column::from_texts("c", &["ab", "abc"])]);
        let p = Predicate::Length(0, 2);
        assert!(p.eval(&t, 0));
        assert!(!p.eval(&t, 1));
    }

    #[test]
    fn out_of_bounds_rows_are_false() {
        let t = figure2_table();
        assert!(!Predicate::HasDigits(0).eval(&t, 99));
        assert!(!Predicate::Equals(9, "x".into()).eval(&t, 0));
    }

    #[test]
    fn rendered_matrix_matches_per_row_path() {
        let t = figure2_table();
        let rendered = RenderedTable::new(&t);
        assert_eq!(rendered.n_rows(), 4);
        let fs = FeatureSet::generate_rendered(&t, &rendered);
        let fresh = FeatureSet::generate(&t);
        assert_eq!(fs.predicates, fresh.predicates);
        for row in 0..t.n_rows() {
            assert_eq!(
                fs.row_features_rendered(&rendered, row),
                fs.row_features(&t, row),
                "row {row}"
            );
        }
    }

    #[test]
    fn row_keys_separate_kinds_and_join_duplicates() {
        // Text "3" and the number 3 render identically but differ on the
        // kind-sensitive predicates (isNum/isText), so their keys must
        // differ; true duplicate rows must share a key.
        let t = Table::new(vec![Column::new(
            "mixed",
            vec![
                CellValue::Number(3.0),
                CellValue::text("3"),
                CellValue::text("3"),
            ],
        )]);
        let rendered = RenderedTable::new(&t);
        assert_ne!(rendered.row_key(0), rendered.row_key(1));
        assert_eq!(rendered.row_key(1), rendered.row_key(2));
    }

    #[test]
    fn extend_matches_from_scratch() {
        let small = figure2_table();
        let mut grown = small.clone();
        grown
            .column_mut(0)
            .unwrap()
            .values_mut()
            .push(CellValue::text("Amateur"));
        grown
            .column_mut(1)
            .unwrap()
            .values_mut()
            .push(CellValue::text("Bra-333-AMA"));

        let mut incremental = RenderedTable::new(&small);
        incremental.extend(&grown, small.n_rows());
        let scratch = RenderedTable::new(&grown);
        assert_eq!(incremental.n_rows(), scratch.n_rows());
        for row in 0..grown.n_rows() {
            assert_eq!(incremental.row_key(row), scratch.row_key(row), "row {row}");
        }
        let fs = FeatureSet::generate(&grown);
        for row in 0..grown.n_rows() {
            assert_eq!(
                fs.row_features_rendered(&incremental, row),
                fs.row_features(&grown, row),
                "row {row}"
            );
        }
    }
}
