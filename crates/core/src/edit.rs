//! Edit actions and edit programs (paper Table 1 / §3.3).
//!
//! An edit action optionally deletes the current token and optionally emits
//! something; an edit program is a sequence of actions applied left to right.
//! Emissions may be *abstract* — a character class, a string disjunction, or
//! a semantic mask — producing an [`AbstractRepair`] whose holes are filled
//! by concretization (§3.4).

use datavinci_regex::{AtomKey, CharClass, MaskId, MaskedString, Tok};

/// What an insert/substitute action emits.
#[derive(Debug, Clone, PartialEq)]
pub enum Emit {
    /// A concrete character.
    Char(char),
    /// Some character of a class (abstract; concretized later).
    Class(CharClass, AtomKey),
    /// Some alternative of a string disjunction (abstract).
    Disj(Vec<String>, AtomKey),
    /// A semantic mask token (re-concretized by the semantic layer).
    Mask(MaskId, AtomKey),
}

impl Emit {
    /// Is the emission abstract (needs concretization)?
    pub fn is_abstract(&self) -> bool {
        !matches!(self, Emit::Char(_))
    }
}

/// One edit action (paper Table 1, plus the zero-cost disjunction match).
#[derive(Debug, Clone, PartialEq)]
pub enum EditAction {
    /// `M` — keep the current token and advance. Cost 0.
    Match,
    /// Zero-cost traversal of a whole disjunction alternative (`k` tokens).
    MatchDisj {
        /// The matched alternative.
        alt: String,
        /// Which disjunction atom.
        key: AtomKey,
    },
    /// `I(e)` — emit before the current token, do not advance. Cost 1.
    Insert(Emit),
    /// `D` — delete the current token. Cost 1.
    Delete,
    /// `S(e)` — delete the current token and emit. Cost 1.
    Substitute(Emit),
}

impl EditAction {
    /// The action's cost (Table 1).
    pub fn cost(&self) -> usize {
        match self {
            EditAction::Match | EditAction::MatchDisj { .. } => 0,
            _ => 1,
        }
    }

    /// Compact shorthand rendering (`M`, `I(.)`, `S(0-9)`, `D`).
    pub fn shorthand(&self) -> String {
        fn emit_str(e: &Emit) -> String {
            match e {
                Emit::Char(c) => c.to_string(),
                Emit::Class(cc, _) => cc.regex_str().trim_matches(['[', ']']).to_string(),
                Emit::Disj(alts, _) => alts.join("|"),
                Emit::Mask(m, _) => format!("m{}", m.0),
            }
        }
        match self {
            EditAction::Match => "M".to_string(),
            EditAction::MatchDisj { alt, .. } => format!("M({alt})"),
            EditAction::Insert(e) => format!("I({})", emit_str(e)),
            EditAction::Delete => "D".to_string(),
            EditAction::Substitute(e) => format!("S({})", emit_str(e)),
        }
    }
}

/// A slot of an abstract repaired value.
#[derive(Debug, Clone, PartialEq)]
pub enum Slot {
    /// A concrete output token.
    Concrete(Tok),
    /// A hole to be filled by concretization.
    Hole(Emit),
}

/// The result of applying an edit program: the abstract repaired value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AbstractRepair {
    /// Output slots in order.
    pub slots: Vec<Slot>,
}

impl AbstractRepair {
    /// The holes, in output order.
    pub fn holes(&self) -> Vec<&Emit> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Hole(e) => Some(e),
                Slot::Concrete(_) => None,
            })
            .collect()
    }

    /// Fills holes with the provided texts (one per hole, in order),
    /// yielding the repaired masked string. Texts for class holes should be
    /// single characters; disjunction texts may be whole alternatives.
    pub fn fill(&self, fillers: &[String]) -> MaskedString {
        let mut out = MaskedString::default();
        let mut it = fillers.iter();
        for slot in &self.slots {
            match slot {
                Slot::Concrete(t) => out.push(*t),
                Slot::Hole(emit) => match emit {
                    Emit::Mask(m, _) => out.push(Tok::Mask(*m)),
                    _ => {
                        let text = it.next().map(String::as_str).unwrap_or("");
                        for c in text.chars() {
                            out.push(Tok::Char(c));
                        }
                    }
                },
            }
        }
        out
    }

    /// Non-mask holes (the ones concretization must fill), in order.
    pub fn fillable_holes(&self) -> Vec<&Emit> {
        self.holes()
            .into_iter()
            .filter(|e| !matches!(e, Emit::Mask(..)))
            .collect()
    }
}

/// A minimal edit program for one (value, pattern) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EditProgram {
    /// Actions in application order.
    pub actions: Vec<EditAction>,
    /// Total cost (sum of action costs).
    pub cost: usize,
}

impl EditProgram {
    /// Applies the program to `value`, producing the abstract repair.
    ///
    /// The program must be consistent with the value (it was derived for
    /// it): match/delete/substitute actions consume tokens in order.
    pub fn apply(&self, value: &MaskedString) -> AbstractRepair {
        let toks = value.toks();
        let mut i = 0usize;
        let mut slots = Vec::new();
        for action in &self.actions {
            match action {
                EditAction::Match => {
                    slots.push(Slot::Concrete(toks[i]));
                    i += 1;
                }
                EditAction::MatchDisj { alt, .. } => {
                    for _ in alt.chars() {
                        slots.push(Slot::Concrete(toks[i]));
                        i += 1;
                    }
                }
                EditAction::Insert(e) => match e {
                    Emit::Char(c) => slots.push(Slot::Concrete(Tok::Char(*c))),
                    other => slots.push(Slot::Hole(other.clone())),
                },
                EditAction::Delete => {
                    i += 1;
                }
                EditAction::Substitute(e) => {
                    i += 1;
                    match e {
                        Emit::Char(c) => slots.push(Slot::Concrete(Tok::Char(*c))),
                        other => slots.push(Slot::Hole(other.clone())),
                    }
                }
            }
        }
        // Any unconsumed trailing tokens were implicitly matched? No — a
        // complete program consumes the whole value; guard in debug builds.
        debug_assert_eq!(i, toks.len(), "edit program must consume the value");
        AbstractRepair { slots }
    }

    /// Number of edit operations touching alphanumeric characters — the
    /// ranker's second property (§3.5).
    pub fn alnum_edits(&self, value: &MaskedString) -> usize {
        let toks = value.toks();
        let mut i = 0usize;
        let mut count = 0usize;
        let alnum_tok = |t: Tok| matches!(t, Tok::Char(c) if c.is_ascii_alphanumeric());
        let alnum_emit = |e: &Emit| match e {
            Emit::Char(c) => c.is_ascii_alphanumeric(),
            Emit::Class(..) | Emit::Disj(..) | Emit::Mask(..) => true,
        };
        for action in &self.actions {
            match action {
                EditAction::Match => i += 1,
                EditAction::MatchDisj { alt, .. } => i += alt.chars().count(),
                EditAction::Insert(e) => {
                    if alnum_emit(e) {
                        count += 1;
                    }
                }
                EditAction::Delete => {
                    if alnum_tok(toks[i]) {
                        count += 1;
                    }
                    i += 1;
                }
                EditAction::Substitute(e) => {
                    if alnum_tok(toks[i]) || alnum_emit(e) {
                        count += 1;
                    }
                    i += 1;
                }
            }
        }
        count
    }

    /// Shorthand rendering: `[M, S(2), I(.)]`.
    pub fn shorthand(&self) -> String {
        let parts: Vec<String> = self.actions.iter().map(EditAction::shorthand).collect();
        format!("[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_regex::AtomId;

    fn key() -> AtomKey {
        AtomKey {
            atom: AtomId(0),
            occ: 0,
        }
    }

    #[test]
    fn example2_application() {
        // Paper Example 2: [M, S(2), I(.)] on "AAA3" (with two trailing
        // matches to consume the rest) yields A2.A3 …
        // Exactly as printed, the program in the paper is a prefix; we
        // complete it so the program consumes the value: A2.A3 → plus final M.
        let program = EditProgram {
            actions: vec![
                EditAction::Match,
                EditAction::Substitute(Emit::Char('2')),
                EditAction::Insert(Emit::Char('.')),
                EditAction::Match,
                EditAction::Match,
            ],
            cost: 2,
        };
        let out = program.apply(&"AAA3".into());
        let filled = out.fill(&[]);
        assert_eq!(filled.to_plain().as_deref(), Some("A2.A3"));
    }

    #[test]
    fn costs_match_table1() {
        assert_eq!(EditAction::Match.cost(), 0);
        assert_eq!(EditAction::Delete.cost(), 1);
        assert_eq!(EditAction::Insert(Emit::Char('x')).cost(), 1);
        assert_eq!(EditAction::Substitute(Emit::Char('x')).cost(), 1);
        assert_eq!(
            EditAction::MatchDisj {
                alt: "CAT".into(),
                key: key()
            }
            .cost(),
            0
        );
    }

    #[test]
    fn abstract_holes_and_fill() {
        let program = EditProgram {
            actions: vec![
                EditAction::Match,
                EditAction::Substitute(Emit::Class(CharClass::Digit, key())),
                EditAction::Insert(Emit::Disj(vec!["CAT".into(), "PRO".into()], key())),
            ],
            cost: 2,
        };
        let repair = program.apply(&"AX".into());
        assert_eq!(repair.holes().len(), 2);
        assert_eq!(repair.fillable_holes().len(), 2);
        let filled = repair.fill(&["7".into(), "PRO".into()]);
        assert_eq!(filled.to_plain().as_deref(), Some("A7PRO"));
    }

    #[test]
    fn mask_holes_fill_as_mask_tokens() {
        let program = EditProgram {
            actions: vec![EditAction::Insert(Emit::Mask(MaskId(3), key()))],
            cost: 1,
        };
        let repair = program.apply(&"".into());
        assert!(repair.fillable_holes().is_empty());
        let filled = repair.fill(&[]);
        assert_eq!(filled.toks(), &[Tok::Mask(MaskId(3))]);
    }

    #[test]
    fn alnum_edit_counting() {
        let program = EditProgram {
            actions: vec![
                EditAction::Match,                       // not an edit
                EditAction::Substitute(Emit::Char('-')), // deletes 'b' (alnum)
                EditAction::Insert(Emit::Char('.')),     // punctuation insert
                EditAction::Insert(Emit::Char('7')),     // alnum insert
                EditAction::Delete,                      // deletes '-' (not alnum)
            ],
            cost: 4,
        };
        let v: MaskedString = "ab-".into();
        assert_eq!(program.alnum_edits(&v), 2);
    }

    #[test]
    fn shorthand_rendering() {
        let program = EditProgram {
            actions: vec![
                EditAction::Match,
                EditAction::Substitute(Emit::Char('2')),
                EditAction::Insert(Emit::Char('.')),
            ],
            cost: 2,
        };
        assert_eq!(program.shorthand(), "[M, S(2), I(.)]");
        let abs = EditProgram {
            actions: vec![
                EditAction::Substitute(Emit::Class(CharClass::Digit, key())),
                EditAction::Insert(Emit::Disj(vec!["CAT".into(), "PRO".into()], key())),
            ],
            cost: 2,
        };
        assert_eq!(abs.shorthand(), "[S(0-9), I(CAT|PRO)]");
    }
}
