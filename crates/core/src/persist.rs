//! Binary codec for persistable analysis artifacts.
//!
//! The engine's durable artifact store (see `datavinci-engine`) writes the
//! *learned* part of a clean to disk so a later process starts warm:
//! per-column reports and analyses (profiles, abstractions, masked values),
//! table-level [`FeatureSet`]s, and resumable [`SessionSnapshot`] skeletons.
//! This module defines the payload encoding those records use.
//!
//! Design constraints, in order:
//!
//! 1. **No panics on malformed input.** Every decoder is bounds-checked and
//!    tag-validated; a truncated or bit-flipped payload yields a
//!    [`PersistError`], never an out-of-bounds read, an over-allocation, or
//!    unbounded recursion. The store treats any error as "entry absent,
//!    rebuild cold".
//! 2. **Determinism.** Encoding the same value always produces the same
//!    bytes (hash maps are written in sorted key order), so byte equality
//!    of encodings is value equality — the store's checksums and the bench
//!    identity assertions rely on this.
//! 3. **Derived state is rebuilt, not stored.** Interning pools come back
//!    via [`ValuePool::from_values`], compiled patterns via
//!    [`CompiledPattern::compile`], feature-set constant caches via
//!    [`FeatureSet::from_predicates`] — all deterministic functions of the
//!    stored data, so a round trip reproduces behaviorally identical
//!    artifacts without freezing volatile internals into the format.
//!
//! All integers are little-endian; lengths are `u32`, row indices `u64`,
//! floats are IEEE-754 bit patterns (`f64::to_bits`), strings are
//! length-prefixed UTF-8 (validated on read).

use std::collections::HashMap;
use std::sync::Arc;

use crate::features::{FeatureSet, Predicate};
use crate::pipeline::{ColumnAnalysis, ColumnReport};
use crate::session::SessionSnapshot;
use crate::system::{Detection, RepairCandidate, RepairSuggestion};
use datavinci_profile::{ColumnProfile, LearnedPattern};
use datavinci_regex::{
    CharClass, CompiledPattern, MaskAlphabet, MaskId, MaskedString, Pattern, Tok,
};
use datavinci_semantic::{AbstractedColumn, MaskCache, MaskOccurrence, MaskedValue, SemanticType};
use datavinci_table::ValuePool;

/// Maximum pattern nesting the decoder will follow. Learned patterns are a
/// few levels deep; anything deeper is a corrupt or adversarial payload.
const MAX_PATTERN_DEPTH: u32 = 64;

/// Why a payload could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The payload ended before the value did.
    Truncated {
        /// Byte offset at which more input was required.
        at: usize,
    },
    /// A tag, length, or invariant check failed.
    Malformed {
        /// Byte offset of the offending data.
        at: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated { at } => write!(f, "payload truncated at byte {at}"),
            PersistError::Malformed { at, what } => {
                write!(f, "malformed payload at byte {at}: {what}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// A bounds-checked cursor over an encoded payload.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed (decoders use this to reject
    /// payloads with trailing garbage).
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { at: self.pos });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, PersistError> {
        let at = self.pos;
        usize::try_from(self.u64()?).map_err(|_| PersistError::Malformed {
            at,
            what: "index exceeds usize",
        })
    }

    /// An element count for a sequence whose elements occupy at least
    /// `min_elem` bytes each. Rejecting counts larger than the remaining
    /// payload keeps a flipped length byte from requesting a giant
    /// allocation before the inevitable `Truncated` error.
    fn count(&mut self, min_elem: usize) -> Result<usize, PersistError> {
        let at = self.pos;
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(PersistError::Malformed {
                at,
                what: "length prefix exceeds payload",
            });
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, PersistError> {
        let n = self.count(1)?;
        let at = self.pos;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Malformed {
            at,
            what: "invalid UTF-8",
        })
    }

    fn char(&mut self) -> Result<char, PersistError> {
        let at = self.pos;
        char::from_u32(self.u32()?).ok_or(PersistError::Malformed {
            at,
            what: "invalid char scalar",
        })
    }

    fn malformed(&self, what: &'static str) -> PersistError {
        PersistError::Malformed { at: self.pos, what }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    put_u32(out, u32::try_from(n).expect("sequence length fits u32"));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn encode_str_vec(out: &mut Vec<u8>, items: &[String]) {
    put_len(out, items.len());
    for s in items {
        put_str(out, s);
    }
}

fn decode_str_vec(r: &mut Reader<'_>) -> Result<Vec<String>, PersistError> {
    let n = r.count(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.str()?);
    }
    Ok(out)
}

fn encode_usize_vec(out: &mut Vec<u8>, items: &[usize]) {
    put_len(out, items.len());
    for &v in items {
        put_usize(out, v);
    }
}

fn decode_usize_vec(r: &mut Reader<'_>) -> Result<Vec<usize>, PersistError> {
    let n = r.count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.usize()?);
    }
    Ok(out)
}

// ---------------------------------------------------------------- patterns

fn encode_class(out: &mut Vec<u8>, class: CharClass) {
    let idx = CharClass::ALL
        .iter()
        .position(|c| *c == class)
        .expect("every class is in ALL");
    out.push(idx as u8);
}

fn decode_class(r: &mut Reader<'_>) -> Result<CharClass, PersistError> {
    let at = r.pos;
    let idx = r.u8()? as usize;
    CharClass::ALL
        .get(idx)
        .copied()
        .ok_or(PersistError::Malformed {
            at,
            what: "character-class tag out of range",
        })
}

fn encode_pattern(out: &mut Vec<u8>, p: &Pattern) {
    match p {
        Pattern::Empty => out.push(0),
        Pattern::Str(s) => {
            out.push(1);
            put_str(out, s);
        }
        Pattern::Class(c) => {
            out.push(2);
            encode_class(out, *c);
        }
        Pattern::Mask(m) => {
            out.push(3);
            out.extend_from_slice(&m.0.to_le_bytes());
        }
        Pattern::Disj(alts) => {
            out.push(4);
            encode_str_vec(out, alts);
        }
        Pattern::Concat(parts) => {
            out.push(5);
            put_len(out, parts.len());
            for part in parts {
                encode_pattern(out, part);
            }
        }
        Pattern::Alt(parts) => {
            out.push(6);
            put_len(out, parts.len());
            for part in parts {
                encode_pattern(out, part);
            }
        }
        Pattern::Repeat { body, min, max } => {
            out.push(7);
            put_u32(out, *min);
            match max {
                Some(m) => {
                    out.push(1);
                    put_u32(out, *m);
                }
                None => out.push(0),
            }
            encode_pattern(out, body);
        }
    }
}

fn decode_pattern(r: &mut Reader<'_>, depth: u32) -> Result<Pattern, PersistError> {
    if depth > MAX_PATTERN_DEPTH {
        return Err(r.malformed("pattern nesting too deep"));
    }
    let at = r.pos;
    match r.u8()? {
        0 => Ok(Pattern::Empty),
        1 => Ok(Pattern::Str(r.str()?)),
        2 => Ok(Pattern::Class(decode_class(r)?)),
        3 => Ok(Pattern::Mask(MaskId(r.u16()?))),
        4 => Ok(Pattern::Disj(decode_str_vec(r)?)),
        tag @ (5 | 6) => {
            let n = r.count(1)?;
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                parts.push(decode_pattern(r, depth + 1)?);
            }
            Ok(if tag == 5 {
                Pattern::Concat(parts)
            } else {
                Pattern::Alt(parts)
            })
        }
        7 => {
            let min = r.u32()?;
            let max = match r.u8()? {
                0 => None,
                1 => Some(r.u32()?),
                _ => return Err(r.malformed("bad optional tag")),
            };
            let body = Box::new(decode_pattern(r, depth + 1)?);
            Ok(Pattern::Repeat { body, min, max })
        }
        _ => Err(PersistError::Malformed {
            at,
            what: "pattern tag out of range",
        }),
    }
}

fn encode_masked_string(out: &mut Vec<u8>, ms: &MaskedString) {
    put_len(out, ms.toks().len());
    for tok in ms.toks() {
        match tok {
            Tok::Char(c) => {
                out.push(0);
                put_u32(out, *c as u32);
            }
            Tok::Mask(m) => {
                out.push(1);
                out.extend_from_slice(&m.0.to_le_bytes());
            }
        }
    }
}

fn decode_masked_string(r: &mut Reader<'_>) -> Result<MaskedString, PersistError> {
    let n = r.count(3)?;
    let mut toks = Vec::with_capacity(n);
    for _ in 0..n {
        toks.push(match r.u8()? {
            0 => Tok::Char(r.char()?),
            1 => Tok::Mask(MaskId(r.u16()?)),
            _ => return Err(r.malformed("token tag out of range")),
        });
    }
    Ok(MaskedString::from_toks(toks))
}

fn encode_alphabet(out: &mut Vec<u8>, alphabet: &MaskAlphabet) {
    put_len(out, alphabet.len());
    for i in 0..alphabet.len() {
        put_str(
            out,
            alphabet
                .name(MaskId(i as u16))
                .expect("alphabet ids are dense"),
        );
    }
}

fn decode_alphabet(r: &mut Reader<'_>) -> Result<MaskAlphabet, PersistError> {
    let names = decode_str_vec(r)?;
    let mut alphabet = MaskAlphabet::new();
    for (i, name) in names.iter().enumerate() {
        // `intern` dedups; a repeated name would silently renumber later
        // masks, so reject it instead.
        if alphabet.intern(name) != MaskId(i as u16) {
            return Err(r.malformed("duplicate mask name in alphabet"));
        }
    }
    Ok(alphabet)
}

// ------------------------------------------------------------- abstraction

fn encode_semantic_type(out: &mut Vec<u8>, ty: SemanticType) {
    put_str(out, ty.name());
}

fn decode_semantic_type(r: &mut Reader<'_>) -> Result<SemanticType, PersistError> {
    let at = r.pos;
    let name = r.str()?;
    SemanticType::parse(&name).ok_or(PersistError::Malformed {
        at,
        what: "unknown semantic type",
    })
}

fn encode_masked_value(out: &mut Vec<u8>, mv: &MaskedValue) {
    encode_masked_string(out, &mv.masked);
    put_len(out, mv.occurrences.len());
    for occ in &mv.occurrences {
        out.extend_from_slice(&occ.mask.0.to_le_bytes());
        encode_semantic_type(out, occ.semantic_type);
        put_str(out, &occ.suggestion);
    }
}

fn decode_masked_value(r: &mut Reader<'_>) -> Result<MaskedValue, PersistError> {
    let masked = decode_masked_string(r)?;
    let n = r.count(2)?;
    let mut occurrences = Vec::with_capacity(n);
    for _ in 0..n {
        let mask = MaskId(r.u16()?);
        let semantic_type = decode_semantic_type(r)?;
        let suggestion = r.str()?;
        occurrences.push(MaskOccurrence {
            mask,
            semantic_type,
            suggestion,
        });
    }
    Ok(MaskedValue {
        masked,
        occurrences,
    })
}

fn encode_abstraction(out: &mut Vec<u8>, a: &AbstractedColumn) {
    put_len(out, a.values.len());
    for mv in &a.values {
        encode_masked_value(out, mv);
    }
    encode_alphabet(out, &a.alphabet);
    // Deterministic bytes: hash-map entries in sorted key order.
    let mut defaults: Vec<(&MaskId, &String)> = a.defaults.iter().collect();
    defaults.sort_by_key(|(id, _)| id.0);
    put_len(out, defaults.len());
    for (id, text) in defaults {
        out.extend_from_slice(&id.0.to_le_bytes());
        put_str(out, text);
    }
}

fn decode_abstraction(r: &mut Reader<'_>) -> Result<AbstractedColumn, PersistError> {
    let n = r.count(4)?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(decode_masked_value(r)?);
    }
    let alphabet = decode_alphabet(r)?;
    let n = r.count(2)?;
    let mut defaults = HashMap::with_capacity(n);
    for _ in 0..n {
        let id = MaskId(r.u16()?);
        let text = r.str()?;
        defaults.insert(id, text);
    }
    Ok(AbstractedColumn {
        values,
        alphabet,
        defaults,
    })
}

// ----------------------------------------------------------------- profile

fn encode_profile(out: &mut Vec<u8>, profile: &ColumnProfile) {
    put_len(out, profile.patterns.len());
    for lp in &profile.patterns {
        encode_pattern(out, &lp.pattern);
        encode_usize_vec(out, &lp.rows);
        put_u64(out, lp.coverage.to_bits());
    }
    put_usize(out, profile.n_values);
}

fn decode_profile(r: &mut Reader<'_>) -> Result<ColumnProfile, PersistError> {
    let n = r.count(1)?;
    let mut patterns = Vec::with_capacity(n);
    for _ in 0..n {
        let pattern = decode_pattern(r, 0)?;
        let rows = decode_usize_vec(r)?;
        let coverage = r.f64()?;
        // The compiled form is a deterministic function of the pattern;
        // recompiling on load keeps DFA internals out of the format.
        let compiled = CompiledPattern::compile(pattern.clone());
        patterns.push(LearnedPattern {
            pattern,
            compiled,
            rows,
            coverage,
        });
    }
    let n_values = r.usize()?;
    Ok(ColumnProfile { patterns, n_values })
}

// ----------------------------------------------------------------- reports

fn encode_detection(out: &mut Vec<u8>, d: &Detection) {
    put_usize(out, d.row);
    put_str(out, &d.value);
}

fn decode_detection(r: &mut Reader<'_>) -> Result<Detection, PersistError> {
    Ok(Detection {
        row: r.usize()?,
        value: r.str()?,
    })
}

fn encode_candidate(out: &mut Vec<u8>, c: &RepairCandidate) {
    put_str(out, &c.repaired);
    put_usize(out, c.cost);
    put_u64(out, c.score.to_bits());
    put_str(out, &c.provenance);
}

fn decode_candidate(r: &mut Reader<'_>) -> Result<RepairCandidate, PersistError> {
    Ok(RepairCandidate {
        repaired: r.str()?,
        cost: r.usize()?,
        score: r.f64()?,
        provenance: r.str()?,
    })
}

fn encode_suggestion(out: &mut Vec<u8>, s: &RepairSuggestion) {
    put_usize(out, s.row);
    put_str(out, &s.original);
    put_str(out, &s.repaired);
    put_len(out, s.candidates.len());
    for c in &s.candidates {
        encode_candidate(out, c);
    }
}

fn decode_suggestion(r: &mut Reader<'_>) -> Result<RepairSuggestion, PersistError> {
    let row = r.usize()?;
    let original = r.str()?;
    let repaired = r.str()?;
    let n = r.count(8)?;
    let mut candidates = Vec::with_capacity(n);
    for _ in 0..n {
        candidates.push(decode_candidate(r)?);
    }
    Ok(RepairSuggestion {
        row,
        original,
        repaired,
        candidates,
    })
}

/// Encodes a [`ColumnReport`] onto `out`.
pub fn encode_column_report(report: &ColumnReport, out: &mut Vec<u8>) {
    put_usize(out, report.col);
    put_usize(out, report.n_rows);
    encode_str_vec(out, &report.significant_patterns);
    put_len(out, report.detections.len());
    for d in &report.detections {
        encode_detection(out, d);
    }
    put_len(out, report.repairs.len());
    for s in &report.repairs {
        encode_suggestion(out, s);
    }
}

/// Decodes a [`ColumnReport`] from `r`.
pub fn decode_column_report(r: &mut Reader<'_>) -> Result<ColumnReport, PersistError> {
    let col = r.usize()?;
    let n_rows = r.usize()?;
    let significant_patterns = decode_str_vec(r)?;
    let n = r.count(8)?;
    let mut detections = Vec::with_capacity(n);
    for _ in 0..n {
        detections.push(decode_detection(r)?);
    }
    let n = r.count(8)?;
    let mut repairs = Vec::with_capacity(n);
    for _ in 0..n {
        repairs.push(decode_suggestion(r)?);
    }
    Ok(ColumnReport {
        col,
        n_rows,
        significant_patterns,
        detections,
        repairs,
    })
}

/// Encodes a [`ColumnAnalysis`] onto `out`.
///
/// The interning pool is *not* written: it is rebuilt from the values on
/// decode ([`ValuePool::from_values`] is deterministic), halving the
/// payload for duplicate-heavy columns.
pub fn encode_column_analysis(analysis: &ColumnAnalysis, out: &mut Vec<u8>) {
    put_usize(out, analysis.col);
    encode_str_vec(out, &analysis.values);
    encode_abstraction(out, &analysis.abstraction);
    put_len(out, analysis.masked.len());
    for ms in &analysis.masked {
        encode_masked_string(out, ms);
    }
    encode_profile(out, &analysis.profile);
    encode_usize_vec(out, &analysis.significant);
    encode_usize_vec(out, &analysis.error_rows);
    encode_usize_vec(out, &analysis.semantic_only_rows);
}

/// Decodes a [`ColumnAnalysis`] from `r`, rebuilding the derived state
/// (interning pool, compiled patterns).
pub fn decode_column_analysis(r: &mut Reader<'_>) -> Result<ColumnAnalysis, PersistError> {
    let col = r.usize()?;
    let values = decode_str_vec(r)?;
    let abstraction = decode_abstraction(r)?;
    let n = r.count(4)?;
    let mut masked = Vec::with_capacity(n);
    for _ in 0..n {
        masked.push(decode_masked_string(r)?);
    }
    let profile = decode_profile(r)?;
    let significant = decode_usize_vec(r)?;
    let error_rows = decode_usize_vec(r)?;
    let semantic_only_rows = decode_usize_vec(r)?;
    let pool = Arc::new(ValuePool::from_values(&values));
    Ok(ColumnAnalysis {
        col,
        values: Arc::new(values),
        pool,
        abstraction,
        masked,
        profile,
        significant,
        error_rows,
        semantic_only_rows,
    })
}

// ---------------------------------------------------------------- features

fn encode_predicate(out: &mut Vec<u8>, p: &Predicate) {
    match p {
        Predicate::Equals(c, s) => {
            out.push(0);
            put_usize(out, *c);
            put_str(out, s);
        }
        Predicate::Contains(c, s) => {
            out.push(1);
            put_usize(out, *c);
            put_str(out, s);
        }
        Predicate::StartsWith(c, s) => {
            out.push(2);
            put_usize(out, *c);
            put_str(out, s);
        }
        Predicate::EndsWith(c, s) => {
            out.push(3);
            put_usize(out, *c);
            put_str(out, s);
        }
        Predicate::Length(c, n) => {
            out.push(4);
            put_usize(out, *c);
            put_usize(out, *n);
        }
        Predicate::HasDigits(c) => {
            out.push(5);
            put_usize(out, *c);
        }
        Predicate::IsNum(c) => {
            out.push(6);
            put_usize(out, *c);
        }
        Predicate::IsError(c) => {
            out.push(7);
            put_usize(out, *c);
        }
        Predicate::IsFormula(c) => {
            out.push(8);
            put_usize(out, *c);
        }
        Predicate::IsLogical(c) => {
            out.push(9);
            put_usize(out, *c);
        }
        Predicate::IsNA(c) => {
            out.push(10);
            put_usize(out, *c);
        }
        Predicate::IsText(c) => {
            out.push(11);
            put_usize(out, *c);
        }
    }
}

fn decode_predicate(r: &mut Reader<'_>) -> Result<Predicate, PersistError> {
    let at = r.pos;
    let tag = r.u8()?;
    let col = r.usize()?;
    Ok(match tag {
        0 => Predicate::Equals(col, r.str()?),
        1 => Predicate::Contains(col, r.str()?),
        2 => Predicate::StartsWith(col, r.str()?),
        3 => Predicate::EndsWith(col, r.str()?),
        4 => Predicate::Length(col, r.usize()?),
        5 => Predicate::HasDigits(col),
        6 => Predicate::IsNum(col),
        7 => Predicate::IsError(col),
        8 => Predicate::IsFormula(col),
        9 => Predicate::IsLogical(col),
        10 => Predicate::IsNA(col),
        11 => Predicate::IsText(col),
        _ => {
            return Err(PersistError::Malformed {
                at,
                what: "predicate tag out of range",
            })
        }
    })
}

/// Encodes a [`FeatureSet`] onto `out` (predicates only; the lowered
/// constant cache is derived and rebuilt on decode).
pub fn encode_feature_set(features: &FeatureSet, out: &mut Vec<u8>) {
    put_len(out, features.predicates.len());
    for p in &features.predicates {
        encode_predicate(out, p);
    }
}

/// Decodes a [`FeatureSet`] from `r`.
pub fn decode_feature_set(r: &mut Reader<'_>) -> Result<FeatureSet, PersistError> {
    let n = r.count(9)?;
    let mut predicates = Vec::with_capacity(n);
    for _ in 0..n {
        predicates.push(decode_predicate(r)?);
    }
    Ok(FeatureSet::from_predicates(predicates))
}

// ---------------------------------------------------------------- snapshot

/// Encodes the persistable skeleton of a [`SessionSnapshot`]: table shape,
/// per-column fingerprints, and the learned feature set. Derived state
/// (rendered matrix, row interner, pools) is omitted — a resumed session
/// rebuilds it lazily from the table.
pub fn encode_snapshot(snapshot: &SessionSnapshot, out: &mut Vec<u8>) {
    encode_str_vec(out, snapshot.headers());
    put_usize(out, snapshot.n_rows());
    put_len(out, snapshot.column_prints().len());
    for &print in snapshot.column_prints() {
        put_u64(out, print);
    }
    match snapshot.features() {
        Some(features) => {
            out.push(1);
            encode_feature_set(features, out);
        }
        None => out.push(0),
    }
}

/// Decodes a snapshot skeleton from `r`, wiring it to `mask_cache` (pass
/// the cleaning system's shared cache so a resumed session memoizes into
/// the same place a live one would).
pub fn decode_snapshot(
    r: &mut Reader<'_>,
    mask_cache: Arc<MaskCache>,
) -> Result<SessionSnapshot, PersistError> {
    let headers = decode_str_vec(r)?;
    let n_rows = r.usize()?;
    let n = r.count(8)?;
    let mut column_prints = Vec::with_capacity(n);
    for _ in 0..n {
        column_prints.push(r.u64()?);
    }
    let features = match r.u8()? {
        0 => None,
        1 => Some(Arc::new(decode_feature_set(r)?)),
        _ => return Err(r.malformed("bad optional tag")),
    };
    Ok(SessionSnapshot::from_parts(
        headers,
        n_rows,
        column_prints,
        features,
        mask_cache,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DataVinci;
    use datavinci_table::{Column, Table};

    fn analysis_fixture() -> (DataVinci, Table) {
        let table = Table::new(vec![
            Column::from_texts(
                "Player ID",
                &["IN-674-PRO", "usa_837", "DZ-173-PRO", "US-201-QUA"],
            ),
            Column::from_texts("City", &["Boston", "Miami", "Birminxham", "Chicago"]),
        ]);
        (DataVinci::new(), table)
    }

    #[test]
    fn column_report_roundtrip_is_identical() {
        let (dv, table) = analysis_fixture();
        let report = dv.clean_column(&table, 0);
        let mut buf = Vec::new();
        encode_column_report(&report, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_column_report(&mut r).expect("round trip");
        assert!(r.is_empty());
        assert_eq!(format!("{report:#?}"), format!("{back:#?}"));
        // Determinism: re-encoding the decoded value reproduces the bytes.
        let mut buf2 = Vec::new();
        encode_column_report(&back, &mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn column_analysis_roundtrip_replays_identically() {
        let (dv, table) = analysis_fixture();
        let session = dv.session(&table);
        let analysis = dv.analyze_column_in(&session, 0);
        let mut buf = Vec::new();
        encode_column_analysis(&analysis, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_column_analysis(&mut r).expect("round trip");
        assert!(r.is_empty());
        // The decoded analysis must drive the repair path to the same
        // report as the original (pool and compiled patterns rebuilt).
        let a = dv.repair_analysis_in(&session, &analysis);
        let b = dv.repair_analysis_in(&session, &back);
        assert_eq!(format!("{a:#?}"), format!("{b:#?}"));
        assert_eq!(back.pool.n_distinct(), analysis.pool.n_distinct());
    }

    #[test]
    fn feature_set_roundtrip_preserves_evaluation() {
        let (_, table) = analysis_fixture();
        let features = FeatureSet::generate(&table);
        let mut buf = Vec::new();
        encode_feature_set(&features, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_feature_set(&mut r).expect("round trip");
        assert!(r.is_empty());
        assert_eq!(back.predicates, features.predicates);
        for row in 0..table.n_rows() {
            assert_eq!(
                back.row_features(&table, row),
                features.row_features(&table, row)
            );
        }
    }

    #[test]
    fn snapshot_roundtrip_resumes_on_grown_table() {
        let (dv, table) = analysis_fixture();
        let session = dv.session(&table);
        let _ = session.row_features(0); // force feature generation
        let snapshot = session.into_snapshot();
        let mut buf = Vec::new();
        encode_snapshot(&snapshot, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_snapshot(&mut r, dv.mask_cache()).expect("round trip");
        assert!(r.is_empty());
        assert_eq!(back.headers(), snapshot.headers());
        assert_eq!(back.n_rows(), snapshot.n_rows());
        assert_eq!(back.column_prints(), snapshot.column_prints());
        assert!(back.features().is_some());
        assert!(back.resumable_for(&table));
        // And the skeleton actually resumes (lazy state rebuilt on use).
        let resumed = crate::AnalysisSession::resume(back, &table).expect("resumes");
        assert_eq!(resumed.stats().feature_generations, 0);
        let _ = resumed.row_features(0);
        assert_eq!(resumed.stats().feature_generations, 0, "features carried");
    }

    #[test]
    fn truncation_never_panics_and_always_errors() {
        let (dv, table) = analysis_fixture();
        let session = dv.session(&table);
        let analysis = dv.analyze_column_in(&session, 0);
        let mut buf = Vec::new();
        encode_column_analysis(&analysis, &mut buf);
        for len in 0..buf.len() {
            let mut r = Reader::new(&buf[..len]);
            assert!(
                decode_column_analysis(&mut r).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        // Pattern tag 255.
        let mut r = Reader::new(&[255]);
        assert!(decode_pattern(&mut r, 0).is_err());
        // Class index 8 (out of range).
        let mut r = Reader::new(&[8]);
        assert!(decode_class(&mut r).is_err());
        // Invalid char scalar (0xD800 is a surrogate).
        let buf = [0u8, 0x00, 0xD8, 0x00, 0x00];
        let mut toks = vec![1u8, 0, 0, 0];
        toks.extend_from_slice(&buf);
        let mut r = Reader::new(&toks);
        assert!(decode_masked_string(&mut r).is_err());
        // Length prefix exceeding the payload is rejected before allocating.
        let huge = [0xFF, 0xFF, 0xFF, 0xFF];
        let mut r = Reader::new(&huge);
        assert!(decode_str_vec(&mut r).is_err());
    }

    #[test]
    fn deep_pattern_nesting_is_rejected() {
        let mut buf = Vec::new();
        for _ in 0..200 {
            buf.push(7u8); // Repeat
            put_u32(&mut buf, 0);
            buf.push(0u8); // max = None
        }
        buf.push(0u8); // innermost Empty
        let mut r = Reader::new(&buf);
        assert!(decode_pattern(&mut r, 0).is_err());
    }
}
