//! The repair dynamic program: lowest-cost path through the unrolled DAG
//! (paper §3.3, Equation 1 and Figure 4).
//!
//! State = (tokens consumed, DAG node). Transitions: delete the current
//! token (cost 1), insert an edge's emission without consuming (cost 1),
//! match or substitute on character-like edges (cost `[v[i] ≠ ℓ(j)]`),
//! exact multi-token match of a disjunction alternative (cost 0), or
//! chunk-substitute one token with a whole abstract alternative (cost 1).
//! Class/disjunction/mask emissions stay abstract; concretization fills
//! them later (§3.4) without affecting minimality.

use crate::edit::{EditAction, EditProgram, Emit};
use datavinci_regex::{Dag, DagLabel, MaskedString, Tok};

const INF: usize = usize::MAX / 4;

#[derive(Clone, Copy, PartialEq)]
enum PKind {
    None,
    Start,
    Del,
    Match,
    MatchDisj,
    Ins,
    Sub,
}

#[derive(Clone, Copy)]
struct Parent {
    prev_i: u32,
    prev_u: u32,
    kind: PKind,
    edge: u32,
    alt: u16,
}

impl Parent {
    const NONE: Parent = Parent {
        prev_i: 0,
        prev_u: 0,
        kind: PKind::None,
        edge: 0,
        alt: 0,
    };
}

/// Finds a minimal edit program rewriting `value` into the DAG's language.
///
/// Returns `None` only when the DAG has no accepting node at all (malformed
/// input); deletions plus insertions otherwise always reach acceptance.
pub fn minimal_edit_program(dag: &Dag, value: &MaskedString) -> Option<EditProgram> {
    let toks = value.toks();
    let n = toks.len();
    let nn = dag.n_nodes;
    let idx = |i: usize, u: usize| i * nn + u;

    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); nn];
    for (ei, e) in dag.edges.iter().enumerate() {
        out_edges[e.from].push(ei);
    }

    let mut cost = vec![INF; (n + 1) * nn];
    // Tie-break: among equal-cost paths prefer the one keeping more of the
    // original tokens (more Match actions) — e.g. `837 → 837-PRO` over
    // `837 → 83-PRO`.
    let mut kept = vec![0u32; (n + 1) * nn];
    let mut parent = vec![Parent::NONE; (n + 1) * nn];
    cost[idx(0, dag.start)] = 0;
    parent[idx(0, dag.start)].kind = PKind::Start;

    macro_rules! relax {
        ($from_i:expr, $from_u:expr, $to_i:expr, $to_u:expr, $c:expr, $k:expr,
         $kind:expr, $edge:expr, $alt:expr) => {{
            let t = idx($to_i, $to_u);
            if $c < cost[t] || ($c == cost[t] && $k > kept[t]) {
                cost[t] = $c;
                kept[t] = $k;
                parent[t] = Parent {
                    prev_i: $from_i as u32,
                    prev_u: $from_u as u32,
                    kind: $kind,
                    edge: $edge as u32,
                    alt: $alt as u16,
                };
            }
        }};
    }

    for i in 0..=n {
        // Settle the layer: insert transitions move forward in topo order.
        for &u in &dag.topo {
            let (c, k) = (cost[idx(i, u)], kept[idx(i, u)]);
            if c >= INF {
                continue;
            }
            for &ei in &out_edges[u] {
                let v = dag.edges[ei].to;
                relax!(i, u, i, v, c + 1, k, PKind::Ins, ei, 0);
            }
        }
        if i == n {
            break;
        }
        // Consume transitions into later layers.
        for &u in &dag.topo {
            let (c, k) = (cost[idx(i, u)], kept[idx(i, u)]);
            if c >= INF {
                continue;
            }
            // Delete the current token.
            relax!(i, u, i + 1, u, c + 1, k, PKind::Del, 0, 0);
            for &ei in &out_edges[u] {
                let e = &dag.edges[ei];
                match &e.label {
                    DagLabel::Disj(d, _) => {
                        // Chunk substitution: one token → one alternative.
                        relax!(i, u, i + 1, e.to, c + 1, k, PKind::Sub, ei, 0);
                        // Exact whole-alternative match.
                        for (ai, alt) in dag.disjs[*d as usize].iter().enumerate() {
                            let kk = alt.len();
                            if i + kk <= n
                                && alt
                                    .iter()
                                    .zip(&toks[i..i + kk])
                                    .all(|(ch, t)| *t == Tok::Char(*ch))
                            {
                                relax!(
                                    i,
                                    u,
                                    i + kk,
                                    e.to,
                                    c,
                                    k + kk as u32,
                                    PKind::MatchDisj,
                                    ei,
                                    ai
                                );
                            }
                        }
                    }
                    label => {
                        if Dag::tok_matches(label, toks[i]) {
                            relax!(i, u, i + 1, e.to, c, k + 1, PKind::Match, ei, 0);
                        } else {
                            relax!(i, u, i + 1, e.to, c + 1, k, PKind::Sub, ei, 0);
                        }
                    }
                }
            }
        }
    }

    // Best accepting node at the final layer (max kept breaks cost ties).
    let accept = (0..nn)
        .filter(|&u| dag.accepts[u] && cost[idx(n, u)] < INF)
        .min_by_key(|&u| (cost[idx(n, u)], std::cmp::Reverse(kept[idx(n, u)])))?;
    let total = cost[idx(n, accept)];

    // Reconstruct actions.
    let mut actions = Vec::new();
    let (mut ci, mut cu) = (n, accept);
    loop {
        let p = parent[idx(ci, cu)];
        match p.kind {
            PKind::Start => break,
            PKind::None => return None,
            PKind::Del => actions.push(EditAction::Delete),
            PKind::Match => actions.push(EditAction::Match),
            PKind::MatchDisj => {
                let e = &dag.edges[p.edge as usize];
                let (d, key) = match &e.label {
                    DagLabel::Disj(d, key) => (*d, *key),
                    other => unreachable!("MatchDisj on non-disj edge {other:?}"),
                };
                let alt: String = dag.disjs[d as usize][p.alt as usize].iter().collect();
                actions.push(EditAction::MatchDisj { alt, key });
            }
            PKind::Ins => actions.push(EditAction::Insert(emit_for(dag, p.edge as usize))),
            PKind::Sub => actions.push(EditAction::Substitute(emit_for(dag, p.edge as usize))),
        }
        ci = p.prev_i as usize;
        cu = p.prev_u as usize;
    }
    actions.reverse();

    debug_assert_eq!(
        actions.iter().map(EditAction::cost).sum::<usize>(),
        total,
        "reconstructed cost must equal DP cost"
    );
    Some(EditProgram {
        actions,
        cost: total,
    })
}

pub(crate) fn emit_for(dag: &Dag, edge: usize) -> Emit {
    match &dag.edges[edge].label {
        DagLabel::Lit(c) => Emit::Char(*c),
        DagLabel::Class(cc, key) => Emit::Class(*cc, *key),
        DagLabel::Mask(m, key) => Emit::Mask(*m, *key),
        DagLabel::Disj(d, key) => Emit::Disj(
            dag.disjs[*d as usize]
                .iter()
                .map(|cs| cs.iter().collect())
                .collect(),
            *key,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_regex::{CharClass, CompiledPattern, Pattern};

    fn program_for(p: &Pattern, value: &str) -> EditProgram {
        let compiled = CompiledPattern::compile(p.clone());
        let v: MaskedString = value.into();
        let dag = compiled.dag_for_len(v.len());
        minimal_edit_program(&dag, &v).expect("program")
    }

    fn figure4_pattern() -> Pattern {
        Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ]))
    }

    #[test]
    fn members_have_zero_cost() {
        let p = figure4_pattern();
        assert_eq!(program_for(&p, "A2.").cost, 0);
        assert_eq!(program_for(&p, "A2.A3.").cost, 0);
        assert!(program_for(&p, "A2.")
            .actions
            .iter()
            .all(|a| matches!(a, EditAction::Match)));
    }

    #[test]
    fn figure4_outlier_cost_two() {
        // AAA3 vs (A[0-9].)+ — the minimal repair costs 3 (e.g. substitute
        // the second A with a digit, substitute the third with '.', delete
        // the trailing token — or keep the 3 via the unrolled second copy).
        let p = figure4_pattern();
        let program = program_for(&p, "AAA3");
        assert_eq!(program.cost, 3, "{}", program.shorthand());
        // Applying and filling digit holes with the class representative
        // must land in the language.
        let repair = program.apply(&"AAA3".into());
        let fillers: Vec<String> = repair
            .fillable_holes()
            .iter()
            .map(|_| "0".to_string())
            .collect();
        let fixed = repair.fill(&fillers);
        let compiled = CompiledPattern::compile(p);
        assert!(compiled.matches(&fixed), "{fixed} not in language");
    }

    #[test]
    fn example3_missing_digit_insertion() {
        // "A." needs one I(0-9): cost 1.
        let p = figure4_pattern();
        let program = program_for(&p, "A.");
        assert_eq!(program.cost, 1);
        assert!(program
            .actions
            .iter()
            .any(|a| matches!(a, EditAction::Insert(Emit::Class(CharClass::Digit, _)))));
    }

    #[test]
    fn disjunction_insert_is_single_action() {
        // Figure 2: usa_837 → needs "-PRO"-style suffix: I(-), I(CAT|PRO).
        let p = Pattern::concat([
            Pattern::class_plus(CharClass::Digit),
            Pattern::lit("-"),
            Pattern::disj(["CAT", "PRO"]),
        ]);
        let program = program_for(&p, "837");
        assert_eq!(program.cost, 2, "{}", program.shorthand());
        assert!(program
            .actions
            .iter()
            .any(|a| matches!(a, EditAction::Insert(Emit::Disj(_, _)))));
        // The tie-break keeps all three original digits.
        assert_eq!(
            program
                .actions
                .iter()
                .filter(|a| matches!(a, EditAction::Match))
                .count(),
            3
        );
    }

    #[test]
    fn disjunction_exact_match_is_free() {
        let p = Pattern::concat([Pattern::lit("-"), Pattern::disj(["CAT", "PRO"])]);
        let program = program_for(&p, "-PRO");
        assert_eq!(program.cost, 0);
        assert!(program
            .actions
            .iter()
            .any(|a| matches!(a, EditAction::MatchDisj { alt, .. } if alt == "PRO")));
    }

    #[test]
    fn delete_heavy_repair() {
        let p = Pattern::lit("ab");
        let program = program_for(&p, "aXYb");
        assert_eq!(program.cost, 2);
        assert_eq!(
            program
                .actions
                .iter()
                .filter(|a| matches!(a, EditAction::Delete))
                .count(),
            2
        );
    }

    #[test]
    fn empty_value_inserts_minimum() {
        let p = Pattern::concat([Pattern::lit("Q"), Pattern::Class(CharClass::Digit)]);
        let program = program_for(&p, "");
        assert_eq!(program.cost, 2);
        assert!(program
            .actions
            .iter()
            .all(|a| matches!(a, EditAction::Insert(_))));
    }

    #[test]
    fn substitution_preferred_over_insert_delete() {
        // Paper Example 4: substitution (cost 1) beats I+D (cost 2).
        let p = Pattern::concat([Pattern::lit("A"), Pattern::Class(CharClass::Digit)]);
        let program = program_for(&p, "AX");
        assert_eq!(program.cost, 1);
        assert_eq!(program.actions.len(), 2); // M, S(0-9)
        assert!(matches!(
            program.actions[1],
            EditAction::Substitute(Emit::Class(CharClass::Digit, _))
        ));
    }

    #[test]
    fn cost_equals_levenshtein_for_literal_patterns() {
        // For a pure-literal pattern the DP must equal classic Levenshtein.
        use datavinci_regex::levenshtein;
        for (pat, val) in [
            ("kitten", "sitting"),
            ("abc", "abc"),
            ("Q1-22", "Q122"),
            ("hello", ""),
        ] {
            let program = program_for(&Pattern::lit(pat), val);
            assert_eq!(program.cost, levenshtein(pat, val), "{pat} vs {val}");
        }
    }

    #[test]
    fn empty_value_against_all_abstract_pattern() {
        // Edge case: empty input against a pattern with no literal edges at
        // all. The program must be pure insertions of abstract emissions,
        // and every hole must be fillable into the language.
        let p = Pattern::concat([
            Pattern::Class(CharClass::Upper),
            Pattern::class_n(CharClass::Digit, 2),
            Pattern::disj(["CAT", "PRO"]),
        ]);
        let program = program_for(&p, "");
        assert_eq!(program.cost, 4, "{}", program.shorthand());
        assert!(program
            .actions
            .iter()
            .all(|a| matches!(a, EditAction::Insert(e) if e.is_abstract())));
        let repair = program.apply(&"".into());
        assert_eq!(repair.fillable_holes().len(), 4);
        let fillers: Vec<String> = repair
            .fillable_holes()
            .iter()
            .map(|e| match e {
                Emit::Class(cc, _) => cc.representative().to_string(),
                Emit::Disj(alts, _) => alts[0].clone(),
                _ => unreachable!("no char or mask emissions in an all-abstract pattern"),
            })
            .collect();
        let fixed = repair.fill(&fillers);
        assert!(CompiledPattern::compile(p).matches(&fixed), "{fixed}");
    }

    #[test]
    fn already_valid_value_round_trips_unchanged() {
        // Edge case: a member of the language must repair at cost 0 with no
        // holes, and applying the program must reproduce the value exactly.
        let p = Pattern::concat([
            Pattern::lit("Q"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("-"),
            Pattern::class_n(CharClass::Digit, 4),
        ]);
        let program = program_for(&p, "Q3-2001");
        assert_eq!(program.cost, 0, "{}", program.shorthand());
        assert!(program
            .actions
            .iter()
            .all(|a| matches!(a, EditAction::Match | EditAction::MatchDisj { .. })));
        let repair = program.apply(&"Q3-2001".into());
        assert!(repair.fillable_holes().is_empty(), "members need no holes");
        assert_eq!(repair.fill(&[]).to_string(), "Q3-2001");
    }

    #[test]
    fn all_abstract_substitutions_emit_only_holes() {
        // Edge case: every consumed token mismatches an abstract edge, so
        // the program is substitutions whose emissions all stay abstract
        // (classes/disjunctions — nothing concretized by the DP itself).
        let p = Pattern::concat([
            Pattern::class_n(CharClass::Digit, 3),
            Pattern::disj(["ON", "OFF"]),
        ]);
        let program = program_for(&p, "abcZ");
        assert_eq!(program.cost, 4, "{}", program.shorthand());
        let abstract_subs = program
            .actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    EditAction::Substitute(e) | EditAction::Insert(e) if e.is_abstract()
                )
            })
            .count();
        assert_eq!(
            abstract_subs,
            program.actions.len(),
            "every action must emit an abstract hole: {}",
            program.shorthand()
        );
        let repair = program.apply(&"abcZ".into());
        assert!(repair
            .holes()
            .iter()
            .all(|e| matches!(e, Emit::Class(..) | Emit::Disj(..))));
    }

    #[test]
    fn applied_repairs_always_in_language() {
        let patterns = [
            figure4_pattern(),
            Pattern::concat([
                Pattern::lit("Q"),
                Pattern::Class(CharClass::Digit),
                Pattern::lit("-"),
                Pattern::class_n(CharClass::Digit, 2),
            ]),
            Pattern::concat([
                Pattern::class_plus(CharClass::Upper),
                Pattern::lit("_"),
                Pattern::disj(["ON", "OFF"]),
            ]),
        ];
        let values = ["", "X", "Q12", "q1-2-3", "ABC_OX", "zzzzz"];
        for p in &patterns {
            let compiled = CompiledPattern::compile(p.clone());
            for v in values {
                let mv: MaskedString = v.into();
                let dag = compiled.dag_for_len(mv.len());
                let program = minimal_edit_program(&dag, &mv).expect("program");
                let repair = program.apply(&mv);
                let fillers: Vec<String> = repair
                    .fillable_holes()
                    .iter()
                    .map(|e| match e {
                        Emit::Class(cc, _) => cc.representative().to_string(),
                        Emit::Disj(alts, _) => alts[0].clone(),
                        _ => unreachable!(),
                    })
                    .collect();
                let fixed = repair.fill(&fillers);
                assert!(
                    compiled.matches(&fixed),
                    "pattern {p} value {v:?} repaired {fixed} not in language ({})",
                    program.shorthand()
                );
            }
        }
    }
}
