//! DataVinci configuration, including the ablation switches of paper §5.4.

use crate::dtree::DtreeConfig;
use crate::ranker::RankerWeights;
use datavinci_profile::ProfilerConfig;

/// How semantic abstraction is applied (§3.2 / ablations §5.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticMode {
    /// Full abstraction with in-mask repair (default DataVinci).
    Full,
    /// Abstraction without in-mask repair: masked substrings are re-used
    /// verbatim ("Limited semantic concretization").
    Limited,
    /// No abstraction: all strings treated as purely syntactic
    /// ("No semantic abstraction").
    None,
}

/// Candidate ranking strategy (§3.5 / ablation §5.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankingMode {
    /// The four-property weighted heuristic ranker (default).
    Heuristic,
    /// Shortest-edit-distance-only ranking ("Edit distance ranking").
    EditDistance,
}

/// How the repair phase iterates over detected error rows.
///
/// Both strategies decide the same repairs, so reports are byte-identical
/// either way (proven by `tests/repair_plan_vs_rowwise.rs`); the knob exists
/// so benchmarks and the differential CI step can measure and verify the
/// planner against the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairStrategy {
    /// Column-level repair plan: error rows are grouped by distinct value,
    /// and edit-program search, concretization, and candidate ranking are
    /// shared across duplicate values (the fast path; default).
    #[default]
    Planner,
    /// The per-row reference loop (the differential oracle).
    RowWise,
    /// Planner iteration, but each distinct value's minimal edit program is
    /// found by intersecting the pattern automaton with a bounded edit
    /// automaton (`datavinci_regex::intersect`), iteratively deepening the
    /// distance cap and falling back to the unbounded DP on budget
    /// overflow. Byte-identical output to [`RepairStrategy::Planner`]
    /// (proven by `tests/intersect_vs_dp.rs`).
    Intersect,
}

/// Knobs for the [`RepairStrategy::Intersect`] product search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntersectConfig {
    /// Hard cap on repair distance the product will explore before falling
    /// back to the unbounded DP.
    pub max_distance: usize,
    /// Bound on settled product states per search.
    pub state_budget: usize,
}

impl Default for IntersectConfig {
    fn default() -> Self {
        IntersectConfig {
            max_distance: datavinci_regex::intersect::DEFAULT_MAX_EDIT_DISTANCE,
            state_budget: datavinci_regex::intersect::DEFAULT_PRODUCT_STATE_BUDGET,
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct DataVinciConfig {
    /// Significance threshold δ: a pattern is significant when it covers at
    /// least this fraction of column values (§3.1).
    pub delta: f64,
    /// Pattern-profiler configuration (FlashProfile stand-in).
    pub profiler: ProfilerConfig,
    /// Semantic abstraction mode.
    pub semantics: SemanticMode,
    /// Learn concretization constraints (§3.4); when false, candidates are
    /// enumerated and ranked directly ("No learned concretization").
    pub learned_concretization: bool,
    /// Ranking strategy.
    pub ranking: RankingMode,
    /// Repair execution strategy (distinct-value planner vs per-row loop
    /// vs automaton intersection).
    pub repair_strategy: RepairStrategy,
    /// Product-search bounds used when `repair_strategy` is
    /// [`RepairStrategy::Intersect`].
    pub intersect: IntersectConfig,
    /// Heuristic ranker weights.
    pub weights: RankerWeights,
    /// Decision-tree learner configuration.
    pub dtree: DtreeConfig,
    /// Cap on enumerated candidates per error when concretization
    /// constraints are disabled.
    pub max_enumerated_candidates: usize,
    /// In execution-guided mode, validate candidate repairs by re-executing
    /// the program and prefer the first that succeeds.
    pub validate_execution: bool,
    /// Minimum fraction of text cells for a column to be cleaned at all.
    pub min_text_fraction: f64,
    /// Bound on the semantic per-value mask memo
    /// ([`datavinci_semantic::MaskCache`]) the abstraction model keeps and
    /// analysis sessions share. The engine-side artifact-cache bound lives
    /// on `datavinci_engine::EngineConfig::cache_capacity` — together the
    /// two knobs are the whole cache-capacity surface.
    pub mask_cache_capacity: usize,
}

impl Default for DataVinciConfig {
    fn default() -> Self {
        DataVinciConfig {
            delta: 0.25,
            profiler: ProfilerConfig::default(),
            semantics: SemanticMode::Full,
            learned_concretization: true,
            ranking: RankingMode::Heuristic,
            repair_strategy: RepairStrategy::default(),
            intersect: IntersectConfig::default(),
            weights: RankerWeights::default(),
            dtree: DtreeConfig::default(),
            max_enumerated_candidates: 16,
            validate_execution: true,
            min_text_fraction: 0.5,
            mask_cache_capacity: datavinci_semantic::DEFAULT_MASK_CACHE_CAPACITY,
        }
    }
}

impl DataVinciConfig {
    /// The "No semantic abstraction" ablation (§5.4.1).
    pub fn ablation_no_semantics() -> Self {
        DataVinciConfig {
            semantics: SemanticMode::None,
            ..Default::default()
        }
    }

    /// The "Limited semantic concretization" ablation (§5.4.1).
    pub fn ablation_limited_semantics() -> Self {
        DataVinciConfig {
            semantics: SemanticMode::Limited,
            ..Default::default()
        }
    }

    /// The "No learned concretization" ablation (§5.4.2).
    pub fn ablation_no_learned_concretization() -> Self {
        DataVinciConfig {
            learned_concretization: false,
            ..Default::default()
        }
    }

    /// The "Edit distance ranking" ablation (§5.4.2).
    pub fn ablation_edit_distance_ranking() -> Self {
        DataVinciConfig {
            ranking: RankingMode::EditDistance,
            ..Default::default()
        }
    }

    /// The per-row repair reference configuration (differential oracle for
    /// the distinct-value planner).
    pub fn rowwise_repair() -> Self {
        DataVinciConfig {
            repair_strategy: RepairStrategy::RowWise,
            ..Default::default()
        }
    }

    /// The automaton-intersection repair configuration (planner iteration,
    /// product-based per-value edit search).
    pub fn intersect_repair() -> Self {
        DataVinciConfig {
            repair_strategy: RepairStrategy::Intersect,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = DataVinciConfig::default();
        assert_eq!(cfg.semantics, SemanticMode::Full);
        assert!(cfg.learned_concretization);
        assert_eq!(cfg.ranking, RankingMode::Heuristic);
        assert!((cfg.dtree.alpha - 0.8).abs() < 1e-12);
    }

    #[test]
    fn planner_is_the_default_repair_strategy() {
        assert_eq!(
            DataVinciConfig::default().repair_strategy,
            RepairStrategy::Planner
        );
        assert_eq!(
            DataVinciConfig::rowwise_repair().repair_strategy,
            RepairStrategy::RowWise
        );
        assert_eq!(
            DataVinciConfig::intersect_repair().repair_strategy,
            RepairStrategy::Intersect
        );
    }

    #[test]
    fn intersect_defaults_are_bounded() {
        let cfg = IntersectConfig::default();
        assert!(cfg.max_distance >= 8);
        assert!(cfg.state_budget >= 1 << 12);
    }

    #[test]
    fn ablations_flip_one_switch_each() {
        assert_eq!(
            DataVinciConfig::ablation_no_semantics().semantics,
            SemanticMode::None
        );
        assert_eq!(
            DataVinciConfig::ablation_limited_semantics().semantics,
            SemanticMode::Limited
        );
        assert!(!DataVinciConfig::ablation_no_learned_concretization().learned_concretization);
        assert_eq!(
            DataVinciConfig::ablation_edit_distance_ranking().ranking,
            RankingMode::EditDistance
        );
    }
}
