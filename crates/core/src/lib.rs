//! DataVinci: fully unsupervised detection and repair of syntactic and
//! semantic string data errors.
//!
//! This crate is the paper's primary contribution, assembled from the
//! workspace substrates:
//!
//! 1. **Semantic abstraction** (§3.2, via `datavinci-semantic`): semantic
//!    substrings become mask tokens, with LLM-suggested replacements.
//! 2. **Significant patterns** (§3.1, via `datavinci-profile`): up to *k*
//!    learned regex patterns; those covering ≥ δ of values define the
//!    column's language.
//! 3. **Detection** (§3.1): values outside the union language are errors.
//! 4. **Edit programs** (§3.3, [`repair_dp`]): minimal M/I/D/S scripts over
//!    the unrolled pattern DAG, with *abstract* class/disjunction emissions.
//! 5. **Concretization** (§3.4, [`concretize`]): decision trees over
//!    Table-2 predicates predict concrete values for abstract edits.
//! 6. **Ranking** (§3.5, [`ranker`]): a four-property weighted heuristic.
//! 7. **Execution-guided repair** (§3.6, [`exec_guided`]): patterns learned
//!    from a program's successful executions recover otherwise-invisible
//!    errors.
//!
//! ```
//! use datavinci_core::{DataVinci, CleaningSystem};
//! use datavinci_table::{Column, Table};
//!
//! let table = Table::new(vec![
//!     Column::from_texts("Quarter", &["Q4-2002", "Q3-2002", "Q1-2001", "Q2-2002", "Q32001"]),
//! ]);
//! let dv = DataVinci::new();
//! let report = dv.clean_column(&table, 0);
//! assert_eq!(report.repairs[0].repaired, "Q3-2001");
//! ```

pub mod concretize;
pub mod config;
pub mod dtree;
pub mod edit;
pub mod exec_guided;
pub mod features;
pub mod persist;
pub mod pipeline;
pub mod ranker;
pub mod repair_dp;
pub mod repair_intersect;
pub mod repair_plan;
pub mod session;
pub mod system;

pub use concretize::Concretizer;
pub use config::{DataVinciConfig, IntersectConfig, RankingMode, RepairStrategy, SemanticMode};
pub use dtree::{learn, learn_weighted, DecisionTree, DtreeConfig};
pub use edit::{AbstractRepair, EditAction, EditProgram, Emit, Slot};
pub use exec_guided::ExecGuidedReport;
pub use features::{FeatureSet, Predicate, RenderedTable};
pub use persist::PersistError;
pub use pipeline::{ColumnAnalysis, ColumnReport, DataVinci, TableReport};
pub use ranker::{CandidateProperties, RankerWeights};
pub use repair_dp::minimal_edit_program;
pub use repair_intersect::{minimal_edit_program_product, program_from_path, IntersectStats};
pub use repair_plan::{RepairGroup, RepairPlan};
pub use session::{AnalysisSession, SessionResumeError, SessionSnapshot, SessionStats};
pub use system::{CleaningSystem, Detection, RepairCandidate, RepairSuggestion};
// The session's column-type detections surface semantic-crate types;
// re-exported so engine-layer consumers need not depend on it directly.
pub use datavinci_semantic::{MaskCache, SemanticType, TypeDetection};
