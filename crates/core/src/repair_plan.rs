//! The column-level repair plan: repair once per distinct value.
//!
//! Paper §3.3–§3.5 compute a minimal edit program, concretization fillers,
//! and ranked candidates *per error row*, yet every step except the
//! decision-tree feature lookup is a pure function of the row's value.
//! Real columns are dominated by duplicates, so the planner groups error
//! rows that carry the same value (and the same semantic abstraction) and
//! shares the expensive per-value work — DAG unrolling, the repair DP,
//! concretization, nearest-clean-value ranking — across each group. The
//! per-row loop survives as [`crate::config::RepairStrategy::RowWise`], the
//! differential oracle the planner is proven byte-identical against.

use crate::pipeline::ColumnAnalysis;
use crate::session::AnalysisSession;

/// Error rows sharing one distinct value and one abstraction.
///
/// Every row in a group renders to the same string *and* abstracted to the
/// same [`datavinci_semantic::MaskedValue`] — the precondition for sharing
/// edit programs, concretized repairs, and ranking scores. (Equal strings
/// almost always abstract equally; the rare exception is a column whose
/// prompt batches disagreed, which the builder detects and splits.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairGroup {
    /// The distinct-value index (into the analysis pool) the group repairs.
    pub distinct: usize,
    /// Member error rows, ascending. `rows[0]` is the representative.
    pub rows: Vec<usize>,
}

impl RepairGroup {
    /// The representative row (lowest error row of the group).
    pub fn representative(&self) -> usize {
        self.rows[0]
    }
}

/// The repair schedule for one analyzed column: error rows grouped by
/// distinct value, in first-error-row order.
#[derive(Debug, Clone, Default)]
pub struct RepairPlan {
    groups: Vec<RepairGroup>,
    /// For every error row (in `analysis.error_rows` order), the index of
    /// its group in `groups`.
    row_group: Vec<usize>,
}

impl RepairPlan {
    /// Plans the repair of `analysis`'s error rows.
    pub fn build(analysis: &ColumnAnalysis) -> RepairPlan {
        let mut groups: Vec<RepairGroup> = Vec::new();
        // distinct index → indices (into `groups`) of its abstraction splits.
        let mut by_distinct: Vec<Vec<usize>> = vec![Vec::new(); analysis.pool.n_distinct()];
        let mut row_group: Vec<usize> = Vec::with_capacity(analysis.error_rows.len());
        for &row in &analysis.error_rows {
            let di = analysis.pool.distinct_index(row);
            let found = by_distinct[di].iter().copied().find(|&g| {
                let rep = groups[g].representative();
                analysis.abstraction.values[rep] == analysis.abstraction.values[row]
            });
            let g = match found {
                Some(g) => {
                    groups[g].rows.push(row);
                    g
                }
                None => {
                    groups.push(RepairGroup {
                        distinct: di,
                        rows: vec![row],
                    });
                    by_distinct[di].push(groups.len() - 1);
                    groups.len() - 1
                }
            };
            row_group.push(g);
        }
        RepairPlan { groups, row_group }
    }

    /// [`RepairPlan::build`], recording the sharing outcome (error rows vs
    /// groups) into the session's reuse telemetry.
    pub fn build_in(analysis: &ColumnAnalysis, session: &AnalysisSession<'_>) -> RepairPlan {
        let plan = RepairPlan::build(analysis);
        session.record_plan(plan.n_rows(), plan.n_groups());
        plan
    }

    /// The planned groups, in first-error-row order.
    pub fn groups(&self) -> &[RepairGroup] {
        &self.groups
    }

    /// Number of groups (distinct erroneous values, modulo abstraction
    /// splits) — the number of times the expensive repair path runs.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of planned error rows.
    pub fn n_rows(&self) -> usize {
        self.row_group.len()
    }

    /// The group index of the `i`-th error row of the analysis.
    pub fn group_of_error(&self, i: usize) -> usize {
        self.row_group[i]
    }

    /// Rows served per expensive repair computation (1.0 = all-distinct
    /// errors, higher = duplicate-heavy).
    pub fn sharing_factor(&self) -> f64 {
        if self.groups.is_empty() {
            1.0
        } else {
            self.n_rows() as f64 / self.n_groups() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DataVinci;
    use datavinci_table::{Column, Table};

    fn analysis_for(values: &[&str]) -> ColumnAnalysis {
        let table = Table::new(vec![Column::from_texts("c", values)]);
        DataVinci::new().analyze_column(&table, 0)
    }

    #[test]
    fn duplicate_errors_share_one_group() {
        // 16 clean ids keep the duplicated outliers (4/20 = 0.2) below the
        // δ = 0.25 significance threshold.
        let mut values: Vec<String> = (1..=16).map(|i| format!("a-{i}")).collect();
        values.extend(["X9", "X9", "X9", "Y7"].map(String::from));
        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
        let analysis = analysis_for(&refs);
        assert_eq!(analysis.error_rows, vec![16, 17, 18, 19]);
        let plan = RepairPlan::build(&analysis);
        assert_eq!(plan.n_rows(), 4);
        assert_eq!(plan.n_groups(), 2);
        assert_eq!(plan.groups()[0].rows, vec![16, 17, 18]);
        assert_eq!(plan.groups()[1].rows, vec![19]);
        assert_eq!(plan.group_of_error(1), 0);
        assert_eq!(plan.group_of_error(3), 1);
        assert!((plan.sharing_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_distinct_errors_stay_singletons() {
        let analysis = analysis_for(&["a-1", "a-2", "a-3", "a-4", "a-5", "a-6", "X9", "Y7"]);
        let plan = RepairPlan::build(&analysis);
        assert_eq!(plan.n_groups(), plan.n_rows());
        assert!((plan.sharing_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_error_set_plans_nothing() {
        let analysis = analysis_for(&["a-1", "a-2", "a-3"]);
        let plan = RepairPlan::build(&analysis);
        assert_eq!(plan.n_groups(), 0);
        assert_eq!(plan.n_rows(), 0);
        assert_eq!(plan.sharing_factor(), 1.0);
    }
}
