//! The heuristic repair-candidate ranker (paper §3.5).
//!
//! "A weighted linear combination of edit script properties. The weights are
//! manually set based on qualitative analysis on a small held-out set …
//! The four properties are (1) string edit distance between erroneous value
//! and the repaired value, (2) count of alphanumeric edit operations,
//! (3) string edit distance of repaired value to closest value in column,
//! and (4) fraction of column matching the significant pattern used to
//! generate the repair." Lower scores rank first.

use datavinci_regex::levenshtein;

/// The manually tuned weights.
#[derive(Debug, Clone, Copy)]
pub struct RankerWeights {
    /// Weight on edit distance (property 1).
    pub edit_distance: f64,
    /// Weight on alphanumeric edit-operation count (property 2).
    pub alnum_edits: f64,
    /// Weight on distance of the repair to the closest column value (3).
    pub closest_value: f64,
    /// Weight on (1 − pattern coverage) (property 4; higher coverage is
    /// better, so the complement is penalized).
    pub coverage: f64,
}

impl Default for RankerWeights {
    fn default() -> Self {
        RankerWeights {
            edit_distance: 1.0,
            alnum_edits: 0.5,
            closest_value: 0.75,
            coverage: 2.0,
        }
    }
}

/// The measured properties of one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateProperties {
    /// Levenshtein distance from the erroneous value to the repair.
    pub edit_distance: usize,
    /// Number of alphanumeric edit operations in the edit program.
    pub alnum_edits: usize,
    /// Distance of the repair to the nearest non-error column value.
    pub closest_value_distance: usize,
    /// Coverage of the significant pattern that produced the repair.
    pub pattern_coverage: f64,
}

impl CandidateProperties {
    /// Measures a candidate against its column context. Accepts any string
    /// slice type so hot paths can pass borrowed column values.
    pub fn measure<S: AsRef<str>>(
        original: &str,
        repaired: &str,
        alnum_edits: usize,
        pattern_coverage: f64,
        column_values: &[S],
    ) -> CandidateProperties {
        let closest = column_values
            .iter()
            .map(S::as_ref)
            .filter(|v| *v != original)
            .map(|v| levenshtein(repaired, v))
            .min()
            .unwrap_or(0);
        CandidateProperties {
            edit_distance: levenshtein(original, repaired),
            alnum_edits,
            closest_value_distance: closest,
            pattern_coverage,
        }
    }

    /// The weighted heuristic score (lower ranks first).
    pub fn heuristic_score(&self, w: &RankerWeights) -> f64 {
        w.edit_distance * self.edit_distance as f64
            + w.alnum_edits * self.alnum_edits as f64
            + w.closest_value * self.closest_value_distance as f64
            + w.coverage * (1.0 - self.pattern_coverage)
    }

    /// The ablated edit-distance-only score (§5.4.2).
    pub fn edit_distance_score(&self) -> f64 {
        self.edit_distance as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column() -> Vec<String> {
        ["Ind-674-PRO", "US-201-QUA", "FR-475-PRO"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn measure_computes_all_properties() {
        let p = CandidateProperties::measure("usa_837", "US-837-PRO", 2, 0.5, &column());
        assert_eq!(p.edit_distance, 8);
        assert_eq!(p.alnum_edits, 2);
        // closest column value to US-837-PRO is US-201-QUA (distance 5)
        // or FR-475-PRO (distance 5).
        assert_eq!(p.closest_value_distance, 5);
    }

    #[test]
    fn higher_coverage_scores_better() {
        let lo = CandidateProperties {
            edit_distance: 2,
            alnum_edits: 1,
            closest_value_distance: 3,
            pattern_coverage: 0.3,
        };
        let hi = CandidateProperties {
            pattern_coverage: 0.9,
            ..lo
        };
        let w = RankerWeights::default();
        assert!(hi.heuristic_score(&w) < lo.heuristic_score(&w));
    }

    #[test]
    fn edit_distance_mode_ignores_everything_else() {
        let a = CandidateProperties {
            edit_distance: 1,
            alnum_edits: 99,
            closest_value_distance: 99,
            pattern_coverage: 0.0,
        };
        let b = CandidateProperties {
            edit_distance: 2,
            alnum_edits: 0,
            closest_value_distance: 0,
            pattern_coverage: 1.0,
        };
        assert!(a.edit_distance_score() < b.edit_distance_score());
        let w = RankerWeights::default();
        assert!(a.heuristic_score(&w) > b.heuristic_score(&w));
    }

    #[test]
    fn original_value_excluded_from_closest() {
        // The erroneous value itself sits in the column; nearest-neighbour
        // distance must not use it (it would always be lev(orig, repaired)).
        let column = vec!["xx".to_string(), "ab".to_string()];
        let p = CandidateProperties::measure("xx", "xy", 1, 1.0, &column);
        assert_eq!(p.closest_value_distance, 2); // vs "ab", not vs "xx"
    }
}
