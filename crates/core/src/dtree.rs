//! Decision-tree learning for concretization constraints (paper §3.4).
//!
//! "DataVinci samples trees with varying number of split nodes and depth,
//! filters down to those with an accuracy of at least α (default 0.8), ranks
//! trees in ascending order of (nodes, depth), and takes the first such
//! tree." We realize the sampling as greedy information-gain induction over
//! a (depth, leaves) budget grid — small budgets produce exactly the small
//! trees the ranking prefers, so scanning budgets in ascending order and
//! keeping the first α-accurate tree reproduces the selection rule.

/// Learner configuration.
#[derive(Debug, Clone, Copy)]
pub struct DtreeConfig {
    /// Minimum training accuracy (α).
    pub alpha: f64,
    /// Largest depth tried.
    pub max_depth: usize,
    /// Largest leaf budget tried.
    pub max_leaves: usize,
}

impl Default for DtreeConfig {
    fn default() -> Self {
        DtreeConfig {
            alpha: 0.8,
            max_depth: 3,
            max_leaves: 8,
        }
    }
}

/// A learned decision tree over boolean features with categorical labels.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionTree {
    /// Predict a label.
    Leaf(u32),
    /// Split on feature `feature`: false branch, true branch.
    Split {
        /// Feature index.
        feature: usize,
        /// Subtree when the feature is false.
        low: Box<DecisionTree>,
        /// Subtree when the feature is true.
        high: Box<DecisionTree>,
    },
}

impl DecisionTree {
    /// Predicts the label for one feature vector.
    pub fn predict(&self, features: &[bool]) -> u32 {
        match self {
            DecisionTree::Leaf(label) => *label,
            DecisionTree::Split { feature, low, high } => {
                if features.get(*feature).copied().unwrap_or(false) {
                    high.predict(features)
                } else {
                    low.predict(features)
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        match self {
            DecisionTree::Leaf(_) => 1,
            DecisionTree::Split { low, high, .. } => 1 + low.n_nodes() + high.n_nodes(),
        }
    }

    /// Tree depth (leaf = 0).
    pub fn depth(&self) -> usize {
        match self {
            DecisionTree::Leaf(_) => 0,
            DecisionTree::Split { low, high, .. } => 1 + low.depth().max(high.depth()),
        }
    }

    /// Training accuracy over a dataset.
    pub fn accuracy(&self, rows: &[Vec<bool>], labels: &[u32]) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        let correct = rows
            .iter()
            .zip(labels)
            .filter(|(r, l)| self.predict(r) == **l)
            .count();
        correct as f64 / rows.len() as f64
    }
}

/// Learns the smallest α-accurate tree, or `None` if no tried budget
/// reaches α (the concretizer then falls back to majority voting).
pub fn learn(rows: &[Vec<bool>], labels: &[u32], cfg: &DtreeConfig) -> Option<DecisionTree> {
    let refs: Vec<&[bool]> = rows.iter().map(Vec::as_slice).collect();
    let weights = vec![1usize; rows.len()];
    learn_weighted(&refs, labels, &weights, cfg)
}

/// [`learn`] over *distinct* feature vectors carrying multiplicities.
///
/// `rows[i]` stands for `weights[i]` identical training examples with label
/// `labels[i]`. Every quantity greedy induction reads — label histograms,
/// entropies, gains, majorities, accuracies — is a linear aggregate of the
/// examples, so inducing over the weighted distinct vectors returns the
/// *exact* tree row-wise expansion would (differentially proven by the
/// session test suite). Duplicate-heavy columns collapse their per-row
/// example sets to a handful of weighted vectors and skip the expansion
/// entirely.
pub fn learn_weighted(
    rows: &[&[bool]],
    labels: &[u32],
    weights: &[usize],
    cfg: &DtreeConfig,
) -> Option<DecisionTree> {
    if rows.is_empty() || rows.len() != labels.len() || rows.len() != weights.len() {
        return None;
    }
    // An all-zero-weight input stands for the empty example set: behave
    // exactly like `learn` on the expansion. (Individual zero weights are
    // neutral — they contribute to no histogram, entropy, or accuracy.)
    if weights.iter().all(|&w| w == 0) {
        return None;
    }
    let data = Weighted {
        rows,
        labels,
        weights,
    };
    let n_labels = labels.iter().copied().max().unwrap_or(0) as usize + 1;
    let indices: Vec<usize> = (0..rows.len()).collect();
    let mut candidates: Vec<DecisionTree> = Vec::new();
    for depth in 0..=cfg.max_depth {
        for leaves in 1..=cfg.max_leaves {
            let mut budget = leaves;
            let tree = build(&data, n_labels, &indices, depth, &mut budget);
            if data.accuracy(&tree) >= cfg.alpha && !candidates.contains(&tree) {
                candidates.push(tree);
            }
            // Leftover ≥ 2 proves the leaf budget never denied a split
            // (a denial pins the countdown at exactly 1): every larger
            // budget at this depth builds the exact same tree — skip the
            // duplicate grid cells (greedy induction is deterministic, so
            // only a binding budget changes the outcome).
            if budget > 1 {
                break;
            }
        }
    }
    candidates
        .into_iter()
        .min_by_key(|t| (t.n_nodes(), t.depth()))
}

/// The weighted training set greedy induction runs over.
struct Weighted<'a> {
    rows: &'a [&'a [bool]],
    labels: &'a [u32],
    weights: &'a [usize],
}

impl Weighted<'_> {
    /// Weighted training accuracy (correct example weight / total weight).
    fn accuracy(&self, tree: &DecisionTree) -> f64 {
        let total: usize = self.weights.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let correct: usize = self
            .rows
            .iter()
            .zip(self.labels)
            .zip(self.weights)
            .filter(|((r, l), _)| tree.predict(r) == **l)
            .map(|(_, w)| w)
            .sum();
        correct as f64 / total as f64
    }
}

/// Label histogram over `indices`, as a dense vector (labels are compact
/// indices into the caller's label table). Entropy sums floats, so counts
/// are always consumed in ascending label order — a hash map's
/// per-instance iteration order would make gain comparisons flip at ULP
/// scale between otherwise identical `learn` calls, and the repair planner
/// and its per-row oracle must pick the *same* tree for the same examples.
fn label_counts(data: &Weighted<'_>, n_labels: usize, indices: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; n_labels];
    for &i in indices {
        counts[data.labels[i] as usize] += data.weights[i];
    }
    counts
}

fn majority_of_counts(counts: &[usize]) -> u32 {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(label, &count)| (count, std::cmp::Reverse(label)))
        .map(|(label, _)| label as u32)
        .unwrap_or(0)
}

/// Entropy of a label histogram (counts in ascending label order).
fn entropy_of_counts(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

fn build(
    data: &Weighted<'_>,
    n_labels: usize,
    indices: &[usize],
    depth_budget: usize,
    leaf_budget: &mut usize,
) -> DecisionTree {
    let counts = label_counts(data, n_labels, indices);
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    // `n` is the *example* count (sum of weights): a single distinct vector
    // of weight ≥ 2 must behave exactly like its row-wise expansion.
    let n: usize = counts.iter().sum();
    if depth_budget == 0 || *leaf_budget <= 1 || pure || n < 2 {
        return DecisionTree::Leaf(majority_of_counts(&counts));
    }
    let n_features = data.rows[indices[0]].len();
    let base = entropy_of_counts(&counts, n);
    // Gain scan over count histograms only; the index partition is built
    // once, for the winning feature.
    let mut best: Option<(f64, usize)> = None;
    let mut hi_counts = vec![0usize; n_labels];
    #[allow(clippy::needless_range_loop)] // `f` indexes the inner row dim
    for f in 0..n_features {
        hi_counts.iter_mut().for_each(|c| *c = 0);
        let mut n_hi = 0usize;
        for &i in indices {
            if data.rows[i][f] {
                hi_counts[data.labels[i] as usize] += data.weights[i];
                n_hi += data.weights[i];
            }
        }
        if n_hi == 0 || n_hi == n {
            continue;
        }
        let lo_counts: Vec<usize> = counts
            .iter()
            .zip(&hi_counts)
            .map(|(&all, &hi)| all - hi)
            .collect();
        let n_lo = n - n_hi;
        let gain = base
            - (n_lo as f64 / n as f64) * entropy_of_counts(&lo_counts, n_lo)
            - (n_hi as f64 / n as f64) * entropy_of_counts(&hi_counts, n_hi);
        if gain > 1e-12 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
            best = Some((gain, f));
        }
    }
    match best {
        None => DecisionTree::Leaf(majority_of_counts(&counts)),
        Some((_, feature)) => {
            let (mut lo, mut hi) = (Vec::new(), Vec::new());
            for &i in indices {
                if data.rows[i][feature] {
                    hi.push(i);
                } else {
                    lo.push(i);
                }
            }
            // A split consumes one leaf slot and creates two.
            *leaf_budget -= 1;
            let low = build(data, n_labels, &lo, depth_budget - 1, leaf_budget);
            let high = build(data, n_labels, &hi, depth_budget - 1, leaf_budget);
            DecisionTree::Split {
                feature,
                low: Box::new(low),
                high: Box::new(high),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DtreeConfig {
        DtreeConfig::default()
    }

    #[test]
    fn single_feature_split() {
        // label = feature 0 (Example 5 shape: equals(Category, "Professional")
        // → PRO vs QUA).
        let rows = vec![
            vec![true, false],
            vec![false, true],
            vec![true, true],
            vec![false, false],
        ];
        let labels = vec![1, 0, 1, 0];
        let tree = learn(&rows, &labels, &cfg()).unwrap();
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.n_nodes(), 3);
        assert_eq!(tree.predict(&[true, false]), 1);
        assert_eq!(tree.predict(&[false, true]), 0);
        assert!((tree.accuracy(&rows, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_labels_learn_leaf() {
        let rows = vec![vec![true], vec![false], vec![true]];
        let labels = vec![7, 7, 7];
        let tree = learn(&rows, &labels, &cfg()).unwrap();
        assert_eq!(tree, DecisionTree::Leaf(7));
    }

    #[test]
    fn prefers_smaller_tree_at_same_accuracy() {
        // Feature 0 perfectly separates; feature 1 is noise. The chosen tree
        // must be the 3-node depth-1 tree, not anything deeper.
        let rows: Vec<Vec<bool>> = (0..16)
            .map(|i| vec![i % 2 == 0, (i / 2) % 2 == 0])
            .collect();
        let labels: Vec<u32> = (0..16).map(|i| u32::from(i % 2 == 0)).collect();
        let tree = learn(&rows, &labels, &cfg()).unwrap();
        assert_eq!(tree.n_nodes(), 3);
        assert!(matches!(tree, DecisionTree::Split { feature: 0, .. }));
    }

    #[test]
    fn alpha_filter_rejects_unlearnable() {
        // Labels independent of the single constant-ish feature: with one
        // useless feature, best achievable accuracy is 50% < α.
        let rows = vec![vec![true], vec![true], vec![false], vec![false]];
        let labels = vec![0, 1, 0, 1];
        assert_eq!(learn(&rows, &labels, &cfg()), None);
    }

    #[test]
    fn depth_two_interaction() {
        // XOR of two features needs depth 2.
        let rows = vec![
            vec![false, false],
            vec![false, true],
            vec![true, false],
            vec![true, true],
        ];
        let labels = vec![0, 1, 1, 0];
        let tree = learn(&rows, &labels, &cfg());
        // Greedy induction cannot split XOR at depth 1 (no gain), so either
        // it finds a depth-2 tree via a tie-break or returns None. Both are
        // acceptable behaviours for the paper's heuristic learner; assert we
        // don't return an *inaccurate* tree.
        if let Some(t) = tree {
            assert!(t.accuracy(&rows, &labels) >= 0.8);
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(learn(&[], &[], &cfg()), None);
        assert_eq!(learn_weighted(&[], &[], &[], &cfg()), None);
        // All-zero weights expand to the empty example set.
        assert_eq!(learn_weighted(&[&[true]], &[0], &[0], &cfg()), None);
        // A zero-weight entry is invisible next to weighted ones: identical
        // to expanding only the weighted rows.
        assert_eq!(
            learn_weighted(&[&[true], &[false]], &[1, 0], &[3, 0], &cfg()),
            learn(&vec![vec![true]; 3], &[1, 1, 1], &cfg())
        );
    }

    #[test]
    fn weighted_induction_equals_row_expansion() {
        // Distinct (vector, label) pairs with multiplicities vs the same
        // set written out row by row: identical trees, including the
        // single-heavy-vector edge (weight ≥ 2 must not read as "one
        // example" and collapse to a trivial leaf).
        type Case = (Vec<Vec<bool>>, Vec<u32>, Vec<usize>);
        let cases: Vec<Case> = vec![
            (
                vec![vec![true, false], vec![false, true], vec![true, true]],
                vec![1, 0, 1],
                vec![5, 3, 1],
            ),
            (vec![vec![true], vec![false]], vec![0, 1], vec![7, 2]),
            (vec![vec![true, true]], vec![4], vec![6]),
            (
                vec![
                    vec![true, false, true],
                    vec![true, false, false],
                    vec![false, true, true],
                    vec![false, false, false],
                ],
                vec![0, 0, 1, 2],
                vec![1, 4, 2, 2],
            ),
        ];
        for (rows, labels, weights) in cases {
            let mut expanded_rows: Vec<Vec<bool>> = Vec::new();
            let mut expanded_labels: Vec<u32> = Vec::new();
            for ((r, &l), &w) in rows.iter().zip(&labels).zip(&weights) {
                for _ in 0..w {
                    expanded_rows.push(r.clone());
                    expanded_labels.push(l);
                }
            }
            let refs: Vec<&[bool]> = rows.iter().map(Vec::as_slice).collect();
            assert_eq!(
                learn_weighted(&refs, &labels, &weights, &cfg()),
                learn(&expanded_rows, &expanded_labels, &cfg()),
                "{rows:?} {labels:?} {weights:?}"
            );
        }
    }

    #[test]
    fn majority_fallback_with_noise() {
        // 90% of labels are 3; a leaf already reaches α = 0.8.
        let rows: Vec<Vec<bool>> = (0..10).map(|i| vec![i == 0]).collect();
        let labels: Vec<u32> = (0..10).map(|i| if i == 0 { 1 } else { 3 }).collect();
        let tree = learn(&rows, &labels, &cfg()).unwrap();
        // Smallest α-accurate tree may be the single leaf (predicts 3) —
        // 9/10 = 0.9 ≥ 0.8 — or a perfect split; either way ≥ α and small.
        assert!(tree.n_nodes() <= 3);
        assert!(tree.accuracy(&rows, &labels) >= 0.8);
    }
}
