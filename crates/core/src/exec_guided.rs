//! Execution-guided repair (paper §3.6).
//!
//! Given a column-transformation program that reads the table, DataVinci:
//! 1. executes it and partitions rows into successes and failures;
//! 2. learns patterns over the *success* inputs only and treats **all** of
//!    them as significant (bypassing the δ threshold);
//! 3. flags the failing rows' inputs as data errors and repairs them with
//!    the ordinary engine;
//! 4. (ours, configurable) validates candidates by re-executing the program
//!    on the repaired row and prefers the first that succeeds.
//!
//! This recovers repairs the unsupervised mode cannot see — e.g. Figure 8,
//! where the erroneous shape `C[0-9]{2}` is frequent enough to be a
//! significant pattern on its own.

use std::collections::HashMap;

use crate::config::SemanticMode;
use crate::pipeline::{ColumnAnalysis, ColumnReport, DataVinci};
use crate::session::AnalysisSession;
use datavinci_formula::{ColumnProgram, ExecutionGroups};
use datavinci_profile::profile_column;
use datavinci_semantic::AbstractedColumn;
use datavinci_table::{CellRef, CellValue, Table};

/// The result of one execution-guided cleaning run.
#[derive(Debug, Clone)]
pub struct ExecGuidedReport {
    /// Per-input-column reports.
    pub columns: Vec<ColumnReport>,
    /// Execution outcome before any repair.
    pub before: ExecutionGroups,
    /// Execution outcome after applying the chosen repairs.
    pub after: ExecutionGroups,
    /// The table with repairs applied.
    pub repaired_table: Table,
}

impl ExecGuidedReport {
    /// Did repairs make the whole formula column execute cleanly?
    pub fn fully_repaired(&self) -> bool {
        self.after.fully_successful()
    }
}

impl DataVinci {
    /// Cleans every input column of `program`, guided by its execution.
    ///
    /// One [`AnalysisSession`] over the *original* table is shared by every
    /// input column: the exec-guided repairs concretize against the same
    /// once-generated feature context the unsupervised path uses.
    pub fn clean_with_program(&self, table: &Table, program: &ColumnProgram) -> ExecGuidedReport {
        let _span = datavinci_telemetry::span(datavinci_telemetry::stages::VALIDATE);
        let before = program.execution_groups(table);
        let mut repaired_table = table.clone();
        let mut columns = Vec::new();
        let session = self.session(table);

        if !before.failures.is_empty() {
            for name in program.input_columns() {
                let Some(col) = table.column_index(name) else {
                    continue;
                };
                let analysis = self.analyze_with_execution(&session, col, &before);
                let mut report = self.repair_analysis_in(&session, &analysis);

                // Validate-by-execution: for each suggestion, walk candidates
                // best-first and keep the first whose repaired row executes.
                //
                // Execution is row-local, so one probe table (cell swapped
                // in, then restored) plus `execute_row` replaces the old
                // whole-table clone-and-execute per candidate — and the
                // verdict is a pure function of the candidate value and the
                // row's *other* input cells, so duplicate error values
                // re-evaluate only once per distinct sibling context.
                if self.config().validate_execution {
                    let other_inputs: Vec<usize> = program
                        .input_columns()
                        .iter()
                        .filter_map(|name| table.column_index(name))
                        .filter(|&c| c != col)
                        .collect();
                    let mut probe = repaired_table.clone();
                    let mut verdicts: HashMap<(String, String), bool> = HashMap::new();
                    for suggestion in &mut report.repairs {
                        let row = suggestion.row;
                        // The sibling-input context key. Debug rendering
                        // keeps value *kinds* distinct (text "3" vs the
                        // number 3 evaluate differently).
                        let context = other_inputs
                            .iter()
                            .map(|&c| format!("{:?}\u{1f}", probe.cell(CellRef::new(c, row))))
                            .collect::<String>();
                        let cell = CellRef::new(col, row);
                        let original_cell = probe.cell(cell).expect("error row in range").clone();
                        let mut chosen: Option<String> = None;
                        for cand in &suggestion.candidates {
                            let key = (cand.repaired.clone(), context.clone());
                            let ok = match verdicts.get(&key) {
                                Some(&ok) => ok,
                                None => {
                                    probe.set_cell(cell, CellValue::text(cand.repaired.clone()));
                                    let ok = !program.execute_row(&probe, row).is_error();
                                    verdicts.insert(key, ok);
                                    ok
                                }
                            };
                            if ok {
                                chosen = Some(cand.repaired.clone());
                                break;
                            }
                        }
                        probe.set_cell(cell, original_cell);
                        if let Some(best) = chosen {
                            suggestion.repaired = best;
                        }
                    }
                }

                // Apply suggestions.
                for suggestion in &report.repairs {
                    repaired_table.set_cell(
                        CellRef::new(col, suggestion.row),
                        CellValue::text(suggestion.repaired.clone()),
                    );
                }
                columns.push(report);
            }
        }

        let after = program.execution_groups(&repaired_table);
        ExecGuidedReport {
            columns,
            before,
            after,
            repaired_table,
        }
    }

    /// Builds a column analysis whose patterns come from the execution's
    /// success group only, all treated as significant.
    fn analyze_with_execution(
        &self,
        session: &AnalysisSession<'_>,
        col: usize,
        groups: &ExecutionGroups,
    ) -> ColumnAnalysis {
        let table = session.table();
        let column = table.column(col).expect("column in range");
        let values = session.column_values(col);
        let pool = session.value_pool(col);

        let abstraction = match self.config().semantics {
            SemanticMode::None => AbstractedColumn::plain(&values),
            _ => self
                .abstractor_ref()
                .abstract_column(column.name(), &values),
        };
        let masked = abstraction.masked_strings();

        // Learn patterns over success inputs only.
        let success_masked: Vec<datavinci_regex::MaskedString> = groups
            .successes
            .iter()
            .map(|&r| masked[r].clone())
            .collect();
        let mut profile = profile_column(&success_masked, &self.config().profiler);
        // Re-evaluate each pattern's rows against the FULL column so row
        // indices and coverage line up with the table.
        let n = masked.len();
        for lp in &mut profile.patterns {
            let hits = lp.compiled.matches_many(&masked);
            lp.rows = (0..n).filter(|&r| hits[r]).collect();
            lp.coverage = if n == 0 {
                0.0
            } else {
                lp.rows.len() as f64 / n as f64
            };
        }
        profile.n_values = n;

        // All learned patterns are significant (paper §3.6).
        let significant: Vec<usize> = (0..profile.patterns.len()).collect();
        let error_rows = groups.failures.clone();

        ColumnAnalysis {
            col,
            values,
            pool,
            abstraction,
            masked,
            profile,
            significant,
            error_rows,
            semantic_only_rows: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    #[test]
    fn intro_example_c_dash() {
        // §1: col1 = [c-1, c-2, c3, c4] with =SEARCH("-", [@col1]).
        // Unsupervised DataVinci sees two significant patterns and fixes
        // nothing; execution guidance repairs c3 → c-3, c4 → c-4.
        let table = Table::new(vec![Column::from_texts(
            "col1",
            &["c-1", "c-2", "c3", "c4"],
        )]);
        let program = ColumnProgram::parse("=SEARCH(\"-\", [@col1])").unwrap();
        let dv = DataVinci::new();

        // Unsupervised: no errors.
        let unsup = dv.clean_column(&table, 0);
        assert!(unsup.detections.is_empty(), "{unsup:#?}");

        // Execution-guided: both failures repaired.
        let report = dv.clean_with_program(&table, &program);
        assert_eq!(report.before.failures, vec![2, 3]);
        assert!(report.fully_repaired(), "{report:#?}");
        let repaired: Vec<String> = report.repaired_table.column(0).unwrap().rendered();
        assert_eq!(repaired, vec!["c-1", "c-2", "c-3", "c-4"]);
    }

    #[test]
    fn figure8_exec_guided_beats_unsupervised() {
        // Figure 8: the outlier shape C[0-9]{2} is frequent enough to be
        // significant, so only execution guidance can see it. The formula
        // extracts the digits after "C-".
        let table = Table::new(vec![Column::from_texts(
            "ID",
            &["C-19", "C-21", "C-33", "C-48", "C-55", "C51", "C52", "C53"],
        )]);
        let program = ColumnProgram::parse("=MID([@ID], SEARCH(\"-\", [@ID])+1, 2)*1").unwrap();
        let dv = DataVinci::new();

        let unsup = dv.clean_column(&table, 0);
        assert!(unsup.detections.is_empty(), "unsupervised must miss these");

        let report = dv.clean_with_program(&table, &program);
        assert_eq!(report.before.failures.len(), 3);
        assert!(report.fully_repaired(), "{report:#?}");
        let repaired: Vec<String> = report.repaired_table.column(0).unwrap().rendered();
        assert_eq!(&repaired[5..], &["C-51", "C-52", "C-53"]);
    }

    #[test]
    fn no_failures_no_changes() {
        let table = Table::new(vec![Column::from_texts("x", &["a-1", "b-2"])]);
        let program = ColumnProgram::parse("=SEARCH(\"-\", [@x])").unwrap();
        let dv = DataVinci::new();
        let report = dv.clean_with_program(&table, &program);
        assert!(report.before.fully_successful());
        assert!(report.columns.is_empty());
        assert_eq!(report.repaired_table, table);
    }

    #[test]
    fn multi_column_formula_repairs_both_inputs() {
        let table = Table::new(vec![
            Column::from_texts("a", &["x-1", "x-2", "x3", "x-4"]),
            Column::from_texts("b", &["10", "20", "30", "4o"]),
        ]);
        // Needs '-' in a and a numeric b.
        let program = ColumnProgram::parse("=SEARCH(\"-\", [@a]) + VALUE([@b])").unwrap();
        let dv = DataVinci::new();
        let report = dv.clean_with_program(&table, &program);
        assert_eq!(report.before.failures, vec![2, 3]);
        assert!(report.fully_repaired(), "{report:#?}");
        let a: Vec<String> = report.repaired_table.column(0).unwrap().rendered();
        let b: Vec<String> = report.repaired_table.column(1).unwrap().rendered();
        assert_eq!(a[2], "x-3");
        assert_eq!(b[3], "40");
    }
}
