//! The table-scoped analysis session: one shared context for features,
//! masks, and pools across every column of a table.
//!
//! DataVinci's hole concretization conditions on *row features drawn from
//! the whole table* (paper §3.4), yet each column repair used to regenerate
//! the [`FeatureSet`] from scratch and keep the other shared state
//! (interning pools, mask memos, type detections) in disconnected per-call
//! caches. An [`AnalysisSession`] is created once per table clean and owns
//! everything that is a pure function of the table:
//!
//! * the **rendered/lowercased cell matrix** ([`RenderedTable`]) and the
//!   [`FeatureSet`] generated from it — at most once per table, shared by
//!   every column's concretizer and decision-tree learner;
//! * **row feature vectors**, interned per *distinct table row* (rows equal
//!   in every cell share one vector) and memoized across columns;
//! * the per-column rendered **values** and [`ValuePool`]s the repair
//!   planner and the semantic layers key their sharing on;
//! * a handle to the semantic [`MaskCache`] (per-value gazetteer sweeps,
//!   shared with the abstraction model) and a [`ColumnTypeMemo`] for
//!   semantic column-type detections.
//!
//! Sessions are `Sync`: the batch engine cleans the columns of one table
//! concurrently through a single shared session, and equal tables within a
//! batch share one session outright. [`AnalysisSession::stats`] snapshots
//! the reuse counters (the CLI and the engine surface them in reports).
//!
//! Sessions are also **extendable**: when rows are appended to a table, the
//! session's learned state is a strict prefix of the grown table's, so
//! instead of rebuilding everything, [`AnalysisSession::into_snapshot`]
//! detaches the owned state from the table borrow and
//! [`AnalysisSession::resume`] re-attaches it to the grown table, extending
//! the rendered matrix, the row interner, and every memoized value vector
//! and [`ValuePool`] in place. This is what the streaming engine rides:
//! each chunk resumes the previous chunk's session rather than re-rendering
//! and re-interning the whole prefix.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::features::{FeatureSet, RenderedTable};
use datavinci_semantic::{ColumnTypeMemo, Gazetteer, MaskCache, TypeDetection};
use datavinci_table::{ArenaInterner, CellValue, Table, ValuePool};

/// A snapshot of one session's reuse counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Times [`FeatureSet`] generation ran (at most 1 per session).
    pub feature_generations: u64,
    /// Distinct row feature vectors computed.
    pub feature_rows_computed: u64,
    /// Row feature lookups served from the memo (duplicate rows, repeat
    /// lookups across patterns and columns).
    pub feature_row_hits: u64,
    /// Per-column value pools interned.
    pub pools_built: u64,
    /// Pool lookups served from the memo.
    pub pools_reused: u64,
    /// Table rows covered by the row interner (0 until first needed).
    pub table_rows: u64,
    /// Distinct table rows (0 until first needed).
    pub distinct_rows: u64,
    /// Error rows scheduled by repair plans built in this session.
    pub plan_error_rows: u64,
    /// Repair groups those plans produced (the number of times the
    /// expensive repair path ran).
    pub plan_groups: u64,
    /// Semantic column-type detections memoized.
    pub column_types_memoized: u64,
    /// Entries currently in the shared semantic mask cache (absolute — the
    /// cache outlives sessions).
    pub mask_cache_entries: u64,
    /// Mask-cache hits since this session opened (a delta against the
    /// shared cache's counters, so the number is this session's own
    /// traffic; sessions open concurrently can overlap).
    pub mask_cache_hits: u64,
    /// Mask-cache misses since this session opened (delta, like
    /// `mask_cache_hits`).
    pub mask_cache_misses: u64,
    /// Times this session's state was resumed onto a grown table
    /// ([`AnalysisSession::resume`] / [`AnalysisSession::extend`]).
    pub session_extensions: u64,
    /// Rows appended across those resumes.
    pub rows_appended: u64,
}

impl SessionStats {
    /// Folds another snapshot into this one (batch aggregation). Mask-cache
    /// hit/miss deltas sum (exact for sequentially opened sessions);
    /// `mask_cache_entries` is an absolute gauge and takes the maximum.
    pub fn accumulate(&mut self, other: &SessionStats) {
        self.feature_generations += other.feature_generations;
        self.feature_rows_computed += other.feature_rows_computed;
        self.feature_row_hits += other.feature_row_hits;
        self.pools_built += other.pools_built;
        self.pools_reused += other.pools_reused;
        self.table_rows += other.table_rows;
        self.distinct_rows += other.distinct_rows;
        self.plan_error_rows += other.plan_error_rows;
        self.plan_groups += other.plan_groups;
        self.column_types_memoized += other.column_types_memoized;
        self.mask_cache_entries = self.mask_cache_entries.max(other.mask_cache_entries);
        self.mask_cache_hits += other.mask_cache_hits;
        self.mask_cache_misses += other.mask_cache_misses;
        self.session_extensions += other.session_extensions;
        self.rows_appended += other.rows_appended;
    }

    /// Rows served per repair-plan group (1.0 when nothing was planned).
    pub fn plan_sharing_factor(&self) -> f64 {
        if self.plan_groups == 0 {
            1.0
        } else {
            self.plan_error_rows as f64 / self.plan_groups as f64
        }
    }
}

/// Live reuse counters (atomic: sessions are shared across worker threads).
#[derive(Debug, Default)]
struct Counters {
    feature_generations: AtomicU64,
    feature_rows_computed: AtomicU64,
    feature_row_hits: AtomicU64,
    pools_built: AtomicU64,
    pools_reused: AtomicU64,
    plan_error_rows: AtomicU64,
    plan_groups: AtomicU64,
    session_extensions: AtomicU64,
    rows_appended: AtomicU64,
}

/// Table-level row interning: rows equal in every cell (kind *and* rendered
/// text) share a distinct-row index, and therefore one feature vector and
/// one weighted decision-tree example.
///
/// The key → index map is retained (not just the counts) so appended rows
/// can be interned incrementally: existing rows keep their distinct index,
/// which is what keeps the session's per-distinct-row feature memo valid
/// across [`AnalysisSession::resume`].
///
/// Keys live in an [`ArenaInterner`], and the interning loop renders each
/// key into one reused buffer — interning N rows costs O(distinct) string
/// storage instead of one `String` per row. Ids come out in
/// first-occurrence order, exactly as the former `HashMap` + `or_insert`
/// numbering did.
#[derive(Debug, Default)]
struct RowPool {
    index: ArenaInterner,
    row_to_distinct: Vec<usize>,
}

impl RowPool {
    fn build(rendered: &RenderedTable) -> RowPool {
        let mut pool = RowPool::default();
        pool.extend(rendered, 0);
        pool
    }

    /// Interns rows `from_row..` of the (already extended) rendered matrix.
    fn extend(&mut self, rendered: &RenderedTable, from_row: usize) {
        debug_assert_eq!(from_row, self.row_to_distinct.len());
        self.row_to_distinct.reserve(rendered.n_rows() - from_row);
        let mut key = String::new();
        for row in from_row..rendered.n_rows() {
            key.clear();
            rendered.write_row_key(row, &mut key);
            self.row_to_distinct.push(self.index.intern(&key) as usize);
        }
    }

    fn n_distinct(&self) -> usize {
        self.index.len()
    }
}

/// The shared analysis context for one table (see the module docs).
pub struct AnalysisSession<'t> {
    table: &'t Table,
    rendered: OnceLock<RenderedTable>,
    features: OnceLock<Arc<FeatureSet>>,
    row_pool: OnceLock<RowPool>,
    /// Distinct-row index → feature vector.
    row_features: Mutex<HashMap<usize, Arc<[bool]>>>,
    /// Column index → rendered values.
    values: Mutex<HashMap<usize, Arc<Vec<String>>>>,
    /// Column index → interned value pool.
    pools: Mutex<HashMap<usize, Arc<ValuePool>>>,
    /// The semantic per-value mask memo (shared with the abstraction model
    /// when the session is created via [`crate::DataVinci::session`], so
    /// its reuse spans tables and batches).
    mask_cache: Arc<MaskCache>,
    /// The shared cache's counters at session open, so [`Self::stats`] can
    /// report this session's own mask traffic as a delta.
    mask_base: datavinci_semantic::MaskCacheStats,
    types: ColumnTypeMemo,
    counters: Counters,
}

impl<'t> AnalysisSession<'t> {
    /// A fresh session for `table`, with its own (empty) mask cache.
    pub fn new(table: &'t Table) -> AnalysisSession<'t> {
        AnalysisSession::with_mask_cache(table, Arc::new(MaskCache::default()))
    }

    /// A session sharing a longer-lived mask cache (the abstraction model's,
    /// so per-value gazetteer sweeps memoize across tables and batches).
    pub fn with_mask_cache(table: &'t Table, mask_cache: Arc<MaskCache>) -> AnalysisSession<'t> {
        let mask_base = mask_cache.stats();
        AnalysisSession {
            table,
            rendered: OnceLock::new(),
            features: OnceLock::new(),
            row_pool: OnceLock::new(),
            row_features: Mutex::new(HashMap::new()),
            values: Mutex::new(HashMap::new()),
            pools: Mutex::new(HashMap::new()),
            mask_cache,
            mask_base,
            types: ColumnTypeMemo::default(),
            counters: Counters::default(),
        }
    }

    /// The table this session analyzes.
    pub fn table(&self) -> &'t Table {
        self.table
    }

    /// The rendered/lowercased cell matrix (built on first use).
    fn rendered(&self) -> &RenderedTable {
        self.rendered.get_or_init(|| RenderedTable::new(self.table))
    }

    /// The table's feature set — generated at most once per session, or
    /// adopted from [`AnalysisSession::seed_features`].
    pub fn features(&self) -> &FeatureSet {
        self.features.get_or_init(|| {
            let _span = datavinci_telemetry::span("session.generate_features");
            self.counters
                .feature_generations
                .fetch_add(1, Ordering::Relaxed);
            Arc::new(FeatureSet::generate_rendered(self.table, self.rendered()))
        })
    }

    /// Adopts a previously generated feature set (engine session cache).
    /// Sound only for a table identical to the one the set was generated
    /// from; no-op if this session already has features.
    pub fn seed_features(&self, features: Arc<FeatureSet>) {
        let _ = self.features.set(features);
    }

    /// The feature set, if one was generated or seeded (for caching).
    pub fn features_arc(&self) -> Option<Arc<FeatureSet>> {
        self.features.get().cloned()
    }

    /// The distinct-row index of `row` (table-level row interning).
    pub fn distinct_row(&self, row: usize) -> usize {
        self.row_pool().row_to_distinct[row]
    }

    /// Number of distinct table rows.
    pub fn n_distinct_rows(&self) -> usize {
        self.row_pool().n_distinct()
    }

    fn row_pool(&self) -> &RowPool {
        self.row_pool
            .get_or_init(|| RowPool::build(self.rendered()))
    }

    /// The feature vector of `row`, computed once per *distinct* table row
    /// and shared across duplicate rows, patterns, and columns.
    ///
    /// Evaluation happens *outside* the memo lock: the engine's workers
    /// repair the columns of one table through one shared session, and the
    /// concretization hot path must not serialize on a mutex held across
    /// feature generation. Two threads racing on the same distinct row may
    /// both evaluate; the first insert wins and both results are equal
    /// (feature evaluation is pure).
    pub fn row_features(&self, row: usize) -> Arc<[bool]> {
        let di = self.distinct_row(row);
        if let Some(hit) = self.row_features.lock().expect("session poisoned").get(&di) {
            self.counters
                .feature_row_hits
                .fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let computed: Arc<[bool]> = self
            .features()
            .row_features_rendered(self.rendered(), row)
            .into();
        let mut map = self.row_features.lock().expect("session poisoned");
        match map.get(&di) {
            Some(existing) => Arc::clone(existing),
            None => {
                self.counters
                    .feature_rows_computed
                    .fetch_add(1, Ordering::Relaxed);
                map.insert(di, Arc::clone(&computed));
                computed
            }
        }
    }

    /// Column `col`'s rendered values, computed once per session.
    pub fn column_values(&self, col: usize) -> Arc<Vec<String>> {
        let mut map = self.values.lock().expect("session poisoned");
        if let Some(hit) = map.get(&col) {
            return Arc::clone(hit);
        }
        let column = self.table.column(col).expect("column index in range");
        let values = Arc::new(column.rendered());
        map.insert(col, Arc::clone(&values));
        values
    }

    /// Column `col`'s interned value pool, computed once per session.
    pub fn value_pool(&self, col: usize) -> Arc<ValuePool> {
        {
            let map = self.pools.lock().expect("session poisoned");
            if let Some(hit) = map.get(&col) {
                self.counters.pools_reused.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(hit);
            }
        }
        let pool = Arc::new(ValuePool::from_values(&self.column_values(col)));
        self.install_pool(col, Arc::clone(&pool));
        pool
    }

    /// The pool for `col` if one is already memoized — without building.
    /// The append path consults this before extending a prior pool: a
    /// resumed session already carries the extended pool, so re-extending
    /// would duplicate the merge work.
    pub fn cached_pool(&self, col: usize) -> Option<Arc<ValuePool>> {
        let hit = self
            .pools
            .lock()
            .expect("session poisoned")
            .get(&col)
            .map(Arc::clone);
        if hit.is_some() {
            self.counters.pools_reused.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Installs an externally built pool for `col` (the append path extends
    /// a prior pool instead of re-interning and registers the result here).
    pub fn install_pool(&self, col: usize, pool: Arc<ValuePool>) {
        self.counters.pools_built.fetch_add(1, Ordering::Relaxed);
        self.pools
            .lock()
            .expect("session poisoned")
            .insert(col, pool);
    }

    /// The shared semantic mask cache handle.
    pub fn mask_cache(&self) -> &Arc<MaskCache> {
        &self.mask_cache
    }

    /// Detects column `col`'s dominant semantic type, memoized per column
    /// for the session's lifetime (the gazetteer sweep over the column's
    /// distinct values runs at most once).
    pub fn column_type(
        &self,
        col: usize,
        gaz: &Gazetteer,
        min_confidence: f64,
    ) -> Option<TypeDetection> {
        let pool = self.value_pool(col);
        self.types
            .detect(col, &pool.distinct(), pool.counts(), gaz, min_confidence)
    }

    /// Records a repair plan's sharing outcome (called by
    /// [`crate::RepairPlan::build_in`]).
    pub(crate) fn record_plan(&self, error_rows: usize, groups: usize) {
        self.counters
            .plan_error_rows
            .fetch_add(error_rows as u64, Ordering::Relaxed);
        self.counters
            .plan_groups
            .fetch_add(groups as u64, Ordering::Relaxed);
    }

    /// A snapshot of the session's reuse counters.
    pub fn stats(&self) -> SessionStats {
        let mask = self.mask_cache.stats();
        SessionStats {
            feature_generations: self.counters.feature_generations.load(Ordering::Relaxed),
            feature_rows_computed: self.counters.feature_rows_computed.load(Ordering::Relaxed),
            feature_row_hits: self.counters.feature_row_hits.load(Ordering::Relaxed),
            pools_built: self.counters.pools_built.load(Ordering::Relaxed),
            pools_reused: self.counters.pools_reused.load(Ordering::Relaxed),
            table_rows: self
                .row_pool
                .get()
                .map_or(0, |p| p.row_to_distinct.len() as u64),
            distinct_rows: self.row_pool.get().map_or(0, |p| p.n_distinct() as u64),
            plan_error_rows: self.counters.plan_error_rows.load(Ordering::Relaxed),
            plan_groups: self.counters.plan_groups.load(Ordering::Relaxed),
            column_types_memoized: self.types.len() as u64,
            mask_cache_entries: mask.entries,
            mask_cache_hits: mask.hits.saturating_sub(self.mask_base.hits),
            mask_cache_misses: mask.misses.saturating_sub(self.mask_base.misses),
            session_extensions: self.counters.session_extensions.load(Ordering::Relaxed),
            rows_appended: self.counters.rows_appended.load(Ordering::Relaxed),
        }
    }

    /// Detaches the session's owned state from the table borrow.
    ///
    /// The snapshot records the table's shape (headers, row count, column
    /// fingerprints) so a later [`AnalysisSession::resume`] can verify the
    /// new table really is the old one plus appended rows before adopting
    /// the state. Everything learned — rendered matrix, feature set, row
    /// interner, feature memo, value vectors, pools, mask-cache handle,
    /// counters — carries over; only the column-type memo is dropped
    /// (appended rows can change a type verdict).
    pub fn into_snapshot(self) -> SessionSnapshot {
        SessionSnapshot {
            headers: self.table.headers().iter().map(|h| h.to_string()).collect(),
            n_rows: self.table.n_rows(),
            column_prints: self
                .table
                .columns()
                .iter()
                .map(|c| c.fingerprint())
                .collect(),
            rendered: self.rendered.into_inner(),
            features: self.features.into_inner(),
            row_pool: self.row_pool.into_inner(),
            row_features: self.row_features.into_inner().expect("session poisoned"),
            values: self.values.into_inner().expect("session poisoned"),
            pools: self.pools.into_inner().expect("session poisoned"),
            mask_cache: self.mask_cache,
            mask_base: self.mask_base,
            counters: self.counters,
        }
    }

    /// Re-attaches a snapshot to `table`, which must be the snapshot's
    /// table plus zero or more appended rows ([`SessionSnapshot::resumable_for`]).
    ///
    /// The rendered matrix, row interner, memoized value vectors, and value
    /// pools are *extended* over the appended rows — prior rows are never
    /// re-rendered or re-interned. The feature set (if generated) is kept
    /// as-is: resumed cleaning re-scores the previously learned features
    /// against the appended rows, exactly like the engine's append-only
    /// cache arm; callers wanting fresh features on drift simply start a
    /// new session.
    pub fn resume(
        snapshot: SessionSnapshot,
        table: &'t Table,
    ) -> Result<AnalysisSession<'t>, SessionResumeError> {
        snapshot.check_resumable(table)?;
        let appended = table.n_rows() - snapshot.n_rows;
        datavinci_telemetry::counter("session.resumes", 1);
        datavinci_telemetry::counter("session.rows_appended", appended as u64);
        let SessionSnapshot {
            n_rows: prior_rows,
            mut rendered,
            features,
            mut row_pool,
            row_features,
            mut values,
            mut pools,
            mask_cache,
            mask_base,
            counters,
            ..
        } = snapshot;

        if let Some(r) = rendered.as_mut() {
            r.extend(table, prior_rows);
        }
        if let Some(p) = row_pool.as_mut() {
            let r = rendered
                .as_ref()
                .expect("a row pool implies a rendered matrix");
            p.extend(r, prior_rows);
        }
        let appended_rendered = |col: usize| -> Vec<String> {
            let column = table.column(col).expect("column count verified");
            (prior_rows..table.n_rows())
                .map(|row| column.get(row).map(CellValue::render).unwrap_or_default())
                .collect()
        };
        for (&col, vals) in values.iter_mut() {
            Arc::make_mut(vals).extend(appended_rendered(col));
        }
        for (&col, pool) in pools.iter_mut() {
            let tail = match values.get(&col) {
                Some(v) => v[prior_rows..].to_vec(),
                None => appended_rendered(col),
            };
            *pool = Arc::new(pool.extended(&tail));
        }

        counters.session_extensions.fetch_add(1, Ordering::Relaxed);
        counters
            .rows_appended
            .fetch_add(appended as u64, Ordering::Relaxed);
        fn into_lock<T>(v: Option<T>) -> OnceLock<T> {
            let lock = OnceLock::new();
            if let Some(v) = v {
                let _ = lock.set(v);
            }
            lock
        }
        Ok(AnalysisSession {
            table,
            rendered: into_lock(rendered),
            features: into_lock(features),
            row_pool: into_lock(row_pool),
            row_features: Mutex::new(row_features),
            values: Mutex::new(values),
            pools: Mutex::new(pools),
            mask_cache,
            mask_base,
            types: ColumnTypeMemo::default(),
            counters,
        })
    }

    /// [`AnalysisSession::into_snapshot`] + [`AnalysisSession::resume`] in
    /// one step: moves this session's learned state onto `grown` (this
    /// table plus appended rows).
    pub fn extend<'u>(self, grown: &'u Table) -> Result<AnalysisSession<'u>, SessionResumeError> {
        AnalysisSession::resume(self.into_snapshot(), grown)
    }
}

/// An [`AnalysisSession`]'s owned state, detached from the table borrow so
/// it can outlive the table it was learned on and be resumed on a grown
/// copy (see [`AnalysisSession::into_snapshot`]).
pub struct SessionSnapshot {
    headers: Vec<String>,
    n_rows: usize,
    column_prints: Vec<u64>,
    rendered: Option<RenderedTable>,
    features: Option<Arc<FeatureSet>>,
    row_pool: Option<RowPool>,
    row_features: HashMap<usize, Arc<[bool]>>,
    values: HashMap<usize, Arc<Vec<String>>>,
    pools: HashMap<usize, Arc<ValuePool>>,
    mask_cache: Arc<MaskCache>,
    mask_base: datavinci_semantic::MaskCacheStats,
    counters: Counters,
}

impl SessionSnapshot {
    /// Rebuilds a snapshot from its persistable parts (headers, row count,
    /// column fingerprints, and the learned feature set).
    ///
    /// The derived state a live session also carries — rendered matrix, row
    /// interner, value vectors, pools — is intentionally absent: it is a
    /// pure function of the table and is rebuilt lazily on first use after
    /// [`AnalysisSession::resume`], exactly like a session that never
    /// touched it. This is what the engine's durable artifact store writes
    /// to disk: the part that is *learned* (features) plus the part that
    /// *validates* resumption (shape + fingerprints).
    pub fn from_parts(
        headers: Vec<String>,
        n_rows: usize,
        column_prints: Vec<u64>,
        features: Option<Arc<FeatureSet>>,
        mask_cache: Arc<MaskCache>,
    ) -> SessionSnapshot {
        let mask_base = mask_cache.stats();
        SessionSnapshot {
            headers,
            n_rows,
            column_prints,
            rendered: None,
            features,
            row_pool: None,
            row_features: HashMap::new(),
            values: HashMap::new(),
            pools: HashMap::new(),
            mask_cache,
            mask_base,
            counters: Counters::default(),
        }
    }

    /// Header names of the snapshot's table, in column order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Per-column content fingerprints over the snapshot's `n_rows` rows.
    pub fn column_prints(&self) -> &[u64] {
        &self.column_prints
    }

    /// The feature set carried by the snapshot, if one was generated.
    pub fn features(&self) -> Option<&Arc<FeatureSet>> {
        self.features.as_ref()
    }

    /// Rows the snapshot's table had when it was taken.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// True when [`AnalysisSession::resume`] on `table` would succeed:
    /// same headers, at least as many rows, and every column's first
    /// `n_rows` cells fingerprint-identical to the snapshot's (appended
    /// rows only).
    pub fn resumable_for(&self, table: &Table) -> bool {
        self.check_resumable(table).is_ok()
    }

    fn check_resumable(&self, table: &Table) -> Result<(), SessionResumeError> {
        if table.headers() != self.headers.iter().map(String::as_str).collect::<Vec<_>>() {
            return Err(SessionResumeError::HeaderMismatch);
        }
        if table.n_rows() < self.n_rows {
            return Err(SessionResumeError::TableShrunk {
                had: self.n_rows,
                got: table.n_rows(),
            });
        }
        for (col, (column, &print)) in table.columns().iter().zip(&self.column_prints).enumerate() {
            if column.fingerprint_prefix(self.n_rows) != print {
                return Err(SessionResumeError::PrefixChanged { col });
            }
        }
        Ok(())
    }
}

/// Why a [`SessionSnapshot`] could not be resumed on a table (the table is
/// not the snapshot's table plus appended rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionResumeError {
    /// Column names or order differ.
    HeaderMismatch,
    /// The new table has fewer rows than the snapshot covered.
    TableShrunk {
        /// Rows the snapshot covered.
        had: usize,
        /// Rows the new table has.
        got: usize,
    },
    /// A column's prefix rows changed content (not an append).
    PrefixChanged {
        /// The first differing column.
        col: usize,
    },
}

impl std::fmt::Display for SessionResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionResumeError::HeaderMismatch => write!(f, "table headers changed"),
            SessionResumeError::TableShrunk { had, got } => {
                write!(f, "table shrank from {had} to {got} rows")
            }
            SessionResumeError::PrefixChanged { col } => {
                write!(f, "column {col} changed within previously analyzed rows")
            }
        }
    }
}

impl std::error::Error for SessionResumeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    fn table() -> Table {
        Table::new(vec![
            Column::from_texts("a", &["x", "y", "x", "x"]),
            Column::from_texts("b", &["1-a", "2-b", "1-a", "1-a"]),
        ])
    }

    #[test]
    fn features_generate_once_and_memoize_rows() {
        let t = table();
        let s = AnalysisSession::new(&t);
        assert_eq!(s.stats().feature_generations, 0, "lazy until first use");
        let f0 = s.row_features(0);
        let f2 = s.row_features(2);
        let f3 = s.row_features(2);
        assert_eq!(s.stats().feature_generations, 1);
        // Rows 0, 2, 3 are identical → one shared vector.
        assert!(Arc::ptr_eq(&f0, &f2) && Arc::ptr_eq(&f2, &f3));
        let stats = s.stats();
        assert_eq!(stats.feature_rows_computed, 1);
        assert_eq!(stats.feature_row_hits, 2);
        assert_eq!(stats.table_rows, 4);
        assert_eq!(stats.distinct_rows, 2);
        // And the vectors equal the non-session reference path.
        let fs = FeatureSet::generate(&t);
        assert_eq!(&f0[..], &fs.row_features(&t, 0)[..]);
        assert_eq!(&s.row_features(1)[..], &fs.row_features(&t, 1)[..]);
    }

    #[test]
    fn seeded_features_skip_generation() {
        let t = table();
        let s = AnalysisSession::new(&t);
        s.seed_features(Arc::new(FeatureSet::generate(&t)));
        let _ = s.row_features(0);
        assert_eq!(s.stats().feature_generations, 0);
        assert!(s.features_arc().is_some());
    }

    #[test]
    fn pools_and_values_memoize_per_column() {
        let t = table();
        let s = AnalysisSession::new(&t);
        let p1 = s.value_pool(1);
        let p2 = s.value_pool(1);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(p1.n_distinct(), 2);
        let stats = s.stats();
        assert_eq!(stats.pools_built, 1);
        assert_eq!(stats.pools_reused, 1);
        assert_eq!(*s.column_values(0), vec!["x", "y", "x", "x"]);
    }

    #[test]
    fn column_type_memoizes() {
        let t = Table::new(vec![Column::from_texts(
            "city",
            &["Boston", "Miami", "Boston", "Chicago"],
        )]);
        let s = AnalysisSession::new(&t);
        let gaz = Gazetteer::new();
        let first = s.column_type(0, &gaz, 0.5).expect("city column detected");
        let again = s.column_type(0, &gaz, 0.5).expect("memo hit");
        assert_eq!(first, again);
        assert_eq!(s.stats().column_types_memoized, 1);
    }

    fn grown_table() -> Table {
        let mut t = table();
        t.column_mut(0)
            .unwrap()
            .values_mut()
            .extend([CellValue::text("y"), CellValue::text("z")]);
        t.column_mut(1)
            .unwrap()
            .values_mut()
            .extend([CellValue::text("2-b"), CellValue::text("3-c")]);
        t
    }

    #[test]
    fn extend_carries_state_and_matches_fresh_session() {
        let small = table();
        let grown = grown_table();

        let s = AnalysisSession::new(&small);
        let _ = s.row_features(0);
        let _ = s.value_pool(1);
        let _ = s.column_values(0);
        let prior_features = s.features_arc().expect("generated");

        let s = s.extend(&grown).expect("append-only growth resumes");
        let fresh = AnalysisSession::new(&grown);

        // Same features object (re-score semantics), no regeneration.
        assert!(Arc::ptr_eq(
            &s.features_arc().expect("carried"),
            &prior_features
        ));
        // Extended pools/values/interner agree with a from-scratch session.
        assert_eq!(*s.value_pool(1), *fresh.value_pool(1));
        assert_eq!(*s.column_values(0), *fresh.column_values(0));
        assert_eq!(s.n_distinct_rows(), fresh.n_distinct_rows());
        for row in 0..grown.n_rows() {
            assert_eq!(s.distinct_row(row), fresh.distinct_row(row), "row {row}");
        }
        // Appended row features evaluate against the carried feature set.
        for row in 0..grown.n_rows() {
            assert_eq!(
                &s.row_features(row)[..],
                &prior_features.row_features(&grown, row)[..],
                "row {row}"
            );
        }
        let stats = s.stats();
        assert_eq!(stats.session_extensions, 1);
        assert_eq!(stats.rows_appended, 2);
        assert_eq!(stats.feature_generations, 1, "no regeneration on resume");
    }

    #[test]
    fn extend_preserves_distinct_indices_for_feature_memo() {
        let small = table();
        let grown = grown_table();
        let s = AnalysisSession::new(&small);
        let before = s.row_features(1);
        let s = s.extend(&grown).expect("resumes");
        // Row 4 duplicates row 1; the memoized vector must be shared.
        assert!(Arc::ptr_eq(&before, &s.row_features(4)));
        assert!(s.stats().feature_row_hits >= 1);
    }

    #[test]
    fn resume_rejects_non_append_growth() {
        let small = table();
        let snapshot = {
            let s = AnalysisSession::new(&small);
            let _ = s.row_features(0);
            s.into_snapshot()
        };
        assert!(snapshot.resumable_for(&small), "identity resume allowed");

        let mut mutated = grown_table();
        mutated
            .column_mut(1)
            .unwrap()
            .set(0, CellValue::text("XXX"));
        assert!(!snapshot.resumable_for(&mutated));
        assert_eq!(
            AnalysisSession::resume(snapshot, &mutated).err(),
            Some(SessionResumeError::PrefixChanged { col: 1 })
        );

        let shrunk = Table::new(vec![
            Column::from_texts("a", &["x"]),
            Column::from_texts("b", &["1-a"]),
        ]);
        let s = AnalysisSession::new(&small);
        assert_eq!(
            s.into_snapshot().check_resumable(&shrunk),
            Err(SessionResumeError::TableShrunk { had: 4, got: 1 })
        );

        let renamed = Table::new(vec![
            Column::from_texts("a", &["x", "y", "x", "x"]),
            Column::from_texts("B", &["1-a", "2-b", "1-a", "1-a"]),
        ]);
        let s = AnalysisSession::new(&small);
        assert_eq!(
            s.into_snapshot().check_resumable(&renamed),
            Err(SessionResumeError::HeaderMismatch)
        );
    }

    #[test]
    fn lazy_session_resumes_without_building_anything() {
        // A session whose state was never touched snapshots to an empty
        // snapshot and resumes into a lazily-built session.
        let small = table();
        let grown = grown_table();
        let s = AnalysisSession::new(&small);
        let s = s.extend(&grown).expect("resumes");
        assert_eq!(
            s.n_distinct_rows(),
            AnalysisSession::new(&grown).n_distinct_rows()
        );
        assert_eq!(s.stats().feature_generations, 0);
    }
}
