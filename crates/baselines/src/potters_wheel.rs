//! Potter's-Wheel-like baseline: MDL structure inference \[18\].
//!
//! Potter's Wheel infers the most suitable *structure* (domain) for a
//! column by minimum description length and flags values that do not parse
//! under it. We reproduce the detection side (the original's repairs are
//! interactive): candidate structures are the distinct coarse shape
//! signatures; the chosen structure set minimizes
//! `DL = Σ len(structure) + Σ_values cost(value | structures)`, where a
//! value covered by a chosen structure costs its parameter bits (run
//! lengths) and an uncovered value costs its verbatim length. Values left
//! uncovered by the MDL-optimal structure set are the detected errors.

use std::collections::HashMap;

use datavinci_core::{CleaningSystem, Detection, RepairSuggestion};
use datavinci_table::Table;

/// Shape structure: class runs with symbol literals (`Q1-22` → `a d - d`).
fn structure_of(v: &str) -> String {
    let mut out = String::new();
    let mut last = '\0';
    for c in v.chars() {
        let k = if c.is_ascii_digit() {
            'd'
        } else if c.is_ascii_alphabetic() {
            'a'
        } else {
            c
        };
        if k != last || !"da".contains(k) {
            out.push(k);
        }
        last = k;
    }
    out
}

/// Per-value parameter cost under a matching structure: one unit per run
/// (its length) plus one per literal.
fn param_cost(v: &str) -> f64 {
    (structure_of(v).chars().count() as f64) * 1.0
}

/// The Potter's-Wheel-like detector.
#[derive(Debug, Default)]
pub struct PottersWheelLike;

impl PottersWheelLike {
    /// A new detector.
    pub fn new() -> PottersWheelLike {
        PottersWheelLike
    }

    /// Chooses the MDL-optimal structure set and returns uncovered rows.
    fn uncovered_rows(values: &[String]) -> Vec<usize> {
        if values.is_empty() {
            return Vec::new();
        }
        let structures: Vec<String> = values.iter().map(|v| structure_of(v)).collect();
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for s in &structures {
            *freq.entry(s.as_str()).or_insert(0) += 1;
        }
        // Candidate structures ordered by coverage (desc). Singleton
        // structures never amortize their model bits and are excluded.
        let mut candidates: Vec<(&str, usize)> = freq
            .iter()
            .filter(|&(_, &c)| c >= 2)
            .map(|(&s, &c)| (s, c))
            .collect();
        candidates.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s));

        // Greedy MDL: add structures while total description length drops.
        let verbatim: f64 = values
            .iter()
            .map(|v| v.chars().count().max(1) as f64 * 3.0)
            .sum();
        let mut chosen: Vec<&str> = Vec::new();
        let mut best_dl = verbatim;
        loop {
            let mut improved = false;
            for &(cand, _) in &candidates {
                if chosen.contains(&cand) {
                    continue;
                }
                let mut trial = chosen.clone();
                trial.push(cand);
                let dl = description_length(values, &structures, &trial);
                if dl + 1e-9 < best_dl {
                    best_dl = dl;
                    chosen = trial;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }

        if chosen.is_empty() {
            // No structure pays for itself: the column is irregular and
            // nothing can be singled out (cf. DataVinci's Figure 6 ②).
            return Vec::new();
        }
        structures
            .iter()
            .enumerate()
            .filter(|(_, s)| !chosen.contains(&s.as_str()))
            .map(|(i, _)| i)
            .collect()
    }
}

fn description_length(values: &[String], structures: &[String], chosen: &[&str]) -> f64 {
    let model: f64 = chosen
        .iter()
        .map(|s| s.chars().count() as f64 * 2.0 + 6.0)
        .sum();
    let data: f64 = values
        .iter()
        .zip(structures)
        .map(|(v, s)| {
            if chosen.contains(&s.as_str()) {
                param_cost(v)
            } else {
                v.chars().count().max(1) as f64 * 3.0
            }
        })
        .sum();
    model + data
}

impl CleaningSystem for PottersWheelLike {
    fn name(&self) -> &'static str {
        "Potters-Wheel"
    }

    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        let values: Vec<String> = table.column(col).expect("in range").rendered();
        Self::uncovered_rows(&values)
            .into_iter()
            .map(|row| Detection {
                row,
                value: values[row].clone(),
            })
            .collect()
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        self.detect(table, col)
            .into_iter()
            .map(|d| RepairSuggestion {
                row: d.row,
                original: d.value.clone(),
                repaired: d.value,
                candidates: vec![],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    #[test]
    fn dominant_structure_chosen_outlier_flagged() {
        let table = Table::new(vec![Column::from_texts(
            "q",
            &[
                "Q1-22",
                "Q2-21",
                "Q3-20",
                "Q4-19",
                "Q1-18",
                "Q2-17",
                "%%broken%%value%%",
            ],
        )]);
        let pw = PottersWheelLike::new();
        let det = pw.detect(&table, 0);
        assert_eq!(det.len(), 1, "{det:?}");
        assert_eq!(det[0].row, 6);
    }

    #[test]
    fn two_legitimate_structures_both_kept() {
        // Half dashed, half plain — both structures pay for themselves.
        let table = Table::new(vec![Column::from_texts(
            "c",
            &["c-1", "c-2", "c-3", "c-4", "c5", "c6", "c7", "c8"],
        )]);
        let pw = PottersWheelLike::new();
        assert!(pw.detect(&table, 0).is_empty());
    }

    #[test]
    fn singleton_weird_structure_not_worth_model_bits() {
        let table = Table::new(vec![Column::from_texts(
            "c",
            &["aaa", "bbb", "ccc", "d!d?d!d?d!", "eee", "fff"],
        )]);
        let pw = PottersWheelLike::new();
        let det = pw.detect(&table, 0);
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].value, "d!d?d!d?d!");
    }

    #[test]
    fn empty_column() {
        let table = Table::new(vec![Column::from_texts("c", &[] as &[&str])]);
        let pw = PottersWheelLike::new();
        assert!(pw.detect(&table, 0).is_empty());
    }
}
