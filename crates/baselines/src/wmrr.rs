//! WMRR-like baseline: unsupervised weighted matching rectifying rules \[2\].
//!
//! The paper reimplements WMRR from its description (the tool is not
//! public); we do the same. Rules come from two sources: approximate
//! functional dependencies between a determinant column and the target
//! column (a determinant value whose target values are dominated by one
//! rectified value yields a weighted rule), and intra-column frequency
//! rectification (rare values within small edit distance of frequent ones).
//! Rules are weighted by support × confidence and the heaviest applicable
//! rule wins — capturing WMRR's strength on inter-/intra-column
//! dependencies and its blindness to semantic substrings (§5.2).

use std::collections::HashMap;

use datavinci_core::{CleaningSystem, Detection, RepairCandidate, RepairSuggestion};
use datavinci_regex::levenshtein_within;
use datavinci_table::Table;

/// Configuration for rule mining.
#[derive(Debug, Clone, Copy)]
pub struct WmrrConfig {
    /// Minimum confidence for an FD-derived rule.
    pub min_confidence: f64,
    /// Minimum support (rows) behind a rule.
    pub min_support: usize,
    /// Maximum edit distance for intra-column rectification.
    pub max_rectify_distance: usize,
    /// Minimum frequency of a "canonical" intra-column value.
    pub min_canonical_freq: usize,
}

impl Default for WmrrConfig {
    fn default() -> Self {
        WmrrConfig {
            min_confidence: 0.8,
            min_support: 3,
            max_rectify_distance: 1,
            min_canonical_freq: 3,
        }
    }
}

/// One mined rectifying rule.
#[derive(Debug, Clone)]
struct Rule {
    /// Rows the rule fires on (violations).
    violations: Vec<(usize, String)>, // (row, rectified value)
    /// Rule weight = support × confidence.
    weight: f64,
    /// Provenance for reports.
    description: String,
}

/// The WMRR-like system.
#[derive(Debug, Default)]
pub struct Wmrr {
    cfg: WmrrConfig,
}

impl Wmrr {
    /// With default mining parameters.
    pub fn new() -> Wmrr {
        Wmrr::default()
    }

    fn mine_rules(&self, table: &Table, col: usize) -> Vec<Rule> {
        let target = table.column(col).expect("column in range");
        let values: Vec<String> = target.rendered();
        let mut rules = Vec::new();

        // Inter-column approximate FDs: determinant → target.
        for (d, det) in table.columns().iter().enumerate() {
            if d == col {
                continue;
            }
            let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
            for (row, v) in det.rendered().iter().enumerate() {
                groups.entry(v.clone()).or_default().push(row);
            }
            for (det_value, rows) in groups {
                if rows.len() < self.cfg.min_support || det_value.is_empty() {
                    continue;
                }
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for &r in &rows {
                    *counts.entry(values[r].as_str()).or_insert(0) += 1;
                }
                let Some((&dominant, &freq)) = counts
                    .iter()
                    .max_by_key(|&(v, c)| (*c, std::cmp::Reverse(v)))
                else {
                    continue;
                };
                let confidence = freq as f64 / rows.len() as f64;
                if confidence < self.cfg.min_confidence || confidence >= 1.0 {
                    continue;
                }
                let dominant = dominant.to_string();
                let violations: Vec<(usize, String)> = rows
                    .iter()
                    .filter(|&&r| values[r] != dominant)
                    .map(|&r| (r, dominant.clone()))
                    .collect();
                rules.push(Rule {
                    weight: freq as f64 * confidence,
                    description: format!(
                        "{}={det_value:?} → {}={dominant:?}",
                        det.name(),
                        target.name()
                    ),
                    violations,
                });
            }
        }

        // Intra-column frequency rectification.
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for v in &values {
            *freq.entry(v.as_str()).or_insert(0) += 1;
        }
        // A canonical must not merely be frequent: in dense value spaces
        // (quarters, dates, counters) every value has close neighbours, so
        // rectification additionally requires the canonical to hold a
        // substantial share of the column.
        let min_freq = self.cfg.min_canonical_freq.max(values.len() / 8);
        let mut canonicals: Vec<(&str, usize)> = freq
            .iter()
            .filter(|&(v, &c)| c >= min_freq && !v.is_empty())
            .map(|(&v, &c)| (v, c))
            .collect();
        canonicals.sort_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
        for (row, v) in values.iter().enumerate() {
            if freq[v.as_str()] > 1 || v.is_empty() {
                continue;
            }
            let mut best: Option<(&str, usize, usize)> = None; // (canon, dist, count)
            for &(canon, count) in &canonicals {
                if let Some(d) = levenshtein_within(v, canon, self.cfg.max_rectify_distance) {
                    if d > 0 && best.is_none_or(|(_, bd, bc)| d < bd || (d == bd && count > bc)) {
                        best = Some((canon, d, count));
                    }
                }
            }
            if let Some((canon, _, count)) = best {
                rules.push(Rule {
                    weight: count as f64 * 0.9,
                    description: format!("rectify {v:?} → {canon:?}"),
                    violations: vec![(row, canon.to_string())],
                });
            }
        }

        rules.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rules
    }
}

impl CleaningSystem for Wmrr {
    fn name(&self) -> &'static str {
        "WMRR"
    }

    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        self.repair(table, col)
            .into_iter()
            .map(|r| Detection {
                row: r.row,
                value: r.original,
            })
            .collect()
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        let values: Vec<String> = table.column(col).expect("in range").rendered();
        let mut best: HashMap<usize, (f64, String, String)> = HashMap::new();
        for rule in self.mine_rules(table, col) {
            for (row, rectified) in &rule.violations {
                let entry = best.entry(*row);
                match entry {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        if rule.weight > o.get().0 {
                            o.insert((rule.weight, rectified.clone(), rule.description.clone()));
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert((rule.weight, rectified.clone(), rule.description.clone()));
                    }
                }
            }
        }
        let mut out: Vec<RepairSuggestion> = best
            .into_iter()
            .map(|(row, (weight, repaired, description))| RepairSuggestion {
                row,
                original: values[row].clone(),
                repaired: repaired.clone(),
                candidates: vec![RepairCandidate {
                    repaired,
                    cost: 0,
                    score: -weight,
                    provenance: description,
                }],
            })
            .collect();
        out.sort_by_key(|r| r.row);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    #[test]
    fn fd_violation_detected_and_rectified() {
        // city → zip FD with one violation.
        let table = Table::new(vec![
            Column::from_texts(
                "city",
                &[
                    "Boston", "Boston", "Boston", "Boston", "Boston", "Miami", "Miami", "Miami",
                ],
            ),
            Column::from_texts(
                "zip",
                &[
                    "02101", "02101", "02101", "02101", "99999", "33101", "33101", "33101",
                ],
            ),
        ]);
        let w = Wmrr::new();
        let repairs = w.repair(&table, 1);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].row, 4);
        assert_eq!(repairs[0].repaired, "02101");
    }

    #[test]
    fn intra_column_rectification() {
        let table = Table::new(vec![Column::from_texts(
            "status",
            &[
                "Active", "Active", "Active", "Actve", "Inactive", "Inactive", "Inactive",
            ],
        )]);
        let w = Wmrr::new();
        let repairs = w.repair(&table, 0);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].original, "Actve");
        assert_eq!(repairs[0].repaired, "Active");
    }

    #[test]
    fn no_rules_no_detections() {
        let table = Table::new(vec![Column::from_texts("x", &["a", "b", "c", "d"])]);
        let w = Wmrr::new();
        assert!(w.detect(&table, 0).is_empty());
    }

    #[test]
    fn misses_pattern_only_errors() {
        // WMRR's characteristic blindness: a syntactic outlier with no FD
        // or frequency signal is invisible.
        let table = Table::new(vec![Column::from_texts(
            "q",
            &["Q1-21", "Q2-21", "Q3-21", "Q32001x"],
        )]);
        let w = Wmrr::new();
        assert!(w.detect(&table, 0).is_empty());
    }
}
