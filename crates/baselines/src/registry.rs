//! System registry: the paper's Table 4 overview.

/// The task category a system was designed for (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Detects and repairs.
    DetectionAndRepair,
    /// Semi-supervised detection.
    SemiSupervisedDetection,
    /// Detection only.
    Detection,
    /// Interactive detection + repair.
    InteractiveDetectionRepair,
}

impl Category {
    /// Table-4 rendering.
    pub fn as_str(&self) -> &'static str {
        match self {
            Category::DetectionAndRepair => "Detection + Repair",
            Category::SemiSupervisedDetection => "Semi-supervised Detection",
            Category::Detection => "Detection",
            Category::InteractiveDetectionRepair => "Interactive Detection+Repair",
        }
    }
}

/// One Table-4 row.
#[derive(Debug, Clone, Copy)]
pub struct SystemInfo {
    /// System name.
    pub name: &'static str,
    /// Design category.
    pub category: Category,
}

/// The eight evaluated systems, in Table-4 order.
pub fn table4() -> Vec<SystemInfo> {
    vec![
        SystemInfo {
            name: "WMRR",
            category: Category::DetectionAndRepair,
        },
        SystemInfo {
            name: "HoloClean",
            category: Category::DetectionAndRepair,
        },
        SystemInfo {
            name: "Raha",
            category: Category::SemiSupervisedDetection,
        },
        SystemInfo {
            name: "Auto-Detect",
            category: Category::Detection,
        },
        SystemInfo {
            name: "Potters-Wheel",
            category: Category::InteractiveDetectionRepair,
        },
        SystemInfo {
            name: "T5",
            category: Category::DetectionAndRepair,
        },
        SystemInfo {
            name: "GPT-3.5",
            category: Category::DetectionAndRepair,
        },
        SystemInfo {
            name: "DataVinci",
            category: Category::DetectionAndRepair,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_systems_datavinci_last() {
        let t = table4();
        assert_eq!(t.len(), 8);
        assert_eq!(t.last().unwrap().name, "DataVinci");
    }

    #[test]
    fn categories_render() {
        assert_eq!(
            Category::SemiSupervisedDetection.as_str(),
            "Semi-supervised Detection"
        );
    }
}
