//! Raha-like baseline: configuration-free, semi-supervised error detection
//! \[11, 12\].
//!
//! Raha runs an ensemble of detection strategies, clusters cells by their
//! strategy-vote vectors, and propagates a handful of user labels through
//! the clusters. Per the paper's protocol (§4.3), we provide the first five
//! ground-truth errors per column as labels. Without labels the system
//! falls back to majority voting over the ensemble. Detection-only — the
//! harness pairs it with the GPT-sim repair head.

use std::collections::{HashMap, HashSet};

use datavinci_core::{CleaningSystem, Detection, RepairSuggestion};
use datavinci_table::Table;

/// Number of seed labels per column, per the evaluation protocol.
pub const LABEL_BUDGET: usize = 5;

/// The Raha-like detector.
#[derive(Debug, Default)]
pub struct RahaLike {
    /// Ground-truth error rows per column index (the "user annotations").
    labels: HashMap<usize, Vec<usize>>,
}

impl RahaLike {
    /// Unlabeled instance (ensemble majority vote only).
    pub fn new() -> RahaLike {
        RahaLike::default()
    }

    /// Provides the first-k ground-truth error labels for a column
    /// (top-to-bottom, as in the paper's protocol).
    pub fn with_labels(labels: HashMap<usize, Vec<usize>>) -> RahaLike {
        let labels = labels
            .into_iter()
            .map(|(c, mut rows)| {
                rows.sort_unstable();
                rows.truncate(LABEL_BUDGET);
                (c, rows)
            })
            .collect();
        RahaLike { labels }
    }

    /// The strategy-vote feature vector for every cell of the column.
    fn feature_vectors(values: &[String]) -> Vec<Vec<bool>> {
        let n = values.len().max(1);

        // Strategy 1: shape-signature rarity.
        let shapes: Vec<String> = values.iter().map(|v| shape_of(v)).collect();
        let mut shape_freq: HashMap<&str, usize> = HashMap::new();
        for s in &shapes {
            *shape_freq.entry(s.as_str()).or_insert(0) += 1;
        }

        // Strategy 2: value-frequency outlier.
        let mut value_freq: HashMap<&str, usize> = HashMap::new();
        for v in values {
            *value_freq.entry(v.as_str()).or_insert(0) += 1;
        }
        let max_freq = value_freq.values().copied().max().unwrap_or(0);

        // Strategy 3: characters rare in the column.
        let mut char_support: HashMap<char, usize> = HashMap::new();
        for v in values {
            let mut seen: HashSet<char> = HashSet::new();
            for c in v.chars() {
                if seen.insert(c) {
                    *char_support.entry(c).or_insert(0) += 1;
                }
            }
        }

        // Strategy 4: length outlier (median absolute deviation).
        let mut lens: Vec<usize> = values.iter().map(|v| v.chars().count()).collect();
        lens.sort_unstable();
        let median = lens.get(lens.len() / 2).copied().unwrap_or(0) as f64;
        let mut devs: Vec<f64> = values
            .iter()
            .map(|v| (v.chars().count() as f64 - median).abs())
            .collect();
        devs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mad = devs.get(devs.len() / 2).copied().unwrap_or(0.0).max(0.5);

        values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let rare_shape = (shape_freq[shapes[i].as_str()] as f64 / n as f64) < 0.15;
                let rare_value = value_freq[v.as_str()] == 1 && max_freq >= 3;
                let rare_char = v
                    .chars()
                    .any(|c| (char_support[&c] as f64 / n as f64) < 0.15);
                let len_outlier = (v.chars().count() as f64 - median).abs() > 2.5 * mad;
                let whitespace_issue = v != v.trim() || v.contains("  ") || v.is_empty();
                let non_ascii = !v.is_ascii();
                vec![
                    rare_shape,
                    rare_value,
                    rare_char,
                    len_outlier,
                    whitespace_issue,
                    non_ascii,
                ]
            })
            .collect()
    }
}

/// Coarse shape signature: runs of d/u/l/space collapse, symbols verbatim.
fn shape_of(v: &str) -> String {
    let mut out = String::new();
    let mut last = '\0';
    for c in v.chars() {
        let k = if c.is_ascii_digit() {
            'd'
        } else if c.is_ascii_uppercase() {
            'u'
        } else if c.is_ascii_lowercase() {
            'l'
        } else {
            c
        };
        if k != last || !"dul".contains(k) {
            out.push(k);
        }
        last = k;
    }
    out
}

impl CleaningSystem for RahaLike {
    fn name(&self) -> &'static str {
        "Raha"
    }

    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        let values: Vec<String> = table.column(col).expect("in range").rendered();
        let vectors = Self::feature_vectors(&values);

        // Cluster cells by identical vote vectors.
        let mut clusters: HashMap<&[bool], Vec<usize>> = HashMap::new();
        for (row, v) in vectors.iter().enumerate() {
            clusters.entry(v.as_slice()).or_default().push(row);
        }

        let labeled = self.labels.get(&col);
        let mut flagged: HashSet<usize> = HashSet::new();
        match labeled {
            Some(label_rows) if !label_rows.is_empty() => {
                // Label propagation: clusters whose vote vector matches a
                // labeled error are errors — but only informative clusters
                // (at least one positive strategy vote) propagate; an
                // all-quiet vector would flood the column.
                for &lr in label_rows {
                    if lr >= vectors.len() {
                        continue;
                    }
                    flagged.insert(lr);
                    if vectors[lr].iter().any(|b| *b) {
                        for (_, members) in clusters.iter().filter(|(k, _)| **k == vectors[lr]) {
                            flagged.extend(members.iter().copied());
                        }
                    }
                }
            }
            _ => {
                // Unsupervised fallback: majority of strategies agree.
                for (row, v) in vectors.iter().enumerate() {
                    if v.iter().filter(|b| **b).count() >= 3 {
                        flagged.insert(row);
                    }
                }
            }
        }
        let mut rows: Vec<usize> = flagged.into_iter().collect();
        rows.sort_unstable();
        rows.into_iter()
            .map(|row| Detection {
                row,
                value: values[row].clone(),
            })
            .collect()
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        // Detection-only: identity repairs (the harness attaches a head).
        self.detect(table, col)
            .into_iter()
            .map(|d| RepairSuggestion {
                row: d.row,
                original: d.value.clone(),
                repaired: d.value,
                candidates: vec![],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    fn table() -> Table {
        Table::new(vec![Column::from_texts(
            "c",
            &[
                "A-01", "A-02", "A-03", "A-04", "A-05", "A-06", "A-07", "Zq#9x~",
            ],
        )])
    }

    #[test]
    fn label_propagation_flags_cluster() {
        let mut labels = HashMap::new();
        labels.insert(0usize, vec![7usize]);
        let raha = RahaLike::with_labels(labels);
        let det = raha.detect(&table(), 0);
        assert!(det.iter().any(|d| d.row == 7), "{det:?}");
    }

    #[test]
    fn unlabeled_majority_vote() {
        let raha = RahaLike::new();
        let det = raha.detect(&table(), 0);
        // The glaring outlier earns ≥3 votes even without labels.
        assert!(det.iter().any(|d| d.row == 7), "{det:?}");
        // The regular values do not.
        assert!(det.iter().all(|d| d.row == 7), "{det:?}");
    }

    #[test]
    fn label_budget_truncated() {
        let mut labels = HashMap::new();
        labels.insert(0usize, (0..20).collect::<Vec<usize>>());
        let raha = RahaLike::with_labels(labels);
        assert_eq!(raha.labels[&0].len(), LABEL_BUDGET);
    }

    #[test]
    fn shape_signatures() {
        assert_eq!(shape_of("A-01"), "u-d");
        assert_eq!(shape_of("abc12XY"), "ldu");
        assert_eq!(shape_of(""), "");
    }

    #[test]
    fn repair_is_identity() {
        let raha = RahaLike::new();
        let repairs = raha.repair(&table(), 0);
        for r in repairs {
            assert_eq!(r.original, r.repaired);
        }
    }
}
