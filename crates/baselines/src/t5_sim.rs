//! T5-sim baseline: a *trained* seq2seq repair model stand-in.
//!
//! The paper fine-tunes T5 on 100k synthetically corrupted columns and has
//! it regenerate the clean column (§4.3). We cannot ship a transformer, so
//! this stand-in is a noisy-channel model **trained on the same kind of
//! (dirty, clean) pairs**: Levenshtein-aligned character confusion counts
//! (the learned inverse noise model) plus a character-bigram language model
//! over clean text. Inference greedily applies learned inverse
//! substitutions/deletions where they improve the LM. Like the real T5 it
//! sees a single column at a time, fires often, and misses structural
//! context — reproducing its Table-5/6 profile (highest fire rate, lowest
//! precision).

use std::collections::HashMap;

use datavinci_core::{CleaningSystem, Detection, RepairCandidate, RepairSuggestion};
use datavinci_table::Table;

const BOUNDARY: char = '\u{2400}';

/// The trained model.
#[derive(Debug, Default)]
pub struct T5Sim {
    /// P(clean_char | dirty_char) counts from alignment.
    sub_counts: HashMap<(char, char), usize>,
    /// Count of noise-inserted characters (dirty char aligned to nothing).
    del_counts: HashMap<char, usize>,
    /// Character bigram counts over clean strings.
    bigram: HashMap<(char, char), usize>,
    /// Unigram counts for smoothing.
    unigram: HashMap<char, usize>,
    /// Total training pairs.
    pub n_pairs: usize,
}

impl T5Sim {
    /// Trains on (dirty, clean) string pairs.
    pub fn train<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> T5Sim {
        let mut model = T5Sim::default();
        for (dirty, clean) in pairs {
            model.n_pairs += 1;
            model.observe_clean(clean);
            for (d, c) in align(dirty, clean) {
                match (d, c) {
                    (Some(d), Some(c)) if d != c => {
                        *model.sub_counts.entry((d, c)).or_insert(0) += 1;
                    }
                    (Some(d), None) => {
                        *model.del_counts.entry(d).or_insert(0) += 1;
                    }
                    _ => {}
                }
            }
        }
        model
    }

    fn observe_clean(&mut self, clean: &str) {
        let mut prev = BOUNDARY;
        for c in clean.chars().chain(std::iter::once(BOUNDARY)) {
            *self.bigram.entry((prev, c)).or_insert(0) += 1;
            *self.unigram.entry(prev).or_insert(0) += 1;
            prev = c;
        }
    }

    /// log P(b | a), add-one smoothed.
    fn lp(&self, a: char, b: char) -> f64 {
        let joint = *self.bigram.get(&(a, b)).unwrap_or(&0);
        let total = *self.unigram.get(&a).unwrap_or(&0);
        ((joint + 1) as f64 / (total + 96) as f64).ln()
    }

    /// Average per-transition log-probability of a string.
    fn lm_score(&self, chars: &[char]) -> f64 {
        let mut prev = BOUNDARY;
        let mut total = 0.0;
        let mut n = 0usize;
        for &c in chars.iter().chain(std::iter::once(&BOUNDARY)) {
            total += self.lp(prev, c);
            prev = c;
            n += 1;
        }
        total / n.max(1) as f64
    }

    /// Learned inverse substitutions for a dirty char, most frequent first.
    fn inversions(&self, dirty: char) -> Vec<char> {
        let mut subs: Vec<(char, usize)> = self
            .sub_counts
            .iter()
            .filter(|&(&(d, _), &c)| d == dirty && c >= 8)
            .map(|(&(_, clean), &count)| (clean, count))
            .collect();
        subs.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
        subs.truncate(3);
        subs.into_iter().map(|(c, _)| c).collect()
    }

    /// Approximate persistent model footprint in bytes (count tables).
    pub fn model_bytes(&self) -> usize {
        (self.sub_counts.len() + self.del_counts.len() + self.bigram.len() + self.unigram.len())
            * 24
    }

    /// Greedy decode: one pass of per-position inverse edits that improve
    /// the LM by a margin.
    fn decode(&self, value: &str) -> String {
        const MARGIN: f64 = 0.35;
        let mut chars: Vec<char> = value.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let base = self.lm_score(&chars);
            let mut best: Option<(Vec<char>, f64)> = None;
            for cand in self.inversions(chars[i]) {
                let mut trial = chars.clone();
                trial[i] = cand;
                let s = self.lm_score(&trial);
                if s > base + MARGIN && best.as_ref().is_none_or(|(_, bs)| s > *bs) {
                    best = Some((trial, s));
                }
            }
            if self.del_counts.get(&chars[i]).copied().unwrap_or(0) >= 8 {
                let mut trial = chars.clone();
                trial.remove(i);
                let s = self.lm_score(&trial);
                if s > base + MARGIN && best.as_ref().is_none_or(|(_, bs)| s > *bs) {
                    best = Some((trial, s));
                }
            }
            if let Some((trial, _)) = best {
                chars = trial;
            }
            i += 1;
        }
        chars.into_iter().collect()
    }
}

impl CleaningSystem for T5Sim {
    fn name(&self) -> &'static str {
        "T5"
    }

    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        self.repair(table, col)
            .into_iter()
            .map(|r| Detection {
                row: r.row,
                value: r.original,
            })
            .collect()
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        let values: Vec<String> = table.column(col).expect("in range").rendered();
        // Column-level LM threshold: values well below the column's own
        // average likelihood get flagged even without a confident decode —
        // T5's trigger-happy behaviour.
        let scores: Vec<f64> = values
            .iter()
            .map(|v| self.lm_score(&v.chars().collect::<Vec<_>>()))
            .collect();
        let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;

        let mut out = Vec::new();
        for (row, v) in values.iter().enumerate() {
            let decoded = self.decode(v);
            let changed = decoded != *v;
            let unlikely = scores[row] < mean - 1.4;
            if changed || unlikely {
                out.push(RepairSuggestion {
                    row,
                    original: v.clone(),
                    repaired: decoded.clone(),
                    candidates: vec![RepairCandidate {
                        repaired: decoded,
                        cost: 0,
                        score: -scores[row],
                        provenance: "t5-sim greedy decode".to_string(),
                    }],
                });
            }
        }
        out
    }
}

/// Character alignment of (dirty, clean) via Levenshtein backtrace.
/// Returns pairs `(Some(d), Some(c))` for match/substitution, `(Some(d),
/// None)` for a dirty-only char, `(None, Some(c))` for a clean-only char.
fn align(dirty: &str, clean: &str) -> Vec<(Option<char>, Option<char>)> {
    let a: Vec<char> = dirty.chars().collect();
    let b: Vec<char> = clean.chars().collect();
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = j;
    }
    #[allow(clippy::needless_range_loop)]
    for i in 1..=n {
        #[allow(clippy::needless_range_loop)]
        for j in 1..=m {
            let sub = dp[i - 1][j - 1] + usize::from(a[i - 1] != b[j - 1]);
            dp[i][j] = sub.min(dp[i - 1][j] + 1).min(dp[i][j - 1] + 1);
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        if i > 0 && j > 0 && dp[i][j] == dp[i - 1][j - 1] + usize::from(a[i - 1] != b[j - 1]) {
            out.push((Some(a[i - 1]), Some(b[j - 1])));
            i -= 1;
            j -= 1;
        } else if i > 0 && dp[i][j] == dp[i - 1][j] + 1 {
            out.push((Some(a[i - 1]), None));
            i -= 1;
        } else {
            out.push((None, Some(b[j - 1])));
            j -= 1;
        }
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    /// Training pairs exercising the visual-typo noise of the paper's
    /// synthetic benchmark (o→0, l→1, e→3 …), inverted.
    fn trained() -> T5Sim {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for i in 0..60 {
            let clean = format!("room-{i:03}");
            let dirty = clean.replace('0', "o");
            pairs.push((dirty, clean));
            let clean2 = format!("level {i}");
            let dirty2 = clean2.replace('l', "1");
            pairs.push((dirty2, clean2));
            // Some identity pairs so the LM sees clean text.
            pairs.push((format!("code-{i:02}"), format!("code-{i:02}")));
        }
        T5Sim::train(pairs.iter().map(|(d, c)| (d.as_str(), c.as_str())))
    }

    #[test]
    fn alignment_basics() {
        let al = align("c4t", "cat");
        assert_eq!(
            al,
            vec![
                (Some('c'), Some('c')),
                (Some('4'), Some('a')),
                (Some('t'), Some('t')),
            ]
        );
        let al = align("ab", "aXb");
        assert!(al.contains(&(None, Some('X'))));
    }

    #[test]
    fn learns_inverse_visual_typos() {
        let model = trained();
        assert!(model.inversions('o').contains(&'0'));
        assert!(model.inversions('1').contains(&'l'));
    }

    #[test]
    fn repairs_learned_noise() {
        let model = trained();
        let table = Table::new(vec![Column::from_texts(
            "r",
            &["room-001", "room-002", "room-0o3", "room-004"],
        )]);
        let repairs = model.repair(&table, 0);
        let fix = repairs.iter().find(|r| r.row == 2).expect("row 2 repaired");
        assert_eq!(fix.repaired, "room-003");
    }

    #[test]
    fn fires_on_unlikely_values_even_without_decode() {
        let model = trained();
        let table = Table::new(vec![Column::from_texts(
            "r",
            &["room-001", "room-002", "ZZZZ@@##", "room-004"],
        )]);
        let det = model.detect(&table, 0);
        assert!(det.iter().any(|d| d.row == 2), "{det:?}");
    }

    #[test]
    fn untrained_model_is_quiet_on_uniform_columns() {
        let model = T5Sim::default();
        let table = Table::new(vec![Column::from_texts("r", &["a1", "a2", "a3"])]);
        assert!(model.repair(&table, 0).is_empty());
    }
}
