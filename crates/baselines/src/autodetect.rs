//! Auto-Detect-like baseline: corpus-driven co-occurrence error detection
//! \[7\].
//!
//! Auto-Detect learns, from a large clean corpus, which *generalized
//! patterns* co-occur within one column. At detection time a value whose
//! pattern has low normalized PMI with the column's dominant pattern is an
//! error. We train on a generated clean corpus (the harness supplies it)
//! and keep Auto-Detect's two generalization levels: a coarse class-run
//! signature and a fine signature with run lengths. Detection-only.

use std::collections::{HashMap, HashSet};

use datavinci_core::{CleaningSystem, Detection, RepairSuggestion};
use datavinci_table::Table;

/// Co-occurrence statistics at one generalization level.
#[derive(Debug, Default)]
struct Level {
    /// Column-count per pattern.
    single: HashMap<String, usize>,
    /// Column-count per unordered pattern pair.
    pair: HashMap<(String, String), usize>,
    /// Total columns seen.
    n_columns: usize,
}

impl Level {
    fn observe(&mut self, patterns: &HashSet<String>) {
        self.n_columns += 1;
        let mut sorted: Vec<&String> = patterns.iter().collect();
        sorted.sort();
        for p in &sorted {
            *self.single.entry((*p).clone()).or_insert(0) += 1;
        }
        for i in 0..sorted.len() {
            for j in (i + 1)..sorted.len() {
                *self
                    .pair
                    .entry((sorted[i].clone(), sorted[j].clone()))
                    .or_insert(0) += 1;
            }
        }
    }

    /// Normalized PMI of two patterns co-occurring in one column; ranges
    /// in [-1, 1], −1 = never together.
    fn npmi(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        let n = self.n_columns.max(1) as f64;
        let pa = *self.single.get(a).unwrap_or(&0) as f64 / n;
        let pb = *self.single.get(b).unwrap_or(&0) as f64 / n;
        let key = if a < b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        let pab = *self.pair.get(&key).unwrap_or(&0) as f64 / n;
        if pa == 0.0 || pb == 0.0 {
            // A pattern never seen in the clean corpus is itself evidence
            // of incompatibility.
            return -1.0;
        }
        if pab == 0.0 {
            return -1.0;
        }
        (pab / (pa * pb)).ln() / -pab.ln()
    }
}

/// Coarse signature: class runs collapse (`Q1-22` → `ud-d`).
fn coarse(v: &str) -> String {
    let mut out = String::new();
    let mut last = '\0';
    for c in v.chars() {
        let k = if c.is_ascii_digit() {
            'd'
        } else if c.is_ascii_alphabetic() {
            'a'
        } else {
            c
        };
        if k != last || !"da".contains(k) {
            out.push(k);
        }
        last = k;
    }
    out
}

/// Fine signature: runs keep their length (`Q1-22` → `a1d1-d2`).
fn fine(v: &str) -> String {
    let mut out = String::new();
    let chars: Vec<char> = v.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let kind = if c.is_ascii_digit() {
            Some('d')
        } else if c.is_ascii_alphabetic() {
            Some('a')
        } else {
            None
        };
        match kind {
            Some(k) => {
                let start = i;
                while i < chars.len()
                    && ((k == 'd' && chars[i].is_ascii_digit())
                        || (k == 'a' && chars[i].is_ascii_alphabetic()))
                {
                    i += 1;
                }
                out.push(k);
                out.push_str(&(i - start).to_string());
            }
            None => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// The trained Auto-Detect-like detector.
#[derive(Debug, Default)]
pub struct AutoDetectLike {
    coarse_stats: Level,
    fine_stats: Level,
    /// npmi below this flags an incompatible pattern pair.
    threshold: f64,
}

impl AutoDetectLike {
    /// Trains co-occurrence statistics over a clean corpus.
    pub fn train<'a>(corpus: impl IntoIterator<Item = &'a Table>) -> AutoDetectLike {
        let mut me = AutoDetectLike {
            threshold: -0.2,
            ..Default::default()
        };
        for table in corpus {
            for col in table.columns() {
                let values = col.rendered();
                let coarse_set: HashSet<String> = values.iter().map(|v| coarse(v)).collect();
                let fine_set: HashSet<String> = values.iter().map(|v| fine(v)).collect();
                me.coarse_stats.observe(&coarse_set);
                me.fine_stats.observe(&fine_set);
            }
        }
        me
    }

    /// Number of corpus columns used for training.
    pub fn trained_columns(&self) -> usize {
        self.coarse_stats.n_columns
    }

    /// Approximate persistent model footprint in bytes.
    pub fn model_bytes(&self) -> usize {
        let entries = self.coarse_stats.single.len()
            + self.coarse_stats.pair.len()
            + self.fine_stats.single.len()
            + self.fine_stats.pair.len();
        entries * 48
    }
}

impl CleaningSystem for AutoDetectLike {
    fn name(&self) -> &'static str {
        "Auto-Detect"
    }

    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        let values: Vec<String> = table.column(col).expect("in range").rendered();
        if values.is_empty() || self.coarse_stats.n_columns == 0 {
            return Vec::new();
        }
        // Dominant pattern per level.
        let mut coarse_freq: HashMap<String, usize> = HashMap::new();
        let mut fine_freq: HashMap<String, usize> = HashMap::new();
        for v in &values {
            *coarse_freq.entry(coarse(v)).or_insert(0) += 1;
            *fine_freq.entry(fine(v)).or_insert(0) += 1;
        }
        let dom_coarse = coarse_freq
            .iter()
            .max_by_key(|&(p, c)| (*c, std::cmp::Reverse(p.clone())))
            .map(|(p, _)| p.clone())
            .unwrap_or_default();
        let dom_fine = fine_freq
            .iter()
            .max_by_key(|&(p, c)| (*c, std::cmp::Reverse(p.clone())))
            .map(|(p, _)| p.clone())
            .unwrap_or_default();

        let n = values.len() as f64;
        values
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                let vc = coarse(v);
                let vf = fine(v);
                if vc == dom_coarse && vf == dom_fine {
                    return false;
                }
                // Majority values are never errors.
                if coarse_freq[&vc] as f64 / n > 0.5 {
                    return false;
                }
                // Incompatible at the coarse level, or coarse-same but
                // incompatible at the fine level.
                let c_npmi = self.coarse_stats.npmi(&vc, &dom_coarse);
                let f_npmi = self.fine_stats.npmi(&vf, &dom_fine);
                c_npmi < self.threshold || (vc == dom_coarse && f_npmi < self.threshold)
            })
            .map(|(row, v)| Detection {
                row,
                value: v.clone(),
            })
            .collect()
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        self.detect(table, col)
            .into_iter()
            .map(|d| RepairSuggestion {
                row: d.row,
                original: d.value.clone(),
                repaired: d.value,
                candidates: vec![],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    /// A tiny clean corpus where quarter-like columns are uniform.
    fn corpus() -> Vec<Table> {
        let mut tables = Vec::new();
        for i in 0..40 {
            tables.push(Table::new(vec![Column::from_texts(
                "q",
                [
                    format!("Q1-{:02}", i),
                    format!("Q2-{:02}", i),
                    format!("Q3-{:02}", i),
                    format!("Q4-{:02}", i),
                ]
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .as_slice(),
            )]));
            // Mixed-width numeric columns are normal.
            tables.push(Table::new(vec![Column::from_texts(
                "n",
                &["1", "22", "333", "4444"],
            )]));
        }
        tables
    }

    #[test]
    fn signatures() {
        assert_eq!(coarse("Q1-22"), "ad-d");
        assert_eq!(fine("Q1-22"), "a1d1-d2");
        assert_eq!(coarse("hello world"), "a a");
    }

    #[test]
    fn detects_unseen_pattern_combination() {
        let corpus = corpus();
        let ad = AutoDetectLike::train(&corpus);
        assert!(ad.trained_columns() > 0);
        let table = Table::new(vec![Column::from_texts(
            "q",
            &["Q1-22", "Q2-22", "Q3-22", "Q4/22"],
        )]);
        let det = ad.detect(&table, 0);
        assert_eq!(det.len(), 1, "{det:?}");
        assert_eq!(det[0].value, "Q4/22");
    }

    #[test]
    fn compatible_variation_not_flagged() {
        // Varying digit-widths co-occur in the training corpus's numeric
        // columns — coarse patterns identical, fine patterns compatible.
        let corpus = corpus();
        let ad = AutoDetectLike::train(&corpus);
        let table = Table::new(vec![Column::from_texts("n", &["1", "22", "333", "4444"])]);
        assert!(ad.detect(&table, 0).is_empty());
    }

    #[test]
    fn untrained_detector_is_silent() {
        let ad = AutoDetectLike::default();
        let table = Table::new(vec![Column::from_texts("q", &["a", "b!"])]);
        assert!(ad.detect(&table, 0).is_empty());
    }
}
