//! GPT-3.5-sim baseline: a deterministic stand-in for few-shot LLM column
//! cleaning (§4.3, temperature 0, top-1).
//!
//! Reproduces the qualitative profile the paper reports for GPT-3.5:
//! strong at *semantic* anomalies — misspelled entities (via the gazetteer
//! knowledge base), out-of-range domain values (`Q5-20`), frequency
//! outliers near frequent values — and blind to fine-grained syntactic
//! patterns (the `S1.4` example in §5.1), because it has no pattern
//! engine. It sees the column only, like the prompt in the paper.

use std::collections::HashMap;

use datavinci_core::{CleaningSystem, Detection, RepairCandidate, RepairSuggestion};
use datavinci_regex::levenshtein_within;
use datavinci_semantic::{detect_column_type, Gazetteer};
use datavinci_table::Table;

/// The GPT-sim system.
#[derive(Debug)]
pub struct GptSim {
    gaz: Gazetteer,
}

impl Default for GptSim {
    fn default() -> Self {
        GptSim::new()
    }
}

impl GptSim {
    /// A fresh instance (loads the knowledge base).
    pub fn new() -> GptSim {
        GptSim {
            gaz: Gazetteer::new(),
        }
    }

    fn clean_values(&self, header: &str, values: &[String]) -> Vec<(usize, String)> {
        let mut out: Vec<(usize, String)> = Vec::new();
        let n = values.len();
        if n == 0 {
            return out;
        }

        let col_type = detect_column_type(values, &self.gaz, 0.5);

        // Frequency table for outlier reasoning.
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for v in values {
            *freq.entry(v.as_str()).or_insert(0) += 1;
        }
        // Only values holding a substantial share of the column count as
        // "frequent" anchors (prevents nearest-neighbour flooding in dense
        // value spaces like quarters or dates).
        let min_freq = 3.max(n / 8);
        let mut frequent: Vec<&str> = freq
            .iter()
            .filter(|&(_, &c)| c >= min_freq)
            .map(|(&v, _)| v)
            .collect();
        // Deterministic tie-breaking: most frequent first, then lexicographic.
        frequent.sort_by_key(|v| (std::cmp::Reverse(freq[v]), *v));

        let numeric_fraction = values
            .iter()
            .filter(|v| v.trim().parse::<f64>().is_ok())
            .count() as f64
            / n as f64;

        for (row, v) in values.iter().enumerate() {
            if v.is_empty() {
                continue;
            }
            // (1) Semantic spelling: fuzzy (non-exact) hit on the detected
            // column type.
            if let Some(det) = col_type {
                let mut fixed = v.clone();
                let mut changed = false;
                for span in datavinci_semantic::spans::candidate_spans(v) {
                    let hits = self.gaz.lookup_fuzzy_typed(&span.lookup, det.semantic_type);
                    if let Some(hit) = hits.first() {
                        if hit.distance > 0 {
                            fixed = splice(&fixed, span.start, span.len, hit.form_text());
                            changed = true;
                            break;
                        }
                    }
                }
                if changed {
                    out.push((row, fixed));
                    continue;
                }
            }
            // (2) Domain knowledge: quarters run Q1..Q4, months 1..12.
            if let Some(fixed) = quarter_range_check(v) {
                out.push((row, fixed));
                continue;
            }
            // (3) Numeric column with a non-numeric cell: apply common
            // visual-typo inversions (o→0, l→1, …).
            if numeric_fraction >= 0.8 && v.trim().parse::<f64>().is_err() {
                let fixed = invert_visual_typos(v);
                if fixed.trim().parse::<f64>().is_ok() {
                    out.push((row, fixed));
                    continue;
                }
            }
            // (4) Visual-typo inversion guided by the column's dominant
            // shape (GPT's forte): if flipping o↔0-style confusions moves a
            // rare-shaped value onto the dominant shape, repair it.
            if let Some(fixed) = shape_guided_typo_fix(v, values) {
                out.push((row, fixed));
                continue;
            }
            // (5) Singleton near a frequent value.
            if freq[v.as_str()] == 1 {
                let mut best: Option<(&str, usize)> = None;
                for &f in &frequent {
                    if let Some(d) = levenshtein_within(v, f, 2) {
                        if d > 0 && best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((f, d));
                        }
                    }
                }
                if let Some((f, _)) = best {
                    out.push((row, f.to_string()));
                    continue;
                }
            }
            let _ = header; // columns headers are provided in the prompt but
                            // carry no extra signal for this stand-in.
        }
        out
    }
}

/// Replaces `len` chars at `start` with `replacement`.
fn splice(v: &str, start: usize, len: usize, replacement: &str) -> String {
    let chars: Vec<char> = v.chars().collect();
    let mut out: String = chars[..start].iter().collect();
    out.push_str(replacement);
    out.extend(&chars[start + len..]);
    out
}

/// Flags `Q5-20`-style out-of-range quarters; suggests the nearest valid one.
fn quarter_range_check(v: &str) -> Option<String> {
    let chars: Vec<char> = v.chars().collect();
    if chars.len() >= 2 && (chars[0] == 'Q' || chars[0] == 'q') && chars[1].is_ascii_digit() {
        let q = chars[1].to_digit(10).expect("digit checked");
        // Only a *single*-digit quarter number counts (Q12 could be an id).
        let single = chars.get(2).is_none_or(|c| !c.is_ascii_digit());
        if single && (q == 0 || q > 4) {
            let mut fixed = chars.clone();
            fixed[1] = '4';
            return Some(fixed.into_iter().collect());
        }
    }
    None
}

/// The common visually-inspired typo inversions of the paper's noise model.
pub fn invert_visual_typos(v: &str) -> String {
    v.chars()
        .map(|c| match c {
            'o' | 'O' => '0',
            'l' => '1',
            _ => c,
        })
        .collect()
}

/// Coarse shape: digit/letter runs collapse, symbols verbatim.
fn coarse_shape(v: &str) -> String {
    let mut out = String::new();
    let mut last = '\0';
    for c in v.chars() {
        let k = if c.is_ascii_digit() {
            'd'
        } else if c.is_ascii_alphabetic() {
            'a'
        } else {
            c
        };
        if k != last || !"da".contains(k) {
            out.push(k);
        }
        last = k;
    }
    out
}

/// Bidirectional visual-typo maps (digit↔letter confusions).
fn typo_flips(c: char) -> &'static [char] {
    match c {
        'o' | 'O' => &['0'],
        '0' => &['o'],
        'l' => &['1'],
        '1' => &['l'],
        'e' => &['3'],
        '3' => &['e'],
        'a' => &['4'],
        '4' => &['a'],
        't' => &['7'],
        '7' => &['t'],
        's' => &['5'],
        '5' => &['s'],
        _ => &[],
    }
}

/// If the value's shape is rare while most of the column shares one shape,
/// try single-character visual-typo flips that land exactly on the dominant
/// shape.
fn shape_guided_typo_fix(v: &str, values: &[String]) -> Option<String> {
    let n = values.len().max(1);
    let mut shape_freq: HashMap<String, usize> = HashMap::new();
    for w in values {
        *shape_freq.entry(coarse_shape(w)).or_insert(0) += 1;
    }
    let (dominant, count) = shape_freq
        .iter()
        .max_by_key(|&(s, c)| (*c, std::cmp::Reverse(s.clone())))?;
    if (*count as f64) / n as f64 <= 0.6 {
        return None;
    }
    let own = coarse_shape(v);
    if own == *dominant || shape_freq[&own] as f64 / n as f64 > 0.1 {
        return None;
    }
    let chars: Vec<char> = v.chars().collect();
    for i in 0..chars.len() {
        for &flip in typo_flips(chars[i]) {
            let mut trial = chars.clone();
            trial[i] = flip;
            let trial: String = trial.into_iter().collect();
            if coarse_shape(&trial) == *dominant {
                return Some(trial);
            }
        }
    }
    None
}

impl CleaningSystem for GptSim {
    fn name(&self) -> &'static str {
        "GPT-3.5"
    }

    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        self.repair(table, col)
            .into_iter()
            .map(|r| Detection {
                row: r.row,
                value: r.original,
            })
            .collect()
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        let column = table.column(col).expect("in range");
        let values: Vec<String> = column.rendered();
        self.clean_values(column.name(), &values)
            .into_iter()
            .map(|(row, repaired)| RepairSuggestion {
                row,
                original: values[row].clone(),
                repaired: repaired.clone(),
                candidates: vec![RepairCandidate {
                    repaired,
                    cost: 0,
                    score: 0.0,
                    provenance: "gpt-sim few-shot cleaning".to_string(),
                }],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    fn col(values: &[&str]) -> Table {
        Table::new(vec![Column::from_texts("c", values)])
    }

    #[test]
    fn detects_q5_quarter_anomaly() {
        // The paper's §5.1 example: GPT catches Q5-20.
        let t = col(&["Q1-22", "Q4-21", "Q5-20", "Q2-20", "Q1-21"]);
        let g = GptSim::new();
        let det = g.detect(&t, 0);
        assert_eq!(det.len(), 1, "{det:?}");
        assert_eq!(det[0].value, "Q5-20");
    }

    #[test]
    fn misses_syntactic_pattern_error() {
        // …and misses S1.4 among S.x.y values (also §5.1).
        let t = col(&["S.1.2", "S.2.3", "S1.4", "S.1.3", "S.2.1"]);
        let g = GptSim::new();
        assert!(g.detect(&t, 0).is_empty());
    }

    #[test]
    fn repairs_misspelled_city() {
        let t = col(&["Boston", "Miami", "Birminxham", "Chicago"]);
        let g = GptSim::new();
        let repairs = g.repair(&t, 0);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].repaired, "Birmingham");
    }

    #[test]
    fn numeric_column_visual_typos() {
        let t = col(&["10", "20", "3o", "40", "50"]);
        let g = GptSim::new();
        let repairs = g.repair(&t, 0);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].repaired, "30");
    }

    #[test]
    fn singleton_near_frequent_value() {
        let t = col(&["alpha", "alpha", "alpha", "alpa", "beta", "beta", "beta"]);
        let g = GptSim::new();
        let repairs = g.repair(&t, 0);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].repaired, "alpha");
    }
}
