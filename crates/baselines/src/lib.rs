//! The seven baseline systems DataVinci is evaluated against (paper §4.3,
//! Table 4), all implementing [`datavinci_core::CleaningSystem`]:
//!
//! * [`Wmrr`] — weighted matching rectifying rules (reimplemented from the
//!   paper's description, as the original tool is unavailable — exactly what
//!   the DataVinci authors did),
//! * [`HoloCleanLike`] — probabilistic co-occurrence inference, run with the
//!   vacuous denial constraint of the paper's unsupervised protocol,
//! * [`RahaLike`] — ensemble detection + clustering + label propagation from
//!   the first five ground-truth errors per column,
//! * [`AutoDetectLike`] — corpus-trained generalized-pattern co-occurrence,
//! * [`PottersWheelLike`] — MDL structure inference (detection side),
//! * [`T5Sim`] — a trained noisy-channel stand-in for the fine-tuned T5,
//! * [`GptSim`] — a deterministic stand-in for few-shot GPT-3.5 cleaning,
//! * [`GptRepairHead`]/[`WithRepairHead`] — the "+GPT-3.5" repair module
//!   attached to detection-only systems.
//!
//! The LLM/transformer stand-ins are *simulations* with the same interfaces
//! and characteristic strengths/weaknesses; see DESIGN.md §2 for the
//! substitution rationale.

pub mod autodetect;
pub mod gpt_repair_head;
pub mod gpt_sim;
pub mod holoclean;
pub mod potters_wheel;
pub mod raha;
pub mod registry;
pub mod t5_sim;
pub mod wmrr;

pub use autodetect::AutoDetectLike;
pub use gpt_repair_head::{GptRepairHead, WithRepairHead, NEIGHBOR_ROWS};
pub use gpt_sim::GptSim;
pub use holoclean::HoloCleanLike;
pub use potters_wheel::PottersWheelLike;
pub use raha::{RahaLike, LABEL_BUDGET};
pub use registry::{table4, Category, SystemInfo};
pub use t5_sim::T5Sim;
pub use wmrr::Wmrr;
