//! The "+GPT-3.5" repair head pairing detection-only systems with an LLM
//! repair call (paper §4.3: "we add a call to GPT-3.5 where we include the
//! outlier value and its column header along with 10 sample values selected
//! based on spatial proximity … and make individual repair calls for each
//! outlier detected").
//!
//! The stand-in works from the same inputs — outlier, header, and the
//! neighbouring sample values — using the knowledge base, frequency
//! statistics, and a punctuation-skeleton heuristic (GPT's few-shot knack
//! for "make it look like the neighbours").

use datavinci_core::{CleaningSystem, Detection, RepairCandidate, RepairSuggestion};
use datavinci_regex::levenshtein_within;
use datavinci_semantic::{spans::candidate_spans, Gazetteer};
use datavinci_table::Table;

/// How many neighbouring rows are sampled (5 above + 5 below).
pub const NEIGHBOR_ROWS: usize = 5;

/// The repair head.
#[derive(Debug)]
pub struct GptRepairHead {
    gaz: Gazetteer,
}

impl Default for GptRepairHead {
    fn default() -> Self {
        GptRepairHead::new()
    }
}

impl GptRepairHead {
    /// A fresh head.
    pub fn new() -> GptRepairHead {
        GptRepairHead {
            gaz: Gazetteer::new(),
        }
    }

    /// Repairs one outlier given its neighbourhood sample.
    pub fn repair_value(&self, _header: &str, outlier: &str, neighbors: &[String]) -> String {
        // (1) Nearest neighbour within small edit distance.
        let mut best: Option<(&str, usize)> = None;
        for nb in neighbors {
            if nb == outlier || nb.is_empty() {
                continue;
            }
            if let Some(d) = levenshtein_within(outlier, nb, 2) {
                if d > 0 && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((nb, d));
                }
            }
        }
        if let Some((nb, _)) = best {
            return nb.to_string();
        }

        // (2) Gazetteer canonicalization of misspelled semantic spans.
        for span in candidate_spans(outlier) {
            let hits = self.gaz.lookup_fuzzy(&span.lookup);
            if let Some(hit) = hits.first() {
                if hit.distance > 0 {
                    let chars: Vec<char> = outlier.chars().collect();
                    let mut fixed: String = chars[..span.start].iter().collect();
                    fixed.push_str(hit.form_text());
                    fixed.extend(&chars[span.start + span.len..]);
                    return fixed;
                }
            }
        }

        // (3) Punctuation-skeleton alignment: if the neighbours agree on a
        // separator skeleton and the outlier has the right number of
        // alphanumeric runs, re-assemble with the majority separators.
        if let Some(skeleton) = majority_skeleton(neighbors) {
            if let Some(fixed) = reskeleton(outlier, &skeleton) {
                return fixed;
            }
        }

        outlier.to_string()
    }
}

/// The separator skeleton of a value: the sequence of non-alphanumeric
/// characters between/around alphanumeric runs, e.g. `US-837-PRO` → `["-",
/// "-"]` (no leading/trailing separators).
fn skeleton(v: &str) -> Option<Vec<String>> {
    let mut seps: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut seen_alnum = false;
    let mut trailing = false;
    for c in v.chars() {
        if c.is_ascii_alphanumeric() {
            if !cur.is_empty() {
                if !seen_alnum {
                    return None; // leading separators unsupported
                }
                seps.push(std::mem::take(&mut cur));
            }
            seen_alnum = true;
            trailing = false;
        } else {
            cur.push(c);
            trailing = true;
        }
    }
    if trailing || !seen_alnum {
        return None;
    }
    Some(seps)
}

fn majority_skeleton(neighbors: &[String]) -> Option<Vec<String>> {
    let mut counts: std::collections::HashMap<Vec<String>, usize> =
        std::collections::HashMap::new();
    let mut n = 0usize;
    for nb in neighbors {
        if let Some(sk) = skeleton(nb) {
            if !sk.is_empty() {
                *counts.entry(sk).or_insert(0) += 1;
                n += 1;
            }
        }
    }
    let (sk, c) = counts
        .into_iter()
        .max_by_key(|(sk, c)| (*c, std::cmp::Reverse(sk.clone())))?;
    (n >= 3 && c * 2 > n).then_some(sk)
}

/// Reassembles the outlier's alphanumeric runs with the target skeleton,
/// provided the run count fits exactly.
fn reskeleton(outlier: &str, seps: &[String]) -> Option<String> {
    let runs: Vec<String> = outlier
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if runs.len() != seps.len() + 1 {
        return None;
    }
    let mut out = String::new();
    for (i, run) in runs.iter().enumerate() {
        out.push_str(run);
        if let Some(sep) = seps.get(i) {
            out.push_str(sep);
        }
    }
    (out != outlier).then_some(out)
}

/// A detection-only system paired with the repair head.
pub struct WithRepairHead<S: CleaningSystem> {
    inner: S,
    head: GptRepairHead,
    name: &'static str,
}

impl<S: CleaningSystem> WithRepairHead<S> {
    /// Wraps `inner`; `name` should read like the paper's "X + GPT-3.5".
    pub fn new(inner: S, name: &'static str) -> WithRepairHead<S> {
        WithRepairHead {
            inner,
            head: GptRepairHead::new(),
            name,
        }
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: CleaningSystem> CleaningSystem for WithRepairHead<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        self.inner.detect(table, col)
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        let column = table.column(col).expect("in range");
        let values: Vec<String> = column.rendered();
        self.inner
            .detect(table, col)
            .into_iter()
            .map(|d| {
                let lo = d.row.saturating_sub(NEIGHBOR_ROWS);
                let hi = (d.row + NEIGHBOR_ROWS + 1).min(values.len());
                let neighbors: Vec<String> = (lo..hi)
                    .filter(|&r| r != d.row)
                    .map(|r| values[r].clone())
                    .collect();
                let repaired = self.head.repair_value(column.name(), &d.value, &neighbors);
                RepairSuggestion {
                    row: d.row,
                    original: d.value.clone(),
                    repaired: repaired.clone(),
                    candidates: vec![RepairCandidate {
                        repaired,
                        cost: 0,
                        score: 0.0,
                        provenance: "gpt repair head".to_string(),
                    }],
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(values: &[&str]) -> Vec<String> {
        values.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn nearest_neighbor_repair() {
        let head = GptRepairHead::new();
        let fixed = head.repair_value(
            "status",
            "Actve",
            &nb(&["Active", "Inactive", "Active", "Active"]),
        );
        assert_eq!(fixed, "Active");
    }

    #[test]
    fn gazetteer_canonicalization() {
        let head = GptRepairHead::new();
        let fixed = head.repair_value(
            "city",
            "Birminxham_7",
            &nb(&["London_1", "Manchester_2", "Liverpool_3"]),
        );
        assert_eq!(fixed, "Birmingham_7");
    }

    #[test]
    fn skeleton_realignment() {
        let head = GptRepairHead::new();
        let fixed = head.repair_value("id", "AB_12", &nb(&["CD-34", "EF-56", "GH-78", "IJ-90"]));
        assert_eq!(fixed, "AB-12");
    }

    #[test]
    fn identity_when_clueless() {
        let head = GptRepairHead::new();
        let fixed = head.repair_value("x", "???", &nb(&["totally", "unrelated"]));
        assert_eq!(fixed, "???");
    }

    #[test]
    fn skeleton_extraction() {
        assert_eq!(
            skeleton("US-837-PRO"),
            Some(vec!["-".to_string(), "-".to_string()])
        );
        assert_eq!(skeleton("plain"), Some(vec![]));
        assert_eq!(skeleton("-lead"), None);
        assert_eq!(skeleton("trail-"), None);
    }
}
