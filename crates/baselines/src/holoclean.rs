//! HoloClean-like baseline: holistic repair via probabilistic inference \[19\].
//!
//! The paper runs HoloClean in a fully unsupervised configuration with a
//! single vacuous denial constraint, so all signal comes from its
//! statistical model. We reproduce that regime: candidate domains are
//! pruned from column values, and each cell is scored by a pseudo-
//! likelihood combining the candidate's marginal frequency with its
//! co-occurrence with every other attribute of the row (add-one smoothed).
//! A cell is an error when some candidate beats the current value by a
//! margin; the argmax candidate is the repair. The per-cell
//! candidates × columns scoring is what makes this the expensive system of
//! Table 10.

use std::collections::HashMap;

use datavinci_core::{CleaningSystem, Detection, RepairCandidate, RepairSuggestion};
use datavinci_table::Table;

/// Inference configuration.
#[derive(Debug, Clone, Copy)]
pub struct HoloCleanConfig {
    /// Candidate domain: values with at least this frequency.
    pub min_candidate_freq: usize,
    /// Log-likelihood margin required to flag an error.
    pub margin: f64,
    /// Maximum candidate-domain size per column.
    pub max_domain: usize,
}

impl Default for HoloCleanConfig {
    fn default() -> Self {
        HoloCleanConfig {
            min_candidate_freq: 2,
            margin: 0.9,
            max_domain: 32,
        }
    }
}

/// The HoloClean-like system.
#[derive(Debug, Default)]
pub struct HoloCleanLike {
    cfg: HoloCleanConfig,
}

impl HoloCleanLike {
    /// With default configuration (vacuous denial constraint).
    pub fn new() -> HoloCleanLike {
        HoloCleanLike::default()
    }

    /// log P(candidate) + Σ_c log P(candidate | row's value in column c).
    #[allow(clippy::too_many_arguments)]
    fn score(
        &self,
        candidate: &str,
        row: usize,
        col: usize,
        marginals: &HashMap<&str, usize>,
        cooc: &[HashMap<(String, String), usize>],
        col_values: &[Vec<String>],
        n_rows: usize,
    ) -> f64 {
        let m = *marginals.get(candidate).unwrap_or(&0);
        let mut score = ((m + 1) as f64 / (n_rows + marginals.len().max(1)) as f64).ln();
        for (c, counts) in cooc.iter().enumerate() {
            if c == col {
                continue;
            }
            let other = col_values[c][row].as_str();
            let joint = *counts
                .get(&(candidate.to_string(), other.to_string()))
                .unwrap_or(&0);
            // P(candidate | other) with add-one smoothing over the domain.
            let other_total: usize = col_values[c].iter().filter(|v| v.as_str() == other).count();
            score += ((joint + 1) as f64 / (other_total + marginals.len().max(1)) as f64).ln();
        }
        score
    }

    fn infer(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        let n_rows = table.n_rows();
        if n_rows == 0 {
            return Vec::new();
        }
        let col_values: Vec<Vec<String>> = table.columns().iter().map(|c| c.rendered()).collect();
        let values = &col_values[col];

        // Marginal frequencies in the target column.
        let mut marginals: HashMap<&str, usize> = HashMap::new();
        for v in values {
            *marginals.entry(v.as_str()).or_insert(0) += 1;
        }

        // Candidate domain.
        let mut domain: Vec<&str> = marginals
            .iter()
            .filter(|&(_, &c)| c >= self.cfg.min_candidate_freq)
            .map(|(&v, _)| v)
            .collect();
        domain.sort_by_key(|v| (std::cmp::Reverse(marginals[v]), *v));
        domain.truncate(self.cfg.max_domain);
        if domain.is_empty() {
            return Vec::new();
        }

        // Pairwise co-occurrence counts (target value, other-column value).
        let mut cooc: Vec<HashMap<(String, String), usize>> = vec![HashMap::new(); table.n_cols()];
        for (c, counts) in cooc.iter_mut().enumerate() {
            if c == col {
                continue;
            }
            for row in 0..n_rows {
                *counts
                    .entry((values[row].clone(), col_values[c][row].clone()))
                    .or_insert(0) += 1;
            }
        }

        let mut out = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for row in 0..n_rows {
            let current = values[row].as_str();
            let current_score =
                self.score(current, row, col, &marginals, &cooc, &col_values, n_rows);
            let mut best: Option<(&str, f64)> = None;
            for &cand in &domain {
                if cand == current {
                    continue;
                }
                let s = self.score(cand, row, col, &marginals, &cooc, &col_values, n_rows);
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((cand, s));
                }
            }
            if let Some((cand, s)) = best {
                if s > current_score + self.cfg.margin {
                    out.push(RepairSuggestion {
                        row,
                        original: current.to_string(),
                        repaired: cand.to_string(),
                        candidates: vec![RepairCandidate {
                            repaired: cand.to_string(),
                            cost: 0,
                            score: -s,
                            provenance: "pseudo-likelihood argmax".to_string(),
                        }],
                    });
                }
            }
        }
        out
    }
}

impl CleaningSystem for HoloCleanLike {
    fn name(&self) -> &'static str {
        "HoloClean"
    }

    fn detect(&self, table: &Table, col: usize) -> Vec<Detection> {
        self.infer(table, col)
            .into_iter()
            .map(|r| Detection {
                row: r.row,
                value: r.original,
            })
            .collect()
    }

    fn repair(&self, table: &Table, col: usize) -> Vec<RepairSuggestion> {
        self.infer(table, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_table::Column;

    #[test]
    fn co_occurrence_repair() {
        // dept determines floor; one cell disagrees.
        let table = Table::new(vec![
            Column::from_texts(
                "dept",
                &["sales", "sales", "sales", "sales", "hr", "hr", "hr", "hr"],
            ),
            Column::from_texts("floor", &["3", "3", "3", "9", "1", "1", "1", "1"]),
        ]);
        let h = HoloCleanLike::new();
        let repairs = h.repair(&table, 1);
        assert_eq!(repairs.len(), 1, "{repairs:?}");
        assert_eq!(repairs[0].row, 3);
        assert_eq!(repairs[0].repaired, "3");
    }

    #[test]
    fn respects_margin_on_clean_data() {
        let table = Table::new(vec![
            Column::from_texts("a", &["x", "x", "y", "y"]),
            Column::from_texts("b", &["1", "1", "2", "2"]),
        ]);
        let h = HoloCleanLike::new();
        assert!(h.repair(&table, 1).is_empty());
    }

    #[test]
    fn unique_id_columns_untouched() {
        // No candidate reaches min frequency → nothing flagged.
        let table = Table::new(vec![Column::from_texts(
            "id",
            &["u1", "u2", "u3", "u4", "u5"],
        )]);
        let h = HoloCleanLike::new();
        assert!(h.detect(&table, 0).is_empty());
    }

    #[test]
    fn blind_to_syntactic_outliers_without_cooccurrence() {
        let table = Table::new(vec![Column::from_texts(
            "q",
            &["Q1-21", "Q2-21", "Q3-21", "Q32001"],
        )]);
        let h = HoloCleanLike::new();
        assert!(h.detect(&table, 0).is_empty());
    }
}
