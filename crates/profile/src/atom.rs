//! Atomic tokenization: splitting a (masked) string into runs.
//!
//! The profiler's first step decomposes each value into a sequence of atoms:
//! maximal runs of digits / uppercase / lowercase / spaces, single symbol
//! characters, and semantic mask tokens. Atom *kind sequences* are the
//! shape signatures that seed clustering.

use datavinci_regex::{MaskId, MaskedString, Tok};

/// The family of an atom — the clustering signature element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomKind {
    /// A maximal run of ASCII digits.
    Digits,
    /// A maximal run of ASCII uppercase letters.
    Uppers,
    /// A maximal run of ASCII lowercase letters.
    Lowers,
    /// A maximal run of spaces.
    Spaces,
    /// A single symbol (punctuation / non-ASCII) character.
    Symbol(char),
    /// A semantic mask token.
    Mask(MaskId),
}

/// One atom: its kind plus the original text it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Shape family.
    pub kind: AtomKind,
    /// Original covered text (empty for masks).
    pub text: String,
}

impl Atom {
    fn run(kind: AtomKind, text: String) -> Atom {
        Atom { kind, text }
    }
}

/// Which run family does a character extend, if any?
fn family(c: char) -> Option<AtomKind> {
    if c.is_ascii_digit() {
        Some(AtomKind::Digits)
    } else if c.is_ascii_uppercase() {
        Some(AtomKind::Uppers)
    } else if c.is_ascii_lowercase() {
        Some(AtomKind::Lowers)
    } else if c == ' ' {
        Some(AtomKind::Spaces)
    } else {
        None
    }
}

/// Tokenizes a masked string into atoms.
pub fn tokenize(value: &MaskedString) -> Vec<Atom> {
    let mut atoms: Vec<Atom> = Vec::new();
    let mut run: Option<(AtomKind, String)> = None;
    for tok in value.toks() {
        match tok {
            Tok::Mask(id) => {
                if let Some((kind, text)) = run.take() {
                    atoms.push(Atom::run(kind, text));
                }
                atoms.push(Atom::run(AtomKind::Mask(*id), String::new()));
            }
            Tok::Char(c) => match family(*c) {
                Some(kind) => match &mut run {
                    Some((k, text)) if *k == kind => text.push(*c),
                    _ => {
                        if let Some((k, text)) = run.take() {
                            atoms.push(Atom::run(k, text));
                        }
                        run = Some((kind, c.to_string()));
                    }
                },
                None => {
                    if let Some((k, text)) = run.take() {
                        atoms.push(Atom::run(k, text));
                    }
                    atoms.push(Atom::run(AtomKind::Symbol(*c), c.to_string()));
                }
            },
        }
    }
    if let Some((k, text)) = run.take() {
        atoms.push(Atom::run(k, text));
    }
    atoms
}

/// The kind sequence (shape signature) of an atom list.
pub fn signature(atoms: &[Atom]) -> Vec<AtomKind> {
    atoms.iter().map(|a| a.kind).collect()
}

/// Finds the smallest period `p` such that the signature is `p`-periodic
/// (`sig = unit^k` with `k = len/p ≥ 1`). Returns `(p, k)`.
pub fn smallest_period(sig: &[AtomKind]) -> (usize, usize) {
    let n = sig.len();
    if n == 0 {
        return (0, 1);
    }
    for p in 1..n {
        if n.is_multiple_of(p) && (p..n).all(|i| sig[i] == sig[i - p]) {
            return (p, n / p);
        }
    }
    (n, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datavinci_regex::MaskId;

    fn toks(s: &str) -> MaskedString {
        MaskedString::from_plain(s)
    }

    #[test]
    fn tokenize_mixed_value() {
        let atoms = tokenize(&toks("Ind-674-PRO"));
        let kinds = signature(&atoms);
        assert_eq!(
            kinds,
            vec![
                AtomKind::Uppers,
                AtomKind::Lowers,
                AtomKind::Symbol('-'),
                AtomKind::Digits,
                AtomKind::Symbol('-'),
                AtomKind::Uppers,
            ]
        );
        assert_eq!(atoms[0].text, "I");
        assert_eq!(atoms[1].text, "nd");
        assert_eq!(atoms[3].text, "674");
        assert_eq!(atoms[5].text, "PRO");
    }

    #[test]
    fn tokenize_with_masks() {
        let m = MaskId(2);
        let v = MaskedString::from_toks(vec![
            Tok::Mask(m),
            Tok::Char('-'),
            Tok::Char('8'),
            Tok::Char('3'),
        ]);
        let atoms = tokenize(&v);
        assert_eq!(
            signature(&atoms),
            vec![AtomKind::Mask(m), AtomKind::Symbol('-'), AtomKind::Digits]
        );
        assert_eq!(atoms[2].text, "83");
    }

    #[test]
    fn spaces_form_runs() {
        let atoms = tokenize(&toks("New  York"));
        assert_eq!(
            signature(&atoms),
            vec![
                AtomKind::Uppers,
                AtomKind::Lowers,
                AtomKind::Spaces,
                AtomKind::Uppers,
                AtomKind::Lowers,
            ]
        );
        assert_eq!(atoms[2].text, "  ");
    }

    #[test]
    fn symbols_are_singletons() {
        let atoms = tokenize(&toks("--"));
        assert_eq!(
            signature(&atoms),
            vec![AtomKind::Symbol('-'), AtomKind::Symbol('-')]
        );
    }

    #[test]
    fn empty_value() {
        assert!(tokenize(&toks("")).is_empty());
    }

    #[test]
    fn period_detection() {
        use AtomKind::*;
        // A2.A3. → [U, D, ., U, D, .] has period 3, 2 reps.
        let sig = vec![Uppers, Digits, Symbol('.'), Uppers, Digits, Symbol('.')];
        assert_eq!(smallest_period(&sig), (3, 2));
        // Aperiodic.
        let sig2 = vec![Uppers, Digits, Symbol('-')];
        assert_eq!(smallest_period(&sig2), (3, 1));
        // Single atom repeated.
        let sig3 = vec![Symbol('-'), Symbol('-'), Symbol('-')];
        assert_eq!(smallest_period(&sig3), (1, 3));
        assert_eq!(smallest_period(&[]), (0, 1));
    }
}
