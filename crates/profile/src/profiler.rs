//! The column profiler: FlashProfile-style pattern learning.
//!
//! Paper §3.1: "Given a column c, DataVinci uses FlashProfile to learn up to
//! k patterns R = {r₁,…,r_k} such that all values v in c are in the language
//! jointly defined by these patterns. … FlashProfile balances the number of
//! individual patterns with the generality (number of cells covered) of each
//! pattern."
//!
//! Pipeline: tokenize → period-collapse → group by unit signature →
//! greedy agglomerative merging under a normalized-cost threshold →
//! build patterns from pooled statistics → re-evaluate true coverage.

use std::collections::HashMap;

use crate::atom::{signature, smallest_period, tokenize, Atom, AtomKind};
use crate::generalize::{try_merge, MergeConfig};
use crate::stats::{BuildConfig, GroupProfile};
use datavinci_regex::{AsciiBatch, CompiledPattern, MaskedString, Pattern};
use datavinci_telemetry as telemetry;

/// Which matcher scores candidate patterns against the column.
///
/// Both decide the same language, so profiles are identical either way;
/// the knob exists so benchmarks and the differential CI step can measure
/// and verify the fast path against the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchEngine {
    /// Batch membership on the memoized DFA (the fast path; default).
    #[default]
    Dfa,
    /// Per-value cyclic-NFA simulation (the reference oracle).
    Nfa,
}

/// Profiler configuration (FlashProfile's "default parameters" stand-in).
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Learn up to this many patterns (k).
    pub max_patterns: usize,
    /// Merge two clusters when normalized alignment cost ≤ this threshold.
    pub merge_threshold: f64,
    /// Pattern-construction tunables.
    pub build: BuildConfig,
    /// Merge cost model.
    pub merge: MergeConfig,
    /// Matcher used for coverage scoring.
    pub match_engine: MatchEngine,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            max_patterns: 8,
            merge_threshold: 0.2,
            build: BuildConfig::default(),
            merge: MergeConfig::default(),
            match_engine: MatchEngine::default(),
        }
    }
}

/// One learned pattern with its (true, re-evaluated) coverage.
#[derive(Debug, Clone)]
pub struct LearnedPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Compiled form, ready for matching and repair.
    pub compiled: CompiledPattern,
    /// Row indices whose values the pattern accepts.
    pub rows: Vec<usize>,
    /// Fraction of column values accepted.
    pub coverage: f64,
}

/// The result of profiling one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnProfile {
    /// Learned patterns, sorted by coverage (descending).
    pub patterns: Vec<LearnedPattern>,
    /// Number of profiled values.
    pub n_values: usize,
}

impl ColumnProfile {
    /// The significant patterns: individual coverage ≥ δ (paper §3.1).
    pub fn significant(&self, delta: f64) -> Vec<&LearnedPattern> {
        self.patterns
            .iter()
            .filter(|p| p.coverage >= delta)
            .collect()
    }

    /// Is row `i` covered by any pattern with coverage ≥ δ?
    pub fn covered_by_significant(&self, row: usize, delta: f64) -> bool {
        self.patterns
            .iter()
            .any(|p| p.coverage >= delta && p.rows.binary_search(&row).is_ok())
    }
}

/// Learns up to `cfg.max_patterns` patterns over the column values.
pub fn profile_column(values: &[MaskedString], cfg: &ProfilerConfig) -> ColumnProfile {
    profile_column_pooled(values, &MaskedPool::new(values), cfg)
}

/// [`profile_column`] against a pre-interned [`MaskedPool`] over the same
/// values — table-scoped analysis sessions intern each column's masked
/// values once and share the pool between profiling, re-scoring, and
/// detection instead of re-deduplicating per call.
pub fn profile_column_pooled(
    values: &[MaskedString],
    dedup: &MaskedPool,
    cfg: &ProfilerConfig,
) -> ColumnProfile {
    assert_eq!(dedup.n_rows(), values.len(), "pool must cover the column");
    let n = values.len();
    if n == 0 {
        return ColumnProfile::default();
    }

    // 0. Whole-value categorical disjunction: a column drawing on a small
    // repeated vocabulary is best described by one disjunction over its
    // values — this is what lets concretization pick the right alternative
    // from row features (paper Figure 2's (CAT|PRO) at column scale).
    //
    // Evaluated over the pool, O(distinct): a mask-free masked string and
    // its plain rendering are in bijection, so the pool's distinct count
    // and multiplicities equal the old per-row tally (and `Pattern::disj`
    // sorts its alternatives, so insertion order is irrelevant). Any mask
    // token makes `to_plain` return `None`, disqualifying the column on
    // both the old and new path.
    let mut categorical: Option<Pattern> = None;
    {
        let mut plain: Vec<String> = Vec::with_capacity(dedup.n_distinct());
        let all_plain = dedup.distinct.iter().all(|v| match v.to_plain() {
            Some(s) if !s.is_empty() => {
                plain.push(s);
                true
            }
            _ => false,
        });
        if all_plain {
            let distinct = plain.len();
            if (2..=cfg.build.disj_max_alts).contains(&distinct)
                && n >= 2 * distinct
                && dedup.counts.iter().filter(|&&c| c >= 2).count() * 10 >= distinct * 8
            {
                categorical = Some(Pattern::disj(plain));
            }
        }
    }

    // 1. Tokenize + period-collapse once per *distinct* value; rows are
    // still grouped (and group stats absorbed) in row order, so the result
    // is byte-identical to tokenizing every row — duplicates just reuse
    // their distinct value's atoms.
    let mut shapes: Vec<Option<DistinctShape>> = (0..dedup.n_distinct()).map(|_| None).collect();
    let mut groups: HashMap<Vec<AtomKind>, GroupProfile> = HashMap::new();
    for (row, value) in values.iter().enumerate() {
        let shape = shapes[dedup.row_to_distinct[row]].get_or_insert_with(|| {
            let atoms = tokenize(value);
            let sig = signature(&atoms);
            let (p, k) = smallest_period(&sig);
            let key: Vec<AtomKind> = sig[..p].to_vec();
            DistinctShape { atoms, key, p, k }
        });
        match groups.get_mut(&shape.key) {
            Some(g) => g.absorb_value(&shape.atoms, shape.p, shape.k, row),
            None => {
                groups.insert(
                    shape.key.clone(),
                    GroupProfile::seed(&shape.atoms, shape.p, shape.k, row),
                );
            }
        }
    }
    let mut groups: Vec<GroupProfile> = groups.into_values().collect();
    // Deterministic order: biggest groups first, ties by first row.
    groups.sort_by_key(|g| (std::cmp::Reverse(g.rows.len()), g.rows.first().copied()));

    // 2. Greedy agglomerative merging under the threshold.
    loop {
        let mut best: Option<(f64, usize, usize, GroupProfile)> = None;
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                if let Some((cost, merged)) = try_merge(&groups[i], &groups[j], &cfg.merge) {
                    if cost <= cfg.merge_threshold && best.as_ref().is_none_or(|(c, ..)| cost < *c)
                    {
                        best = Some((cost, i, j, merged));
                    }
                }
            }
        }
        match best {
            Some((_, i, j, merged)) => {
                groups.remove(j);
                groups[i] = merged;
            }
            None => break,
        }
    }

    // 3. Build patterns and re-evaluate true coverage over the whole
    // column: one batch match per candidate per *distinct* value (the DFA
    // memoizes transitions across the entire column instead of re-walking
    // the NFA per value, and duplicate rows share one membership verdict).
    let mut learned: Vec<LearnedPattern> = Vec::with_capacity(groups.len() + 1);
    let mut seen: Vec<Pattern> = Vec::new();
    let built: Vec<Pattern> = categorical
        .into_iter()
        .chain(groups.iter().map(|g| g.build_pattern(&cfg.build)))
        .collect();
    for pattern in built {
        if seen.contains(&pattern) {
            continue;
        }
        seen.push(pattern.clone());
        let compiled = CompiledPattern::compile(pattern.clone());
        let rows = dedup.member_rows(&compiled, values, cfg.match_engine);
        let coverage = rows.len() as f64 / n as f64;
        learned.push(LearnedPattern {
            pattern,
            compiled,
            rows,
            coverage,
        });
    }
    sort_by_coverage(&mut learned);
    learned.truncate(cfg.max_patterns);

    let profile = ColumnProfile {
        patterns: learned,
        n_values: n,
    };
    record_profile_telemetry(&profile, dedup, "profile.columns_profiled");
    profile
}

/// Records pattern-learning counters into the active telemetry collector,
/// if any. DFA step counts are approximated by tokens-stepped (one table
/// lookup per token per distinct value per pattern) so the inner matching
/// loop itself stays uninstrumented; state counts read the memo table the
/// matcher already maintains.
fn record_profile_telemetry(profile: &ColumnProfile, dedup: &MaskedPool, event: &str) {
    if !telemetry::is_active() {
        return;
    }
    telemetry::counter(event, 1);
    telemetry::counter("profile.patterns_scored", profile.patterns.len() as u64);
    telemetry::counter(
        "profile.values_scored",
        (profile.patterns.len() * dedup.n_distinct()) as u64,
    );
    let distinct_toks: usize = dedup.distinct.iter().map(|v| v.toks().len()).sum();
    telemetry::counter(
        "profile.dfa_steps",
        (profile.patterns.len() * distinct_toks) as u64,
    );
    let mut states = 0u64;
    let mut fallbacks = 0u64;
    let mut budget = 0u64;
    for lp in &profile.patterns {
        states += lp.compiled.dfa_states() as u64;
        fallbacks += u64::from(lp.compiled.dfa_overflowed());
        budget = budget.max(lp.compiled.dfa_budget() as u64);
    }
    telemetry::counter("profile.dfa_states", states);
    if fallbacks > 0 {
        telemetry::counter("profile.nfa_fallbacks", fallbacks);
    }
    if budget > 0 {
        telemetry::gauge("profile.dfa_state_budget", budget as f64);
    }
}

/// One distinct value's tokenization, computed once and shared by every
/// row carrying the value.
struct DistinctShape {
    atoms: Vec<Atom>,
    key: Vec<AtomKind>,
    p: usize,
    k: usize,
}

/// Distinct masked values plus the row → distinct map: membership is a pure
/// function of the value, so the coverage scorer evaluates each *distinct*
/// value once and expands hits back to rows (weighted by multiplicity, i.e.
/// by how many rows carry the value).
///
/// Public so a table-scoped analysis session can intern a column's masked
/// values once and hand the pool to [`profile_column_pooled`] and
/// [`rescore_profile_pooled`] instead of each call re-deduplicating.
#[derive(Debug, Clone, Default)]
pub struct MaskedPool {
    distinct: Vec<MaskedString>,
    row_to_distinct: Vec<usize>,
    /// Rows carrying each distinct value (multiplicity).
    counts: Vec<usize>,
    /// The distinct set packed into one contiguous byte buffer, when every
    /// value is pure mask-free ASCII — the batched DFA fast path's input.
    ascii: Option<AsciiBatch>,
}

impl MaskedPool {
    /// Interns `values` in first-occurrence order.
    pub fn new(values: &[MaskedString]) -> MaskedPool {
        let mut index: HashMap<&MaskedString, usize> = HashMap::new();
        let mut distinct: Vec<MaskedString> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut row_to_distinct: Vec<usize> = Vec::with_capacity(values.len());
        for v in values {
            let di = *index.entry(v).or_insert_with(|| {
                distinct.push(v.clone());
                counts.push(0);
                distinct.len() - 1
            });
            counts[di] += 1;
            row_to_distinct.push(di);
        }
        let ascii = AsciiBatch::from_values(&distinct);
        MaskedPool {
            distinct,
            row_to_distinct,
            counts,
            ascii,
        }
    }

    /// Number of rows the pool covers.
    pub fn n_rows(&self) -> usize {
        self.row_to_distinct.len()
    }

    /// Number of distinct masked values.
    pub fn n_distinct(&self) -> usize {
        self.distinct.len()
    }

    /// Did the distinct set pack into the contiguous ASCII fast-path
    /// buffer? (False whenever any value carries a mask token or a
    /// non-ASCII character.)
    pub fn ascii_packed(&self) -> bool {
        self.ascii.is_some()
    }

    /// Row indices the pattern accepts, via the configured matcher.
    ///
    /// The DFA fast path batches one membership test per distinct value —
    /// stepping raw bytes when the distinct set packed as ASCII; the NFA
    /// oracle deliberately stays per-row, so the engines' differential
    /// comparison also covers the dedup-and-expand and ASCII-packing steps.
    fn member_rows(
        &self,
        compiled: &CompiledPattern,
        values: &[MaskedString],
        engine: MatchEngine,
    ) -> Vec<usize> {
        match engine {
            MatchEngine::Dfa => {
                let hits = match &self.ascii {
                    Some(batch) => {
                        telemetry::counter("profile.ascii_batch_values", batch.len() as u64);
                        compiled.matches_many_ascii(batch)
                    }
                    None => compiled.matches_many(&self.distinct),
                };
                self.row_to_distinct
                    .iter()
                    .enumerate()
                    .filter_map(|(row, &di)| hits[di].then_some(row))
                    .collect()
            }
            MatchEngine::Nfa => values
                .iter()
                .enumerate()
                .filter_map(|(row, v)| compiled.matches_nfa(v).then_some(row))
                .collect(),
        }
    }
}

/// Coverage-descending order with a stable pattern-rendering tiebreak; the
/// rendering is computed once per pattern, not once per comparison.
fn sort_by_coverage(patterns: &mut Vec<LearnedPattern>) {
    let mut keyed: Vec<(String, LearnedPattern)> = std::mem::take(patterns)
        .into_iter()
        .map(|lp| (lp.pattern.to_string(), lp))
        .collect();
    keyed.sort_by(|(ka, a), (kb, b)| {
        b.coverage
            .partial_cmp(&a.coverage)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| ka.cmp(kb))
    });
    *patterns = keyed.into_iter().map(|(_, lp)| lp).collect();
}

/// Re-scores an existing profile against (possibly extended) column values:
/// every learned pattern keeps its shape but its `rows`/`coverage` are
/// recomputed by matching, skipping the expensive learning passes.
///
/// This is the cache primitive behind append-only re-cleaning: when a column
/// grows but its old rows are unchanged, the previously learned patterns
/// still describe the column language and only membership needs refreshing.
pub fn rescore_profile(prior: &ColumnProfile, values: &[MaskedString]) -> ColumnProfile {
    rescore_profile_pooled(prior, values, &MaskedPool::new(values))
}

/// [`rescore_profile`] against a pre-interned [`MaskedPool`] over the same
/// values (see [`profile_column_pooled`]).
pub fn rescore_profile_pooled(
    prior: &ColumnProfile,
    values: &[MaskedString],
    dedup: &MaskedPool,
) -> ColumnProfile {
    assert_eq!(dedup.n_rows(), values.len(), "pool must cover the column");
    let n = values.len();
    let mut patterns: Vec<LearnedPattern> = prior
        .patterns
        .iter()
        .map(|lp| {
            // Batch-match on the DFA, once per distinct value; the clone
            // shares the prior's warm memo tables, so an append-only
            // re-score pays one table lookup per token instead of a fresh
            // NFA walk.
            let rows = dedup.member_rows(&lp.compiled, values, MatchEngine::Dfa);
            let coverage = if n == 0 {
                0.0
            } else {
                rows.len() as f64 / n as f64
            };
            LearnedPattern {
                pattern: lp.pattern.clone(),
                compiled: lp.compiled.clone(),
                rows,
                coverage,
            }
        })
        .collect();
    sort_by_coverage(&mut patterns);
    let profile = ColumnProfile {
        patterns,
        n_values: n,
    };
    record_profile_telemetry(&profile, dedup, "profile.columns_rescored");
    profile
}

/// Convenience: profiles plain (unmasked) string values.
pub fn profile_plain<S: AsRef<str>>(values: &[S], cfg: &ProfilerConfig) -> ColumnProfile {
    let masked: Vec<MaskedString> = values
        .iter()
        .map(|s| MaskedString::from_plain(s.as_ref()))
        .collect();
    profile_column(&masked, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(values: &[&str]) -> ColumnProfile {
        profile_plain(values, &ProfilerConfig::default())
    }

    #[test]
    fn single_shape_column_yields_one_pattern() {
        let p = profile(&["Q1-22", "Q4-21", "Q2-20", "Q1-21"]);
        assert_eq!(p.patterns.len(), 1);
        assert_eq!(p.patterns[0].pattern.to_string(), "Q[0-9]-[0-9]{2}");
        assert_eq!(p.patterns[0].coverage, 1.0);
    }

    #[test]
    fn intro_example_two_patterns_half_coverage() {
        // Paper §1: [c-1, c-2, c3, c4] → two patterns, neither an outlier.
        let p = profile(&["c-1", "c-2", "c3", "c4"]);
        assert_eq!(p.patterns.len(), 2);
        assert!((p.patterns[0].coverage - 0.5).abs() < 1e-9);
        assert!((p.patterns[1].coverage - 0.5).abs() < 1e-9);
        let sig = p.significant(0.25);
        assert_eq!(sig.len(), 2);
    }

    #[test]
    fn outlier_is_uncovered_by_significant_patterns() {
        let values = vec![
            "A2.",
            "A2.A3.",
            "A5.A7.",
            "A1.A2.A3.",
            "A9.",
            "A4.A5.",
            "AAA3",
        ];
        let p = profile(&values);
        let delta = 0.3;
        // AAA3 is row 6; it must not be covered by any significant pattern.
        assert!(!p.covered_by_significant(6, delta));
        for row in 0..6 {
            assert!(p.covered_by_significant(row, delta), "row {row}");
        }
    }

    #[test]
    fn figure8_pattern_absorbs_frequent_outliers() {
        // Fig 8: C[0-9]{2} repeats often enough to be significant — the
        // *unsupervised* profiler cannot treat C51/C52 as errors.
        let values = vec!["C-19", "C-21", "C-33", "C-48", "C51", "C52", "C53", "C54"];
        let p = profile(&values);
        assert!(p.covered_by_significant(4, 0.3));
        assert!(p.covered_by_significant(0, 0.3));
    }

    #[test]
    fn truncates_to_max_patterns() {
        let values = vec![
            "a", "1", "B-", "c.d", "9!9", "zz zz", "Q#1", "x_y", "[w]", "p|q",
        ];
        let cfg = ProfilerConfig {
            max_patterns: 3,
            ..ProfilerConfig::default()
        };
        let p = profile_plain(&values, &cfg);
        assert!(p.patterns.len() <= 3);
    }

    #[test]
    fn every_member_row_matches_its_pattern() {
        let values = vec!["Ind-674-PRO", "US-837-QUA", "Alg-173-PRO", "Chn-924-QUA"];
        let p = profile(&values);
        for lp in &p.patterns {
            for &row in &lp.rows {
                assert!(lp.compiled.matches(&MaskedString::from_plain(values[row])));
            }
        }
        // All rows covered jointly.
        for row in 0..values.len() {
            assert!(
                p.patterns.iter().any(|lp| lp.rows.contains(&row)),
                "row {row} uncovered"
            );
        }
    }

    #[test]
    fn empty_column() {
        let p = profile(&[]);
        assert!(p.patterns.is_empty());
        assert_eq!(p.n_values, 0);
    }

    #[test]
    fn nfa_and_dfa_engines_produce_identical_profiles() {
        let columns: Vec<Vec<&str>> = vec![
            vec!["Q1-22", "Q4-21", "Q2-20", "Q1-21", "Q990"],
            vec!["c-1", "c-2", "c3", "c4"],
            vec!["Ind-674-PRO", "US-837-QUA", "Alg-173-PRO", "Chn-924-QUA"],
            vec!["", "", "x1", "zz top", "9!9"],
            // Duplicate-heavy: the DFA arm dedups to 3 distinct values and
            // must still expand hits to exactly the NFA's per-row verdicts.
            vec!["a-1", "a-1", "b2", "a-1", "b2", "a-1", "a-1", "b2", "c#3"],
        ];
        for values in &columns {
            let dfa = profile_plain(values, &ProfilerConfig::default());
            let nfa = profile_plain(
                values,
                &ProfilerConfig {
                    match_engine: MatchEngine::Nfa,
                    ..ProfilerConfig::default()
                },
            );
            assert_eq!(dfa.n_values, nfa.n_values);
            assert_eq!(dfa.patterns.len(), nfa.patterns.len(), "{values:?}");
            for (a, b) in dfa.patterns.iter().zip(&nfa.patterns) {
                assert_eq!(a.pattern, b.pattern, "{values:?}");
                assert_eq!(a.rows, b.rows, "{values:?} / {}", a.pattern);
                assert_eq!(a.coverage, b.coverage);
            }
        }
    }

    #[test]
    fn rescore_matches_fresh_scoring_on_grown_column() {
        let base: Vec<&str> = vec!["A2.", "A3.", "A4.A5."];
        let prior = profile(&base);
        let grown: Vec<MaskedString> = ["A2.", "A3.", "A4.A5.", "A6.", "AAA3"]
            .iter()
            .map(|s| MaskedString::from_plain(s))
            .collect();
        let rescored = rescore_profile(&prior, &grown);
        assert_eq!(rescored.n_values, 5);
        for lp in &rescored.patterns {
            let expect: Vec<usize> = grown
                .iter()
                .enumerate()
                .filter(|(_, v)| lp.compiled.matches_nfa(v))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(lp.rows, expect, "{}", lp.pattern);
        }
    }

    #[test]
    fn pooled_entry_points_match_unpooled() {
        let values: Vec<MaskedString> = ["a-1", "a-1", "b2", "a-1", "c#3"]
            .iter()
            .map(|s| MaskedString::from_plain(s))
            .collect();
        let pool = MaskedPool::new(&values);
        assert_eq!(pool.n_rows(), 5);
        assert_eq!(pool.n_distinct(), 3);
        let cfg = ProfilerConfig::default();
        // (Compare the learned content — the compiled matchers' lazy memo
        // tables have nondeterministic map order in Debug output.)
        let canon = |p: &ColumnProfile| {
            p.patterns
                .iter()
                .map(|lp| format!("{} {:?} {}", lp.pattern, lp.rows, lp.coverage))
                .collect::<Vec<_>>()
        };
        let direct = profile_column(&values, &cfg);
        let pooled = profile_column_pooled(&values, &pool, &cfg);
        assert_eq!(canon(&direct), canon(&pooled));
        let rescored = rescore_profile_pooled(&direct, &values, &pool);
        assert_eq!(canon(&rescore_profile(&direct, &values)), canon(&rescored));
    }

    #[test]
    fn blank_values_group_together() {
        let p = profile(&["", "", "x1"]);
        assert_eq!(p.patterns.len(), 2);
        let empty = p
            .patterns
            .iter()
            .find(|lp| lp.pattern == Pattern::Empty)
            .expect("empty pattern learned");
        assert_eq!(empty.rows, vec![0, 1]);
    }
}
