//! FlashProfile-style unsupervised pattern profiling for DataVinci.
//!
//! Given the (masked) string values of a column, [`profile_column`] learns up
//! to *k* regular-expression patterns that jointly cover the column, balancing
//! pattern count against generality (paper §3.1, citing FlashProfile \[15\]).
//! DataVinci then keeps the *significant* subset — patterns individually
//! covering at least a fraction δ of values — and reports values outside
//! their union language as data errors.
//!
//! The implementation is a faithful-behaviour reconstruction rather than a
//! line-by-line port of FlashProfile: values are tokenized into atomic runs,
//! collapsed by smallest period (which discovers quantified groups like
//! `(A[0-9].)+`), clustered by unit signature, and greedily merged under a
//! normalized anti-unification cost. Pooled per-position statistics decide
//! between literals, categorical string disjunctions (`(CAT|PRO)`), and
//! quantified character classes.

pub mod atom;
pub mod generalize;
pub mod profiler;
pub mod stats;

pub use generalize::MergeConfig;
pub use profiler::{
    profile_column, profile_column_pooled, profile_plain, rescore_profile, rescore_profile_pooled,
    ColumnProfile, LearnedPattern, MaskedPool, MatchEngine, ProfilerConfig,
};
pub use stats::BuildConfig;
