//! Group profiles: pooled per-position statistics and pattern construction.
//!
//! A [`GroupProfile`] summarizes a cluster of values sharing one (possibly
//! repeated) unit signature. Pooled statistics decide, per position, whether
//! the final pattern uses a literal, a categorical string disjunction, or a
//! (quantified) character class — balancing specificity against coverage in
//! the spirit of FlashProfile.

use std::collections::BTreeMap;

use crate::atom::{Atom, AtomKind};
use datavinci_regex::{CharClass, MaskId, Pattern};

/// The merged kind of a unit position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PosKind {
    /// A character-class run.
    Class(CharClass),
    /// A fixed symbol character.
    Sym(char),
    /// A semantic mask.
    Mask(MaskId),
}

/// Pooled statistics for one position of a unit signature.
#[derive(Debug, Clone)]
pub struct PosStat {
    /// What the position is.
    pub kind: PosKind,
    /// Whether some aligned values lack this position entirely.
    pub optional: bool,
    /// Observed texts with multiplicities (kept sorted for determinism).
    pub texts: BTreeMap<String, usize>,
    /// Minimum observed run length.
    pub min_len: usize,
    /// Maximum observed run length.
    pub max_len: usize,
    /// Number of samples pooled into this position.
    pub samples: usize,
}

impl PosStat {
    /// The (kind, run length) one atom observes.
    fn observe(atom: &Atom) -> (PosKind, usize) {
        match atom.kind {
            AtomKind::Digits | AtomKind::Uppers | AtomKind::Lowers | AtomKind::Spaces => {
                let class = atom
                    .text
                    .chars()
                    .filter_map(CharClass::narrowest_for)
                    .reduce(CharClass::join)
                    .unwrap_or(CharClass::AlphaNumSpace);
                (PosKind::Class(class), atom.text.chars().count())
            }
            AtomKind::Symbol(c) => (PosKind::Sym(c), 1),
            AtomKind::Mask(id) => (PosKind::Mask(id), 1),
        }
    }

    /// Builds the stat for a single observed atom.
    pub fn from_atom(atom: &Atom) -> PosStat {
        let (kind, len) = PosStat::observe(atom);
        let mut texts = BTreeMap::new();
        texts.insert(atom.text.clone(), 1);
        PosStat {
            kind,
            optional: false,
            texts,
            min_len: len,
            max_len: len,
            samples: 1,
        }
    }

    /// Pools another observed atom into this stat, in place (the profiler
    /// calls this once per atom per value — no temporary stat, and the text
    /// is only cloned the first time it is seen).
    pub fn absorb_atom(&mut self, atom: &Atom) {
        let (kind, len) = PosStat::observe(atom);
        self.kind = match (self.kind, kind) {
            (PosKind::Class(a), PosKind::Class(b)) => PosKind::Class(a.join(b)),
            (k, _) => k, // signature grouping guarantees compatible kinds
        };
        match self.texts.get_mut(&atom.text) {
            Some(n) => *n += 1,
            None => {
                self.texts.insert(atom.text.clone(), 1);
            }
        }
        self.min_len = self.min_len.min(len);
        self.max_len = self.max_len.max(len);
        self.samples += 1;
    }

    /// Pools another stat (after alignment) into this one.
    pub fn absorb(&mut self, other: &PosStat) {
        self.kind = match (self.kind, other.kind) {
            (PosKind::Class(a), PosKind::Class(b)) => PosKind::Class(a.join(b)),
            (k, _) => k, // alignment guarantees compatible kinds otherwise
        };
        self.optional |= other.optional;
        for (t, n) in &other.texts {
            *self.texts.entry(t.clone()).or_insert(0) += n;
        }
        self.min_len = self.min_len.min(other.min_len);
        self.max_len = self.max_len.max(other.max_len);
        self.samples += other.samples;
    }

    /// Number of distinct observed texts.
    pub fn distinct(&self) -> usize {
        self.texts.len()
    }
}

/// Tunables for pattern construction (subset of the profiler config).
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// Maximum alternatives for a categorical disjunction.
    pub disj_max_alts: usize,
    /// Minimum occurrences of each alternative.
    pub disj_min_support: usize,
    /// Minimum alternative length for a disjunction (avoids `(1|2)`-style
    /// over-fitting on single characters).
    pub disj_min_alt_len: usize,
    /// Length spread (max−min) up to which a class run is bounded
    /// `{min,max}` rather than open `{min,}`.
    pub bounded_spread: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            disj_max_alts: 4,
            disj_min_support: 2,
            disj_min_alt_len: 2,
            bounded_spread: 3,
        }
    }
}

/// A cluster of values sharing one unit signature.
#[derive(Debug, Clone)]
pub struct GroupProfile {
    /// Per-position pooled statistics of the repeating unit.
    pub unit: Vec<PosStat>,
    /// Minimum observed repetition count.
    pub min_reps: usize,
    /// Maximum observed repetition count.
    pub max_reps: usize,
    /// Row indices of member values.
    pub rows: Vec<usize>,
}

impl GroupProfile {
    /// Seeds a group from one value's atoms, already period-collapsed into
    /// `reps` repetitions of `unit_len` atoms.
    pub fn seed(atoms: &[Atom], unit_len: usize, reps: usize, row: usize) -> GroupProfile {
        let mut unit: Vec<PosStat> = atoms[..unit_len].iter().map(PosStat::from_atom).collect();
        for r in 1..reps {
            for (p, stat) in unit.iter_mut().enumerate() {
                stat.absorb_atom(&atoms[r * unit_len + p]);
            }
        }
        GroupProfile {
            unit,
            min_reps: reps,
            max_reps: reps,
            rows: vec![row],
        }
    }

    /// Pools another value with the *same* unit signature.
    pub fn absorb_value(&mut self, atoms: &[Atom], unit_len: usize, reps: usize, row: usize) {
        debug_assert_eq!(unit_len, self.unit.len());
        for r in 0..reps {
            for (p, stat) in self.unit.iter_mut().enumerate() {
                stat.absorb_atom(&atoms[r * unit_len + p]);
            }
        }
        self.min_reps = self.min_reps.min(reps);
        self.max_reps = self.max_reps.max(reps);
        self.rows.push(row);
    }

    /// Coverage fraction over a column of `n` values.
    pub fn coverage(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.rows.len() as f64 / n as f64
        }
    }

    /// Builds the concrete [`Pattern`] this group induces.
    pub fn build_pattern(&self, cfg: &BuildConfig) -> Pattern {
        if self.unit.is_empty() {
            return Pattern::Empty;
        }
        let parts: Vec<Pattern> = self
            .unit
            .iter()
            .map(|stat| {
                let base = build_pos(stat, cfg, self.rows.len());
                if stat.optional {
                    Pattern::opt(base)
                } else {
                    base
                }
            })
            .collect();
        let unit_pattern = Pattern::concat(parts);
        match (self.min_reps, self.max_reps) {
            (1, 1) => unit_pattern,
            (lo, hi) if lo == hi => Pattern::Repeat {
                body: Box::new(unit_pattern),
                min: lo as u32,
                max: Some(hi as u32),
            },
            (lo, _) => Pattern::Repeat {
                body: Box::new(unit_pattern),
                min: lo.max(1) as u32,
                max: None,
            },
        }
    }
}

fn build_pos(stat: &PosStat, cfg: &BuildConfig, group_size: usize) -> Pattern {
    match stat.kind {
        PosKind::Sym(c) => Pattern::lit(c.to_string()),
        PosKind::Mask(id) => Pattern::Mask(id),
        PosKind::Class(class) => {
            // Constant literal: all samples saw the same text.
            if stat.distinct() == 1 {
                let (text, _) = stat.texts.iter().next().expect("non-empty");
                if !text.is_empty() {
                    return Pattern::lit(text.clone());
                }
            }
            // Categorical disjunction over word-like alternatives.
            let word_like = class.is_subclass_of(&CharClass::Letter);
            if word_like
                && stat.distinct() >= 2
                && stat.distinct() <= cfg.disj_max_alts
                && stat.texts.iter().all(|(t, n)| {
                    *n >= cfg.disj_min_support && t.chars().count() >= cfg.disj_min_alt_len
                })
                && stat.samples > stat.distinct()
                && group_size > stat.distinct()
            {
                return Pattern::disj(stat.texts.keys().cloned());
            }
            // Quantified class run.
            let (lo, hi) = (stat.min_len.max(1) as u32, stat.max_len as u32);
            if lo == hi {
                Pattern::class_n(class, lo)
            } else if (hi - lo) as usize <= cfg.bounded_spread {
                Pattern::Repeat {
                    body: Box::new(Pattern::Class(class)),
                    min: lo,
                    max: Some(hi),
                }
            } else {
                Pattern::Repeat {
                    body: Box::new(Pattern::Class(class)),
                    min: lo,
                    max: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{signature, smallest_period, tokenize};
    use datavinci_regex::{CompiledPattern, MaskedString};

    fn group_of(values: &[&str]) -> GroupProfile {
        let mut group: Option<GroupProfile> = None;
        for (i, v) in values.iter().enumerate() {
            let atoms = tokenize(&MaskedString::from_plain(v));
            let sig = signature(&atoms);
            let (p, k) = smallest_period(&sig);
            match &mut group {
                None => group = Some(GroupProfile::seed(&atoms, p, k, i)),
                Some(g) => g.absorb_value(&atoms, p, k, i),
            }
        }
        group.expect("non-empty input")
    }

    fn pattern_of(values: &[&str]) -> Pattern {
        group_of(values).build_pattern(&BuildConfig::default())
    }

    #[test]
    fn constant_literal_position() {
        let p = pattern_of(&["Q1", "Q2", "Q3"]);
        assert_eq!(p.to_string(), "Q[0-9]");
    }

    #[test]
    fn figure4_repeated_unit() {
        let p = pattern_of(&["A2.", "A2.A3.", "A5.A7."]);
        assert_eq!(p.to_string(), "(A[0-9].)+");
        let c = CompiledPattern::compile(p);
        assert!(c.matches(&"A9.A9.A9.".into()));
        assert!(!c.matches(&"AAA3".into()));
    }

    #[test]
    fn disjunction_for_categorical_suffix() {
        let p = pattern_of(&["X-CAT", "Y-PRO", "Z-CAT", "W-PRO"]);
        assert_eq!(p.to_string(), "[A-Z]-(CAT|PRO)");
    }

    #[test]
    fn varying_digit_width_bounded() {
        let p = pattern_of(&["v1", "v22", "v333"]);
        assert_eq!(p.to_string(), "v[0-9]{1,3}");
    }

    #[test]
    fn wide_spread_open_quantifier() {
        let p = pattern_of(&["n1", "n123456789"]);
        assert_eq!(p.to_string(), "n[0-9]+");
    }

    #[test]
    fn binary_class_detected() {
        let p = pattern_of(&["b0", "b1", "b0", "b1"]);
        // '0'/'1' texts are two distinct single-char digit texts → Binary class.
        assert_eq!(p.to_string(), "b[01]");
    }

    #[test]
    fn members_always_match_their_pattern() {
        let cases: Vec<Vec<&str>> = vec![
            vec!["A2.", "A2.A3.", "A5.A7."],
            vec!["Q1-22", "Q4-21", "Q2-20"],
            vec!["c-1", "c-2"],
            vec!["12.5", "3.75"],
        ];
        for values in cases {
            let g = group_of(&values);
            let p = g.build_pattern(&BuildConfig::default());
            let c = CompiledPattern::compile(p.clone());
            for v in &values {
                assert!(
                    c.matches(&MaskedString::from_plain(v)),
                    "{v:?} must match {p}"
                );
            }
        }
    }

    #[test]
    fn class_join_on_mixed_case() {
        // Same signature is required for this low-level API, so exercise the
        // join via absorb on stats directly.
        let a = tokenize(&MaskedString::from_plain("AB"));
        let b = tokenize(&MaskedString::from_plain("CD"));
        let mut s = PosStat::from_atom(&a[0]);
        s.absorb_atom(&b[0]);
        assert_eq!(s.kind, PosKind::Class(CharClass::Upper));
        assert_eq!(s.distinct(), 2);
        assert_eq!(s.samples, 2);
    }
}
