//! Anti-unification of group profiles: alignment-based merging.
//!
//! FlashProfile balances the number of patterns against their generality.
//! We approximate this with greedy agglomerative merging: two clusters merge
//! when their unit signatures align cheaply — aligned class runs widen to
//! their class join, unalignable positions become optional — and the
//! normalized alignment cost stays under a threshold. Symbol and mask
//! positions never unify across different symbols/masks (a `-`/`_` delimiter
//! difference must *stay* two patterns, otherwise outliers like `usa_837`
//! from Figure 2 would be silently absorbed).

use crate::stats::{GroupProfile, PosKind, PosStat};

/// Cost model for pairwise merges.
#[derive(Debug, Clone, Copy)]
pub struct MergeConfig {
    /// Cost of widening one class into a super-class.
    pub class_widen_cost: f64,
    /// Cost of joining two incomparable classes (e.g. digits vs lowercase).
    pub class_mismatch_cost: f64,
    /// Gap cost for a class-run position (becomes optional).
    pub gap_class_cost: f64,
    /// Gap cost for a symbol position (structure-bearing, expensive).
    pub gap_sym_cost: f64,
    /// Gap cost for a mask position.
    pub gap_mask_cost: f64,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            class_widen_cost: 0.2,
            class_mismatch_cost: 0.4,
            gap_class_cost: 0.65,
            gap_sym_cost: 1.0,
            gap_mask_cost: 1.0,
        }
    }
}

fn gap_cost(stat: &PosStat, cfg: &MergeConfig) -> f64 {
    match stat.kind {
        PosKind::Class(_) => cfg.gap_class_cost,
        PosKind::Sym(_) => cfg.gap_sym_cost,
        PosKind::Mask(_) => cfg.gap_mask_cost,
    }
}

/// Match cost of aligning two positions, or `None` if they cannot unify.
fn match_cost(a: &PosStat, b: &PosStat, cfg: &MergeConfig) -> Option<f64> {
    match (a.kind, b.kind) {
        (PosKind::Sym(x), PosKind::Sym(y)) => (x == y).then_some(0.0),
        (PosKind::Mask(x), PosKind::Mask(y)) => (x == y).then_some(0.0),
        (PosKind::Class(x), PosKind::Class(y)) => {
            if x == y {
                Some(0.0)
            } else if x.is_subclass_of(&y) || y.is_subclass_of(&x) {
                Some(cfg.class_widen_cost)
            } else {
                Some(cfg.class_mismatch_cost)
            }
        }
        _ => None,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Step {
    Match,
    GapA, // consume from a only
    GapB, // consume from b only
}

/// Attempts to merge two groups. Returns the *normalized* alignment cost and
/// the merged profile; `None` when alignment is impossible.
pub fn try_merge(
    a: &GroupProfile,
    b: &GroupProfile,
    cfg: &MergeConfig,
) -> Option<(f64, GroupProfile)> {
    let (ua, ub) = (&a.unit, &b.unit);
    let (n, m) = (ua.len(), ub.len());
    if n == 0 || m == 0 {
        return None; // the empty-string group never merges
    }
    const INF: f64 = f64::INFINITY;
    let mut dp = vec![vec![INF; m + 1]; n + 1];
    let mut step = vec![vec![Step::Match; m + 1]; n + 1];
    dp[0][0] = 0.0;
    for i in 0..=n {
        for j in 0..=m {
            if dp[i][j].is_infinite() {
                continue;
            }
            if i < n && j < m {
                if let Some(c) = match_cost(&ua[i], &ub[j], cfg) {
                    if dp[i][j] + c < dp[i + 1][j + 1] {
                        dp[i + 1][j + 1] = dp[i][j] + c;
                        step[i + 1][j + 1] = Step::Match;
                    }
                }
            }
            if i < n {
                let c = gap_cost(&ua[i], cfg);
                if dp[i][j] + c < dp[i + 1][j] {
                    dp[i + 1][j] = dp[i][j] + c;
                    step[i + 1][j] = Step::GapA;
                }
            }
            if j < m {
                let c = gap_cost(&ub[j], cfg);
                if dp[i][j] + c < dp[i][j + 1] {
                    dp[i][j + 1] = dp[i][j] + c;
                    step[i][j + 1] = Step::GapB;
                }
            }
        }
    }
    let total = dp[n][m];
    if total.is_infinite() {
        return None;
    }
    let normalized = total / n.max(m) as f64;

    // Reconstruct the merged unit.
    let mut merged_rev: Vec<PosStat> = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        match step[i][j] {
            Step::Match if i > 0 && j > 0 => {
                let mut s = ua[i - 1].clone();
                s.absorb(&ub[j - 1]);
                merged_rev.push(s);
                i -= 1;
                j -= 1;
            }
            Step::GapA | Step::Match if i > 0 => {
                let mut s = ua[i - 1].clone();
                s.optional = true;
                merged_rev.push(s);
                i -= 1;
            }
            _ => {
                let mut s = ub[j - 1].clone();
                s.optional = true;
                merged_rev.push(s);
                j -= 1;
            }
        }
    }
    merged_rev.reverse();

    let mut rows = a.rows.clone();
    rows.extend_from_slice(&b.rows);
    rows.sort_unstable();
    rows.dedup();
    Some((
        normalized,
        GroupProfile {
            unit: merged_rev,
            min_reps: a.min_reps.min(b.min_reps),
            max_reps: a.max_reps.max(b.max_reps),
            rows,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{signature, smallest_period, tokenize};
    use crate::stats::BuildConfig;
    use datavinci_regex::{CompiledPattern, MaskedString};

    fn group_at(values: &[&str], base: usize) -> GroupProfile {
        let mut g: Option<GroupProfile> = None;
        for (i, v) in values.iter().enumerate() {
            let atoms = tokenize(&MaskedString::from_plain(v));
            let sig = signature(&atoms);
            let (p, k) = smallest_period(&sig);
            match &mut g {
                None => g = Some(GroupProfile::seed(&atoms, p, k, base + i)),
                Some(g) => g.absorb_value(&atoms, p, k, base + i),
            }
        }
        g.unwrap()
    }

    fn group(values: &[&str]) -> GroupProfile {
        group_at(values, 0)
    }

    #[test]
    fn same_shape_different_classes_widen() {
        // Same digit suffix keeps both digit runs in the Binary class, so
        // the only cost is the Lower/Upper mismatch: 0.4 / 2 = 0.2.
        let a = group(&["abc1"]);
        let b = group_at(&["XYZ1"], 10);
        let cfg = MergeConfig::default();
        let (cost, merged) = try_merge(&a, &b, &cfg).unwrap();
        assert!(cost > 0.0 && cost <= 0.2, "cost {cost}");
        let p = merged.build_pattern(&BuildConfig::default());
        let c = CompiledPattern::compile(p);
        assert!(c.matches(&"abc1".into()));
        assert!(c.matches(&"XYZ1".into()));
        assert!(c.matches(&"AbC1".into()));
    }

    #[test]
    fn class_widening_steps_accumulate() {
        // Different trailing digits widen Binary→Digit (0.2) on top of the
        // Lower/Upper mismatch (0.4): total 0.6 / 2 = 0.3 — above threshold.
        let a = group(&["abc1"]);
        let b = group_at(&["XYZ2"], 10);
        let (cost, _) = try_merge(&a, &b, &MergeConfig::default()).unwrap();
        assert!((cost - 0.3).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn delimiter_difference_is_expensive() {
        // c-1 shape vs c1 shape: dropping the '-' costs gap_sym (0.9)/3 = 0.3.
        let a = group(&["c-1", "c-2"]);
        let b = group(&["c3", "c4"]);
        let cfg = MergeConfig::default();
        let (cost, _) = try_merge(&a, &b, &cfg).unwrap();
        assert!(cost > 0.2, "delimiter gaps must exceed threshold: {cost}");
    }

    #[test]
    fn symbol_mismatch_never_matches_directly() {
        // '_' vs '-' positions can only gap, never merge into one symbol.
        let a = group(&["a-1"]);
        let b = group(&["a_1"]);
        let cfg = MergeConfig::default();
        let (cost, merged) = try_merge(&a, &b, &cfg).unwrap();
        // Both symbols became optional gaps: cost = 2 * 1.0 / 3.
        assert!((cost - 2.0 / 3.0).abs() < 1e-9, "cost {cost}");
        let p = merged.build_pattern(&BuildConfig::default());
        assert!(
            p.to_string().contains("-?") && p.to_string().contains("_?"),
            "pattern {p}"
        );
    }

    #[test]
    fn optional_tail_from_length_difference() {
        let a = group(&["12.5"]);
        let b = group(&["13"]);
        let cfg = MergeConfig::default();
        let (cost, merged) = try_merge(&a, &b, &cfg).unwrap();
        let p = merged.build_pattern(&BuildConfig::default());
        let c = CompiledPattern::compile(p);
        assert!(c.matches(&"12.5".into()));
        assert!(c.matches(&"13".into()));
        // One symbol gap + one class gap.
        assert!((cost - (1.0 + 0.65) / 3.0).abs() < 1e-9, "cost {cost}");
    }

    #[test]
    fn merged_rows_are_union() {
        let a = group(&["abc"]);
        let b = group_at(&["XY"], 1);
        let (_, merged) = try_merge(&a, &b, &MergeConfig::default()).unwrap();
        assert_eq!(merged.rows, vec![0, 1]);
    }

    #[test]
    fn empty_groups_never_merge() {
        let a = group(&[""]);
        let b = group(&["x"]);
        assert!(try_merge(&a, &b, &MergeConfig::default()).is_none());
    }
}
