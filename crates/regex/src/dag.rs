//! The value-specific unrolled DAG (Figure 4) that the repair engine's
//! dynamic program runs over.
//!
//! Built from a loop-free tagged pattern (see the crate-internal unroll
//! pass): Thompson
//! construction with ε-edges, then ε-elimination and topological ordering.
//! Every consuming edge carries its [`AtomKey`] (original atom id +
//! unrolled occurrence index) when it corresponds to a concretizable atom,
//! which is how decision-tree training examples are keyed (paper Example 5).

use crate::ast::{AtomId, AtomKey, TNode};
use crate::class::CharClass;
use crate::token::{MaskId, Tok};
use crate::unroll::unroll;

/// Edge label in the unrolled DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagLabel {
    /// Consume exactly this character.
    Lit(char),
    /// Consume one character of the class (abstract — concretized later).
    Class(CharClass, AtomKey),
    /// Consume one mask token (re-concretized by the semantic layer).
    Mask(MaskId, AtomKey),
    /// Consume a whole alternative of disjunction `disjs[idx]`.
    Disj(u32, AtomKey),
}

impl DagLabel {
    /// How many tokens the *shortest* transition on this edge consumes.
    pub fn min_consumed(&self, disjs: &[Vec<Vec<char>>]) -> usize {
        match self {
            DagLabel::Lit(_) | DagLabel::Class(..) | DagLabel::Mask(..) => 1,
            DagLabel::Disj(d, _) => disjs[*d as usize].iter().map(Vec::len).min().unwrap_or(1),
        }
    }
}

/// A consuming edge of the DAG.
#[derive(Debug, Clone)]
pub struct DagEdge {
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// What the edge consumes/emits.
    pub label: DagLabel,
}

/// The ε-free unrolled DAG for one (pattern, value-length) pair.
#[derive(Debug, Clone)]
pub struct Dag {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Start node.
    pub start: usize,
    /// Accepting flags per node.
    pub accepts: Vec<bool>,
    /// All consuming edges.
    pub edges: Vec<DagEdge>,
    /// Incoming edge indices per node.
    pub in_edges: Vec<Vec<usize>>,
    /// Nodes in topological order (start first).
    pub topo: Vec<usize>,
    /// Disjunction alternative table shared by `DagLabel::Disj` edges.
    pub disjs: Vec<Vec<Vec<char>>>,
}

impl Dag {
    /// Builds the unrolled DAG for `pattern` specialized to values of
    /// `value_len` tokens.
    pub(crate) fn build(root: &TNode, value_len: usize) -> Dag {
        let flat = unroll(root, value_len);
        let mut b = RawBuilder::default();
        let (start, accept) = b.fragment(&flat);
        b.eliminate_eps(start, accept)
    }

    /// Does a single token satisfy a char-consuming label? (Disj handled
    /// separately since it consumes whole alternatives.)
    pub fn tok_matches(label: &DagLabel, tok: Tok) -> bool {
        match label {
            DagLabel::Lit(c) => tok == Tok::Char(*c),
            DagLabel::Class(cc, _) => matches!(tok, Tok::Char(ch) if cc.contains(ch)),
            DagLabel::Mask(m, _) => tok == Tok::Mask(*m),
            DagLabel::Disj(..) => false,
        }
    }
}

#[derive(Default)]
struct RawBuilder {
    eps: Vec<Vec<usize>>,
    cons: Vec<(usize, usize, DagLabel)>,
    n_nodes: usize,
    disjs: Vec<Vec<Vec<char>>>,
    /// Per-atom occurrence counters, advanced in construction order.
    occ: std::collections::HashMap<AtomId, u32>,
}

impl RawBuilder {
    fn node(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.n_nodes += 1;
        self.n_nodes - 1
    }

    fn key(&mut self, atom: AtomId) -> AtomKey {
        let occ = self.occ.entry(atom).or_insert(0);
        let k = AtomKey { atom, occ: *occ };
        *occ += 1;
        k
    }

    fn intern_disj(&mut self, alts: &[String]) -> u32 {
        let chars: Vec<Vec<char>> = alts.iter().map(|a| a.chars().collect()).collect();
        if let Some(i) = self.disjs.iter().position(|d| *d == chars) {
            return i as u32;
        }
        self.disjs.push(chars);
        (self.disjs.len() - 1) as u32
    }

    fn fragment(&mut self, node: &TNode) -> (usize, usize) {
        match node {
            TNode::Empty => {
                let s = self.node();
                (s, s)
            }
            TNode::Str(text) => {
                let entry = self.node();
                let mut cur = entry;
                for c in text.chars() {
                    let next = self.node();
                    self.cons.push((cur, next, DagLabel::Lit(c)));
                    cur = next;
                }
                (entry, cur)
            }
            TNode::Class(c, atom) => {
                let key = self.key(*atom);
                let s = self.node();
                let e = self.node();
                self.cons.push((s, e, DagLabel::Class(*c, key)));
                (s, e)
            }
            TNode::Mask(m, atom) => {
                let key = self.key(*atom);
                let s = self.node();
                let e = self.node();
                self.cons.push((s, e, DagLabel::Mask(*m, key)));
                (s, e)
            }
            TNode::Disj(alts, atom) => {
                let d = self.intern_disj(alts);
                let key = self.key(*atom);
                let s = self.node();
                let e = self.node();
                self.cons.push((s, e, DagLabel::Disj(d, key)));
                (s, e)
            }
            TNode::Concat(parts) => {
                let entry = self.node();
                let mut cur = entry;
                for part in parts {
                    let (ps, pe) = self.fragment(part);
                    self.eps[cur].push(ps);
                    cur = pe;
                }
                (entry, cur)
            }
            TNode::Alt(parts) => {
                let s = self.node();
                let e = self.node();
                for part in parts {
                    let (ps, pe) = self.fragment(part);
                    self.eps[s].push(ps);
                    self.eps[pe].push(e);
                }
                (s, e)
            }
            TNode::Repeat { .. } => {
                unreachable!("Dag::build requires a loop-free pattern (run unroll first)")
            }
        }
    }

    /// ε-eliminates the raw graph into a [`Dag`].
    fn eliminate_eps(self, start: usize, accept: usize) -> Dag {
        let n = self.n_nodes;
        // eps_reach[u] = all nodes reachable from u via ε (including u).
        let mut eps_reach: Vec<Vec<usize>> = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)]
        for u in 0..n {
            let mut seen = vec![false; n];
            let mut stack = vec![u];
            seen[u] = true;
            while let Some(x) = stack.pop() {
                for &y in &self.eps[x] {
                    if !seen[y] {
                        seen[y] = true;
                        stack.push(y);
                    }
                }
            }
            eps_reach.push((0..n).filter(|&i| seen[i]).collect());
        }

        // Consuming edges out of each raw node.
        let mut out_raw: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, (from, _, _)) in self.cons.iter().enumerate() {
            out_raw[*from].push(i);
        }

        // New edge set: u --label--> v whenever some w ∈ eps_reach(u) has a
        // consuming edge (w, v, label).
        let mut edges: Vec<DagEdge> = Vec::new();
        let mut seen_pair = std::collections::HashSet::new();
        #[allow(clippy::needless_range_loop)]
        for u in 0..n {
            for &w in &eps_reach[u] {
                for &ei in &out_raw[w] {
                    if seen_pair.insert((u, ei)) {
                        let (_, to, ref label) = self.cons[ei];
                        edges.push(DagEdge {
                            from: u,
                            to,
                            label: label.clone(),
                        });
                    }
                }
            }
        }

        let accepts: Vec<bool> = (0..n).map(|u| eps_reach[u].contains(&accept)).collect();

        // Keep only nodes reachable from start over the new edges.
        let mut reach = vec![false; n];
        reach[start] = true;
        let mut stack = vec![start];
        let mut out_new: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            out_new[e.from].push(i);
        }
        while let Some(u) = stack.pop() {
            for &ei in &out_new[u] {
                let v = edges[ei].to;
                if !reach[v] {
                    reach[v] = true;
                    stack.push(v);
                }
            }
        }
        edges.retain(|e| reach[e.from]);

        let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            in_edges[e.to].push(i);
        }

        // Topological order via Kahn's algorithm over reachable nodes.
        let mut indeg = vec![0usize; n];
        for e in &edges {
            indeg[e.to] += 1;
        }
        let mut out_new: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            out_new[e.from].push(i);
        }
        let mut topo = Vec::with_capacity(n);
        let mut queue: Vec<usize> = (0..n).filter(|&u| reach[u] && indeg[u] == 0).collect();
        while let Some(u) = queue.pop() {
            topo.push(u);
            for &ei in &out_new[u] {
                let v = edges[ei].to;
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }

        Dag {
            n_nodes: n,
            start,
            accepts,
            edges,
            in_edges,
            topo,
            disjs: self.disjs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pattern;
    use crate::token::MaskedString;

    fn dag_for(p: &Pattern, len: usize) -> Dag {
        Dag::build(p.tag().root(), len)
    }

    /// Zero-cost reachability: does the DAG accept the string exactly?
    fn dag_accepts(dag: &Dag, s: &str) -> bool {
        let toks = MaskedString::from_plain(s);
        let toks = toks.toks();
        let n = toks.len();
        let mut reach = vec![vec![false; dag.n_nodes]; n + 1];
        reach[dag.start][0] = false; // placate clippy; real init below
        reach[0][dag.start] = true;
        for i in 0..n {
            let frontier: Vec<usize> = (0..dag.n_nodes).filter(|&u| reach[i][u]).collect();
            for u in frontier {
                for e in dag.edges.iter().filter(|e| e.from == u) {
                    match &e.label {
                        DagLabel::Disj(d, _) => {
                            for alt in &dag.disjs[*d as usize] {
                                let k = alt.len();
                                if i + k <= n
                                    && alt
                                        .iter()
                                        .zip(&toks[i..i + k])
                                        .all(|(c, t)| *t == Tok::Char(*c))
                                {
                                    reach[i + k][e.to] = true;
                                }
                            }
                        }
                        label => {
                            if Dag::tok_matches(label, toks[i]) {
                                reach[i + 1][e.to] = true;
                            }
                        }
                    }
                }
            }
        }
        (0..dag.n_nodes).any(|u| reach[n][u] && dag.accepts[u])
    }

    #[test]
    fn figure4_dag_accepts_valid_rejects_outlier() {
        let p = Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ]));
        let d6 = dag_for(&p, 6);
        assert!(dag_accepts(&d6, "A2.A3."));
        assert!(!dag_accepts(&d6, "AAA3"));
        let d3 = dag_for(&p, 3);
        assert!(dag_accepts(&d3, "A2."));
    }

    #[test]
    fn dag_is_acyclic_topo_covers_reachable() {
        let p = Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ]));
        let d = dag_for(&p, 9);
        // Every edge must go forward in topological order.
        let pos: std::collections::HashMap<usize, usize> =
            d.topo.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        for e in &d.edges {
            assert!(
                pos[&e.from] < pos[&e.to],
                "edge {}→{} violates topo order",
                e.from,
                e.to
            );
        }
    }

    #[test]
    fn occurrences_increase_left_to_right() {
        let p = Pattern::class_plus(CharClass::Digit);
        let d = dag_for(&p, 3);
        let mut occs: Vec<u32> = d
            .edges
            .iter()
            .filter_map(|e| match &e.label {
                DagLabel::Class(_, k) => Some(k.occ),
                _ => None,
            })
            .collect();
        occs.sort_unstable();
        occs.dedup();
        assert_eq!(occs, vec![0, 1, 2]);
    }

    #[test]
    fn disjunction_edges_preserved_whole() {
        let p = Pattern::concat([Pattern::lit("-"), Pattern::disj(["CAT", "PRO"])]);
        let d = dag_for(&p, 4);
        let n_disj = d
            .edges
            .iter()
            .filter(|e| matches!(e.label, DagLabel::Disj(..)))
            .count();
        assert_eq!(n_disj, 1);
        assert!(dag_accepts(&d, "-CAT"));
        assert!(dag_accepts(&d, "-PRO"));
        assert!(!dag_accepts(&d, "-DOG"));
    }

    #[test]
    fn empty_value_dag_accepts_only_if_nullable() {
        let star = Pattern::star(Pattern::lit("a"));
        assert!(dag_accepts(&dag_for(&star, 0), ""));
        let plus = Pattern::plus(Pattern::lit("a"));
        assert!(!dag_accepts(&dag_for(&plus, 0), ""));
    }
}
