//! DataVinci's pattern language and matching engine.
//!
//! This crate implements the regular-expression machinery of the paper:
//!
//! * [`CharClass`] — the eight character classes of §3.1,
//! * [`Pattern`] — regexes over literals, classes, string disjunctions,
//!   quantified groups, and semantic *mask* tokens (§3.2),
//! * [`MaskedString`]/[`Tok`] — strings over the extended alphabet produced
//!   by semantic abstraction,
//! * [`CompiledPattern`] — memoized-DFA membership tests (lazy subset
//!   construction with a cyclic-NFA fallback/oracle; see [`mod@dfa`]) plus
//!   per-value-length unrolled [`Dag`]s (Figure 4) used by the repair
//!   dynamic program,
//! * [`Bindings`] — which concrete character/alternative each concretizable
//!   atom consumed on a match (the decision-tree training data of Example 5),
//! * Levenshtein distances in [`edit_distance`] (plain, token-level, banded).
//!
//! The repair DP itself (Equation 1) lives in `datavinci-core`; this crate
//! supplies the automata it runs over.

pub mod ast;
pub mod class;
pub mod dag;
pub mod dfa;
pub mod display;
pub mod edit_distance;
pub mod intersect;
pub mod matcher;
mod nfa;
pub mod token;
mod unroll;

pub use ast::{AtomId, AtomKey, Pattern};
pub use class::CharClass;
pub use dag::{Dag, DagEdge, DagLabel};
pub use dfa::AsciiBatch;
pub use display::render;
pub use edit_distance::{levenshtein, levenshtein_toks, levenshtein_within};
pub use intersect::{
    enumerate_within, intersect_minimal, ProductConfig, ProductEnumeration, ProductOutcome,
    ProductPath, ProductStats, ProductStep,
};
pub use matcher::{Binding, Bindings, CompiledPattern};
pub use token::{MaskAlphabet, MaskId, MaskedString, Tok};
