//! Human-readable rendering of patterns, in the paper's notation:
//! `{Country}-[0-9]+-(CAT|PRO)`, `(A[0-9].)+`, `Q[01][0-9]-20[0-9]{2}`.

use crate::ast::Pattern;
use crate::token::MaskAlphabet;
use std::fmt;

/// Characters that must be escaped when rendered literally.
const SPECIAL: &[char] = &['(', ')', '[', ']', '{', '}', '|', '+', '*', '?', '\\'];

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        if SPECIAL.contains(&c) {
            out.push('\\');
        }
        out.push(c);
    }
}

/// Does this pattern need parentheses when directly quantified?
fn needs_group(p: &Pattern) -> bool {
    match p {
        Pattern::Class(_) | Pattern::Mask(_) | Pattern::Empty => false,
        Pattern::Str(s) => s.chars().count() > 1,
        Pattern::Disj(_) => false, // rendered with its own parens
        _ => true,
    }
}

fn render_rec(p: &Pattern, alphabet: Option<&MaskAlphabet>, out: &mut String) {
    match p {
        Pattern::Empty => out.push('ε'),
        Pattern::Str(s) => push_escaped(out, s),
        Pattern::Class(c) => out.push_str(c.regex_str()),
        Pattern::Mask(m) => {
            out.push('{');
            match alphabet.and_then(|a| a.name(*m)) {
                Some(name) => out.push_str(name),
                None => {
                    out.push('m');
                    out.push_str(&m.0.to_string());
                }
            }
            out.push('}');
        }
        Pattern::Disj(alts) => {
            out.push('(');
            for (i, a) in alts.iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                push_escaped(out, a);
            }
            out.push(')');
        }
        Pattern::Concat(parts) => {
            for part in parts {
                if matches!(part, Pattern::Alt(_)) {
                    out.push('(');
                    render_rec(part, alphabet, out);
                    out.push(')');
                } else {
                    render_rec(part, alphabet, out);
                }
            }
        }
        Pattern::Alt(parts) => {
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                render_rec(part, alphabet, out);
            }
        }
        Pattern::Repeat { body, min, max } => {
            if needs_group(body) {
                out.push('(');
                render_rec(body, alphabet, out);
                out.push(')');
            } else {
                render_rec(body, alphabet, out);
            }
            match (min, max) {
                (1, None) => out.push('+'),
                (0, None) => out.push('*'),
                (0, Some(1)) => out.push('?'),
                (n, Some(m)) if n == m => {
                    out.push('{');
                    out.push_str(&n.to_string());
                    out.push('}');
                }
                (n, None) => {
                    out.push('{');
                    out.push_str(&n.to_string());
                    out.push_str(",}");
                }
                (n, Some(m)) => {
                    out.push('{');
                    out.push_str(&n.to_string());
                    out.push(',');
                    out.push_str(&m.to_string());
                    out.push('}');
                }
            }
        }
    }
}

/// Renders a pattern with mask names resolved through `alphabet`.
pub fn render(p: &Pattern, alphabet: &MaskAlphabet) -> String {
    let mut out = String::new();
    render_rec(p, Some(alphabet), &mut out);
    out
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        render_rec(self, None, &mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::CharClass;

    #[test]
    fn figure4_pattern_renders() {
        let p = Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ]));
        assert_eq!(p.to_string(), "(A[0-9].)+");
    }

    #[test]
    fn figure2_pattern_renders_with_mask_names() {
        let mut alpha = MaskAlphabet::new();
        let country = alpha.intern("Country");
        let p = Pattern::concat([
            Pattern::Mask(country),
            Pattern::lit("-"),
            Pattern::class_plus(CharClass::Digit),
            Pattern::lit("-"),
            Pattern::disj(["CAT", "PRO"]),
        ]);
        assert_eq!(render(&p, &alpha), "{Country}-[0-9]+-(CAT|PRO)");
        assert_eq!(p.to_string(), "{m0}-[0-9]+-(CAT|PRO)");
    }

    #[test]
    fn quantifier_forms() {
        let d = || Pattern::Class(CharClass::Digit);
        assert_eq!(Pattern::star(d()).to_string(), "[0-9]*");
        assert_eq!(Pattern::opt(d()).to_string(), "[0-9]?");
        assert_eq!(
            Pattern::class_n(CharClass::Digit, 3).to_string(),
            "[0-9]{3}"
        );
        assert_eq!(
            Pattern::Repeat {
                body: Box::new(d()),
                min: 2,
                max: Some(4)
            }
            .to_string(),
            "[0-9]{2,4}"
        );
        assert_eq!(
            Pattern::Repeat {
                body: Box::new(d()),
                min: 2,
                max: None
            }
            .to_string(),
            "[0-9]{2,}"
        );
    }

    #[test]
    fn specials_escaped() {
        assert_eq!(Pattern::lit("a(b)").to_string(), "a\\(b\\)");
        assert_eq!(Pattern::disj(["a|b", "c"]).to_string(), "(a\\|b|c)");
    }

    #[test]
    fn multichar_literal_groups_under_quantifier() {
        assert_eq!(Pattern::plus(Pattern::lit("ab")).to_string(), "(ab)+");
        assert_eq!(Pattern::plus(Pattern::lit("a")).to_string(), "a+");
    }
}
