//! Masked strings: the alphabet the pattern engine operates over.
//!
//! Paper §3.2 replaces semantic substrings with mask tokens before pattern
//! learning ("`{country(US)}-123` … transformed to `m1-123` and `m1` is added
//! to the alphabet for our regular expression learner"). A [`MaskedString`]
//! is therefore a sequence of [`Tok`]s, each either a plain character or a
//! semantic mask token; an unmasked string is simply a masked string with no
//! mask tokens.

use std::fmt;

/// Identifier for a semantic mask symbol (one per semantic type in use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MaskId(pub u16);

/// Registry mapping mask ids to their human-readable semantic type names.
///
/// The regex engine treats masks opaquely; the alphabet exists so patterns
/// render as the paper shows them (`{Country}-[0-9]+-(CAT|PRO)`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaskAlphabet {
    names: Vec<String>,
}

impl MaskAlphabet {
    /// An empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable [`MaskId`].
    pub fn intern(&mut self, name: &str) -> MaskId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            MaskId(i as u16)
        } else {
            self.names.push(name.to_string());
            MaskId((self.names.len() - 1) as u16)
        }
    }

    /// The name for `id`, if registered.
    pub fn name(&self, id: MaskId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of registered masks.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no masks are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One token of a masked string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tok {
    /// A plain character.
    Char(char),
    /// A semantic mask token (counts as a single symbol).
    Mask(MaskId),
}

impl Tok {
    /// The character, if this is a plain character token.
    pub fn as_char(&self) -> Option<char> {
        match self {
            Tok::Char(c) => Some(*c),
            Tok::Mask(_) => None,
        }
    }

    /// True for mask tokens.
    pub fn is_mask(&self) -> bool {
        matches!(self, Tok::Mask(_))
    }
}

/// A string over the extended alphabet of characters and mask tokens.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct MaskedString {
    toks: Vec<Tok>,
}

impl MaskedString {
    /// Builds a purely syntactic masked string from a plain `&str`.
    pub fn from_plain(s: &str) -> Self {
        MaskedString {
            toks: s.chars().map(Tok::Char).collect(),
        }
    }

    /// Builds a masked string from explicit tokens.
    pub fn from_toks(toks: Vec<Tok>) -> Self {
        MaskedString { toks }
    }

    /// The token sequence.
    pub fn toks(&self) -> &[Tok] {
        &self.toks
    }

    /// Number of tokens (masks count as one symbol).
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// True when the string is empty.
    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }

    /// True when at least one token is a semantic mask.
    pub fn has_masks(&self) -> bool {
        self.toks.iter().any(Tok::is_mask)
    }

    /// Appends a token.
    pub fn push(&mut self, tok: Tok) {
        self.toks.push(tok);
    }

    /// If the string contains no masks, its plain-character rendering.
    pub fn to_plain(&self) -> Option<String> {
        let mut out = String::with_capacity(self.toks.len());
        for t in &self.toks {
            out.push(t.as_char()?);
        }
        Some(out)
    }

    /// Debug-friendly rendering using `⟨name⟩` for masks.
    pub fn render(&self, alphabet: &MaskAlphabet) -> String {
        let mut out = String::new();
        for t in &self.toks {
            match t {
                Tok::Char(c) => out.push(*c),
                Tok::Mask(id) => {
                    out.push('⟨');
                    out.push_str(alphabet.name(*id).unwrap_or("?"));
                    out.push('⟩');
                }
            }
        }
        out
    }
}

impl fmt::Display for MaskedString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.toks {
            match t {
                Tok::Char(c) => write!(f, "{c}")?,
                Tok::Mask(id) => write!(f, "⟨m{}⟩", id.0)?,
            }
        }
        Ok(())
    }
}

impl From<&str> for MaskedString {
    fn from(s: &str) -> Self {
        MaskedString::from_plain(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_round_trip() {
        let m = MaskedString::from_plain("Q1-22");
        assert_eq!(m.len(), 5);
        assert_eq!(m.to_plain().as_deref(), Some("Q1-22"));
        assert!(!m.has_masks());
    }

    #[test]
    fn masks_block_plain_rendering() {
        let mut alpha = MaskAlphabet::new();
        let country = alpha.intern("Country");
        let m = MaskedString::from_toks(vec![Tok::Mask(country), Tok::Char('-'), Tok::Char('1')]);
        assert!(m.has_masks());
        assert!(m.to_plain().is_none());
        assert_eq!(m.render(&alpha), "⟨Country⟩-1");
    }

    #[test]
    fn alphabet_interning_is_stable() {
        let mut alpha = MaskAlphabet::new();
        let a = alpha.intern("Country");
        let b = alpha.intern("City");
        let a2 = alpha.intern("Country");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(alpha.name(b), Some("City"));
        assert_eq!(alpha.len(), 2);
    }

    #[test]
    fn display_uses_numeric_fallback() {
        let m = MaskedString::from_toks(vec![Tok::Mask(MaskId(3)), Tok::Char('x')]);
        assert_eq!(m.to_string(), "⟨m3⟩x");
    }
}
