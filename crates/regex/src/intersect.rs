//! Minimal-edit repair as language intersection: the product of the
//! learned column-pattern automaton with a bounded Levenshtein edit
//! automaton, explored lazily under a distance cap and a state budget.
//!
//! A repair of a cell value *v* against a pattern language *L* is a path
//! through the product of two machines: the value-length unrolled pattern
//! [`Dag`] (Figure 4) and the edit automaton of *v* whose states count
//! tokens consumed and edits spent. A product state is `(i, u)` — tokens
//! of *v* consumed × DAG node — and a transition is one edit action
//! (match, delete, insert, substitute, or a disjunction chunk edit). The
//! product is built over the **DAG**, not the flattened boolean DFA of
//! [`mod@crate::dfa`], for two load-bearing reasons:
//!
//! 1. the DFA flattens disjunction alternatives into character edges, so
//!    a path through it measures *character*-level distance — but the
//!    repair cost model (paper §3.3) charges a whole-alternative
//!    substitution as **one** edit and an exact alternative match as
//!    zero, so the two machines accept different cost languages;
//! 2. DAG edges carry the [`crate::AtomKey`]s that keep abstract
//!    emissions concretizable downstream; the subset construction erases
//!    them.
//!
//! Because every transition strictly advances `(i, topo(u))`, the product
//! is itself a DAG: [`intersect_minimal`] settles it layer by layer in
//! exactly the repair DP's relaxation order, so a `Found` outcome is
//! *byte-identical* (same cost, same kept-token tie-break, same action
//! sequence) to the unbounded DP — states whose cost exceeds the cap are
//! simply never settled. [`enumerate_within`] walks the same product
//! backwards-then-forwards to list **every** repair within distance *k*,
//! the completeness guarantee the ranker's differential tests consume.
//!
//! Exploration is budget-bounded like the lazy DFA: exceeding
//! [`ProductConfig::state_budget`] settled states yields
//! [`ProductOutcome::BudgetExceeded`] and callers fall back to the
//! unbounded DP oracle.

use crate::dag::{Dag, DagLabel};
use crate::token::{MaskedString, Tok};

/// Default distance cap: repairs this far from every significant pattern
/// are beyond anything the ranker would keep, so the caller's DP fallback
/// handles the (rare) remainder.
pub const DEFAULT_MAX_EDIT_DISTANCE: usize = 24;

/// Default bound on settled product states per search (the product's
/// analogue of [`crate::dfa::DEFAULT_STATE_BUDGET`]).
pub const DEFAULT_PRODUCT_STATE_BUDGET: usize = 1 << 16;

const INF: usize = usize::MAX / 4;

/// Knobs for one product search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductConfig {
    /// Maximum edit distance explored; paths costing more are pruned.
    pub max_distance: usize,
    /// Bound on settled `(tokens consumed, DAG node)` states before the
    /// search gives up with [`ProductOutcome::BudgetExceeded`].
    pub state_budget: usize,
}

impl Default for ProductConfig {
    fn default() -> Self {
        ProductConfig {
            max_distance: DEFAULT_MAX_EDIT_DISTANCE,
            state_budget: DEFAULT_PRODUCT_STATE_BUDGET,
        }
    }
}

/// One edit transition of a product path. Edge indices point into
/// [`Dag::edges`], so callers can recover labels and atom keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductStep {
    /// Consume one token along `edge` at zero cost.
    Match {
        /// Index into [`Dag::edges`].
        edge: usize,
    },
    /// Consume a whole disjunction alternative exactly, at zero cost.
    MatchDisj {
        /// Index into [`Dag::edges`] (a [`DagLabel::Disj`] edge).
        edge: usize,
        /// Alternative index within the edge's disjunction table.
        alt: usize,
    },
    /// Emit `edge`'s label without consuming (cost 1).
    Insert {
        /// Index into [`Dag::edges`].
        edge: usize,
    },
    /// Drop the current token (cost 1).
    Delete,
    /// Replace the current token with `edge`'s emission (cost 1; for a
    /// disjunction edge this is the chunk substitution of §3.3).
    Substitute {
        /// Index into [`Dag::edges`].
        edge: usize,
    },
}

impl ProductStep {
    /// The edit cost this step contributes.
    pub fn cost(&self) -> usize {
        match self {
            ProductStep::Match { .. } | ProductStep::MatchDisj { .. } => 0,
            ProductStep::Insert { .. } | ProductStep::Delete | ProductStep::Substitute { .. } => 1,
        }
    }
}

/// One accepted path through the product: a complete edit script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductPath {
    /// Steps in forward (value) order.
    pub steps: Vec<ProductStep>,
    /// Total edit cost (sum of step costs).
    pub cost: usize,
}

/// Search telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProductStats {
    /// Product states settled with a finite cost.
    pub states_explored: usize,
}

/// What a bounded product search produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProductOutcome {
    /// The minimal path within the distance cap (byte-identical to the
    /// unbounded repair DP's choice).
    Found(ProductPath),
    /// Every accepting path costs more than `max_distance` (or the DAG has
    /// no accepting node at all).
    DistanceExceeded,
    /// The search settled more than `state_budget` states.
    BudgetExceeded,
}

#[derive(Clone, Copy, PartialEq)]
enum PKind {
    None,
    Start,
    Del,
    Match,
    MatchDisj,
    Ins,
    Sub,
}

#[derive(Clone, Copy)]
struct Parent {
    prev_i: u32,
    prev_u: u32,
    kind: PKind,
    edge: u32,
    alt: u16,
}

impl Parent {
    const NONE: Parent = Parent {
        prev_i: 0,
        prev_u: 0,
        kind: PKind::None,
        edge: 0,
        alt: 0,
    };
}

/// Finds the minimal edit path from `value` into the DAG's language,
/// exploring only product states reachable within `cfg.max_distance`
/// edits.
///
/// The relaxation order, tie-break (max kept original tokens, then
/// first-write-wins), and accepting-node selection replicate the repair
/// DP exactly, so `Found` paths reconstruct the *same* program the DP
/// would choose — capping only prunes states the minimal path never
/// touches (cost along a path is monotone, so every prefix of a ≤-cap
/// path is itself ≤ cap).
pub fn intersect_minimal(
    dag: &Dag,
    value: &MaskedString,
    cfg: &ProductConfig,
) -> (ProductOutcome, ProductStats) {
    let cap = cfg.max_distance;
    let toks = value.toks();
    let n = toks.len();
    let nn = dag.n_nodes;
    let idx = |i: usize, u: usize| i * nn + u;

    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); nn];
    for (ei, e) in dag.edges.iter().enumerate() {
        out_edges[e.from].push(ei);
    }

    let mut cost = vec![INF; (n + 1) * nn];
    let mut kept = vec![0u32; (n + 1) * nn];
    let mut parent = vec![Parent::NONE; (n + 1) * nn];
    let mut explored = 1usize;
    cost[idx(0, dag.start)] = 0;
    parent[idx(0, dag.start)].kind = PKind::Start;

    macro_rules! relax {
        ($from_i:expr, $from_u:expr, $to_i:expr, $to_u:expr, $c:expr, $k:expr,
         $kind:expr, $edge:expr, $alt:expr) => {{
            let c_new: usize = $c;
            if c_new <= cap {
                let t = idx($to_i, $to_u);
                if c_new < cost[t] || (c_new == cost[t] && $k > kept[t]) {
                    if cost[t] >= INF {
                        explored += 1;
                        if explored > cfg.state_budget {
                            return (
                                ProductOutcome::BudgetExceeded,
                                ProductStats {
                                    states_explored: explored,
                                },
                            );
                        }
                    }
                    cost[t] = c_new;
                    kept[t] = $k;
                    parent[t] = Parent {
                        prev_i: $from_i as u32,
                        prev_u: $from_u as u32,
                        kind: $kind,
                        edge: $edge as u32,
                        alt: $alt as u16,
                    };
                }
            }
        }};
    }

    for i in 0..=n {
        // Settle the layer: insert transitions move forward in topo order.
        for &u in &dag.topo {
            let (c, k) = (cost[idx(i, u)], kept[idx(i, u)]);
            if c >= INF {
                continue;
            }
            for &ei in &out_edges[u] {
                let v = dag.edges[ei].to;
                relax!(i, u, i, v, c + 1, k, PKind::Ins, ei, 0);
            }
        }
        if i == n {
            break;
        }
        // Consume transitions into later layers.
        for &u in &dag.topo {
            let (c, k) = (cost[idx(i, u)], kept[idx(i, u)]);
            if c >= INF {
                continue;
            }
            relax!(i, u, i + 1, u, c + 1, k, PKind::Del, 0, 0);
            for &ei in &out_edges[u] {
                let e = &dag.edges[ei];
                match &e.label {
                    DagLabel::Disj(d, _) => {
                        relax!(i, u, i + 1, e.to, c + 1, k, PKind::Sub, ei, 0);
                        for (ai, alt) in dag.disjs[*d as usize].iter().enumerate() {
                            let kk = alt.len();
                            if i + kk <= n
                                && alt
                                    .iter()
                                    .zip(&toks[i..i + kk])
                                    .all(|(ch, t)| *t == Tok::Char(*ch))
                            {
                                relax!(
                                    i,
                                    u,
                                    i + kk,
                                    e.to,
                                    c,
                                    k + kk as u32,
                                    PKind::MatchDisj,
                                    ei,
                                    ai
                                );
                            }
                        }
                    }
                    label => {
                        if Dag::tok_matches(label, toks[i]) {
                            relax!(i, u, i + 1, e.to, c, k + 1, PKind::Match, ei, 0);
                        } else {
                            relax!(i, u, i + 1, e.to, c + 1, k, PKind::Sub, ei, 0);
                        }
                    }
                }
            }
        }
    }

    let stats = ProductStats {
        states_explored: explored,
    };
    // Best accepting node at the final layer (max kept breaks cost ties;
    // ties beyond that go to the lowest node index, like the DP).
    let Some(accept) = (0..nn)
        .filter(|&u| dag.accepts[u] && cost[idx(n, u)] < INF)
        .min_by_key(|&u| (cost[idx(n, u)], std::cmp::Reverse(kept[idx(n, u)])))
    else {
        return (ProductOutcome::DistanceExceeded, stats);
    };
    let total = cost[idx(n, accept)];

    let mut steps = Vec::new();
    let (mut ci, mut cu) = (n, accept);
    loop {
        let p = parent[idx(ci, cu)];
        match p.kind {
            PKind::Start => break,
            PKind::None => return (ProductOutcome::DistanceExceeded, stats),
            PKind::Del => steps.push(ProductStep::Delete),
            PKind::Match => steps.push(ProductStep::Match {
                edge: p.edge as usize,
            }),
            PKind::MatchDisj => steps.push(ProductStep::MatchDisj {
                edge: p.edge as usize,
                alt: p.alt as usize,
            }),
            PKind::Ins => steps.push(ProductStep::Insert {
                edge: p.edge as usize,
            }),
            PKind::Sub => steps.push(ProductStep::Substitute {
                edge: p.edge as usize,
            }),
        }
        ci = p.prev_i as usize;
        cu = p.prev_u as usize;
    }
    steps.reverse();
    debug_assert_eq!(
        steps.iter().map(ProductStep::cost).sum::<usize>(),
        total,
        "reconstructed cost must equal product cost"
    );
    (
        ProductOutcome::Found(ProductPath { steps, cost: total }),
        stats,
    )
}

/// The result of [`enumerate_within`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductEnumeration {
    /// Every accepted path with cost ≤ the requested distance, in a
    /// deterministic depth-first order (complete iff `!truncated`).
    pub paths: Vec<ProductPath>,
    /// True when enumeration stopped at `max_paths` before exhausting the
    /// product.
    pub truncated: bool,
}

/// Enumerates **every** edit path from `value` into the DAG's language
/// with cost ≤ `max_distance` (the completeness property of the
/// intersection construction), stopping after `max_paths` paths.
///
/// A backward pass first computes each product state's cheapest
/// completion cost; the forward depth-first walk then only enters states
/// that can still finish within budget, so enumeration touches no dead
/// branches.
pub fn enumerate_within(
    dag: &Dag,
    value: &MaskedString,
    max_distance: usize,
    max_paths: usize,
) -> ProductEnumeration {
    let toks = value.toks();
    let n = toks.len();
    let nn = dag.n_nodes;
    let idx = |i: usize, u: usize| i * nn + u;

    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); nn];
    for (ei, e) in dag.edges.iter().enumerate() {
        out_edges[e.from].push(ei);
    }

    // Backward pass: to_accept[(i, u)] = cheapest completion from (i, u)
    // to an accepting state at layer n. Within a layer, insert transitions
    // go forward in topo order, so reverse topo settles them.
    let mut to_accept = vec![INF; (n + 1) * nn];
    for i in (0..=n).rev() {
        for &u in dag.topo.iter().rev() {
            let mut best = if i == n && dag.accepts[u] { 0 } else { INF };
            for &ei in &out_edges[u] {
                let e = &dag.edges[ei];
                best = best.min(to_accept[idx(i, e.to)].saturating_add(1));
                if i < n {
                    match &e.label {
                        DagLabel::Disj(d, _) => {
                            best = best.min(to_accept[idx(i + 1, e.to)].saturating_add(1));
                            for alt in &dag.disjs[*d as usize] {
                                let kk = alt.len();
                                if i + kk <= n
                                    && alt
                                        .iter()
                                        .zip(&toks[i..i + kk])
                                        .all(|(ch, t)| *t == Tok::Char(*ch))
                                {
                                    best = best.min(to_accept[idx(i + kk, e.to)]);
                                }
                            }
                        }
                        label => {
                            let c = usize::from(!Dag::tok_matches(label, toks[i]));
                            best = best.min(to_accept[idx(i + 1, e.to)].saturating_add(c));
                        }
                    }
                }
            }
            if i < n {
                best = best.min(to_accept[idx(i + 1, u)].saturating_add(1));
            }
            to_accept[idx(i, u)] = best;
        }
    }

    let mut en = Enumerator {
        dag,
        toks,
        out_edges: &out_edges,
        to_accept: &to_accept,
        n,
        nn,
        cap: max_distance,
        max_paths,
        steps: Vec::new(),
        paths: Vec::new(),
        truncated: false,
    };
    if to_accept[idx(0, dag.start)] <= max_distance {
        en.dfs(0, dag.start, 0);
    }
    ProductEnumeration {
        paths: en.paths,
        truncated: en.truncated,
    }
}

struct Enumerator<'a> {
    dag: &'a Dag,
    toks: &'a [Tok],
    out_edges: &'a [Vec<usize>],
    to_accept: &'a [usize],
    n: usize,
    nn: usize,
    cap: usize,
    max_paths: usize,
    steps: Vec<ProductStep>,
    paths: Vec<ProductPath>,
    truncated: bool,
}

impl Enumerator<'_> {
    fn idx(&self, i: usize, u: usize) -> usize {
        i * self.nn + u
    }

    /// Can a transition of cost `c` into `(i, u)` still finish within the
    /// cap, `spent` edits in?
    fn viable(&self, i: usize, u: usize, spent: usize, c: usize) -> bool {
        let rest = self.to_accept[self.idx(i, u)];
        rest < INF && spent + c + rest <= self.cap
    }

    fn step(&mut self, s: ProductStep, i: usize, u: usize, spent: usize) {
        self.steps.push(s);
        self.dfs(i, u, spent);
        self.steps.pop();
    }

    fn dfs(&mut self, i: usize, u: usize, spent: usize) {
        if self.truncated {
            return;
        }
        if i == self.n && self.dag.accepts[u] {
            if self.paths.len() >= self.max_paths {
                self.truncated = true;
                return;
            }
            self.paths.push(ProductPath {
                steps: self.steps.clone(),
                cost: spent,
            });
        }
        if i < self.n && self.viable(i + 1, u, spent, 1) {
            self.step(ProductStep::Delete, i + 1, u, spent + 1);
        }
        for ei_ref in &self.out_edges[u] {
            let ei = *ei_ref;
            let e = &self.dag.edges[ei];
            let to = e.to;
            if i < self.n {
                match &e.label {
                    DagLabel::Disj(d, _) => {
                        let d = *d as usize;
                        if self.viable(i + 1, to, spent, 1) {
                            self.step(ProductStep::Substitute { edge: ei }, i + 1, to, spent + 1);
                        }
                        for (ai, alt) in self.dag.disjs[d].iter().enumerate() {
                            let kk = alt.len();
                            if i + kk <= self.n
                                && alt
                                    .iter()
                                    .zip(&self.toks[i..i + kk])
                                    .all(|(ch, t)| *t == Tok::Char(*ch))
                                && self.viable(i + kk, to, spent, 0)
                            {
                                self.step(
                                    ProductStep::MatchDisj { edge: ei, alt: ai },
                                    i + kk,
                                    to,
                                    spent,
                                );
                            }
                        }
                    }
                    label => {
                        let c = usize::from(!Dag::tok_matches(label, self.toks[i]));
                        if self.viable(i + 1, to, spent, c) {
                            let s = if c == 0 {
                                ProductStep::Match { edge: ei }
                            } else {
                                ProductStep::Substitute { edge: ei }
                            };
                            self.step(s, i + 1, to, spent + c);
                        }
                    }
                }
            }
            if self.viable(i, to, spent, 1) {
                self.step(ProductStep::Insert { edge: ei }, i, to, spent + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pattern;
    use crate::class::CharClass;
    use crate::edit_distance::levenshtein;

    fn dag_for(p: &Pattern, len: usize) -> Dag {
        Dag::build(p.tag().root(), len)
    }

    fn minimal(p: &Pattern, value: &str, cfg: &ProductConfig) -> (ProductOutcome, ProductStats) {
        let v: MaskedString = value.into();
        let dag = dag_for(p, v.len());
        intersect_minimal(&dag, &v, cfg)
    }

    fn found(p: &Pattern, value: &str, cfg: &ProductConfig) -> ProductPath {
        match minimal(p, value, cfg).0 {
            ProductOutcome::Found(path) => path,
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn members_cost_zero_all_match() {
        let p = Pattern::concat([Pattern::lit("Q"), Pattern::Class(CharClass::Digit)]);
        let path = found(&p, "Q3", &ProductConfig::default());
        assert_eq!(path.cost, 0);
        assert!(path
            .steps
            .iter()
            .all(|s| matches!(s, ProductStep::Match { .. })));
    }

    #[test]
    fn literal_pattern_cost_equals_levenshtein() {
        for (pat, val) in [
            ("kitten", "sitting"),
            ("abc", "abc"),
            ("Q1-22", "Q122"),
            ("hello", ""),
        ] {
            let path = found(&Pattern::lit(pat), val, &ProductConfig::default());
            assert_eq!(path.cost, levenshtein(pat, val), "{pat} vs {val}");
        }
    }

    #[test]
    fn disjunction_chunk_edits_cost_one() {
        // "837" → digits, "-", (CAT|PRO): one insert for "-", one chunk
        // insert for the whole alternative — cost 2, not the character
        // distance 4 (why the product runs over the DAG, not the DFA).
        let p = Pattern::concat([
            Pattern::class_plus(CharClass::Digit),
            Pattern::lit("-"),
            Pattern::disj(["CAT", "PRO"]),
        ]);
        let path = found(&p, "837", &ProductConfig::default());
        assert_eq!(path.cost, 2);
        assert_eq!(
            path.steps
                .iter()
                .filter(|s| matches!(s, ProductStep::Insert { .. }))
                .count(),
            2
        );
        assert_eq!(
            path.steps
                .iter()
                .filter(|s| matches!(s, ProductStep::Match { .. }))
                .count(),
            3,
            "the kept tie-break keeps all three digits"
        );
    }

    #[test]
    fn distance_cap_prunes_far_repairs() {
        let p = Pattern::lit("abcdef");
        let tight = ProductConfig {
            max_distance: 2,
            ..ProductConfig::default()
        };
        assert_eq!(
            minimal(&p, "xyz", &tight).0,
            ProductOutcome::DistanceExceeded
        );
        let loose = ProductConfig {
            max_distance: 6,
            ..ProductConfig::default()
        };
        assert_eq!(found(&p, "xyz", &loose).cost, 6);
    }

    #[test]
    fn state_budget_overflow_is_reported() {
        let p = Pattern::plus(Pattern::Class(CharClass::Digit));
        let cfg = ProductConfig {
            max_distance: 8,
            state_budget: 2,
        };
        let (outcome, stats) = minimal(&p, "12345", &cfg);
        assert_eq!(outcome, ProductOutcome::BudgetExceeded);
        assert!(stats.states_explored >= 2);
    }

    #[test]
    fn cap_does_not_change_the_chosen_path() {
        // The minimal path found under a tight-but-sufficient cap must be
        // the same as under a generous cap (the byte-identicality claim).
        let p = Pattern::concat([
            Pattern::lit("Q"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("-"),
            Pattern::class_n(CharClass::Digit, 4),
        ]);
        for value in ["Q32001", "Q3-201", "32001", "Q3-2001"] {
            let generous = found(&p, value, &ProductConfig::default());
            let tight = found(
                &p,
                value,
                &ProductConfig {
                    max_distance: generous.cost,
                    ..ProductConfig::default()
                },
            );
            assert_eq!(tight, generous, "{value}");
        }
    }

    #[test]
    fn enumeration_is_complete_on_a_countable_case() {
        // Pattern "a" vs value "b": within distance 1 only the
        // substitution exists; within 2, delete+insert in either order
        // joins it.
        let p = Pattern::lit("a");
        let v: MaskedString = "b".into();
        let dag = dag_for(&p, v.len());
        let within1 = enumerate_within(&dag, &v, 1, 64);
        assert!(!within1.truncated);
        assert_eq!(within1.paths.len(), 1);
        assert_eq!(
            within1.paths[0].steps,
            vec![ProductStep::Substitute { edge: 0 }]
        );
        let within2 = enumerate_within(&dag, &v, 2, 64);
        assert!(!within2.truncated);
        assert_eq!(within2.paths.len(), 3);
        assert!(within2.paths.iter().all(|p| p.cost <= 2));
    }

    #[test]
    fn enumeration_contains_the_minimal_path() {
        let p = Pattern::concat([
            Pattern::class_plus(CharClass::Digit),
            Pattern::lit("-"),
            Pattern::disj(["CAT", "PRO"]),
        ]);
        for value in ["837", "837-PRO", "83X-CAT", "-PRO"] {
            let v: MaskedString = value.into();
            let dag = dag_for(&p, v.len());
            let best = match intersect_minimal(&dag, &v, &ProductConfig::default()).0 {
                ProductOutcome::Found(path) => path,
                other => panic!("{other:?}"),
            };
            let all = enumerate_within(&dag, &v, best.cost + 1, 10_000);
            assert!(!all.truncated, "{value}");
            assert!(all.paths.contains(&best), "{value}");
            assert_eq!(
                all.paths.iter().map(|p| p.cost).min(),
                Some(best.cost),
                "{value}"
            );
            for path in &all.paths {
                assert_eq!(
                    path.cost,
                    path.steps.iter().map(ProductStep::cost).sum::<usize>()
                );
            }
        }
    }

    #[test]
    fn enumeration_truncates_at_the_path_cap() {
        let p = Pattern::plus(Pattern::Class(CharClass::Digit));
        let v: MaskedString = "12".into();
        let dag = dag_for(&p, v.len());
        let capped = enumerate_within(&dag, &v, 3, 2);
        assert!(capped.truncated);
        assert_eq!(capped.paths.len(), 2);
    }

    #[test]
    fn unacceptable_language_is_distance_exceeded() {
        // A DAG with no accepting node (empty language): nothing to find
        // at any distance.
        let dag = Dag {
            n_nodes: 1,
            start: 0,
            accepts: vec![false],
            edges: vec![],
            in_edges: vec![vec![]],
            topo: vec![0],
            disjs: vec![],
        };
        let v: MaskedString = "ab".into();
        let (outcome, _) = intersect_minimal(&dag, &v, &ProductConfig::default());
        assert_eq!(outcome, ProductOutcome::DistanceExceeded);
        assert!(enumerate_within(&dag, &v, 8, 64).paths.is_empty());
    }
}
