//! Character classes used by DataVinci patterns.
//!
//! Paper §3.1: "we use the following character classes for simplicity of
//! notation: digits, cased and uncased letters, alphanumeric, spaces,
//! alphanumeric with spaces, and the common recurring character class of
//! `[0,1]`". The classes form a small join-semilattice used by the profiler's
//! anti-unification: generalizing two runs picks the least class containing
//! both.

/// The eight character classes of the paper's pattern language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CharClass {
    /// `[01]` — the recurring binary-digit class.
    Binary,
    /// `[0-9]`
    Digit,
    /// `[A-Z]`
    Upper,
    /// `[a-z]`
    Lower,
    /// `[A-Za-z]`
    Letter,
    /// `[A-Za-z0-9]`
    AlphaNum,
    /// `[ ]` — the space character.
    Space,
    /// `[A-Za-z0-9 ]`
    AlphaNumSpace,
}

impl CharClass {
    /// All classes, narrowest-first.
    pub const ALL: [CharClass; 8] = [
        CharClass::Binary,
        CharClass::Digit,
        CharClass::Upper,
        CharClass::Lower,
        CharClass::Letter,
        CharClass::AlphaNum,
        CharClass::Space,
        CharClass::AlphaNumSpace,
    ];

    /// Does this class contain `c`?
    pub const fn contains(&self, c: char) -> bool {
        match self {
            CharClass::Binary => c == '0' || c == '1',
            CharClass::Digit => c.is_ascii_digit(),
            CharClass::Upper => c.is_ascii_uppercase(),
            CharClass::Lower => c.is_ascii_lowercase(),
            CharClass::Letter => c.is_ascii_alphabetic(),
            CharClass::AlphaNum => c.is_ascii_alphanumeric(),
            CharClass::Space => c == ' ',
            CharClass::AlphaNumSpace => c.is_ascii_alphanumeric() || c == ' ',
        }
    }

    /// Position in [`CharClass::ALL`] (table index).
    const fn index(self) -> usize {
        match self {
            CharClass::Binary => 0,
            CharClass::Digit => 1,
            CharClass::Upper => 2,
            CharClass::Lower => 3,
            CharClass::Letter => 4,
            CharClass::AlphaNum => 5,
            CharClass::Space => 6,
            CharClass::AlphaNumSpace => 7,
        }
    }

    /// ASCII membership bitmask (bit `i` ⇔ `contains(i as char)`); classes
    /// are pure ASCII sets, so this encodes them completely.
    const fn ascii_mask(self) -> u128 {
        let mut mask: u128 = 0;
        let mut i: u8 = 0;
        while i < 128 {
            if self.contains(i as char) {
                mask |= 1 << i;
            }
            i += 1;
        }
        mask
    }

    /// Precomputed [`CharClass::ascii_mask`] per class, in `ALL` order —
    /// makes the subclass/join lattice operations O(1) bit tests instead of
    /// 128-character sweeps (they sit in the profiler's per-character loop).
    const MASKS: [u128; 8] = [
        CharClass::Binary.ascii_mask(),
        CharClass::Digit.ascii_mask(),
        CharClass::Upper.ascii_mask(),
        CharClass::Lower.ascii_mask(),
        CharClass::Letter.ascii_mask(),
        CharClass::AlphaNum.ascii_mask(),
        CharClass::Space.ascii_mask(),
        CharClass::AlphaNumSpace.ascii_mask(),
    ];

    /// The narrowest class containing `c`, if any. Punctuation and non-ASCII
    /// characters belong to no class and stay literal in patterns.
    pub fn narrowest_for(c: char) -> Option<CharClass> {
        if c == '0' || c == '1' {
            Some(CharClass::Binary)
        } else if c.is_ascii_digit() {
            Some(CharClass::Digit)
        } else if c.is_ascii_uppercase() {
            Some(CharClass::Upper)
        } else if c.is_ascii_lowercase() {
            Some(CharClass::Lower)
        } else if c == ' ' {
            Some(CharClass::Space)
        } else {
            None
        }
    }

    /// Least upper bound in the class lattice: the narrowest class containing
    /// both operands. Always defined (`AlphaNumSpace` is the top).
    pub fn join(self, other: CharClass) -> CharClass {
        if self.is_subclass_of(&other) {
            return other;
        }
        if other.is_subclass_of(&self) {
            return self;
        }
        // The narrowest class that is a superset of both: scan the fixed
        // class list tracking the minimum cardinality (no allocation).
        let union = CharClass::MASKS[self.index()] | CharClass::MASKS[other.index()];
        let mut best = CharClass::AlphaNumSpace;
        for c in CharClass::ALL {
            if union & !CharClass::MASKS[c.index()] == 0 && c.cardinality() < best.cardinality() {
                best = c;
            }
        }
        best
    }

    /// Is every member of `self` also a member of `other`?
    pub const fn is_subclass_of(&self, other: &CharClass) -> bool {
        CharClass::MASKS[self.index()] & !CharClass::MASKS[other.index()] == 0
    }

    /// A canonical member, used when a repair must emit *some* concrete
    /// character and no concretization constraint applies.
    pub fn representative(&self) -> char {
        match self {
            CharClass::Binary | CharClass::Digit => '0',
            CharClass::Upper => 'A',
            CharClass::Lower | CharClass::Letter | CharClass::AlphaNum => 'a',
            CharClass::Space | CharClass::AlphaNumSpace => ' ',
        }
    }

    /// The regex rendering, e.g. `[0-9]`.
    pub fn regex_str(&self) -> &'static str {
        match self {
            CharClass::Binary => "[01]",
            CharClass::Digit => "[0-9]",
            CharClass::Upper => "[A-Z]",
            CharClass::Lower => "[a-z]",
            CharClass::Letter => "[A-Za-z]",
            CharClass::AlphaNum => "[A-Za-z0-9]",
            CharClass::Space => "[ ]",
            CharClass::AlphaNumSpace => "[A-Za-z0-9 ]",
        }
    }

    /// How many characters the class admits — the specificity signal used by
    /// the profiler's cost function (narrow classes are preferred).
    pub fn cardinality(&self) -> u32 {
        match self {
            CharClass::Binary => 2,
            CharClass::Digit => 10,
            CharClass::Upper | CharClass::Lower => 26,
            CharClass::Letter => 52,
            CharClass::AlphaNum => 62,
            CharClass::Space => 1,
            CharClass::AlphaNumSpace => 63,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowest_is_minimal() {
        assert_eq!(CharClass::narrowest_for('0'), Some(CharClass::Binary));
        assert_eq!(CharClass::narrowest_for('7'), Some(CharClass::Digit));
        assert_eq!(CharClass::narrowest_for('Q'), Some(CharClass::Upper));
        assert_eq!(CharClass::narrowest_for('q'), Some(CharClass::Lower));
        assert_eq!(CharClass::narrowest_for(' '), Some(CharClass::Space));
        assert_eq!(CharClass::narrowest_for('-'), None);
        assert_eq!(CharClass::narrowest_for('é'), None);
    }

    #[test]
    fn join_is_commutative_and_contains_both() {
        for &a in &CharClass::ALL {
            for &b in &CharClass::ALL {
                let j = a.join(b);
                assert_eq!(j, b.join(a), "{a:?} vs {b:?}");
                assert!(a.is_subclass_of(&j), "{a:?} ⊄ {j:?}");
                assert!(b.is_subclass_of(&j), "{b:?} ⊄ {j:?}");
            }
        }
    }

    #[test]
    fn join_examples() {
        assert_eq!(CharClass::Upper.join(CharClass::Lower), CharClass::Letter);
        assert_eq!(CharClass::Binary.join(CharClass::Digit), CharClass::Digit);
        assert_eq!(
            CharClass::Letter.join(CharClass::Digit),
            CharClass::AlphaNum
        );
        assert_eq!(
            CharClass::Space.join(CharClass::Digit),
            CharClass::AlphaNumSpace
        );
    }

    #[test]
    fn representative_is_member() {
        for &c in &CharClass::ALL {
            assert!(c.contains(c.representative()), "{c:?}");
        }
    }

    #[test]
    fn subclass_chain() {
        assert!(CharClass::Binary.is_subclass_of(&CharClass::Digit));
        assert!(CharClass::Digit.is_subclass_of(&CharClass::AlphaNum));
        assert!(CharClass::AlphaNum.is_subclass_of(&CharClass::AlphaNumSpace));
        assert!(!CharClass::Digit.is_subclass_of(&CharClass::Letter));
    }

    #[test]
    fn membership_matches_rendering_intent() {
        assert!(CharClass::AlphaNumSpace.contains(' '));
        assert!(!CharClass::AlphaNum.contains(' '));
        assert!(!CharClass::Letter.contains('3'));
    }

    #[test]
    fn subclass_agrees_with_exhaustive_membership() {
        // The bitmask tables must encode exactly the `contains` relation the
        // determinizer keys its equivalence classes on.
        for &a in &CharClass::ALL {
            for &b in &CharClass::ALL {
                let exhaustive = (0u8..=127)
                    .map(char::from)
                    .all(|c| !a.contains(c) || b.contains(c));
                assert_eq!(a.is_subclass_of(&b), exhaustive, "{a:?} ⊆ {b:?}");
            }
        }
    }

    #[test]
    fn subclass_is_reflexive_antisymmetric_transitive() {
        for &a in &CharClass::ALL {
            assert!(a.is_subclass_of(&a), "{a:?} not reflexive");
            for &b in &CharClass::ALL {
                if a.is_subclass_of(&b) && b.is_subclass_of(&a) {
                    assert_eq!(a, b, "antisymmetry violated: {a:?} / {b:?}");
                }
                for &c in &CharClass::ALL {
                    if a.is_subclass_of(&b) && b.is_subclass_of(&c) {
                        assert!(a.is_subclass_of(&c), "{a:?} ⊆ {b:?} ⊆ {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn join_is_idempotent_associative_and_least() {
        for &a in &CharClass::ALL {
            assert_eq!(a.join(a), a, "{a:?} join not idempotent");
            for &b in &CharClass::ALL {
                let j = a.join(b);
                // Least upper bound: no strictly smaller class contains both.
                for &c in &CharClass::ALL {
                    if a.is_subclass_of(&c) && b.is_subclass_of(&c) {
                        assert!(j.is_subclass_of(&c), "{j:?} not least for {a:?}∨{b:?}");
                    }
                }
                for &c in &CharClass::ALL {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)), "{a:?} {b:?} {c:?}");
                }
            }
        }
    }

    #[test]
    fn join_with_incomparable_singleton_space() {
        // Space is disjoint from every letter/digit class: the only upper
        // bound is the top, never an intermediate class.
        for other in [
            CharClass::Binary,
            CharClass::Digit,
            CharClass::Upper,
            CharClass::Lower,
            CharClass::Letter,
            CharClass::AlphaNum,
        ] {
            assert_eq!(CharClass::Space.join(other), CharClass::AlphaNumSpace);
        }
        assert_eq!(
            CharClass::Space.join(CharClass::AlphaNumSpace),
            CharClass::AlphaNumSpace
        );
    }
}
