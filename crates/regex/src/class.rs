//! Character classes used by DataVinci patterns.
//!
//! Paper §3.1: "we use the following character classes for simplicity of
//! notation: digits, cased and uncased letters, alphanumeric, spaces,
//! alphanumeric with spaces, and the common recurring character class of
//! `[0,1]`". The classes form a small join-semilattice used by the profiler's
//! anti-unification: generalizing two runs picks the least class containing
//! both.

/// The eight character classes of the paper's pattern language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CharClass {
    /// `[01]` — the recurring binary-digit class.
    Binary,
    /// `[0-9]`
    Digit,
    /// `[A-Z]`
    Upper,
    /// `[a-z]`
    Lower,
    /// `[A-Za-z]`
    Letter,
    /// `[A-Za-z0-9]`
    AlphaNum,
    /// `[ ]` — the space character.
    Space,
    /// `[A-Za-z0-9 ]`
    AlphaNumSpace,
}

impl CharClass {
    /// All classes, narrowest-first.
    pub const ALL: [CharClass; 8] = [
        CharClass::Binary,
        CharClass::Digit,
        CharClass::Upper,
        CharClass::Lower,
        CharClass::Letter,
        CharClass::AlphaNum,
        CharClass::Space,
        CharClass::AlphaNumSpace,
    ];

    /// Does this class contain `c`?
    pub fn contains(&self, c: char) -> bool {
        match self {
            CharClass::Binary => c == '0' || c == '1',
            CharClass::Digit => c.is_ascii_digit(),
            CharClass::Upper => c.is_ascii_uppercase(),
            CharClass::Lower => c.is_ascii_lowercase(),
            CharClass::Letter => c.is_ascii_alphabetic(),
            CharClass::AlphaNum => c.is_ascii_alphanumeric(),
            CharClass::Space => c == ' ',
            CharClass::AlphaNumSpace => c.is_ascii_alphanumeric() || c == ' ',
        }
    }

    /// The narrowest class containing `c`, if any. Punctuation and non-ASCII
    /// characters belong to no class and stay literal in patterns.
    pub fn narrowest_for(c: char) -> Option<CharClass> {
        if c == '0' || c == '1' {
            Some(CharClass::Binary)
        } else if c.is_ascii_digit() {
            Some(CharClass::Digit)
        } else if c.is_ascii_uppercase() {
            Some(CharClass::Upper)
        } else if c.is_ascii_lowercase() {
            Some(CharClass::Lower)
        } else if c == ' ' {
            Some(CharClass::Space)
        } else {
            None
        }
    }

    /// Least upper bound in the class lattice: the narrowest class containing
    /// both operands. Always defined (`AlphaNumSpace` is the top).
    pub fn join(self, other: CharClass) -> CharClass {
        if self.is_subclass_of(&other) {
            return other;
        }
        if other.is_subclass_of(&self) {
            return self;
        }
        // The narrowest class that is a superset of both. ALL is sorted so
        // that scanning by cardinality yields the least upper bound.
        let mut candidates: Vec<CharClass> = CharClass::ALL
            .into_iter()
            .filter(|c| self.is_subclass_of(c) && other.is_subclass_of(c))
            .collect();
        candidates.sort_by_key(CharClass::cardinality);
        candidates
            .first()
            .copied()
            .unwrap_or(CharClass::AlphaNumSpace)
    }

    /// Is every member of `self` also a member of `other`?
    pub fn is_subclass_of(&self, other: &CharClass) -> bool {
        // Classes are small ASCII sets; check membership exhaustively.
        self == other
            || (0u8..=127)
                .map(char::from)
                .all(|c| !self.contains(c) || other.contains(c))
    }

    /// A canonical member, used when a repair must emit *some* concrete
    /// character and no concretization constraint applies.
    pub fn representative(&self) -> char {
        match self {
            CharClass::Binary | CharClass::Digit => '0',
            CharClass::Upper => 'A',
            CharClass::Lower | CharClass::Letter | CharClass::AlphaNum => 'a',
            CharClass::Space | CharClass::AlphaNumSpace => ' ',
        }
    }

    /// The regex rendering, e.g. `[0-9]`.
    pub fn regex_str(&self) -> &'static str {
        match self {
            CharClass::Binary => "[01]",
            CharClass::Digit => "[0-9]",
            CharClass::Upper => "[A-Z]",
            CharClass::Lower => "[a-z]",
            CharClass::Letter => "[A-Za-z]",
            CharClass::AlphaNum => "[A-Za-z0-9]",
            CharClass::Space => "[ ]",
            CharClass::AlphaNumSpace => "[A-Za-z0-9 ]",
        }
    }

    /// How many characters the class admits — the specificity signal used by
    /// the profiler's cost function (narrow classes are preferred).
    pub fn cardinality(&self) -> u32 {
        match self {
            CharClass::Binary => 2,
            CharClass::Digit => 10,
            CharClass::Upper | CharClass::Lower => 26,
            CharClass::Letter => 52,
            CharClass::AlphaNum => 62,
            CharClass::Space => 1,
            CharClass::AlphaNumSpace => 63,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowest_is_minimal() {
        assert_eq!(CharClass::narrowest_for('0'), Some(CharClass::Binary));
        assert_eq!(CharClass::narrowest_for('7'), Some(CharClass::Digit));
        assert_eq!(CharClass::narrowest_for('Q'), Some(CharClass::Upper));
        assert_eq!(CharClass::narrowest_for('q'), Some(CharClass::Lower));
        assert_eq!(CharClass::narrowest_for(' '), Some(CharClass::Space));
        assert_eq!(CharClass::narrowest_for('-'), None);
        assert_eq!(CharClass::narrowest_for('é'), None);
    }

    #[test]
    fn join_is_commutative_and_contains_both() {
        for &a in &CharClass::ALL {
            for &b in &CharClass::ALL {
                let j = a.join(b);
                assert_eq!(j, b.join(a), "{a:?} vs {b:?}");
                assert!(a.is_subclass_of(&j), "{a:?} ⊄ {j:?}");
                assert!(b.is_subclass_of(&j), "{b:?} ⊄ {j:?}");
            }
        }
    }

    #[test]
    fn join_examples() {
        assert_eq!(CharClass::Upper.join(CharClass::Lower), CharClass::Letter);
        assert_eq!(CharClass::Binary.join(CharClass::Digit), CharClass::Digit);
        assert_eq!(
            CharClass::Letter.join(CharClass::Digit),
            CharClass::AlphaNum
        );
        assert_eq!(
            CharClass::Space.join(CharClass::Digit),
            CharClass::AlphaNumSpace
        );
    }

    #[test]
    fn representative_is_member() {
        for &c in &CharClass::ALL {
            assert!(c.contains(c.representative()), "{c:?}");
        }
    }

    #[test]
    fn subclass_chain() {
        assert!(CharClass::Binary.is_subclass_of(&CharClass::Digit));
        assert!(CharClass::Digit.is_subclass_of(&CharClass::AlphaNum));
        assert!(CharClass::AlphaNum.is_subclass_of(&CharClass::AlphaNumSpace));
        assert!(!CharClass::Digit.is_subclass_of(&CharClass::Letter));
    }

    #[test]
    fn membership_matches_rendering_intent() {
        assert!(CharClass::AlphaNumSpace.contains(' '));
        assert!(!CharClass::AlphaNum.contains(' '));
        assert!(!CharClass::Letter.contains('3'));
    }
}
