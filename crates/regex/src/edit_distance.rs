//! Levenshtein edit distance over plain strings and masked strings.
//!
//! Used by (1) the minimality definition of edit programs (paper §3.3),
//! (2) the heuristic ranker's distance properties (§3.5), and (3) the
//! semantic layer's fuzzy gazetteer lookup (bounded variant).

use crate::token::MaskedString;

/// Classic Levenshtein distance between two `&str`s (unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    lev_slices(&a, &b)
}

/// Levenshtein distance over masked-string tokens (masks are single symbols).
pub fn levenshtein_toks(a: &MaskedString, b: &MaskedString) -> usize {
    lev_slices(a.toks(), b.toks())
}

fn lev_slices<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Banded Levenshtein: returns `Some(d)` iff `d <= bound`, `None` otherwise.
/// Runs in O(bound · max(|a|,|b|)) — the fuzzy-lookup hot path.
pub fn levenshtein_within(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > bound {
        return None;
    }
    if a.is_empty() {
        return (b.len() <= bound).then_some(b.len());
    }
    if b.is_empty() {
        return (a.len() <= bound).then_some(a.len());
    }
    const INF: usize = usize::MAX / 2;
    let mut prev = vec![INF; b.len() + 1];
    let mut cur = vec![INF; b.len() + 1];
    for (j, p) in prev.iter_mut().enumerate().take(bound.min(b.len()) + 1) {
        *p = j;
    }
    for i in 1..=a.len() {
        let lo = i.saturating_sub(bound).max(1);
        let hi = (i + bound).min(b.len());
        if lo > hi {
            return None;
        }
        cur.fill(INF);
        if lo == 1 {
            cur[0] = if i <= bound { i } else { INF };
        }
        let mut row_min = INF;
        for j in lo..=hi {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let del = prev[j] + 1;
            let ins = cur[j - 1] + 1;
            cur[j] = sub.min(del).min(ins);
            row_min = row_min.min(cur[j]);
        }
        if lo == 1 {
            row_min = row_min.min(cur[0]);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[b.len()];
    (d <= bound).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{MaskId, Tok};

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("usa", "US"), 3);
        assert_eq!(levenshtein("bleu", "blue"), 2);
        assert_eq!(levenshtein("Birminxham", "Birmingham"), 1);
    }

    #[test]
    fn tok_distance_counts_masks_as_symbols() {
        let m = |id| Tok::Mask(MaskId(id));
        let a = MaskedString::from_toks(vec![m(0), Tok::Char('-'), Tok::Char('1')]);
        let b = MaskedString::from_toks(vec![m(0), Tok::Char('_'), Tok::Char('1')]);
        assert_eq!(levenshtein_toks(&a, &b), 1);
        let c = MaskedString::from_toks(vec![m(1), Tok::Char('-'), Tok::Char('1')]);
        assert_eq!(levenshtein_toks(&a, &c), 1);
    }

    #[test]
    fn bounded_agrees_with_exact_within_bound() {
        let pairs = [
            ("kitten", "sitting"),
            ("abc", "abc"),
            ("ab", "ba"),
            ("Nevad210", "Nevada_210"),
            ("", "xy"),
        ];
        for (a, b) in pairs {
            let exact = levenshtein(a, b);
            for bound in 0..6 {
                let got = levenshtein_within(a, b, bound);
                if exact <= bound {
                    assert_eq!(got, Some(exact), "{a} {b} bound {bound}");
                } else {
                    assert_eq!(got, None, "{a} {b} bound {bound}");
                }
            }
        }
    }

    #[test]
    fn bounded_early_exit_on_length_gap() {
        assert_eq!(levenshtein_within("a", "abcdefgh", 3), None);
    }
}
