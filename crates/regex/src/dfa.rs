//! Lazily-determinized, memoized DFA for boolean membership tests.
//!
//! The profiler re-runs every candidate pattern over every column value, so
//! membership dominates the hot loop. The cyclic Thompson NFA in the `nfa`
//! module answers each query by simulating a *set* of states per
//! token — correct, but it allocates a reachability table per call and
//! touches every state per step. Patterns here are plain regular languages,
//! so on-the-fly subset construction applies: this module determinizes the
//! NFA lazily, caching one dense transition row per discovered DFA state so
//! repeated matches against the same pattern (a whole column, a re-score, a
//! warm engine cache) degenerate to one table lookup per token.
//!
//! Two design points keep the construction exact and bounded:
//!
//! * **Flattened automaton.** The matcher NFA's string-disjunction edges
//!   consume several tokens at once, which has no DFA analogue. The DFA is
//!   built over an equivalent *flat* NFA in which every `(CAT|PRO)` edge is
//!   expanded to per-character alternatives; atom identities are irrelevant
//!   for boolean membership, so the languages coincide.
//! * **State budget + NFA fallback.** Subset construction is worst-case
//!   exponential. Discovery is capped at [`DEFAULT_STATE_BUDGET`] DFA
//!   states; once exceeded the DFA marks itself overflowed and every
//!   subsequent query runs on the flat NFA instead. Both engines decide the
//!   same language, so results are identical either way — the differential
//!   suite in `tests/dfa_vs_nfa.rs` asserts this, including across the
//!   overflow boundary.
//!
//! The input alphabet (every `char`, plus mask tokens) is first compressed
//! into *token equivalence classes*: two tokens that cross exactly the same
//! edges everywhere share a class, so transition rows stay dense and small
//! (one slot per class, not per character).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::ast::{TNode, TaggedPattern};
use crate::nfa::{Nfa, NfaLabel};
use crate::token::{MaskId, MaskedString, Tok};

/// A column of pure-ASCII, mask-free values packed into one contiguous byte
/// buffer plus offsets — the input of the batched DFA fast path.
///
/// Packing succeeds only when *every* token of every value is an ASCII
/// `Tok::Char`; any mask token or non-ASCII character makes
/// [`AsciiBatch::from_values`] return `None` and the caller falls back to
/// the per-value token path. For ASCII values byte count = token count, so
/// min-length prefilters behave identically on both paths.
#[derive(Debug, Clone, Default)]
pub struct AsciiBatch {
    /// Every value's bytes, back to back.
    bytes: Vec<u8>,
    /// Exclusive end offset of value `i`; its start is `ends[i-1]` (or 0).
    ends: Vec<u32>,
}

impl AsciiBatch {
    /// Packs a column of masked strings, or `None` if any value contains a
    /// mask token or a non-ASCII character.
    pub fn from_values(values: &[MaskedString]) -> Option<AsciiBatch> {
        let total: usize = values.iter().map(MaskedString::len).sum();
        if total > u32::MAX as usize {
            return None;
        }
        let mut bytes = Vec::with_capacity(total);
        let mut ends = Vec::with_capacity(values.len());
        for v in values {
            for &tok in v.toks() {
                match tok {
                    Tok::Char(c) if c.is_ascii() => bytes.push(c as u8),
                    _ => return None,
                }
            }
            ends.push(bytes.len() as u32);
        }
        Some(AsciiBatch { bytes, ends })
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True when no values are packed.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Total packed bytes (telemetry).
    pub fn n_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The byte slice of value `i`.
    #[inline]
    pub fn value(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.bytes[start..self.ends[i] as usize]
    }
}

/// Default cap on discovered DFA states before falling back to the NFA.
///
/// Learned profiles are small (tens of NFA states), so real patterns
/// determinize in a handful of states; the cap exists to bound adversarial
/// alternation blow-ups, not everyday use.
pub const DEFAULT_STATE_BUDGET: usize = 512;

/// Sentinel: transition not yet computed.
const UNEXPLORED: u32 = u32::MAX;
/// The dead state (empty NFA set): always state 0, never accepting.
const DEAD: u32 = 0;
/// The start state (ε-closure of the NFA start): always state 1.
const START: u32 = 1;

/// What one token equivalence class means to the edge labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ClassSig {
    /// The literal character all members equal, if any (`Lit` edges).
    lit: Option<char>,
    /// Bitmask over the pattern's distinct `CharClass`es containing the
    /// members (`Class` edges).
    class_bits: u32,
    /// The mask id all members equal, if any (`Mask` edges).
    mask: Option<MaskId>,
}

impl ClassSig {
    const SINK: ClassSig = ClassSig {
        lit: None,
        class_bits: 0,
        mask: None,
    };
}

/// Token → equivalence-class mapping, fixed at compile time.
#[derive(Debug)]
struct Alphabet {
    /// ASCII fast path: class id per code point.
    ascii: [u16; 128],
    /// Non-ASCII literal characters appearing in the pattern.
    other_lits: HashMap<char, u16>,
    /// Mask ids appearing in the pattern.
    masks: HashMap<MaskId, u16>,
    /// Class for every other token (matches nothing anywhere).
    sink: u16,
    /// Per-class signatures, indexed by class id.
    sigs: Vec<ClassSig>,
    /// The pattern's distinct `CharClass`es; position = signature bit.
    classes: Vec<crate::class::CharClass>,
}

impl Alphabet {
    /// Builds the equivalence classes from a flat NFA's edge labels.
    fn build(flat: &Nfa) -> Alphabet {
        // Collect the symbols the pattern can distinguish, deterministically.
        let mut lits: Vec<char> = Vec::new();
        let mut classes: Vec<crate::class::CharClass> = Vec::new();
        let mut masks: Vec<MaskId> = Vec::new();
        for edges in &flat.edges {
            for edge in edges {
                match &edge.label {
                    NfaLabel::Lit(c) => lits.push(*c),
                    NfaLabel::Class(cc) => classes.push(*cc),
                    NfaLabel::Mask(m) => masks.push(*m),
                    NfaLabel::Disj(_) => unreachable!("flat NFA has no disjunction edges"),
                }
            }
        }
        lits.sort_unstable();
        lits.dedup();
        classes.sort_unstable();
        classes.dedup();
        masks.sort_unstable();
        masks.dedup();
        assert!(
            classes.len() <= 32,
            "class bitmask width exceeded (pattern uses {} distinct classes)",
            classes.len()
        );

        let mut sigs: Vec<ClassSig> = vec![ClassSig::SINK];
        let mut ids: HashMap<ClassSig, u16> = HashMap::new();
        ids.insert(ClassSig::SINK, 0);
        let mut intern = |sig: ClassSig, sigs: &mut Vec<ClassSig>| -> u16 {
            *ids.entry(sig).or_insert_with(|| {
                sigs.push(sig);
                (sigs.len() - 1) as u16
            })
        };

        let char_sig = |c: char| {
            let lit = lits.binary_search(&c).ok().map(|_| c);
            let mut bits = 0u32;
            for (i, cc) in classes.iter().enumerate() {
                if cc.contains(c) {
                    bits |= 1 << i;
                }
            }
            ClassSig {
                lit,
                class_bits: bits,
                mask: None,
            }
        };

        let mut ascii = [0u16; 128];
        for (i, slot) in ascii.iter_mut().enumerate() {
            let c = char::from(i as u8);
            *slot = intern(char_sig(c), &mut sigs);
        }
        let mut other_lits = HashMap::new();
        for &c in lits.iter().filter(|c| !c.is_ascii()) {
            other_lits.insert(c, intern(char_sig(c), &mut sigs));
        }
        let mut mask_ids = HashMap::new();
        for &m in &masks {
            let sig = ClassSig {
                lit: None,
                class_bits: 0,
                mask: Some(m),
            };
            mask_ids.insert(m, intern(sig, &mut sigs));
        }

        Alphabet {
            ascii,
            other_lits,
            masks: mask_ids,
            sink: 0,
            sigs,
            classes,
        }
    }

    /// Number of equivalence classes (the dense row width).
    fn n_classes(&self) -> usize {
        self.sigs.len()
    }

    /// The equivalence class of one token.
    #[inline]
    fn class_of(&self, tok: Tok) -> u16 {
        match tok {
            Tok::Char(c) => {
                if (c as u32) < 128 {
                    self.ascii[c as usize]
                } else {
                    self.other_lits.get(&c).copied().unwrap_or(self.sink)
                }
            }
            Tok::Mask(m) => self.masks.get(&m).copied().unwrap_or(self.sink),
        }
    }

    /// Does an edge label accept every member of class `cls`? (Well-defined
    /// because tokens sharing a class behave identically on every label.)
    fn label_accepts(&self, label: &NfaLabel, cls: u16) -> bool {
        let sig = &self.sigs[cls as usize];
        match label {
            NfaLabel::Lit(c) => sig.lit == Some(*c),
            // Edge classes always come from the pattern, so the position
            // lookup (≤ 8 entries) is the bit assigned at build time.
            NfaLabel::Class(cc) => self
                .classes
                .iter()
                .position(|used| used == cc)
                .is_some_and(|bit| sig.class_bits & (1 << bit) != 0),
            NfaLabel::Mask(m) => sig.mask == Some(*m),
            NfaLabel::Disj(_) => unreachable!("flat NFA has no disjunction edges"),
        }
    }
}

/// The memoized transition tables (behind the DFA's mutex).
#[derive(Debug)]
struct Tables {
    /// NFA state set → DFA id.
    ids: HashMap<Box<[u32]>, u32>,
    /// DFA id → NFA state set (for lazy exploration).
    sets: Vec<Box<[u32]>>,
    /// DFA id → accepting?
    accept: Vec<bool>,
    /// Dense rows: `trans[id * n_classes + class]`.
    trans: Vec<u32>,
    /// Scratch marker for ε-closures (one slot per NFA state).
    mark: Vec<bool>,
}

/// A lazily-determinized DFA equivalent to one compiled pattern's NFA.
#[derive(Debug)]
pub(crate) struct Dfa {
    /// One-token-per-edge NFA: exploration source and fallback engine.
    flat: Nfa,
    alphabet: Alphabet,
    budget: usize,
    tables: Mutex<Tables>,
    /// Budget exceeded: all queries run on the NFA from now on. An atomic
    /// outside the mutex so post-overflow queries (which mutate nothing)
    /// never serialize on the lock — clones share the `Arc<Dfa>` across
    /// engine workers.
    overflowed: AtomicBool,
}

impl Dfa {
    /// Compiles the DFA front-end for a tagged pattern.
    pub fn new(tagged: &TaggedPattern, budget: usize) -> Dfa {
        let flat_root = flatten_disjs(tagged.root());
        let flat = Nfa::compile(&TaggedPattern {
            root: flat_root,
            n_atoms: tagged.n_atoms(),
        });
        let alphabet = Alphabet::build(&flat);
        let n_classes = alphabet.n_classes();

        let mut tables = Tables {
            ids: HashMap::new(),
            sets: Vec::new(),
            accept: Vec::new(),
            trans: Vec::new(),
            mark: vec![false; flat.n_states],
        };
        // State 0: dead. Its row is all-DEAD so lookups terminate instantly.
        tables.ids.insert(Box::from([] as [u32; 0]), DEAD);
        tables.sets.push(Box::from([] as [u32; 0]));
        tables.accept.push(false);
        tables.trans.extend(std::iter::repeat_n(DEAD, n_classes));
        // State 1: ε-closure of the NFA start.
        let start_set = closure(&flat, &mut tables.mark, [flat.start as u32]);
        tables
            .accept
            .push(start_set.contains(&(flat.accept as u32)));
        tables.ids.insert(start_set.clone(), START);
        tables.sets.push(start_set);
        tables
            .trans
            .extend(std::iter::repeat_n(UNEXPLORED, n_classes));

        Dfa {
            flat,
            alphabet,
            budget,
            tables: Mutex::new(tables),
            overflowed: AtomicBool::new(budget < 2),
        }
    }

    /// Is the token string in the language? Exact: identical to the NFA
    /// answer, by construction (and by the differential suite).
    pub fn matches(&self, toks: &[Tok]) -> bool {
        if self.overflowed.load(Ordering::Relaxed) {
            return self.flat.matches(toks);
        }
        let outcome = {
            let mut tables = self.tables.lock().expect("dfa tables poisoned");
            self.run(&mut tables, toks)
        };
        match outcome {
            Some(accepted) => accepted,
            // Budget exceeded mid-run: permanently fall back, simulating
            // outside the lock. The partially-built tables stay consistent
            // but unused.
            None => {
                self.overflowed.store(true, Ordering::Relaxed);
                self.flat.matches(toks)
            }
        }
    }

    /// Batch membership: locks the memo table once for the whole column
    /// (not at all once overflowed).
    pub fn matches_many(&self, values: &[MaskedString], min_len: usize) -> Vec<bool> {
        let mut guard = if self.overflowed.load(Ordering::Relaxed) {
            None
        } else {
            Some(self.tables.lock().expect("dfa tables poisoned"))
        };
        let mut out = Vec::with_capacity(values.len());
        for v in values {
            if v.len() < min_len {
                out.push(false);
                continue;
            }
            let outcome = match guard.as_mut() {
                Some(tables) => self.run(tables, v.toks()),
                None => Some(self.flat.matches(v.toks())),
            };
            match outcome {
                Some(accepted) => out.push(accepted),
                None => {
                    // Overflow mid-batch: release the lock and finish the
                    // remaining values on the NFA.
                    self.overflowed.store(true, Ordering::Relaxed);
                    guard = None;
                    out.push(self.flat.matches(v.toks()));
                }
            }
        }
        out
    }

    /// Batch membership over a packed ASCII column: one memo-table lock for
    /// the whole batch, dense rows stepped directly over `u8` class codes —
    /// no per-value token materialization. Exact: same answers as
    /// [`Dfa::matches_many`] on the equivalent `MaskedString`s (ASCII bytes
    /// hit the same `alphabet.ascii` classes the token path resolves
    /// per-char), which the differential suite proves on >10k cases.
    pub fn matches_ascii(&self, batch: &AsciiBatch, min_len: usize) -> Vec<bool> {
        let mut guard = if self.overflowed.load(Ordering::Relaxed) {
            None
        } else {
            Some(self.tables.lock().expect("dfa tables poisoned"))
        };
        let mut out = Vec::with_capacity(batch.len());
        // Token scratch for the (rare) NFA fallback: reused across values.
        let mut toks: Vec<Tok> = Vec::new();
        for i in 0..batch.len() {
            let bytes = batch.value(i);
            if bytes.len() < min_len {
                out.push(false);
                continue;
            }
            let outcome = match guard.as_mut() {
                Some(tables) => self.run_ascii(tables, bytes),
                None => Some(self.nfa_ascii(bytes, &mut toks)),
            };
            match outcome {
                Some(accepted) => out.push(accepted),
                None => {
                    // Overflow mid-batch: release the lock and finish the
                    // remaining values on the NFA.
                    self.overflowed.store(true, Ordering::Relaxed);
                    guard = None;
                    out.push(self.nfa_ascii(bytes, &mut toks));
                }
            }
        }
        out
    }

    /// NFA fallback for one packed ASCII value (rebuilds tokens into the
    /// shared scratch buffer).
    fn nfa_ascii(&self, bytes: &[u8], toks: &mut Vec<Tok>) -> bool {
        toks.clear();
        toks.extend(bytes.iter().map(|&b| Tok::Char(b as char)));
        self.flat.matches(toks)
    }

    /// Has the state budget been exceeded (all queries now NFA-backed)?
    pub fn overflowed(&self) -> bool {
        self.overflowed.load(Ordering::Relaxed)
    }

    /// Number of DFA states discovered so far (incl. dead + start) —
    /// state-budget usage for telemetry.
    pub fn n_states(&self) -> usize {
        self.tables.lock().expect("dfa tables poisoned").sets.len()
    }

    /// The state budget this DFA was compiled with.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// DFA simulation; `None` when a new state would exceed the budget.
    fn run(&self, tables: &mut Tables, toks: &[Tok]) -> Option<bool> {
        let n_classes = self.alphabet.n_classes();
        let mut state = START;
        for &tok in toks {
            let cls = self.alphabet.class_of(tok);
            let slot = state as usize * n_classes + cls as usize;
            let mut next = tables.trans[slot];
            if next == UNEXPLORED {
                next = self.explore(tables, state, cls)?;
                tables.trans[state as usize * n_classes + cls as usize] = next;
            }
            if next == DEAD {
                return Some(false);
            }
            state = next;
        }
        Some(tables.accept[state as usize])
    }

    /// [`Dfa::run`] over raw ASCII bytes: class lookup is one array index
    /// per byte instead of a `Tok` match + hash-map fallback.
    fn run_ascii(&self, tables: &mut Tables, bytes: &[u8]) -> Option<bool> {
        let n_classes = self.alphabet.n_classes();
        let mut state = START;
        for &b in bytes {
            let cls = self.alphabet.ascii[b as usize];
            let slot = state as usize * n_classes + cls as usize;
            let mut next = tables.trans[slot];
            if next == UNEXPLORED {
                next = self.explore(tables, state, cls)?;
                tables.trans[slot] = next;
            }
            if next == DEAD {
                return Some(false);
            }
            state = next;
        }
        Some(tables.accept[state as usize])
    }

    /// Computes (and interns) the successor of `state` on class `cls`.
    fn explore(&self, tables: &mut Tables, state: u32, cls: u16) -> Option<u32> {
        let mut moved: Vec<u32> = Vec::new();
        for &q in tables.sets[state as usize].iter() {
            for edge in &self.flat.edges[q as usize] {
                if self.alphabet.label_accepts(&edge.label, cls) {
                    moved.push(edge.to as u32);
                }
            }
        }
        if moved.is_empty() {
            return Some(DEAD);
        }
        let next_set = closure(&self.flat, &mut tables.mark, moved);
        if let Some(&id) = tables.ids.get(&next_set) {
            return Some(id);
        }
        if tables.sets.len() >= self.budget {
            return None;
        }
        let id = tables.sets.len() as u32;
        tables
            .accept
            .push(next_set.contains(&(self.flat.accept as u32)));
        tables.ids.insert(next_set.clone(), id);
        tables.sets.push(next_set);
        tables
            .trans
            .extend(std::iter::repeat_n(UNEXPLORED, self.alphabet.n_classes()));
        Some(id)
    }
}

/// Sorted ε-closure of `seed`, using (and restoring) the scratch marker.
fn closure(nfa: &Nfa, mark: &mut [bool], seed: impl IntoIterator<Item = u32>) -> Box<[u32]> {
    let mut stack: Vec<u32> = Vec::new();
    let mut out: Vec<u32> = Vec::new();
    for s in seed {
        if !mark[s as usize] {
            mark[s as usize] = true;
            stack.push(s);
            out.push(s);
        }
    }
    while let Some(s) = stack.pop() {
        for &t in &nfa.eps[s as usize] {
            if !mark[t] {
                mark[t] = true;
                stack.push(t as u32);
                out.push(t as u32);
            }
        }
    }
    for &s in &out {
        mark[s as usize] = false;
    }
    out.sort_unstable();
    out.into_boxed_slice()
}

/// Rewrites multi-token disjunction edges into per-character alternatives,
/// preserving the language (atom identities are unused for membership).
fn flatten_disjs(node: &TNode) -> TNode {
    match node {
        TNode::Disj(alts, _) => TNode::Alt(alts.iter().map(|a| TNode::Str(a.clone())).collect()),
        TNode::Concat(parts) => TNode::Concat(parts.iter().map(flatten_disjs).collect()),
        TNode::Alt(parts) => TNode::Alt(parts.iter().map(flatten_disjs).collect()),
        TNode::Repeat { body, min, max } => TNode::Repeat {
            body: Box::new(flatten_disjs(body)),
            min: *min,
            max: *max,
        },
        leaf => leaf.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pattern;
    use crate::class::CharClass;
    use crate::token::{MaskAlphabet, MaskedString};

    fn dfa(p: &Pattern) -> Dfa {
        Dfa::new(&p.tag(), DEFAULT_STATE_BUDGET)
    }

    fn accepts(d: &Dfa, s: &str) -> bool {
        d.matches(MaskedString::from_plain(s).toks())
    }

    #[test]
    fn agrees_with_nfa_on_figure4() {
        let p = Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ]));
        let d = dfa(&p);
        let nfa = Nfa::compile(&p.tag());
        for s in [
            "A2.",
            "A2.A3.",
            "A5.A7.A8.",
            "AAA3",
            "",
            "A2",
            "A2.x",
            "B2.",
        ] {
            let toks = MaskedString::from_plain(s);
            assert_eq!(d.matches(toks.toks()), nfa.matches(toks.toks()), "{s:?}");
        }
    }

    #[test]
    fn disjunction_edges_are_flattened_exactly() {
        let p = Pattern::concat([Pattern::lit("-"), Pattern::disj(["CAT", "PRO", "C"])]);
        let d = dfa(&p);
        assert!(accepts(&d, "-CAT"));
        assert!(accepts(&d, "-PRO"));
        assert!(accepts(&d, "-C"));
        assert!(!accepts(&d, "-CA"));
        assert!(!accepts(&d, "-CATX"));
        assert!(!accepts(&d, "-PR"));
    }

    #[test]
    fn masks_get_their_own_classes() {
        let mut alpha = MaskAlphabet::new();
        let country = alpha.intern("Country");
        let city = alpha.intern("City");
        let p = Pattern::concat([Pattern::Mask(country), Pattern::lit("-1")]);
        let d = dfa(&p);
        let ok = MaskedString::from_toks(vec![Tok::Mask(country), Tok::Char('-'), Tok::Char('1')]);
        let wrong = MaskedString::from_toks(vec![Tok::Mask(city), Tok::Char('-'), Tok::Char('1')]);
        assert!(d.matches(ok.toks()));
        assert!(!d.matches(wrong.toks()));
        assert!(!d.matches(MaskedString::from_plain("X-1").toks()));
    }

    #[test]
    fn memoization_reuses_states_across_values() {
        let p = Pattern::class_plus(CharClass::Digit);
        let d = dfa(&p);
        assert!(accepts(&d, "12"));
        let after_first = d.n_states();
        for s in ["1", "22", "333", "4444", "55555", "012345678901234567890"] {
            assert!(accepts(&d, s));
        }
        // The loop revisits memoized states: no growth after the first
        // two-token value, no matter how many values were matched.
        assert_eq!(d.n_states(), after_first, "table kept growing");
        assert!(after_first <= 4, "{after_first} states for [0-9]+");
        assert!(!d.overflowed());
    }

    #[test]
    fn budget_overflow_falls_back_to_nfa_and_stays_exact() {
        // Wide alternation over distinct literals forces distinct DFA states.
        let alts: Vec<Pattern> = (b'a'..=b'z')
            .map(|c| Pattern::lit(format!("{0}{0}{0}", char::from(c))))
            .collect();
        let p = Pattern::Alt(alts);
        let d = Dfa::new(&p.tag(), 3);
        assert!(d.matches(MaskedString::from_plain("qqq").toks()));
        assert!(d.overflowed(), "budget 3 must overflow");
        // Post-overflow queries remain exact (NFA-backed).
        assert!(accepts(&d, "aaa"));
        assert!(accepts(&d, "zzz"));
        assert!(!accepts(&d, "aab"));
        assert!(!accepts(&d, ""));
    }

    #[test]
    fn zero_budget_is_pure_nfa() {
        let p = Pattern::lit("abc");
        let d = Dfa::new(&p.tag(), 0);
        assert!(d.overflowed());
        assert!(accepts(&d, "abc"));
        assert!(!accepts(&d, "abd"));
    }

    #[test]
    fn epsilon_heavy_patterns() {
        // (ε | (a*)*)? — nested nullable loops stress the closure scratch.
        let p = Pattern::opt(Pattern::star(Pattern::star(Pattern::lit("a"))));
        let d = dfa(&p);
        assert!(accepts(&d, ""));
        assert!(accepts(&d, "aaaa"));
        assert!(!accepts(&d, "ab"));
        let empty_loop = Pattern::star(Pattern::Empty);
        let d2 = dfa(&empty_loop);
        assert!(accepts(&d2, ""));
        assert!(!accepts(&d2, "a"));
    }

    #[test]
    fn non_ascii_literals_and_strays() {
        let p = Pattern::concat([Pattern::lit("é"), Pattern::Class(CharClass::Digit)]);
        let d = dfa(&p);
        assert!(accepts(&d, "é4"));
        assert!(!accepts(&d, "e4"));
        // A non-ASCII char the pattern never mentions hits the sink class.
        assert!(!accepts(&d, "ü4"));
    }
}
