//! Loop unrolling: approximating a pattern's NFA by a value-specific DAG.
//!
//! Paper §3.3: "we approximate the NFA for a given value v with a directed
//! acyclic graph D_v by unrolling loops up to depth ⌈len(v)/len(cycle)⌉ with
//! the length of a cycle defined as the number of edges in it. We support
//! nested cycles and follow the same unrolling procedure recursively."
//!
//! We unroll at the AST level: `Repeat(body, min, max)` becomes `min`
//! mandatory copies followed by optional copies, which yields a loop-free
//! pattern whose ε-eliminated NFA (see [`crate::dag`]) is acyclic by
//! construction. The unroll depth uses the body's minimum consumed length as
//! the cycle length, matching Figure 4 (value `AAA3`, cycle `A[0-9].` of
//! length 3 → ⌈4/3⌉ = 2 copies).

use crate::ast::TNode;

/// Hard cap on copies per loop, a safety valve against degenerate patterns
/// (e.g. a nullable body). Benchmarks never get near this.
const MAX_COPIES: u32 = 256;

/// Unrolls every `Repeat` for a value of length `value_len` tokens,
/// producing a loop-free tagged AST. Atom ids are preserved, so all copies
/// of a loop body share atoms (they are distinguished by occurrence index
/// when the DAG is built).
pub(crate) fn unroll(node: &TNode, value_len: usize) -> TNode {
    match node {
        TNode::Empty | TNode::Str(_) | TNode::Class(..) | TNode::Mask(..) | TNode::Disj(..) => {
            node.clone()
        }
        TNode::Concat(parts) => TNode::Concat(parts.iter().map(|p| unroll(p, value_len)).collect()),
        TNode::Alt(parts) => TNode::Alt(parts.iter().map(|p| unroll(p, value_len)).collect()),
        TNode::Repeat { body, min, max } => {
            let body_un = unroll(body, value_len);
            let cycle = body.min_len().max(1);
            let needed = value_len.div_ceil(cycle) as u32;
            let mut copies = needed.max(*min);
            if let Some(mx) = max {
                copies = copies.min(*mx).max(*min);
            }
            copies = copies.min(MAX_COPIES.max(*min));
            if copies == 0 {
                return TNode::Empty;
            }
            let mut parts = Vec::with_capacity(copies as usize);
            for _ in 0..*min {
                parts.push(body_un.clone());
            }
            for _ in *min..copies {
                parts.push(TNode::Alt(vec![TNode::Empty, body_un.clone()]));
            }
            if parts.len() == 1 {
                parts.pop().expect("len checked")
            } else {
                TNode::Concat(parts)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pattern;
    use crate::class::CharClass;

    fn count_loops(n: &TNode) -> usize {
        match n {
            TNode::Repeat { body, .. } => 1 + count_loops(body),
            TNode::Concat(ps) | TNode::Alt(ps) => ps.iter().map(count_loops).sum(),
            _ => 0,
        }
    }

    fn count_alts(n: &TNode) -> usize {
        match n {
            TNode::Alt(ps) => 1 + ps.iter().map(count_alts).sum::<usize>(),
            TNode::Concat(ps) => ps.iter().map(count_alts).sum(),
            TNode::Repeat { body, .. } => count_alts(body),
            _ => 0,
        }
    }

    #[test]
    fn figure4_unrolls_twice() {
        // (A[0-9].)+ for |v| = 4 → cycle length 3 → ⌈4/3⌉ = 2 copies:
        // one mandatory, one optional.
        let p = Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ]));
        let un = unroll(p.tag().root(), 4);
        assert_eq!(count_loops(&un), 0);
        assert_eq!(count_alts(&un), 1); // exactly one optional copy
    }

    #[test]
    fn unroll_is_loop_free_for_nested_repeats() {
        // ((a+)b)+
        let p = Pattern::plus(Pattern::concat([
            Pattern::plus(Pattern::lit("a")),
            Pattern::lit("b"),
        ]));
        let un = unroll(p.tag().root(), 6);
        assert_eq!(count_loops(&un), 0);
    }

    #[test]
    fn min_copies_respected_for_empty_value() {
        let p = Pattern::Repeat {
            body: Box::new(Pattern::lit("ab")),
            min: 2,
            max: None,
        };
        let un = unroll(p.tag().root(), 0);
        // Two mandatory copies, zero optional.
        assert_eq!(un.min_len(), 4);
        assert_eq!(count_alts(&un), 0);
    }

    #[test]
    fn bounded_max_caps_copies() {
        let p = Pattern::Repeat {
            body: Box::new(Pattern::lit("a")),
            min: 0,
            max: Some(2),
        };
        let un = unroll(p.tag().root(), 10);
        assert_eq!(count_alts(&un), 2);
    }

    #[test]
    fn star_of_nullable_body_is_bounded() {
        // (a?)* is degenerate: cycle length clamps to 1.
        let p = Pattern::star(Pattern::opt(Pattern::lit("a")));
        let un = unroll(p.tag().root(), 5);
        assert_eq!(count_loops(&un), 0);
    }

    #[test]
    fn atom_ids_shared_across_copies() {
        let p = Pattern::class_plus(CharClass::Digit);
        let tagged = p.tag();
        let un = unroll(tagged.root(), 3);
        // Collect all atom ids in the unrolled tree: they must all be AtomId(0).
        fn atoms(n: &TNode, out: &mut Vec<u32>) {
            match n {
                TNode::Class(_, id) => out.push(id.0),
                TNode::Concat(ps) | TNode::Alt(ps) => ps.iter().for_each(|p| atoms(p, out)),
                TNode::Repeat { body, .. } => atoms(body, out),
                _ => {}
            }
        }
        let mut ids = Vec::new();
        atoms(&un, &mut ids);
        assert_eq!(ids.len(), 3);
        assert!(ids.iter().all(|&i| i == 0));
    }
}
