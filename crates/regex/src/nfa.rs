//! Thompson NFA construction and set-of-states simulation.
//!
//! Paper §3.3: "The pattern r_k is interpreted as a non-deterministic finite
//! state automaton (NFA) where edges correspond to matching (and consuming) a
//! single character." We keep the (possibly cyclic) NFA for fast boolean
//! matching during error detection; the repair engine uses the unrolled
//! acyclic form from [`crate::dag`] instead.
//!
//! One deliberate extension: a *string disjunction* `(CAT|PRO)` is a single
//! edge consuming one whole alternative. This is what lets minimal edit
//! programs contain abstract actions like `I(CAT|PRO)` (paper Example / §3.3)
//! instead of per-character edits that would pre-empt concretization.

use crate::ast::{TNode, TaggedPattern};
use crate::class::CharClass;
use crate::token::{MaskId, Tok};

/// Consuming-edge label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum NfaLabel {
    /// Consume exactly the character.
    Lit(char),
    /// Consume one character of the class.
    Class(CharClass),
    /// Consume one mask token.
    Mask(MaskId),
    /// Consume one alternative of the disjunction (index into `Nfa::disjs`).
    Disj(u32),
}

#[derive(Debug, Clone)]
pub(crate) struct NfaEdge {
    pub to: usize,
    pub label: NfaLabel,
}

/// A Thompson NFA over the masked-string alphabet.
#[derive(Debug, Clone)]
pub(crate) struct Nfa {
    pub n_states: usize,
    pub start: usize,
    pub accept: usize,
    /// ε-adjacency per state.
    pub eps: Vec<Vec<usize>>,
    /// Consuming edges per state.
    pub edges: Vec<Vec<NfaEdge>>,
    /// Disjunction alternatives, as char vectors for cheap slice matching.
    pub disjs: Vec<Vec<Vec<char>>>,
}

impl Nfa {
    /// Compiles a tagged pattern (loops allowed) into an NFA.
    pub fn compile(pattern: &TaggedPattern) -> Nfa {
        let mut b = Builder::default();
        let (entry, exit) = b.fragment(pattern.root());
        Nfa {
            n_states: b.eps.len(),
            start: entry,
            accept: exit,
            eps: b.eps,
            edges: b.edges,
            disjs: b.disjs,
        }
    }

    /// Does the NFA accept the token string?
    pub fn matches(&self, toks: &[Tok]) -> bool {
        let n = toks.len();
        // reach[i] = states reachable having consumed exactly i tokens.
        let mut reach: Vec<Vec<bool>> = vec![vec![false; self.n_states]; n + 1];
        reach[0][self.start] = true;
        for i in 0..=n {
            self.close(&mut reach[i]);
            if i == n {
                break;
            }
            // Split off the current frontier so we can write to later rows.
            let (cur, rest) = reach.split_at_mut(i + 1);
            let cur = &cur[i];
            #[allow(clippy::needless_range_loop)]
            for state in 0..self.n_states {
                if !cur[state] {
                    continue;
                }
                for edge in &self.edges[state] {
                    match &edge.label {
                        NfaLabel::Lit(c) => {
                            if toks[i] == Tok::Char(*c) {
                                rest[0][edge.to] = true;
                            }
                        }
                        NfaLabel::Class(cc) => {
                            if matches!(toks[i], Tok::Char(ch) if cc.contains(ch)) {
                                rest[0][edge.to] = true;
                            }
                        }
                        NfaLabel::Mask(m) => {
                            if toks[i] == Tok::Mask(*m) {
                                rest[0][edge.to] = true;
                            }
                        }
                        NfaLabel::Disj(d) => {
                            for alt in &self.disjs[*d as usize] {
                                let k = alt.len();
                                if i + k <= n && alt_matches(alt, &toks[i..i + k]) {
                                    rest[k - 1][edge.to] = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        reach[n][self.accept]
    }

    /// In-place ε-closure of a state set.
    fn close(&self, set: &mut [bool]) {
        let mut stack: Vec<usize> = (0..self.n_states).filter(|&s| set[s]).collect();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if !set[t] {
                    set[t] = true;
                    stack.push(t);
                }
            }
        }
    }
}

fn alt_matches(alt: &[char], toks: &[Tok]) -> bool {
    alt.len() == toks.len()
        && alt
            .iter()
            .zip(toks)
            .all(|(c, t)| matches!(t, Tok::Char(ch) if ch == c))
}

#[derive(Default)]
struct Builder {
    eps: Vec<Vec<usize>>,
    edges: Vec<Vec<NfaEdge>>,
    disjs: Vec<Vec<Vec<char>>>,
}

impl Builder {
    fn node(&mut self) -> usize {
        self.eps.push(Vec::new());
        self.edges.push(Vec::new());
        self.eps.len() - 1
    }

    fn eps_edge(&mut self, from: usize, to: usize) {
        self.eps[from].push(to);
    }

    fn cons_edge(&mut self, from: usize, to: usize, label: NfaLabel) {
        self.edges[from].push(NfaEdge { to, label });
    }

    fn intern_disj(&mut self, alts: &[String]) -> u32 {
        let chars: Vec<Vec<char>> = alts.iter().map(|a| a.chars().collect()).collect();
        if let Some(i) = self.disjs.iter().position(|d| *d == chars) {
            return i as u32;
        }
        self.disjs.push(chars);
        (self.disjs.len() - 1) as u32
    }

    /// Builds the fragment for `node`, returning `(entry, exit)` states.
    fn fragment(&mut self, node: &TNode) -> (usize, usize) {
        match node {
            TNode::Empty => {
                let s = self.node();
                (s, s)
            }
            TNode::Str(text) => {
                let entry = self.node();
                let mut cur = entry;
                for c in text.chars() {
                    let next = self.node();
                    self.cons_edge(cur, next, NfaLabel::Lit(c));
                    cur = next;
                }
                (entry, cur)
            }
            TNode::Class(c, _) => {
                let s = self.node();
                let e = self.node();
                self.cons_edge(s, e, NfaLabel::Class(*c));
                (s, e)
            }
            TNode::Mask(m, _) => {
                let s = self.node();
                let e = self.node();
                self.cons_edge(s, e, NfaLabel::Mask(*m));
                (s, e)
            }
            TNode::Disj(alts, _) => {
                let d = self.intern_disj(alts);
                let s = self.node();
                let e = self.node();
                self.cons_edge(s, e, NfaLabel::Disj(d));
                (s, e)
            }
            TNode::Concat(parts) => {
                let entry = self.node();
                let mut cur = entry;
                for part in parts {
                    let (ps, pe) = self.fragment(part);
                    self.eps_edge(cur, ps);
                    cur = pe;
                }
                (entry, cur)
            }
            TNode::Alt(parts) => {
                let s = self.node();
                let e = self.node();
                for part in parts {
                    let (ps, pe) = self.fragment(part);
                    self.eps_edge(s, ps);
                    self.eps_edge(pe, e);
                }
                (s, e)
            }
            TNode::Repeat { body, min, max } => {
                let entry = self.node();
                let mut cur = entry;
                for _ in 0..*min {
                    let (ps, pe) = self.fragment(body);
                    self.eps_edge(cur, ps);
                    cur = pe;
                }
                match max {
                    None => {
                        // Kleene closure over one more body copy.
                        let hub = self.node();
                        self.eps_edge(cur, hub);
                        let (ps, pe) = self.fragment(body);
                        self.eps_edge(hub, ps);
                        self.eps_edge(pe, hub);
                        (entry, hub)
                    }
                    Some(mx) => {
                        for _ in *min..*mx {
                            let (ps, pe) = self.fragment(body);
                            let next = self.node();
                            self.eps_edge(cur, ps);
                            self.eps_edge(pe, next);
                            self.eps_edge(cur, next); // skip the optional copy
                            cur = next;
                        }
                        (entry, cur)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Pattern;
    use crate::token::{MaskAlphabet, MaskedString};

    fn accepts(p: &Pattern, s: &str) -> bool {
        let nfa = Nfa::compile(&p.tag());
        nfa.matches(MaskedString::from_plain(s).toks())
    }

    #[test]
    fn literal_matching() {
        let p = Pattern::lit("abc");
        assert!(accepts(&p, "abc"));
        assert!(!accepts(&p, "ab"));
        assert!(!accepts(&p, "abcd"));
        assert!(!accepts(&p, "abd"));
    }

    #[test]
    fn figure4_pattern_language() {
        // (A[0-9].)+
        let p = Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ]));
        assert!(accepts(&p, "A2."));
        assert!(accepts(&p, "A2.A3."));
        assert!(accepts(&p, "A5.A7.A8."));
        assert!(!accepts(&p, "AAA3"));
        assert!(!accepts(&p, ""));
        assert!(!accepts(&p, "A2"));
    }

    #[test]
    fn star_and_opt() {
        let p = Pattern::star(Pattern::lit("ab"));
        assert!(accepts(&p, ""));
        assert!(accepts(&p, "abab"));
        assert!(!accepts(&p, "aba"));
        let q = Pattern::concat([Pattern::opt(Pattern::lit("x")), Pattern::lit("y")]);
        assert!(accepts(&q, "y"));
        assert!(accepts(&q, "xy"));
        assert!(!accepts(&q, "xxy"));
    }

    #[test]
    fn bounded_repeat() {
        let p = Pattern::Repeat {
            body: Box::new(Pattern::Class(CharClass::Digit)),
            min: 2,
            max: Some(4),
        };
        assert!(!accepts(&p, "1"));
        assert!(accepts(&p, "12"));
        assert!(accepts(&p, "1234"));
        assert!(!accepts(&p, "12345"));
    }

    #[test]
    fn disjunction_consumes_whole_alternative() {
        let p = Pattern::concat([Pattern::lit("-"), Pattern::disj(["CAT", "PRO"])]);
        assert!(accepts(&p, "-CAT"));
        assert!(accepts(&p, "-PRO"));
        assert!(!accepts(&p, "-CA"));
        assert!(!accepts(&p, "-CATX"));
    }

    #[test]
    fn masks_match_only_same_mask() {
        let mut alpha = MaskAlphabet::new();
        let country = alpha.intern("Country");
        let city = alpha.intern("City");
        let p = Pattern::concat([Pattern::Mask(country), Pattern::lit("-1")]);
        let nfa = Nfa::compile(&p.tag());
        let ok = MaskedString::from_toks(vec![Tok::Mask(country), Tok::Char('-'), Tok::Char('1')]);
        let wrong = MaskedString::from_toks(vec![Tok::Mask(city), Tok::Char('-'), Tok::Char('1')]);
        assert!(nfa.matches(ok.toks()));
        assert!(!nfa.matches(wrong.toks()));
        assert!(!nfa.matches(MaskedString::from_plain("X-1").toks()));
    }

    #[test]
    fn alternation_of_patterns() {
        let p = Pattern::Alt(vec![
            Pattern::class_plus(CharClass::Digit),
            Pattern::class_plus(CharClass::Lower),
        ]);
        assert!(accepts(&p, "123"));
        assert!(accepts(&p, "abc"));
        assert!(!accepts(&p, "a1"));
    }

    #[test]
    fn nested_quantifiers() {
        // ((ab)+,)+  — nested unbounded loops.
        let p = Pattern::plus(Pattern::concat([
            Pattern::plus(Pattern::lit("ab")),
            Pattern::lit(","),
        ]));
        assert!(accepts(&p, "ab,"));
        assert!(accepts(&p, "abab,ab,"));
        assert!(!accepts(&p, "ab"));
        assert!(!accepts(&p, ",ab"));
    }

    #[test]
    fn empty_pattern() {
        assert!(accepts(&Pattern::Empty, ""));
        assert!(!accepts(&Pattern::Empty, "a"));
    }
}
