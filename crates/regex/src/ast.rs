//! The pattern AST: regular expressions over characters, character classes,
//! string disjunctions, and semantic mask tokens.
//!
//! Patterns are what the profiler learns (paper §3.1) and what the repair
//! engine edits values towards (§3.3). Three leaf kinds require later
//! *concretization* and therefore carry stable atom identities once tagged:
//! character classes, string disjunctions, and masks (Example 5 keys its
//! decision-tree training data on "an edge in the unrolled DAG that has the
//! target character class or string disjunction").

use crate::class::CharClass;
use crate::token::MaskId;

/// Identity of a concretizable atom (class / disjunction / mask leaf) within
/// one pattern, assigned in pre-order by [`Pattern::tag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

/// A concretizable atom occurrence: the `occ`-th instantiation of `atom` in
/// an unrolled pattern (loop copies share the atom, distinguish by `occ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomKey {
    /// Which atom of the original pattern.
    pub atom: AtomId,
    /// Which unrolled occurrence of that atom (0-based, left to right).
    pub occ: u32,
}

/// A DataVinci pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// The empty string.
    Empty,
    /// A literal string (one or more concrete characters).
    Str(String),
    /// One character drawn from a class.
    Class(CharClass),
    /// One semantic mask token.
    Mask(MaskId),
    /// A disjunction over literal strings, e.g. `(CAT|PRO)`.
    Disj(Vec<String>),
    /// Concatenation.
    Concat(Vec<Pattern>),
    /// Alternation over sub-patterns.
    Alt(Vec<Pattern>),
    /// Quantified group: between `min` and `max` (None = unbounded) copies.
    Repeat {
        /// Repeated body.
        body: Box<Pattern>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` means unbounded (`+`/`*`).
        max: Option<u32>,
    },
}

impl Pattern {
    /// Literal string pattern. Empty input becomes [`Pattern::Empty`].
    pub fn lit(s: impl Into<String>) -> Pattern {
        let s = s.into();
        if s.is_empty() {
            Pattern::Empty
        } else {
            Pattern::Str(s)
        }
    }

    /// `class{n}` — exactly `n` characters of the class (single atom).
    pub fn class_n(class: CharClass, n: u32) -> Pattern {
        match n {
            1 => Pattern::Class(class),
            _ => Pattern::Repeat {
                body: Box::new(Pattern::Class(class)),
                min: n,
                max: Some(n),
            },
        }
    }

    /// `class+` — one or more characters of the class.
    pub fn class_plus(class: CharClass) -> Pattern {
        Pattern::Repeat {
            body: Box::new(Pattern::Class(class)),
            min: 1,
            max: None,
        }
    }

    /// `p+`
    pub fn plus(body: Pattern) -> Pattern {
        Pattern::Repeat {
            body: Box::new(body),
            min: 1,
            max: None,
        }
    }

    /// `p*`
    pub fn star(body: Pattern) -> Pattern {
        Pattern::Repeat {
            body: Box::new(body),
            min: 0,
            max: None,
        }
    }

    /// `p?`
    pub fn opt(body: Pattern) -> Pattern {
        Pattern::Repeat {
            body: Box::new(body),
            min: 0,
            max: Some(1),
        }
    }

    /// Concatenation, flattening nested concats and dropping `Empty`.
    pub fn concat(parts: impl IntoIterator<Item = Pattern>) -> Pattern {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Pattern::Empty => {}
                Pattern::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Pattern::Empty,
            1 => flat.pop().expect("len checked"),
            _ => Pattern::Concat(flat),
        }
    }

    /// String disjunction; deduplicates and sorts alternatives for stable
    /// identity. Panics on empty alternative lists or empty strings (the
    /// engine requires disjunction alternatives to consume ≥ 1 character).
    pub fn disj<S: Into<String>>(alts: impl IntoIterator<Item = S>) -> Pattern {
        let mut v: Vec<String> = alts.into_iter().map(Into::into).collect();
        assert!(!v.is_empty(), "disjunction needs at least one alternative");
        assert!(
            v.iter().all(|s| !s.is_empty()),
            "disjunction alternatives must be non-empty"
        );
        v.sort();
        v.dedup();
        if v.len() == 1 {
            Pattern::Str(v.pop().expect("len checked"))
        } else {
            Pattern::Disj(v)
        }
    }

    /// Minimum number of tokens a match consumes.
    pub fn min_len(&self) -> usize {
        match self {
            Pattern::Empty => 0,
            Pattern::Str(s) => s.chars().count(),
            Pattern::Class(_) | Pattern::Mask(_) => 1,
            Pattern::Disj(alts) => alts.iter().map(|a| a.chars().count()).min().unwrap_or(0),
            Pattern::Concat(parts) => parts.iter().map(Pattern::min_len).sum(),
            Pattern::Alt(parts) => parts.iter().map(Pattern::min_len).min().unwrap_or(0),
            Pattern::Repeat { body, min, .. } => body.min_len() * (*min as usize),
        }
    }

    /// Does the pattern accept the empty string?
    pub fn nullable(&self) -> bool {
        self.min_len() == 0
    }

    /// Tags concretizable atoms with pre-order [`AtomId`]s.
    pub fn tag(&self) -> TaggedPattern {
        let mut next = 0u32;
        let tagged = tag_rec(self, &mut next);
        TaggedPattern {
            root: tagged,
            n_atoms: next,
        }
    }

    /// A crude size measure (number of AST leaves), used by profiler costs.
    pub fn size(&self) -> usize {
        match self {
            Pattern::Empty => 1,
            Pattern::Str(s) => s.chars().count().max(1),
            Pattern::Class(_) | Pattern::Mask(_) | Pattern::Disj(_) => 1,
            Pattern::Concat(ps) | Pattern::Alt(ps) => ps.iter().map(Pattern::size).sum(),
            Pattern::Repeat { body, .. } => body.size() + 1,
        }
    }
}

/// A pattern whose concretizable leaves carry [`AtomId`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedPattern {
    pub(crate) root: TNode,
    pub(crate) n_atoms: u32,
}

impl TaggedPattern {
    /// Number of distinct atoms in the pattern.
    pub fn n_atoms(&self) -> u32 {
        self.n_atoms
    }

    /// The root node (crate-internal consumers: unroll / NFA / DAG builders).
    pub(crate) fn root(&self) -> &TNode {
        &self.root
    }
}

/// Internal tagged AST node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TNode {
    Empty,
    Str(String),
    Class(CharClass, AtomId),
    Mask(MaskId, AtomId),
    Disj(Vec<String>, AtomId),
    Concat(Vec<TNode>),
    Alt(Vec<TNode>),
    Repeat {
        body: Box<TNode>,
        min: u32,
        max: Option<u32>,
    },
}

impl TNode {
    /// Minimum tokens consumed — mirrors [`Pattern::min_len`].
    pub(crate) fn min_len(&self) -> usize {
        match self {
            TNode::Empty => 0,
            TNode::Str(s) => s.chars().count(),
            TNode::Class(..) | TNode::Mask(..) => 1,
            TNode::Disj(alts, _) => alts.iter().map(|a| a.chars().count()).min().unwrap_or(0),
            TNode::Concat(parts) => parts.iter().map(TNode::min_len).sum(),
            TNode::Alt(parts) => parts.iter().map(TNode::min_len).min().unwrap_or(0),
            TNode::Repeat { body, min, .. } => body.min_len() * (*min as usize),
        }
    }
}

fn tag_rec(p: &Pattern, next: &mut u32) -> TNode {
    let mut fresh = || {
        let id = AtomId(*next);
        *next += 1;
        id
    };
    match p {
        Pattern::Empty => TNode::Empty,
        Pattern::Str(s) => TNode::Str(s.clone()),
        Pattern::Class(c) => TNode::Class(*c, fresh()),
        Pattern::Mask(m) => TNode::Mask(*m, fresh()),
        Pattern::Disj(alts) => TNode::Disj(alts.clone(), fresh()),
        Pattern::Concat(parts) => TNode::Concat(parts.iter().map(|q| tag_rec(q, next)).collect()),
        Pattern::Alt(parts) => TNode::Alt(parts.iter().map(|q| tag_rec(q, next)).collect()),
        Pattern::Repeat { body, min, max } => TNode::Repeat {
            body: Box::new(tag_rec(body, next)),
            min: *min,
            max: *max,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_len_examples() {
        // (A[0-9].)+ from paper Figure 4.
        let p = Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ]));
        assert_eq!(p.min_len(), 3);
        assert!(!p.nullable());
        assert!(Pattern::star(Pattern::lit("ab")).nullable());
    }

    #[test]
    fn concat_flattens_and_drops_empty() {
        let p = Pattern::concat([
            Pattern::Empty,
            Pattern::concat([Pattern::lit("a"), Pattern::lit("b")]),
            Pattern::Empty,
        ]);
        assert_eq!(
            p,
            Pattern::Concat(vec![Pattern::lit("a"), Pattern::lit("b")])
        );
        assert_eq!(Pattern::concat([]), Pattern::Empty);
        assert_eq!(Pattern::concat([Pattern::lit("x")]), Pattern::lit("x"));
    }

    #[test]
    fn disj_normalizes() {
        assert_eq!(
            Pattern::disj(["PRO", "CAT", "PRO"]),
            Pattern::Disj(vec!["CAT".into(), "PRO".into()])
        );
        assert_eq!(Pattern::disj(["only"]), Pattern::lit("only"));
    }

    #[test]
    fn tagging_assigns_preorder_ids() {
        let p = Pattern::concat([
            Pattern::Class(CharClass::Upper),
            Pattern::lit("-"),
            Pattern::class_plus(CharClass::Digit),
            Pattern::disj(["CAT", "PRO"]),
        ]);
        let t = p.tag();
        assert_eq!(t.n_atoms(), 3);
        // Upper = atom 0, Digit inside repeat = atom 1, Disj = atom 2.
        match t.root() {
            TNode::Concat(parts) => {
                assert!(matches!(
                    parts[0],
                    TNode::Class(CharClass::Upper, AtomId(0))
                ));
                match &parts[2] {
                    TNode::Repeat { body, .. } => {
                        assert!(matches!(**body, TNode::Class(CharClass::Digit, AtomId(1))));
                    }
                    other => panic!("unexpected {other:?}"),
                }
                assert!(matches!(parts[3], TNode::Disj(_, AtomId(2))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_n_one_is_plain_class() {
        assert_eq!(
            Pattern::class_n(CharClass::Digit, 1),
            Pattern::Class(CharClass::Digit)
        );
        assert_eq!(Pattern::class_n(CharClass::Digit, 3).min_len(), 3);
    }

    #[test]
    fn size_counts_leaves() {
        let p = Pattern::concat([Pattern::lit("ab"), Pattern::Class(CharClass::Digit)]);
        assert_eq!(p.size(), 3);
    }

    #[test]
    fn nullable_epsilon_heavy_corners() {
        // The determinizer's ε-closures rely on these nullability facts.
        assert!(Pattern::Empty.nullable());
        assert!(Pattern::star(Pattern::Empty).nullable());
        assert!(Pattern::star(Pattern::star(Pattern::lit("a"))).nullable());
        assert!(Pattern::opt(Pattern::opt(Pattern::Empty)).nullable());
        // min 0 repeats are nullable regardless of the body.
        assert!(Pattern::Repeat {
            body: Box::new(Pattern::lit("abc")),
            min: 0,
            max: Some(0),
        }
        .nullable());
        // A repeat of a nullable body is nullable even with min > 0.
        assert!(Pattern::Repeat {
            body: Box::new(Pattern::opt(Pattern::lit("x"))),
            min: 5,
            max: None,
        }
        .nullable());
        // Concat is nullable only when every part is.
        assert!(Pattern::concat([Pattern::star(Pattern::lit("a")), Pattern::Empty]).nullable());
        assert!(!Pattern::concat([Pattern::star(Pattern::lit("a")), Pattern::lit("b")]).nullable());
        // Alt is nullable when any branch is.
        assert!(Pattern::Alt(vec![Pattern::lit("x"), Pattern::Empty]).nullable());
        assert!(!Pattern::Alt(vec![Pattern::lit("x"), Pattern::lit("y")]).nullable());
    }

    #[test]
    fn min_len_epsilon_heavy_corners() {
        assert_eq!(Pattern::Empty.min_len(), 0);
        assert_eq!(Pattern::star(Pattern::lit("abc")).min_len(), 0);
        assert_eq!(Pattern::plus(Pattern::lit("abc")).min_len(), 3);
        // Bounded repeat of a nullable body contributes nothing.
        assert_eq!(
            Pattern::Repeat {
                body: Box::new(Pattern::opt(Pattern::lit("xy"))),
                min: 4,
                max: Some(6),
            }
            .min_len(),
            0
        );
        // Disjunction minimum is the shortest alternative.
        assert_eq!(Pattern::disj(["abcd", "ab", "abc"]).min_len(), 2);
        // Alt minimum is the cheapest branch; empty alt list degenerates to 0.
        assert_eq!(
            Pattern::Alt(vec![Pattern::lit("abcd"), Pattern::Class(CharClass::Digit)]).min_len(),
            1
        );
        assert_eq!(Pattern::Alt(vec![]).min_len(), 0);
        // Nested quantifier arithmetic: ((ab){2}){3} consumes 12.
        let nested = Pattern::Repeat {
            body: Box::new(Pattern::class_n(CharClass::Lower, 2)),
            min: 3,
            max: None,
        };
        assert_eq!(nested.min_len(), 6);
        // Masks are single tokens regardless of their rendered width.
        assert_eq!(Pattern::Mask(crate::token::MaskId(7)).min_len(), 1);
    }

    #[test]
    fn min_len_agrees_with_matcher_on_empty_string() {
        // nullable() == "the empty string matches": spot-check the
        // correspondence the DFA's min_len guard assumes.
        let cases = [
            Pattern::Empty,
            Pattern::star(Pattern::Empty),
            Pattern::star(Pattern::star(Pattern::lit("a"))),
            Pattern::opt(Pattern::disj(["aa", "bb"])),
            Pattern::plus(Pattern::lit("a")),
            Pattern::disj(["x", "yz"]),
            Pattern::Repeat {
                body: Box::new(Pattern::Empty),
                min: 3,
                max: Some(3),
            },
        ];
        for p in cases {
            let compiled = crate::matcher::CompiledPattern::compile(p.clone());
            let empty = crate::token::MaskedString::default();
            assert_eq!(
                compiled.matches(&empty),
                p.nullable(),
                "{p} nullability vs matcher"
            );
        }
    }
}
