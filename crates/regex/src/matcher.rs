//! Compiled patterns: boolean matching, DAG access, and binding extraction.
//!
//! A [`CompiledPattern`] packages the tagged AST, a lazily-determinized
//! [`Dfa`](crate::dfa) front-end for membership tests (with the cyclic NFA
//! kept as the exact fallback and reference oracle) and a per-length cache
//! of unrolled DAGs (for the repair DP and for extracting concretization
//! *bindings* — which concrete character/alternative each class/disjunction
//! edge consumed on a successful match; paper Example 5).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::ast::{AtomKey, Pattern, TaggedPattern};
use crate::dag::{Dag, DagLabel};
use crate::dfa::{AsciiBatch, Dfa, DEFAULT_STATE_BUDGET};
use crate::nfa::Nfa;
use crate::token::{MaskedString, Tok};

/// What one concretizable atom occurrence consumed during a match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Which atom occurrence.
    pub key: AtomKey,
    /// The consumed text (single char for classes, alternative for
    /// disjunctions, `⟨m⟩` placeholder for masks).
    pub text: String,
}

/// All bindings of one successful match, in consumption order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bindings {
    /// Atom-occurrence bindings in left-to-right order.
    pub items: Vec<Binding>,
}

impl Bindings {
    /// The binding for `key`, if the match consumed that atom occurrence.
    pub fn get(&self, key: AtomKey) -> Option<&str> {
        self.items
            .iter()
            .find(|b| b.key == key)
            .map(|b| b.text.as_str())
    }
}

/// A pattern compiled for matching and repair.
#[derive(Debug)]
pub struct CompiledPattern {
    pattern: Pattern,
    tagged: TaggedPattern,
    nfa: Nfa,
    dfa: Arc<Dfa>,
    min_len: usize,
    dag_cache: Mutex<HashMap<usize, std::sync::Arc<Dag>>>,
}

impl Clone for CompiledPattern {
    fn clone(&self) -> Self {
        CompiledPattern {
            pattern: self.pattern.clone(),
            tagged: self.tagged.clone(),
            nfa: self.nfa.clone(),
            // Memoized DFA transitions depend only on the pattern's
            // language, so clones share them — a re-scored profile keeps
            // its warm tables instead of re-determinizing from scratch.
            dfa: Arc::clone(&self.dfa),
            min_len: self.min_len,
            dag_cache: Mutex::new(HashMap::new()),
        }
    }
}

impl CompiledPattern {
    /// Compiles a pattern.
    pub fn compile(pattern: Pattern) -> Self {
        CompiledPattern::compile_with_dfa_budget(pattern, DEFAULT_STATE_BUDGET)
    }

    /// Compiles a pattern with an explicit DFA state budget.
    ///
    /// Membership runs on the lazily-determinized DFA until `budget` states
    /// have been discovered, then falls back to the NFA permanently (the
    /// answers are identical either way). Exposed so tests and benchmarks
    /// can force the fallback path; [`CompiledPattern::compile`] uses
    /// [`DEFAULT_STATE_BUDGET`].
    pub fn compile_with_dfa_budget(pattern: Pattern, budget: usize) -> Self {
        let tagged = pattern.tag();
        let nfa = Nfa::compile(&tagged);
        let dfa = Arc::new(Dfa::new(&tagged, budget));
        let min_len = pattern.min_len();
        CompiledPattern {
            pattern,
            tagged,
            nfa,
            dfa,
            min_len,
            dag_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The source pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Number of concretizable atoms.
    pub fn n_atoms(&self) -> u32 {
        self.tagged.n_atoms()
    }

    /// Minimum number of tokens any match consumes.
    pub fn min_len(&self) -> usize {
        self.min_len
    }

    /// Is `value` in the pattern's language?
    ///
    /// Runs on the memoized DFA fast path (falling back to the NFA past the
    /// state budget); exact — always the same answer as
    /// [`CompiledPattern::matches_nfa`].
    pub fn matches(&self, value: &MaskedString) -> bool {
        if value.len() < self.min_len {
            return false;
        }
        self.dfa.matches(value.toks())
    }

    /// Reference membership via direct cyclic-NFA simulation.
    ///
    /// The oracle the DFA fast path is differentially tested against; also
    /// what benchmarks use to measure the speedup. Prefer
    /// [`CompiledPattern::matches`] everywhere else.
    pub fn matches_nfa(&self, value: &MaskedString) -> bool {
        if value.len() < self.min_len {
            return false;
        }
        self.nfa.matches(value.toks())
    }

    /// Batch membership over a whole column of values.
    ///
    /// Equivalent to mapping [`CompiledPattern::matches`], but locks the
    /// DFA's memo table once for the entire batch — the profiler's
    /// candidate-scoring and the engine's append-only re-score go through
    /// here.
    pub fn matches_many(&self, values: &[MaskedString]) -> Vec<bool> {
        self.dfa.matches_many(values, self.min_len)
    }

    /// Batch membership over a packed pure-ASCII column (see
    /// [`AsciiBatch`]): the dense DFA rows step directly over `u8` class
    /// codes, with no per-value token materialization. Exact — identical
    /// answers to [`CompiledPattern::matches_many`] on the values the batch
    /// was packed from (differentially proptested in `tests/dfa_vs_nfa.rs`).
    pub fn matches_many_ascii(&self, batch: &AsciiBatch) -> Vec<bool> {
        self.dfa.matches_ascii(batch, self.min_len)
    }

    /// Has the DFA exceeded its state budget (membership now NFA-backed)?
    pub fn dfa_overflowed(&self) -> bool {
        self.dfa.overflowed()
    }

    /// Number of DFA states discovered so far — how much of the state
    /// budget lazy determinization has consumed (telemetry).
    pub fn dfa_states(&self) -> usize {
        self.dfa.n_states()
    }

    /// The DFA state budget this pattern was compiled with.
    pub fn dfa_budget(&self) -> usize {
        self.dfa.budget()
    }

    /// The unrolled DAG for values of `len` tokens (cached per length).
    pub fn dag_for_len(&self, len: usize) -> std::sync::Arc<Dag> {
        let mut cache = self.dag_cache.lock().expect("dag cache poisoned");
        cache
            .entry(len)
            .or_insert_with(|| std::sync::Arc::new(Dag::build(self.tagged.root(), len)))
            .clone()
    }

    /// If `value` matches, returns the atom bindings of one accepting path.
    ///
    /// Uses the unrolled DAG, so occurrence indices are consistent with the
    /// DAGs the repair engine builds for erroneous values of similar length.
    pub fn bindings(&self, value: &MaskedString) -> Option<Bindings> {
        if value.len() < self.min_len {
            return None;
        }
        let dag = self.dag_for_len(value.len());
        zero_cost_path(&dag, value)
    }
}

/// Reachability DP over (tokens consumed, node) with parent pointers;
/// reconstructs the bindings of one zero-cost (exact-match) path.
fn zero_cost_path(dag: &Dag, value: &MaskedString) -> Option<Bindings> {
    let toks = value.toks();
    let n = toks.len();
    let nn = dag.n_nodes;
    // parent[(i, u)] = (prev_i, prev_node, edge index) for one reaching path.
    let mut reached = vec![false; (n + 1) * nn];
    let mut parent: Vec<Option<(usize, usize, usize)>> = vec![None; (n + 1) * nn];
    let idx = |i: usize, u: usize| i * nn + u;
    reached[idx(0, dag.start)] = true;

    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); nn];
    for (i, e) in dag.edges.iter().enumerate() {
        out_edges[e.from].push(i);
    }

    for i in 0..n {
        for u in 0..nn {
            if !reached[idx(i, u)] {
                continue;
            }
            for &ei in &out_edges[u] {
                let e = &dag.edges[ei];
                match &e.label {
                    DagLabel::Disj(d, _) => {
                        for alt in &dag.disjs[*d as usize] {
                            let k = alt.len();
                            if i + k <= n
                                && alt
                                    .iter()
                                    .zip(&toks[i..i + k])
                                    .all(|(c, t)| *t == Tok::Char(*c))
                                && !reached[idx(i + k, e.to)]
                            {
                                reached[idx(i + k, e.to)] = true;
                                parent[idx(i + k, e.to)] = Some((i, u, ei));
                            }
                        }
                    }
                    label => {
                        if Dag::tok_matches(label, toks[i]) && !reached[idx(i + 1, e.to)] {
                            reached[idx(i + 1, e.to)] = true;
                            parent[idx(i + 1, e.to)] = Some((i, u, ei));
                        }
                    }
                }
            }
        }
    }

    let accept = (0..nn).find(|&u| reached[idx(n, u)] && dag.accepts[u])?;

    // Walk parents back to the start, collecting atom bindings.
    let mut items = Vec::new();
    let mut cur = (n, accept);
    while let Some((pi, pu, ei)) = parent[idx(cur.0, cur.1)] {
        let e = &dag.edges[ei];
        let consumed: String = toks[pi..cur.0]
            .iter()
            .map(|t| match t {
                Tok::Char(c) => *c,
                Tok::Mask(_) => '\u{FFFD}',
            })
            .collect();
        match &e.label {
            DagLabel::Class(_, key) | DagLabel::Disj(_, key) => {
                items.push(Binding {
                    key: *key,
                    text: consumed,
                });
            }
            DagLabel::Mask(_, key) => {
                items.push(Binding {
                    key: *key,
                    text: "⟨m⟩".to_string(),
                });
            }
            DagLabel::Lit(_) => {}
        }
        cur = (pi, pu);
    }
    items.reverse();
    Some(Bindings { items })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AtomId;
    use crate::class::CharClass;

    fn compiled(p: Pattern) -> CompiledPattern {
        CompiledPattern::compile(p)
    }

    #[test]
    fn matches_agrees_with_examples() {
        let p = compiled(Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ])));
        assert!(p.matches(&"A2.".into()));
        assert!(p.matches(&"A2.A3.".into()));
        assert!(!p.matches(&"AAA3".into()));
        assert!(!p.matches(&"".into()));
    }

    #[test]
    fn bindings_record_class_occurrences() {
        // Figure 4 row values: A2.A3. → the repeated [0-9] atom binds twice.
        let p = compiled(Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ])));
        let b = p.bindings(&"A2.A3.".into()).unwrap();
        assert_eq!(b.items.len(), 2);
        assert_eq!(b.items[0].key.atom, AtomId(0));
        assert_eq!(b.items[0].key.occ, 0);
        assert_eq!(b.items[0].text, "2");
        assert_eq!(b.items[1].key.occ, 1);
        assert_eq!(b.items[1].text, "3");
    }

    #[test]
    fn bindings_record_disjunction_choice() {
        let p = compiled(Pattern::concat([
            Pattern::class_plus(CharClass::Digit),
            Pattern::lit("-"),
            Pattern::disj(["CAT", "PRO"]),
        ]));
        let b = p.bindings(&"42-PRO".into()).unwrap();
        let disj_binding = b.items.last().unwrap();
        assert_eq!(disj_binding.text, "PRO");
        // Two digit occurrences precede it.
        assert_eq!(b.items.len(), 3);
    }

    #[test]
    fn bindings_none_for_non_members() {
        let p = compiled(Pattern::lit("abc"));
        assert!(p.bindings(&"abd".into()).is_none());
        assert!(p.bindings(&"ab".into()).is_none());
    }

    #[test]
    fn bindings_getter() {
        let p = compiled(Pattern::Class(CharClass::Upper));
        let b = p.bindings(&"Q".into()).unwrap();
        let key = AtomKey {
            atom: AtomId(0),
            occ: 0,
        };
        assert_eq!(b.get(key), Some("Q"));
        assert_eq!(
            b.get(AtomKey {
                atom: AtomId(0),
                occ: 1
            }),
            None
        );
    }

    #[test]
    fn dfa_and_nfa_paths_agree() {
        let p = compiled(Pattern::plus(Pattern::concat([
            Pattern::lit("A"),
            Pattern::Class(CharClass::Digit),
            Pattern::lit("."),
        ])));
        for s in ["A2.", "A2.A3.", "AAA3", "", "A2", "A2.A3", "B2."] {
            let v = MaskedString::from_plain(s);
            assert_eq!(p.matches(&v), p.matches_nfa(&v), "{s:?}");
        }
    }

    #[test]
    fn matches_many_equals_per_value_matches() {
        let p = compiled(Pattern::concat([
            Pattern::class_plus(CharClass::Digit),
            Pattern::lit("-"),
            Pattern::disj(["CAT", "PRO"]),
        ]));
        let values: Vec<MaskedString> = ["42-PRO", "7-CAT", "42-DOG", "", "-PRO", "9-PROX"]
            .iter()
            .map(|s| MaskedString::from_plain(s))
            .collect();
        let batch = p.matches_many(&values);
        let single: Vec<bool> = values.iter().map(|v| p.matches(v)).collect();
        assert_eq!(batch, single);
        assert_eq!(batch, vec![true, true, false, false, false, false]);
    }

    #[test]
    fn clones_share_the_memoized_dfa() {
        // Overflow the original's tiny budget; the clone must observe it
        // (same Arc), proving warm tables survive profile re-scoring.
        let alts: Vec<Pattern> = (b'a'..=b'z')
            .map(|c| Pattern::lit(format!("{0}{0}", char::from(c))))
            .collect();
        let p = CompiledPattern::compile_with_dfa_budget(Pattern::Alt(alts), 3);
        assert!(!p.dfa_overflowed());
        assert!(p.matches(&"qq".into()));
        assert!(p.dfa_overflowed());
        let clone = p.clone();
        assert!(clone.dfa_overflowed());
        assert!(clone.matches(&"zz".into()));
        assert!(!clone.matches(&"z".into()));
    }

    #[test]
    fn dag_cache_returns_same_structure() {
        let p = compiled(Pattern::class_plus(CharClass::Digit));
        let d1 = p.dag_for_len(4);
        let d2 = p.dag_for_len(4);
        assert!(std::sync::Arc::ptr_eq(&d1, &d2));
    }

    #[test]
    fn fixed_width_class_occurrences() {
        // [0-9]{3} is a single atom with three occurrences.
        let p = compiled(Pattern::class_n(CharClass::Digit, 3));
        let b = p.bindings(&"407".into()).unwrap();
        let texts: Vec<&str> = b.items.iter().map(|i| i.text.as_str()).collect();
        assert_eq!(texts, vec!["4", "0", "7"]);
        assert!(b.items.iter().all(|i| i.key.atom == AtomId(0)));
    }
}
